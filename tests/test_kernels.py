"""Kernel dispatch layer + reference/vectorized equivalence.

The dispatch tests pin the selection contract (``REPRO_KERNELS``, scoped
overrides, loud errors for unknown names).  The equivalence tests are
the unit-level half of the differential story: for every kernel pair,
random scenario-shaped inputs — including empty and degenerate active
sets — must produce matching forwards *and* matching gradients, with
the only allowed gap being BLAS re-association at the last ulps.
"""

import numpy as np
import pytest

from repro import obs
from repro.detect.ap import Detection
from repro.kernels import (
    BACKENDS,
    DEFAULT_BACKEND,
    KERNELS_ENV,
    KernelError,
    active_backend,
    available_kernels,
    get_kernel,
    kernel_backend,
    kernel_timer,
    register_kernel,
)
from repro.neuromorphic.snn import SpikingConv2d
from repro.nn.sparse3d import (SparseConv3d, SparseGrad, SparseVoxelTensor)
from repro.nn.vae import VAE
from repro.starnet.likelihood_regret import likelihood_regret_batch

# ---------------------------------------------------------------- dispatch


def test_default_backend_is_vectorized(monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    assert DEFAULT_BACKEND == "vectorized"
    assert active_backend() == "vectorized"


def test_env_selects_backend(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "reference")
    assert active_backend() == "reference"
    monkeypatch.setenv(KERNELS_ENV, "VECTORIZED")  # case-insensitive
    assert active_backend() == "vectorized"


def test_invalid_env_backend_raises(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "turbo")
    with pytest.raises(KernelError, match="invalid REPRO_KERNELS"):
        active_backend()
    with pytest.raises(KernelError):
        get_kernel("sparse_conv3d")


def test_scoped_override_beats_env_and_restores(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "vectorized")
    with kernel_backend("reference"):
        assert active_backend() == "reference"
        with kernel_backend("vectorized"):
            assert active_backend() == "vectorized"
        assert active_backend() == "reference"
    assert active_backend() == "vectorized"
    with pytest.raises(KernelError, match="unknown kernel backend"):
        with kernel_backend("turbo"):
            pass


def test_unknown_kernel_and_backend_errors():
    with pytest.raises(KernelError, match="unknown kernel 'nope'"):
        get_kernel("nope")
    with pytest.raises(KernelError, match="unknown kernel backend"):
        get_kernel("sparse_conv3d", backend="turbo")


def test_registry_covers_the_hot_paths():
    assert {"sparse_conv3d", "snn_bptt", "likelihood_regret",
            "bev_match"} <= set(available_kernels())
    for name in ("sparse_conv3d", "snn_bptt", "likelihood_regret",
                 "bev_match"):
        for backend in BACKENDS:
            assert get_kernel(name, backend=backend) is not None


def test_register_kernel_validates_backend():
    with pytest.raises(KernelError, match="unknown kernel backend"):
        register_kernel("x", "turbo", object())


def test_partially_registered_kernel_fails_loudly():
    register_kernel("test-only-partial", "reference", object())
    try:
        with pytest.raises(KernelError, match="no 'vectorized' backend"):
            get_kernel("test-only-partial", backend="vectorized")
    finally:
        from repro.kernels import _REGISTRY
        _REGISTRY.pop("test-only-partial", None)


def test_kernel_timer_records_histogram_not_counter():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with kernel_timer("test_kernel", "op"):
            pass
    snap = registry.snapshot()
    assert "kernels.test_kernel.op_s" in snap["histograms"]
    # Timings must never land in counters: golden traces record the
    # deterministic counter slice and wall clock is not deterministic.
    assert not any(k.startswith("kernels.") for k in snap["counters"])


# ----------------------------------------------------- sparse conv parity


def _random_sparse(rng, grid, n_active, in_ch):
    total = grid[0] * grid[1] * grid[2]
    n_active = min(n_active, total)
    flat = rng.choice(total, size=n_active, replace=False)
    coords = [tuple(int(v) for v in c)
              for c in np.stack(np.unravel_index(np.sort(flat), grid),
                                axis=1)]
    values = rng.normal(size=(n_active, in_ch))
    return SparseVoxelTensor.from_coords(coords, in_ch, grid, values=values)


@pytest.mark.parametrize("n_active", [0, 1, 9, 40])
@pytest.mark.parametrize("stride", [1, 2])
def test_sparse_conv_backends_agree(n_active, stride):
    rng = np.random.default_rng(100 + n_active + stride)
    grid = (6, 5, 3) if n_active else (1, 1, 1)  # degenerate too
    in_ch, out_ch = 3, 4

    outs, grads = {}, {}
    for backend in BACKENDS:
        layer = SparseConv3d(in_ch, out_ch, kernel=3, stride=stride,
                             rng=np.random.default_rng(1))
        x = _random_sparse(np.random.default_rng(2), grid, n_active, in_ch)
        with kernel_backend(backend):
            out = layer.forward(x)
            oc, om = out.packed()
            din = layer.backward(SparseGrad(oc, np.ones_like(om)))
        outs[backend] = out
        grads[backend] = (layer.weight.grad.copy(), layer.bias.grad.copy(),
                          {c: din[c].copy() for c in din})

    ref, vec = outs["reference"], outs["vectorized"]
    assert sorted(ref.features) == sorted(vec.features)
    rc, rm = ref.packed()
    vc, vm = vec.packed()
    np.testing.assert_array_equal(rc, vc)
    np.testing.assert_allclose(rm, vm, rtol=1e-12, atol=1e-12)
    for (rw, rb, rd), (vw, vb, vd) in [(grads["reference"],
                                        grads["vectorized"])]:
        np.testing.assert_allclose(rw, vw, rtol=1e-11, atol=1e-12)
        np.testing.assert_allclose(rb, vb, rtol=1e-11, atol=1e-12)
        assert sorted(rd) == sorted(vd)
        for c in rd:
            np.testing.assert_allclose(rd[c], vd[c],
                                       rtol=1e-11, atol=1e-12)


# ------------------------------------------------------- SNN BPTT parity


@pytest.mark.parametrize("learnable", [False, True])
def test_snn_bptt_backends_agree(learnable):
    x = np.random.default_rng(31).normal(size=(5, 2, 2, 6, 6))
    grad_out = np.random.default_rng(32).normal(size=(5, 2, 3, 6, 6))

    results = {}
    for backend in BACKENDS:
        layer = SpikingConv2d(2, 3, leak=0.85, threshold=0.7,
                              learnable_dynamics=learnable,
                              rng=np.random.default_rng(30))
        with kernel_backend(backend):
            spikes = layer.forward(x)
            din = layer.backward(grad_out.copy())
        results[backend] = (spikes, din, layer)

    ref_s, ref_d, ref_l = results["reference"]
    vec_s, vec_d, vec_l = results["vectorized"]
    assert ref_s.sum() > 0  # genuinely spiking workload
    np.testing.assert_array_equal(ref_s, vec_s)  # binary: must be exact
    np.testing.assert_allclose(ref_d, vec_d, rtol=1e-9, atol=1e-12)
    for rp, vp in zip(ref_l.parameters(), vec_l.parameters()):
        np.testing.assert_allclose(rp.grad, vp.grad,
                                   rtol=1e-9, atol=1e-12,
                                   err_msg=rp.name)


# -------------------------------------------------- likelihood regret parity


@pytest.mark.parametrize("method", ["spsa", "exact", "recon"])
def test_likelihood_regret_backends_agree(method):
    vae = VAE(9, latent_dim=4, hidden=(12,), rng=np.random.default_rng(40))
    X = np.random.default_rng(41).normal(size=(5, 9))
    scores = {
        backend: get_kernel("likelihood_regret", backend=backend)
        .score_rows(vae, X, method, 8, np.random.default_rng(42))
        for backend in BACKENDS
    }
    assert scores["reference"].shape == (5,)
    np.testing.assert_allclose(scores["reference"], scores["vectorized"],
                               rtol=1e-9, atol=1e-12)


def test_likelihood_regret_batch_entry_point():
    vae = VAE(9, latent_dim=4, hidden=(12,), rng=np.random.default_rng(40))
    X = np.random.default_rng(41).normal(size=(3, 9))
    out = likelihood_regret_batch(vae, X, method="recon")
    assert out.shape == (3,) and np.all(out >= 0)
    assert likelihood_regret_batch(vae, np.zeros((0, 9))).shape == (0,)
    with pytest.raises(ValueError, match="unknown score method"):
        likelihood_regret_batch(vae, X, method="bogus")


# ------------------------------------------------------- BEV match parity


def test_bev_match_backends_agree():
    rng = np.random.default_rng(50)
    cases = [
        ([], np.zeros((0, 2))),                      # both empty
        ([Detection("Car", 1.0, 2.0, 0.9)], np.zeros((0, 2))),  # no GTs
        ([], rng.uniform(0, 10, size=(3, 2))),       # no preds
    ]
    for _ in range(20):
        preds = [Detection("Car", float(x), float(y), float(s))
                 for x, y, s in rng.uniform(0, 20, size=(rng.integers(1, 25),
                                                         3))]
        gts = rng.uniform(0, 20, size=(int(rng.integers(1, 10)), 2))
        cases.append((preds, gts))
    for preds, gts in cases:
        ref = get_kernel("bev_match", backend="reference").match_scene(
            preds, gts, 4.0)
        vec = get_kernel("bev_match", backend="vectorized").match_scene(
            preds, gts, 4.0)
        assert ref == vec  # scores and TP flags, exactly


# -------------------------------------------- sparse tensor representations


def test_sparse_tensor_dict_and_packed_round_trip():
    coords = [(0, 1, 0), (2, 0, 1), (1, 1, 1)]
    values = np.arange(9.0).reshape(3, 3)
    x = SparseVoxelTensor.from_coords(coords, 3, (3, 2, 2), values=values)
    assert not x.is_packed and x.num_active == 3

    pc, pm = x.packed()
    assert pc.shape == (3, 3) and pm.shape == (3, 3)
    # packed() sorts coordinates lexicographically.
    assert [tuple(c) for c in pc] == sorted(coords)

    packed = SparseVoxelTensor(None, 3, (3, 2, 2), coords=pc.copy(),
                               matrix=pm.copy())
    assert packed.is_packed and packed.num_active == 3
    np.testing.assert_array_equal(packed.dense(), x.dense())
    # Materializing the dict drops the packed arrays.
    feats = packed.features
    assert not packed.is_packed
    np.testing.assert_array_equal(feats[(2, 0, 1)], x.features[(2, 0, 1)])

    with pytest.raises(ValueError):
        SparseVoxelTensor(None, 3, (3, 2, 2))


def test_sparse_grad_is_a_mapping():
    coords = np.array([[0, 0, 0], [1, 2, 3]], dtype=np.int64)
    g = SparseGrad(coords, np.array([[1.0, 2.0], [3.0, 4.0]]))
    assert len(g) == 2
    assert (1, 2, 3) in g and (9, 9, 9) not in g
    np.testing.assert_array_equal(g[(0, 0, 0)], [1.0, 2.0])
    assert set(g) == {(0, 0, 0), (1, 2, 3)}
    assert sorted(g.keys()) == [(0, 0, 0), (1, 2, 3)]
