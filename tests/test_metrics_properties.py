"""Property tests for evaluation metrics: AUC invariances, AEE bounds.

The STARNet AUC protocol and the MVSEC-style AEE evaluation gate the
trust-monitoring and neuromorphic pillars, so their metrics must hold
structural properties — rank invariance, boundedness, defined degenerate
behaviour — for *any* input, not just the fixtures unit tests pick.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import average_endpoint_error, flow_outlier_fraction, roc_auc

flow_values = st.floats(min_value=-50.0, max_value=50.0,
                        allow_nan=False, allow_infinity=False)


def _scores_and_labels(draw):
    """A score vector plus binary labels.

    Scores come from a coarse lattice (ties are intended and common)
    whose spacing is wide enough that every monotone transform under
    test remains *strictly* increasing in float64 — denormals would
    collapse under ``exp``/``arctan`` and break rank invariance for
    numerical rather than mathematical reasons.
    """
    n = draw(st.integers(2, 40))
    ticks = draw(st.lists(st.integers(-1_000_000, 1_000_000),
                          min_size=n, max_size=n))
    scores = np.array(ticks, dtype=np.float64) / 97.0
    labels = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    return scores, np.array(labels)


# ---------------------------------------------------------------- ROC AUC
@given(st.data())
@settings(max_examples=80, deadline=None)
def test_auc_invariant_under_monotone_transforms(data):
    """AUC is a rank statistic: any strictly increasing transform of the
    scores (affine, exp, arctan, cubic-plus-linear) leaves it unchanged,
    ties included."""
    scores, labels = _scores_and_labels(data.draw)
    base = roc_auc(scores, labels)
    transforms = (
        lambda s: 3.0 * s + 7.0,
        lambda s: np.arctan(s),
        lambda s: s ** 3 + s,          # strictly increasing, nonlinear
        lambda s: np.exp(s / 1e6),
    )
    for transform in transforms:
        assert roc_auc(transform(scores), labels) == pytest.approx(
            base, abs=1e-12)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_auc_bounded_and_defined(data):
    """Any binary-labeled batch — including all-one-class — yields a
    finite AUC in [0, 1], never NaN."""
    scores, labels = _scores_and_labels(data.draw)
    auc = roc_auc(scores, labels)
    assert np.isfinite(auc)
    assert 0.0 <= auc <= 1.0


@given(st.integers(1, 20), st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_auc_single_class_is_chance_level(n, label):
    """Degenerate single-class input returns the defined chance level."""
    rng = np.random.default_rng(n)
    scores = rng.normal(size=n)
    assert roc_auc(scores, [label] * n) == 0.5


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_auc_label_flip_complements(data):
    """Swapping the class labels mirrors the AUC around 0.5."""
    scores, labels = _scores_and_labels(data.draw)
    a = roc_auc(scores, labels)
    b = roc_auc(scores, 1 - labels)
    assert a + b == pytest.approx(1.0)


# -------------------------------------------------------------------- AEE
@given(arrays(np.float64, st.tuples(st.just(2), st.integers(1, 8),
                                    st.integers(1, 8)),
              elements=flow_values),
       arrays(np.float64, st.tuples(st.just(2), st.integers(1, 8),
                                    st.integers(1, 8)),
              elements=flow_values),
       st.integers(0, 2 ** 31))
@settings(max_examples=80, deadline=None)
def test_aee_non_negative_and_identity(pred, target, seed):
    """AEE >= 0 for any pair of fields (masked or not) and is exactly 0
    against itself."""
    if pred.shape != target.shape:
        target = np.zeros_like(pred)
    aee = average_endpoint_error(pred, target)
    assert np.isfinite(aee)
    assert aee >= 0.0
    assert average_endpoint_error(pred, pred) == 0.0
    mask = np.random.default_rng(seed).random(pred.shape[1:]) < 0.5
    masked = average_endpoint_error(pred, target, mask=mask)
    assert masked >= 0.0  # empty mask is defined as 0, else a mean of norms


@given(arrays(np.float64, st.tuples(st.just(2), st.integers(1, 8),
                                    st.integers(1, 8)),
              elements=flow_values),
       st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_aee_scales_with_uniform_error(pred, delta):
    """Adding a constant (delta, 0) offset shifts AEE by exactly delta —
    the metric is a mean of Euclidean norms, not a squared error."""
    shifted = pred.copy()
    shifted[0] += delta
    assert average_endpoint_error(shifted, pred) == pytest.approx(delta)


@given(arrays(np.float64, st.tuples(st.just(2), st.integers(2, 8),
                                    st.integers(2, 8)),
              elements=flow_values))
@settings(max_examples=60, deadline=None)
def test_outlier_fraction_bounded(pred):
    frac = flow_outlier_fraction(pred, np.zeros_like(pred), threshold=3.0)
    assert 0.0 <= frac <= 1.0
