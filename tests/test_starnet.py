"""Tests for STARNet: likelihood regret, monitor, LoRA, fusion filtering."""

import numpy as np
import pytest

from repro.core import Percept
from repro.generative import RMAE
from repro.nn import VAE, train_vae
from repro.sim import LidarConfig, LidarScanner, apply_corruption, sample_scene, snow
from repro.starnet import (
    AUCExperimentConfig,
    GatedFilter,
    LidarFeatureExtractor,
    LoRAFineTuner,
    STARNet,
    camera_features,
    filter_backscatter,
    generate_scans,
    likelihood_regret_exact,
    likelihood_regret_spsa,
    per_sample_elbo,
    reconstruction_error_score,
    run_auc_experiment,
    scan_statistics,
)
from repro.voxel import VoxelGridConfig


GRID = VoxelGridConfig(nx=16, ny=16, nz=2)
LIDAR = LidarConfig(n_azimuth=36, n_elevation=8)


def _trained_vae(seed=0, dim=8):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(200, dim)) * 0.4
    vae = VAE(input_dim=dim, latent_dim=3, rng=rng)
    train_vae(vae, data, epochs=25, rng=rng)
    return vae, data


# ------------------------------------------------------- likelihood regret
def test_per_sample_elbo_deterministic_mode():
    vae, data = _trained_vae()
    mu, logvar = vae.encode(data[:1])
    a = per_sample_elbo(vae, data[0], mu, logvar)
    b = per_sample_elbo(vae, data[0], mu, logvar)
    assert a == b  # no sampling noise


def test_regret_nonnegative():
    vae, data = _trained_vae()
    assert likelihood_regret_spsa(vae, data[0], steps=10,
                                  rng=np.random.default_rng(1)) >= 0.0
    assert likelihood_regret_exact(vae, data[0], steps=10) >= 0.0


def test_regret_separates_ood():
    vae, data = _trained_vae()
    rng = np.random.default_rng(2)
    in_scores = [likelihood_regret_spsa(vae, x, steps=25, rng=rng)
                 for x in data[:8]]
    out_scores = [likelihood_regret_spsa(vae, x + 6.0, steps=25, rng=rng)
                  for x in data[:8]]
    assert np.median(out_scores) > np.median(in_scores)


def test_exact_regret_separates_ood():
    vae, data = _trained_vae()
    in_s = [likelihood_regret_exact(vae, x, steps=40) for x in data[:6]]
    out_s = [likelihood_regret_exact(vae, x + 6.0, steps=40)
             for x in data[:6]]
    assert np.median(out_s) > np.median(in_s)


def test_reconstruction_score_separates_ood():
    vae, data = _trained_vae()
    in_s = np.mean([reconstruction_error_score(vae, x) for x in data[:8]])
    out_s = np.mean([reconstruction_error_score(vae, x + 6.0)
                     for x in data[:8]])
    assert out_s > in_s


# ----------------------------------------------------------------- monitor
def _fit_monitor(method="spsa", seed=3):
    rng = np.random.default_rng(seed)
    nominal = rng.normal(size=(80, 6)) * 0.5
    mon = STARNet(6, score_method=method, spsa_steps=15,
                  rng=np.random.default_rng(seed + 1))
    mon.fit(nominal, epochs=25)
    return mon, nominal


def test_monitor_requires_fit():
    mon = STARNet(4)
    with pytest.raises(RuntimeError):
        mon.score(np.zeros(4))


def test_monitor_fit_validation():
    mon = STARNet(4)
    with pytest.raises(ValueError):
        mon.fit(np.zeros((4, 4)))  # too few samples
    with pytest.raises(ValueError):
        mon.fit(np.zeros((20, 3)))  # wrong dim


def test_monitor_unknown_method():
    with pytest.raises(ValueError):
        STARNet(4, score_method="entropy")


def test_monitor_assess_trust_range():
    mon, nominal = _fit_monitor()
    for row in nominal[:5]:
        trust = mon.assess(Percept(features=row))
        assert 0.0 <= trust <= 1.0


def test_monitor_trusts_nominal_distrusts_anomalous():
    mon, nominal = _fit_monitor()
    nominal_trust = np.mean([mon.assess(Percept(features=r))
                             for r in nominal[:8]])
    anomalous_trust = np.mean([mon.assess(Percept(features=r + 8.0))
                               for r in nominal[:8]])
    assert nominal_trust > 0.5
    assert anomalous_trust < nominal_trust


def test_monitor_score_batch():
    mon, nominal = _fit_monitor(method="recon")
    scores = mon.score_batch(nominal[:5])
    assert scores.shape == (5,)


# --------------------------------------------------------------- features
def _scan(seed=0):
    rng = np.random.default_rng(seed)
    return LidarScanner(LIDAR, rng=rng).scan(sample_scene(rng))


def test_scan_statistics_shape_and_empty():
    stats = scan_statistics(_scan())
    assert stats.shape == (9,)
    assert np.all(np.isfinite(stats))
    empty = _scan().subset(np.zeros(_scan().num_points, dtype=bool))
    np.testing.assert_array_equal(scan_statistics(empty), np.zeros(9))


def test_feature_extractor_dim_consistent():
    rmae = RMAE(GRID, rng=np.random.default_rng(4))
    ex = LidarFeatureExtractor(rmae, GRID)
    feats = ex.extract(_scan())
    assert feats.shape == (ex.feature_dim,)
    batch = ex.extract_batch([_scan(1), _scan(2)])
    assert batch.shape == (2, ex.feature_dim)


def test_features_shift_under_corruption():
    rmae = RMAE(GRID, rng=np.random.default_rng(5))
    ex = LidarFeatureExtractor(rmae, GRID)
    scan = _scan(6)
    clean = ex.extract(scan)
    corrupted = ex.extract(apply_corruption(scan, "snow", 0.8,
                                            np.random.default_rng(7)))
    assert np.linalg.norm(clean - corrupted) > 0.05


def test_camera_features_robust_to_snow():
    scan = _scan(8)
    snowy = apply_corruption(scan, "snow", 0.9, np.random.default_rng(9))
    cam_clean = camera_features(scan, 0.0, np.random.default_rng(10))
    cam_snowy = camera_features(snowy, 0.9, np.random.default_rng(10))
    lidar_clean = scan_statistics(scan)
    lidar_snowy = scan_statistics(snowy)
    rel_cam = np.linalg.norm(cam_clean - cam_snowy) / (
        np.linalg.norm(cam_clean) + 1e-9)
    rel_lidar = np.linalg.norm(lidar_clean - lidar_snowy) / (
        np.linalg.norm(lidar_clean) + 1e-9)
    assert rel_cam < rel_lidar  # camera channel degrades less


# ------------------------------------------------------------------- LoRA
def test_lora_finetuner_fraction_small():
    vae, _ = _trained_vae(seed=11)
    tuner = LoRAFineTuner(vae, rank=2, rng=np.random.default_rng(12))
    assert tuner.trainable_fraction < 0.6


def test_lora_adapts_to_drift():
    vae, data = _trained_vae(seed=13)
    drifted = data + 1.5
    before = np.mean([reconstruction_error_score(vae, x)
                      for x in drifted[:16]])
    tuner = LoRAFineTuner(vae, rank=4, rng=np.random.default_rng(14))
    tuner.adapt(drifted, steps=120, rng=np.random.default_rng(15))
    after = np.mean([reconstruction_error_score(vae, x)
                     for x in drifted[:16]])
    assert after < before


def test_lora_rank_validation():
    vae, _ = _trained_vae(seed=16)
    with pytest.raises(ValueError):
        LoRAFineTuner(vae, rank=0)


# ---------------------------------------------------------------- fusion
def test_filter_backscatter_removes_isolated_near_points():
    scan = _scan(17)
    snowy = snow(scan, severity=0.8, rng=np.random.default_rng(18))
    filtered = filter_backscatter(snowy)
    removed_frac_spurious = 1.0 - (
        (filtered.labels == -2).sum() / max((snowy.labels == -2).sum(), 1))
    removed_frac_genuine = 1.0 - (
        (filtered.labels >= 0).sum() / max((snowy.labels >= 0).sum(), 1))
    assert removed_frac_spurious > removed_frac_genuine


def test_filter_backscatter_empty_scan():
    scan = _scan(19)
    empty = scan.subset(np.zeros(scan.num_points, dtype=bool))
    assert filter_backscatter(empty).num_points == 0


def test_gated_filter_passes_clean_scans():
    rmae = RMAE(GRID, rng=np.random.default_rng(20))
    ex = LidarFeatureExtractor(rmae, GRID)
    scans = [_scan(s) for s in range(21, 33)]
    mon = STARNet(ex.feature_dim, score_method="recon",
                  rng=np.random.default_rng(33))
    mon.fit(ex.extract_batch(scans), epochs=25)
    gate = GatedFilter(mon, ex)
    for scan in scans[:4]:
        gate.apply(scan)
    assert gate.passthroughs >= 3  # clean streams go through untouched


def test_gated_filter_intervenes_on_snow():
    rmae = RMAE(GRID, rng=np.random.default_rng(34))
    ex = LidarFeatureExtractor(rmae, GRID)
    scans = [_scan(s) for s in range(35, 47)]
    mon = STARNet(ex.feature_dim, score_method="recon",
                  rng=np.random.default_rng(47))
    mon.fit(ex.extract_batch(scans), epochs=25)
    gate = GatedFilter(mon, ex)
    for scan in scans[:4]:
        gate.apply(snow(scan, 0.9, np.random.default_rng(48)))
    assert gate.interventions >= 3


# --------------------------------------------------------------- protocol
def test_auc_experiment_smoke():
    cfg = AUCExperimentConfig(n_fit_scans=10, n_test_scans=5,
                              corruptions=("snow", "crosstalk"),
                              score_method="recon", vae_epochs=15,
                              lidar=LIDAR, grid=GRID)
    res = run_auc_experiment(cfg)
    assert set(res) == {"snow", "crosstalk"}
    for v in res.values():
        assert 0.0 <= v <= 1.0


def test_generate_scans_reproducible():
    a = generate_scans(3, LIDAR, seed=50)
    b = generate_scans(3, LIDAR, seed=50)
    for sa, sb in zip(a, b):
        np.testing.assert_array_equal(sa.points, sb.points)
