"""Tests for the analytic hardware models (energy, latency, LiDAR physics)."""

import numpy as np
import pytest

from repro.hardware import (
    EnergyLedger,
    HardwareProfile,
    LidarPowerModel,
    diffraction_limited_resolution,
    mac_area_um2,
    mac_energy_pj,
    mac_latency_ns,
    memory_energy_pj,
    model_inference_energy_mj,
)


# ----------------------------------------------------------------- energy
def test_mac_energy_monotone_in_bits():
    energies = [mac_energy_pj(b) for b in (2, 4, 8, 16, 32)]
    assert energies == sorted(energies)


def test_mac_energy_unknown_precision():
    with pytest.raises(ValueError):
        mac_energy_pj(12)


def test_memory_energy_dram_dominates_sram():
    assert memory_energy_pj(100, dram=True) > 10 * memory_energy_pj(100)


def test_model_inference_energy_scales_with_macs():
    small = model_inference_energy_mj(int(1e6), bits=8)
    big = model_inference_energy_mj(int(1e8), bits=8)
    assert big == pytest.approx(100 * small, rel=0.2)


def test_energy_ledger_additive():
    ledger = EnergyLedger()
    ledger.charge_sensing(1.0)
    ledger.charge_compute(2.0)
    ledger.charge_communication(0.5)
    ledger.charge_actuation(0.25)
    assert ledger.total_mj == pytest.approx(3.75)


def test_energy_ledger_rejects_negative():
    with pytest.raises(ValueError):
        EnergyLedger().charge_sensing(-1.0)


def test_energy_ledger_merge():
    a = EnergyLedger(sensing_mj=1.0)
    b = EnergyLedger(compute_mj=2.0)
    merged = a.merge(b)
    assert merged.total_mj == pytest.approx(3.0)
    # Originals untouched.
    assert a.total_mj == pytest.approx(1.0)


def test_energy_ledger_snapshot_delta_window():
    ledger = EnergyLedger()
    ledger.charge_sensing(1.0)
    since = ledger.snapshot()
    ledger.charge_sensing(0.5)
    ledger.charge_compute(2.0)
    delta = ledger.delta(since)
    assert delta["sensing_mj"] == pytest.approx(0.5)
    assert delta["compute_mj"] == pytest.approx(2.0)
    assert delta["communication_mj"] == pytest.approx(0.0)
    assert delta["total_mj"] == pytest.approx(2.5)
    # The snapshot is a plain copy: it does not track later charges.
    assert since["sensing_mj"] == pytest.approx(1.0)


def test_energy_ledger_delta_tolerates_foreign_snapshot():
    ledger = EnergyLedger(compute_mj=3.0)
    # Missing meters read as zero, so a partial/foreign snapshot still
    # yields a well-formed delta over this ledger's meters.
    delta = ledger.delta({"sensing_mj": 1.0})
    assert delta["compute_mj"] == pytest.approx(3.0)
    assert delta["sensing_mj"] == pytest.approx(-1.0)
    assert set(delta) == set(ledger.as_dict())


# ---------------------------------------------------------------- latency
def test_latency_and_area_monotone():
    lats = [mac_latency_ns(b) for b in (2, 4, 8, 16, 32)]
    areas = [mac_area_um2(b) for b in (2, 4, 8, 16, 32)]
    assert lats == sorted(lats)
    assert areas == sorted(areas)


def test_profile_validation():
    with pytest.raises(ValueError):
        HardwareProfile("bad", compute_gmacs_s=0, memory_mb=1,
                        energy_budget_mj=1)


def test_profile_latency_speedup_at_low_precision():
    p = HardwareProfile("dev", compute_gmacs_s=10, memory_mb=10,
                        energy_budget_mj=100)
    assert p.inference_latency_ms(int(1e7), 8) < p.inference_latency_ms(
        int(1e7), 32)


def test_profile_fits_model():
    p = HardwareProfile("dev", compute_gmacs_s=10, memory_mb=1.0,
                        energy_budget_mj=100)
    assert p.fits_model(200_000, weight_bits=32)       # 0.8 MB
    assert not p.fits_model(400_000, weight_bits=32)   # 1.6 MB
    assert p.fits_model(400_000, weight_bits=8)        # 0.4 MB


# ------------------------------------------------------------ lidar power
def test_pulse_energy_r4_scaling():
    model = LidarPowerModel(reference_pulse_uj=50.0, reference_range_m=100.0,
                            min_pulse_uj=0.0)
    e50 = model.pulse_energy_uj(50.0)
    assert e50 == pytest.approx(50.0 / 16.0)


def test_pulse_energy_capped_at_reference():
    model = LidarPowerModel(reference_pulse_uj=50.0, reference_range_m=100.0)
    assert model.pulse_energy_uj(400.0) == pytest.approx(50.0)


def test_pulse_energy_floor():
    model = LidarPowerModel(min_pulse_uj=0.5)
    assert model.pulse_energy_uj(0.1) == pytest.approx(0.5)


def test_pulse_energy_invalid_range():
    with pytest.raises(ValueError):
        LidarPowerModel().pulse_energy_uj(0.0)


def test_scan_energy_adaptive_below_fixed():
    model = LidarPowerModel()
    ranges = np.linspace(5, 60, 100)
    assert model.scan_energy_mj(ranges, adaptive=True) < \
        model.scan_energy_mj(ranges, adaptive=False)


def test_scan_energy_empty():
    assert LidarPowerModel().scan_energy_mj(np.array([])) == 0.0


def test_table2_pulse_count_consistency():
    """72 mJ / 50 uJ = 1440 pulses, the paper's implied beam grid."""
    model = LidarPowerModel(reference_pulse_uj=50.0)
    ranges = np.full(1440, 60.0)
    full = model.scan_energy_mj(ranges, adaptive=False)
    assert full == pytest.approx(72.0)


def test_diffraction_limit_tradeoffs():
    base = diffraction_limited_resolution(905.0, 25.0)
    bigger_aperture = diffraction_limited_resolution(905.0, 50.0)
    shorter_wavelength = diffraction_limited_resolution(532.0, 25.0)
    assert bigger_aperture < base
    assert shorter_wavelength < base


def test_diffraction_limit_invalid():
    with pytest.raises(ValueError):
        diffraction_limited_resolution(0.0, 25.0)


# ------------------------------------------------------------ IMC crossbar
def test_imc_tiles_ceiling():
    from repro.hardware import CrossbarModel
    xbar = CrossbarModel(max_rows=128, max_cols=128)
    assert xbar.tiles(128, 128) == 1
    assert xbar.tiles(129, 128) == 2
    assert xbar.tiles(300, 300) == 9


def test_imc_beats_digital_on_large_inference():
    from repro.hardware import compare_architectures
    out = compare_architectures(rows=512, cols=512, batch=1, bits=8)
    assert out["imc_advantage"] > 2.0


def test_imc_advantage_grows_with_spike_sparsity():
    from repro.hardware import compare_architectures
    dense = compare_architectures(256, 256, input_activity=1.0)
    sparse = compare_architectures(256, 256, input_activity=0.1)
    assert sparse["imc_advantage"] > dense["imc_advantage"]


def test_digital_weight_caching_amortizes_traffic():
    from repro.hardware import digital_mvm_energy_pj
    uncached = digital_mvm_energy_pj(256, 256, batch=16,
                                     weights_cached=False)
    cached = digital_mvm_energy_pj(256, 256, batch=16, weights_cached=True)
    assert cached < uncached


def test_imc_validation():
    from repro.hardware import CrossbarModel, digital_mvm_energy_pj
    with pytest.raises(ValueError):
        digital_mvm_energy_pj(0, 10)
    with pytest.raises(ValueError):
        CrossbarModel().mvm_energy_pj(10, 10, input_activity=2.0)
    with pytest.raises(ValueError):
        CrossbarModel().tiles(-1, 5)


def test_imc_write_energy_positive():
    from repro.hardware import CrossbarModel
    assert CrossbarModel().write_energy_pj(64, 64) > 0
