"""Tests for the ``repro.obs`` telemetry layer."""

import gc
import json
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.energy import EnergyLedger
from repro.obs import (
    NOOP_REGISTRY,
    Histogram,
    MetricsRegistry,
    aggregate_spans,
    export_jsonl,
    get_registry,
    read_jsonl,
    registry_payload,
    render_metrics,
    render_report,
    render_span_tree,
    run_profile_scenario,
    trace_span,
    use_registry,
)


# ------------------------------------------------------------ instruments
def test_counter_monotone_and_named():
    reg = MetricsRegistry()
    c = reg.counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert reg.counter("x") is c
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_value_wins():
    reg = MetricsRegistry()
    g = reg.gauge("trust")
    g.set(0.25)
    g.set(0.75)
    assert g.value == 0.75


def test_histogram_exact_below_reservoir():
    h = Histogram("lat", reservoir_size=128)
    for v in range(101):
        h.observe(float(v))
    assert h.count == 101
    assert h.min == 0.0 and h.max == 100.0
    assert h.quantile(0.5) == pytest.approx(50.0)
    assert h.quantile(0.95) == pytest.approx(95.0)
    assert h.mean == pytest.approx(50.0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=400))
def test_histogram_quantile_sanity(values):
    """Property: quantiles bounded by [min, max] and monotone in q."""
    h = Histogram("h", reservoir_size=64)
    for v in values:
        h.observe(v)
    lo, hi = min(values), max(values)
    q50, q95, q99 = h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)
    for q in (q50, q95, q99):
        assert lo <= q <= hi
    assert q50 <= q95 <= q99
    assert h.quantile(0.0) >= lo
    assert h.quantile(1.0) <= hi
    assert h.count == len(values)


def test_histogram_reservoir_is_deterministic():
    def build():
        h = Histogram("h", reservoir_size=32)
        for v in range(1000):
            h.observe(float(v % 97))
        return h.quantiles()

    assert build() == build()


# ------------------------------------------------------------------ spans
def test_span_nesting_and_timing_monotonicity():
    reg = MetricsRegistry()
    with reg.trace_span("outer") as outer:
        with reg.trace_span("middle") as middle:
            with reg.trace_span("inner") as inner:
                sum(range(1000))
    assert reg.spans == [outer]
    assert outer.children == [middle]
    assert middle.children == [inner]
    # Children start after and end before their parents.
    assert outer.start_s <= middle.start_s <= inner.start_s
    assert inner.end_s <= middle.end_s <= outer.end_s
    assert inner.duration_s <= middle.duration_s <= outer.duration_s
    assert outer.duration_s > 0


def test_span_energy_deltas():
    reg = MetricsRegistry()
    ledger = EnergyLedger()
    with reg.trace_span("cycle", ledger=ledger):
        ledger.charge_sensing(5.0)
        with reg.trace_span("compute", ledger=ledger) as inner:
            ledger.charge_compute(2.0)
    cycle = reg.spans[0]
    assert cycle.energy_mj["sensing_mj"] == pytest.approx(5.0)
    assert cycle.energy_mj["total_mj"] == pytest.approx(7.0)
    assert inner.energy_mj["compute_mj"] == pytest.approx(2.0)
    assert inner.energy_mj["sensing_mj"] == pytest.approx(0.0)


def test_span_uses_duck_typed_snapshot_delta():
    """Spans consume any meter object exposing snapshot()/delta() — the
    same windowed-reading contract EnergyLedger and the control plane's
    EnergyWindow are built on."""

    class FakeMeters:
        def __init__(self):
            self.joules = 0.0

        def snapshot(self):
            return {"joules": self.joules}

        def delta(self, since):
            return {"joules": self.joules - since.get("joules", 0.0)}

    reg = MetricsRegistry()
    meters = FakeMeters()
    with reg.trace_span("work", ledger=meters):
        meters.joules += 4.0
    assert reg.spans[0].energy_mj == {"joules": pytest.approx(4.0)}


def test_span_attrs_and_annotate():
    reg = MetricsRegistry()
    with reg.trace_span("s", attrs={"phase": "train"}) as s:
        s.annotate(epoch=3)
    assert s.attrs == {"phase": "train", "epoch": 3}
    assert reg.spans[0].as_dict()["attrs"]["epoch"] == 3


def test_span_retention_cap_counts_drops():
    reg = MetricsRegistry(max_spans=5)
    for _ in range(9):
        with reg.trace_span("s"):
            pass
    assert len(reg.spans) == 5
    assert reg.tracer.dropped == 4


def test_span_survives_exceptions():
    reg = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with reg.trace_span("outer"):
            with reg.trace_span("inner"):
                raise RuntimeError("boom")
    assert [s.name for s in reg.spans] == ["outer"]
    assert [c.name for c in reg.spans[0].children] == ["inner"]
    # The stack fully unwound: a new span becomes a root.
    with reg.trace_span("after"):
        pass
    assert reg.spans[-1].name == "after"


# ------------------------------------------------------------ JSONL export
def test_jsonl_round_trip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("cycles").inc(3)
    reg.gauge("trust").set(0.5)
    h = reg.histogram("lat")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    with reg.trace_span("cycle"):
        with reg.trace_span("sense"):
            pass
    path = str(tmp_path / "obs.jsonl")
    n = export_jsonl(reg, path)
    records = read_jsonl(path)
    assert len(records) == n == 4
    by_kind = {}
    for r in records:
        by_kind.setdefault(r["kind"], []).append(r)
    assert by_kind["counter"][0] == {"kind": "counter", "name": "cycles",
                                     "value": 3.0}
    assert by_kind["gauge"][0]["value"] == 0.5
    hist = by_kind["histogram"][0]
    assert hist["count"] == 3 and hist["p50"] == 2.0
    tree = by_kind["span"][0]["tree"]
    assert tree["name"] == "cycle"
    assert tree["children"][0]["name"] == "sense"
    # The JSON payload form carries the same data.
    payload = registry_payload(reg)
    assert payload["metrics"]["counters"]["cycles"] == 3.0
    assert payload["spans"][0]["name"] == "cycle"
    json.dumps(payload)  # fully serializable


def test_render_report_smoke():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.histogram("h").observe(1.0)
    with reg.trace_span("root"):
        with reg.trace_span("leaf"):
            pass
    text = render_report(reg, title="t")
    assert "root" in text and "leaf" in text and "histograms" in text
    assert "t" in text
    assert render_span_tree([]) == "(no spans recorded)"
    assert "c" in render_metrics(reg)


def test_aggregate_spans_merges_siblings():
    reg = MetricsRegistry()
    for _ in range(4):
        with reg.trace_span("cycle"):
            with reg.trace_span("sense"):
                pass
    aggs = aggregate_spans(reg.spans)
    assert len(aggs) == 1
    assert aggs[0].count == 4
    assert aggs[0].children["sense"].count == 4
    assert aggs[0].children["sense"].total_s <= aggs[0].total_s


# ----------------------------------------------------------- no-op path
def test_disabled_is_default_and_noop():
    reg = get_registry()
    assert reg is NOOP_REGISTRY
    assert not reg.enabled
    reg.counter("x").inc(5)
    assert reg.counter("x").value == 0.0
    reg.histogram("h").observe(1.0)
    assert reg.histogram("h").quantile(0.5) == 0.0
    with trace_span("s") as s:
        pass
    assert s.duration_s == 0.0
    assert reg.spans == []


@pytest.mark.skipif(not hasattr(sys, "getallocatedblocks"),
                    reason="needs CPython block accounting")
def test_noop_path_zero_allocations_per_cycle():
    """The disabled instrumentation must not allocate in steady state."""
    reg = NOOP_REGISTRY
    counter = reg.counter("loop.cycles")
    hist = reg.histogram("loop.cycle_wall_s")

    def cycle():
        with reg.trace_span("loop.cycle"):
            with reg.trace_span("loop.sense"):
                counter.inc()
            hist.observe(0.5)

    for _ in range(512):  # warm up caches, bytecode, freelists
        cycle()
    gc.collect()
    before = sys.getallocatedblocks()
    for _ in range(4096):
        cycle()
    gc.collect()
    after = sys.getallocatedblocks()
    # Allow a few blocks of interpreter noise; the per-cycle cost must
    # be indistinguishable from zero.
    assert (after - before) / 4096 < 0.01


# ---------------------------------------------------- use_registry/scenario
def test_use_registry_restores_previous():
    outer = get_registry()
    reg = MetricsRegistry()
    with use_registry(reg):
        assert get_registry() is reg
        reg.counter("c").inc()
    assert get_registry() is outer
    assert reg.counter("c").value == 1.0


def test_profile_scenario_covers_all_five_stages():
    reg = MetricsRegistry()
    with use_registry(reg):
        metrics = run_profile_scenario(cycles=40, seed=1)
    names = set()

    def walk(span):
        names.add(span.name)
        for child in span.children:
            walk(child)

    for root in reg.spans:
        walk(root)
    assert {"loop.cycle", "loop.sense", "loop.perceive", "loop.monitor",
            "loop.act", "loop.actuate"} <= names
    # Energy deltas reached the per-stage spans.
    sense = reg.spans[0].children[0]
    assert sense.name == "loop.sense"
    assert sense.energy_mj["sensing_mj"] > 0
    # Cycle-latency quantiles are reported.
    q = reg.histogram("loop.cycle_latency_s").quantiles()
    assert q["p50"] > 0 and q["p50"] <= q["p95"] <= q["p99"]
    assert metrics.cycles == 40
    assert metrics.latency_quantiles()["p95"] == pytest.approx(0.01)


def test_loop_metrics_histogram_views():
    from repro.core import LoopMetrics
    m = LoopMetrics()
    assert m.mean_latency_s == 0.0
    assert m.max_staleness_s == 0.0
    m.latency.observe(0.01)
    m.latency.observe(0.03)
    m.staleness.observe(0.02)
    m.cycles = 2
    assert m.total_latency_s == pytest.approx(0.04)
    assert m.mean_latency_s == pytest.approx(0.02)
    assert m.max_staleness_s == pytest.approx(0.02)


def test_starnet_monitor_emits_metrics():
    from repro.core.components import Percept
    from repro.starnet import STARNet

    rng = np.random.default_rng(0)
    net = STARNet(feature_dim=6, spsa_steps=5, rng=rng)
    net.fit(rng.standard_normal((24, 6)), epochs=2)
    reg = MetricsRegistry()
    with use_registry(reg):
        net.assess(Percept(features=rng.standard_normal(6)))
    snap = reg.snapshot()
    assert snap["counters"]["starnet.assessments"] == 1.0
    assert snap["counters"]["starnet.spsa_iterations"] == 5.0
    assert snap["histograms"]["starnet.trust"]["count"] == 1
    assert [s.name for s in reg.spans] == ["starnet.assess"]


def test_snn_spike_counters_feed_energy_model():
    from repro.neuromorphic import SpikingConv2d, registry_snn_energy_pj
    from repro.neuromorphic.energy import E_AC_PJ

    reg = MetricsRegistry()
    layer = SpikingConv2d(1, 2, kernel=3,
                          rng=np.random.default_rng(0))
    x = (np.random.default_rng(1).random((3, 1, 1, 6, 6)) > 0.5
         ).astype(np.float64)
    with use_registry(reg):
        out = layer.forward(x)
    spikes = reg.counter("snn.spikes").value
    assert spikes == pytest.approx(float(out.sum()))
    assert reg.counter("snn.neuron_steps").value == out.size
    assert registry_snn_energy_pj(reg, fanout_macs=10.0) == pytest.approx(
        spikes * 10.0 * E_AC_PJ)


def test_federated_round_reports_comm_bytes():
    from repro.federated import FLClient, FLServer, make_fleet
    from repro.sim import make_synthetic_cifar, shard_dirichlet

    ds = make_synthetic_cifar(n_per_class=8, seed=0)
    train, test = ds.split(0.25, np.random.default_rng(1))
    shards = shard_dirichlet(train, 2, alpha=0.7,
                             rng=np.random.default_rng(2))
    fleet = make_fleet(2, rng=np.random.default_rng(3))
    clients = [FLClient(i, s, p, rng=np.random.default_rng(10 + i))
               for i, (s, p) in enumerate(zip(shards, fleet))]
    reg = MetricsRegistry()
    with use_registry(reg):
        server = FLServer(clients, test, hidden=8, mode="fedavg",
                          rng=np.random.default_rng(4))
        summary = server.run_round()
    assert summary.comm_bytes > 0
    assert summary.wall_s > 0
    assert server.totals()["comm_bytes"] == pytest.approx(
        summary.comm_bytes)
    snap = reg.snapshot()
    assert snap["counters"]["federated.comm_bytes"] == pytest.approx(
        summary.comm_bytes)
    assert snap["histograms"]["federated.round_wall_s"]["count"] == 1
    assert snap["counters"]["federated.client_macs"] > 0
    assert [s.name for s in reg.spans] == ["federated.round"]


# ------------------------------------------------------------------- CLI
def test_cli_profile_demo_writes_artifacts(tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "trace.json")
    jsonl = str(tmp_path / "trace.jsonl")
    assert main(["profile", "demo", "--cycles", "20",
                 "--out", out, "--jsonl", jsonl]) == 0
    text = capsys.readouterr().out
    assert "loop.sense" in text and "p95" in text
    payload = json.loads(open(out).read())
    assert payload["target"] == "demo"
    stages = {c["name"] for s in payload["spans"]
              for c in s.get("children", [])}
    assert {"loop.sense", "loop.perceive", "loop.monitor", "loop.act",
            "loop.actuate"} <= stages
    assert payload["metrics"]["histograms"]["loop.cycle_latency_s"][
        "count"] == 20
    assert any(r["kind"] == "span" for r in read_jsonl(jsonl))


def test_cli_profile_unknown_target_fails(capsys):
    from repro.cli import main

    assert main(["profile", "definitely-not-a-target"]) == 2
    assert "unknown profile target" in capsys.readouterr().err
