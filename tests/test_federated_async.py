"""Async federated engine: staleness weighting, determinism, job store.

Three layers of guarantees:

* property tests (Hypothesis) over the aggregation math —
  :func:`staleness_decay` / :func:`staleness_weights` /
  :func:`participation_weights` invariants hold for arbitrary inputs;
* the exact-reduction contract — with a full cohort, a fleet-sized
  buffer, and uniform sampling, :class:`AsyncFLServer` is bit-identical
  to ``FLServer.run_round`` for every mode and seed Hypothesis picks;
* orchestration — runs are byte-identical across worker counts, and a
  job-store-backed run killed mid-flight resumes to the exact final
  state of an uninterrupted one.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import (
    MODES,
    AsyncFLServer,
    FLClient,
    FLServer,
    JobStore,
    make_fleet,
    participation_weights,
    staleness_decay,
    staleness_weights,
    uplink_mbps,
)
from repro.runtime import WorkerPool, spawn_rngs
from repro.sim import make_synthetic_cifar, shard_iid

# ------------------------------------------------------------ aggregation


@given(alpha=st.floats(0.0, 5.0), kind=st.sampled_from(("poly", "exp")))
def test_decay_is_one_at_zero_staleness(alpha, kind):
    # Exactly 1.0, not approximately: this is what makes the lockstep
    # reduction bit-identical rather than merely close.
    assert staleness_decay(0.0, alpha=alpha, kind=kind) == 1.0


@given(s=st.lists(st.integers(0, 1000), min_size=2, max_size=32),
       alpha=st.floats(0.0, 5.0), kind=st.sampled_from(("poly", "exp")))
def test_decay_monotone_non_increasing(s, alpha, kind):
    values = staleness_decay(sorted(s), alpha=alpha, kind=kind)
    assert np.all(np.diff(values) <= 1e-15)
    # exp underflows to exactly 0.0 for huge alpha*s; that is a valid
    # weight (the update just stops counting), so >= 0, not > 0.
    assert np.all(values >= 0) and np.all(values <= 1.0)


@given(st.data())
@settings(deadline=None)
def test_staleness_weights_invariants(data):
    n = data.draw(st.integers(2, 24))
    staleness = data.draw(st.lists(st.integers(0, 200),
                                   min_size=n, max_size=n))
    samples = data.draw(st.lists(st.integers(1, 500),
                                 min_size=n, max_size=n))
    alpha = data.draw(st.floats(0.0, 3.0))
    kind = data.draw(st.sampled_from(("poly", "exp")))
    w = staleness_weights(staleness, samples, alpha=alpha, kind=kind)
    assert w.shape == (n,)
    assert np.all(w > 0)
    assert np.isclose(w.sum(), 1.0, rtol=0, atol=1e-12)
    # Staler never outweighs fresher at equal shard size.
    for i in range(n):
        for j in range(n):
            if samples[i] == samples[j] and staleness[i] <= staleness[j]:
                assert w[i] >= w[j] - 1e-15


@given(st.data())
def test_participation_weights_floor(data):
    n = data.draw(st.integers(2, 32))
    costs = data.draw(st.lists(
        st.floats(0.0, 1e4, allow_nan=False), min_size=n, max_size=n))
    afford = data.draw(st.lists(
        st.floats(1e-6, 1e6, allow_nan=False), min_size=n, max_size=n))
    floor = data.draw(st.floats(0.01, 1.0))
    w = participation_weights(costs, afford, floor=floor)
    assert np.isclose(w.sum(), 1.0, rtol=0, atol=1e-12)
    # "Less often, not never": the cheapest client can outdraw the
    # most expensive one by at most 1/floor.
    assert w.min() / w.max() >= floor - 1e-12


def test_decay_and_weight_validation():
    with pytest.raises(ValueError, match="alpha"):
        staleness_decay(1.0, alpha=-0.1)
    with pytest.raises(ValueError, match="kind"):
        staleness_decay(1.0, kind="linear")
    with pytest.raises(ValueError, match="negative"):
        staleness_decay(-1.0)
    with pytest.raises(ValueError, match="positive"):
        staleness_weights([0, 1], [0, 5])
    with pytest.raises(ValueError, match="uplink"):
        uplink_mbps("abacus")


# ------------------------------------------------------ engine reduction


def _fleet(n_clients, seed, n_per_class=8):
    dataset = make_synthetic_cifar(n_per_class=n_per_class, seed=seed)
    train, test = dataset.split(0.25, np.random.default_rng(seed + 1))
    shards = shard_iid(train, n_clients, rng=np.random.default_rng(seed + 2))
    profiles = make_fleet(n_clients, rng=np.random.default_rng(seed + 3))
    rngs = spawn_rngs(seed + 100, n_clients)
    clients = [FLClient(i, s, p, rng=r)
               for i, (s, p, r) in enumerate(zip(shards, profiles, rngs))]
    return clients, test


def _async_server(clients, test, seed, **kwargs):
    defaults = dict(hidden=8, rng=np.random.default_rng(seed + 4),
                    sampler_seed=seed + 5)
    defaults.update(kwargs)
    return AsyncFLServer(clients, test, **defaults)


@given(seed=st.integers(0, 50), mode=st.sampled_from(MODES))
@settings(deadline=None, max_examples=12)
def test_full_buffer_reduces_to_lockstep_rounds(seed, mode):
    n = 5
    c_sync, t_sync = _fleet(n, seed)
    c_async, t_async = _fleet(n, seed)
    sync = FLServer(c_sync, t_sync, hidden=8, mode=mode,
                    rng=np.random.default_rng(seed + 4))
    asyn = _async_server(c_async, t_async, seed, mode=mode,
                         buffer_size=n, sample_fraction=1.0,
                         cost_aware=False)
    sync.run(2)
    asyn.run_async(max_waves=2, eval_every=1)
    assert sync.weights_fingerprint() == asyn.weights_fingerprint()
    assert asyn.updates == 2 * n
    assert asyn._stale_max == 0  # a barrier never sees a stale update


def test_async_run_is_deterministic_and_tracks_staleness():
    results = []
    for _ in range(2):
        clients, test = _fleet(16, seed=7)
        server = _async_server(clients, test, seed=7, buffer_size=3,
                               sample_fraction=0.25, cost_aware=True)
        results.append(server.run_async(max_updates=30, eval_every=4))
    assert json.dumps(results[0], sort_keys=True) == \
        json.dumps(results[1], sort_keys=True)
    r = results[0]
    assert r["updates"] >= 30 and r["waves"] == r["version"]
    assert r["staleness_max"] >= 1  # buffering actually interleaves
    assert r["virtual_s"] > 0 and r["participating_clients"] <= 16


def test_async_pooled_matches_serial():
    clients, test = _fleet(12, seed=3)
    server = _async_server(clients, test, seed=3, buffer_size=4,
                           sample_fraction=0.5)
    serial = server.run_async(max_updates=24, eval_every=3)
    clients, test = _fleet(12, seed=3)
    server = _async_server(clients, test, seed=3, buffer_size=4,
                           sample_fraction=0.5)
    with WorkerPool(2) as pool:
        pooled = server.run_async(max_updates=24, eval_every=3, pool=pool)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(pooled, sort_keys=True)


def test_cost_aware_sampling_prefers_cheap_tiers():
    clients, test = _fleet(30, seed=11)
    server = _async_server(clients, test, seed=11, buffer_size=4,
                           sample_fraction=0.4, cost_aware=True)
    server.run_async(max_updates=120, eval_every=50)
    # Participation is a dispatch-time property: a floor-sampled MCU
    # may still be in flight (its virtual upload takes seconds) when
    # the run's update budget ends, so count dispatches, not merges.
    by_tier = {}
    for client, count in zip(clients, server.client_dispatch_counts):
        by_tier.setdefault(client.profile.name, []).append(count)
    means = {tier: float(np.mean(counts))
             for tier, counts in by_tier.items()}
    # The fastest-uplink tier present must participate strictly more
    # than the slowest (mcu), which must still participate sometimes
    # across the fleet (the floor: less often, not never).
    fastest = max(means, key=lambda t: uplink_mbps(t))
    assert means[fastest] > means["mcu"]
    assert sum(by_tier["mcu"]) > 0


def test_virtual_time_outruns_lockstep():
    clients, test = _fleet(24, seed=5)
    lockstep = _async_server(clients, test, seed=5, buffer_size=24,
                             sample_fraction=1.0, cost_aware=False)
    lock = lockstep.run_async(max_waves=2, eval_every=1)
    clients, test = _fleet(24, seed=5)
    asyn = _async_server(clients, test, seed=5, buffer_size=4,
                         sample_fraction=0.25, cost_aware=True)
    fast = asyn.run_async(max_updates=lock["updates"], eval_every=10)
    assert fast["virtual_s"] < lock["virtual_s"] / 2


def test_constructor_validation():
    clients, test = _fleet(4, seed=0)
    with pytest.raises(ValueError, match="buffer_size"):
        AsyncFLServer(clients, test, buffer_size=0)
    with pytest.raises(ValueError, match="sample_fraction"):
        AsyncFLServer(clients, test, sample_fraction=0.0)
    with pytest.raises(ValueError, match="kind"):
        AsyncFLServer(clients, test, staleness_kind="nope")
    server = AsyncFLServer(clients, test)
    with pytest.raises(ValueError, match="bound the run"):
        server.run_async()


# --------------------------------------------------------------- job store


def test_job_store_events_and_status(tmp_path):
    store = JobStore(str(tmp_path))
    job = store.open_job("demo", {"seed": 1})
    assert job.status() == "pending"
    job.append_event({"wave": 1, "merged": 4})
    job.append_event({"wave": 2, "merged": 4})
    assert job.status() == "running"
    assert [e["wave"] for e in job.events()] == [1, 2]
    # A torn tail line (crash mid-append) is skipped, not fatal.
    with open(job.events_path, "a") as f:
        f.write('{"wave": 3, "mer')
    assert [e["wave"] for e in job.events()] == [1, 2]
    job.finish({"ok": True})
    assert job.status() == "done"
    assert job.result() == {"ok": True}
    listing = store.jobs()
    assert len(listing) == 1 and listing[0]["status"] == "done"
    assert store.clear() == 1
    assert store.jobs() == []


def test_job_store_checkpoint_roundtrip_and_corruption(tmp_path):
    job = JobStore(str(tmp_path)).open_job("demo", "x")
    assert job.load_checkpoint() is None
    state = {"weights": np.arange(6.0), "version": 3}
    job.checkpoint(state)
    restored = job.load_checkpoint()
    assert restored["version"] == 3
    np.testing.assert_array_equal(restored["weights"], state["weights"])
    with open(job.checkpoint_path, "wb") as f:
        f.write(b"\x80garbage")
    assert job.load_checkpoint() is None  # corrupt == absent


def test_job_ids_are_content_addressed(tmp_path):
    store = JobStore(str(tmp_path))
    assert store.job_id("fed", {"n": 8}) == store.job_id("fed", {"n": 8})
    assert store.job_id("fed", {"n": 8}) != store.job_id("fed", {"n": 9})


# ------------------------------------------------------------ kill/resume


class _Kill(Exception):
    pass


def _run(seed, store=None, die_at_wave=None, checkpoint_every=4):
    clients, test = _fleet(14, seed=seed)
    server = _async_server(clients, test, seed=seed, buffer_size=3,
                           sample_fraction=0.3, cost_aware=True)
    on_wave = None
    if die_at_wave is not None:
        def on_wave(wave, record):
            if wave == die_at_wave:
                raise _Kill(wave)
    return server.run_async(max_updates=60, eval_every=4, store=store,
                            checkpoint_every=checkpoint_every,
                            on_wave=on_wave)


def test_killed_run_resumes_bit_identical(tmp_path):
    reference = _run(seed=9)  # uninterrupted, no store

    store = JobStore(str(tmp_path))
    with pytest.raises(_Kill):
        _run(seed=9, store=store, die_at_wave=11)
    (job,) = store.jobs()
    assert job["status"] == "running" and job["events"] == 11

    resumed = _run(seed=9, store=store)
    assert resumed["job_id"]
    assert {k: resumed[k] for k in reference} == reference

    # Completed jobs short-circuit to the stored result.
    memoized = _run(seed=9, store=store)
    assert memoized["weights_sha"] == reference["weights_sha"]
    (job,) = store.jobs()
    assert job["status"] == "done"


def test_different_config_gets_a_different_job(tmp_path):
    store = JobStore(str(tmp_path))
    _run(seed=9, store=store)
    clients, test = _fleet(14, seed=9)
    server = _async_server(clients, test, seed=9, buffer_size=5,
                           sample_fraction=0.3, cost_aware=True)
    server.run_async(max_updates=15, eval_every=4, store=store)
    assert len(store.jobs()) == 2
