"""Tests for the Koopman subsystem: spectral operator, LQR, baselines,
contrastive encoder, SAC, and the Fig. 5 harness."""

import numpy as np
import pytest

from gradcheck import numeric_gradient
from repro.koopman import (
    MODEL_FAMILIES,
    ContrastiveKoopmanEncoder,
    DenseKoopmanDynamics,
    LQRController,
    RecurrentDynamics,
    ReplayBuffer,
    SACAgent,
    SpectralKoopmanDynamics,
    SpectralKoopmanOperator,
    TransformerDynamics,
    build_model,
    collect_transitions,
    evaluate_controller,
    finite_horizon_lqr,
    fit_dynamics_model,
    infinite_horizon_lqr,
    make_controller,
    mpc_action,
    riccati_recursion,
)
from repro.sim import CartPole


# ----------------------------------------------------------- spectral op
def test_spectral_operator_stability_enforced():
    op = SpectralKoopmanOperator(4, 1, enforce_stability=True,
                                 rng=np.random.default_rng(0))
    assert op.is_stable()
    assert np.all(op.mu() < 0)


def test_spectral_operator_dense_matches_fast_path():
    op = SpectralKoopmanOperator(3, 2, rng=np.random.default_rng(1))
    z = np.random.default_rng(2).normal(size=(4, 6))
    u = np.random.default_rng(3).normal(size=(4, 2))
    fast = op.advance(z, u)
    dense = z @ op.dynamics_matrix().T + u @ op.b.data.T
    np.testing.assert_allclose(fast, dense, atol=1e-12)


def test_spectral_operator_eigenvalues_match_matrix():
    op = SpectralKoopmanOperator(3, 1, rng=np.random.default_rng(4))
    from_matrix = np.sort_complex(np.linalg.eigvals(op.dynamics_matrix()))
    analytic = op.eigenvalues()
    expected = np.sort_complex(np.concatenate([analytic,
                                               np.conj(analytic)]))
    np.testing.assert_allclose(from_matrix, expected, atol=1e-10)


def test_spectral_operator_gradients_numeric():
    op = SpectralKoopmanOperator(2, 1, rng=np.random.default_rng(5))
    rng = np.random.default_rng(6)
    zu = rng.normal(size=(3, 5))
    w = rng.normal(size=(3, 4))

    def loss():
        return float(np.sum(w * op.forward(zu)))

    op.zero_grad()
    op.forward(zu)
    dzu = op.backward(w)
    np.testing.assert_allclose(dzu, numeric_gradient(loss, zu),
                               rtol=1e-5, atol=1e-8)
    for p in op.parameters():
        np.testing.assert_allclose(p.grad, numeric_gradient(loss, p.data),
                                   rtol=1e-4, atol=1e-7,
                                   err_msg=p.name)


def test_spectral_operator_mac_counts():
    op = SpectralKoopmanOperator(8, 1)
    assert op.prediction_macs() == 4 * 8 + 16 * 1
    assert op.control_macs() == 16


# ------------------------------------------------------------------- LQR
def _double_integrator():
    a = np.array([[1.0, 0.1], [0.0, 1.0]])
    b = np.array([[0.0], [0.1]])
    return a, b


def test_riccati_gains_count():
    a, b = _double_integrator()
    gains, costs = riccati_recursion(a, b, np.eye(2), np.eye(1), horizon=5)
    assert len(gains) == 5
    assert len(costs) == 6


def test_lqr_stabilizes_double_integrator():
    a, b = _double_integrator()
    k = infinite_horizon_lqr(a, b, np.eye(2), 0.1 * np.eye(1))
    closed = a - b @ k
    assert np.max(np.abs(np.linalg.eigvals(closed))) < 1.0


def test_finite_horizon_converges_to_infinite():
    a, b = _double_integrator()
    k_fin = finite_horizon_lqr(a, b, np.eye(2), 0.1 * np.eye(1), horizon=300)
    k_inf = infinite_horizon_lqr(a, b, np.eye(2), 0.1 * np.eye(1))
    np.testing.assert_allclose(k_fin, k_inf, atol=1e-6)


def test_lqr_controller_regulates_to_goal():
    a, b = _double_integrator()
    ctrl = LQRController(a, b, horizon=50, action_limit=5.0)
    ctrl.set_goal(np.array([1.0, 0.0]))
    x = np.array([0.0, 0.0])
    for _ in range(300):
        x = a @ x + b[:, 0] * ctrl.act(x)
    np.testing.assert_allclose(x, [1.0, 0.0], atol=1e-2)


def test_lqr_controller_clips_actions():
    a, b = _double_integrator()
    ctrl = LQRController(a, b, action_limit=0.5)
    u = ctrl.act(np.array([100.0, 100.0]))
    assert np.all(np.abs(u) <= 0.5)


def test_lqr_stabilizes_true_cartpole():
    env = CartPole(rng=np.random.default_rng(7))
    a, b = env.linearized_dynamics()
    ctrl = LQRController(a, b, q=np.diag([0.5, 0.05, 4.0, 0.2]), horizon=50)
    s = env.reset(noise_scale=0.05)
    total = 0.0
    for _ in range(200):
        s, r, done = env.step(float(ctrl.act(s)[0]))
        total += r
        if done:
            break
    assert total > 190  # balanced essentially the whole episode


def test_lqr_expected_cost_positive():
    a, b = _double_integrator()
    ctrl = LQRController(a, b)
    assert ctrl.expected_cost(np.array([1.0, 0.0])) > 0
    assert ctrl.expected_cost(np.zeros(2)) == pytest.approx(0.0)


# -------------------------------------------------------------- baselines
def test_model_registry():
    assert set(MODEL_FAMILIES) == {"mlp", "dense_koopman", "transformer",
                                   "recurrent", "spectral_koopman"}
    with pytest.raises(KeyError):
        build_model("lstm", 4, 1)


@pytest.mark.parametrize("name", sorted(MODEL_FAMILIES))
def test_models_fit_linear_system(name):
    """Every family must reduce prediction error on a simple system."""
    rng = np.random.default_rng(8)
    a, b = _double_integrator()
    n = 200
    z = rng.normal(size=(n, 2))
    u = rng.normal(size=(n, 1))
    z_next = z @ a.T + u @ b.T
    if name == "spectral_koopman":
        model = SpectralKoopmanDynamics(2, 1, n_pairs=2, rng=rng)
    else:
        model = build_model(name, 2, 1, rng=rng)
    losses = fit_dynamics_model(model, (z, u, z_next), epochs=25,
                                rng=np.random.default_rng(9))
    pred = model.predict(z[:10], u[:10])
    err = float(np.mean((pred - z_next[:10]) ** 2))
    assert err < 0.5


def test_mac_ordering_matches_fig5a():
    """Spectral Koopman cheapest; transformer most expensive."""
    from repro.koopman import fig5a_macs
    macs = {name: entry["total"] for name, entry in fig5a_macs(16, 1).items()}
    assert set(macs) == set(MODEL_FAMILIES)
    assert macs["spectral_koopman"] < macs["dense_koopman"]
    assert macs["dense_koopman"] < macs["mlp"]
    assert macs["mlp"] < macs["transformer"]
    assert macs["recurrent"] < macs["transformer"]


def test_fig5a_macs_validation():
    from repro.koopman import fig5a_macs
    with pytest.raises(ValueError):
        fig5a_macs(latent_dim=7)


def test_dense_koopman_recovers_operator():
    rng = np.random.default_rng(10)
    a, b = _double_integrator()
    z = rng.normal(size=(100, 2))
    u = rng.normal(size=(100, 1))
    model = DenseKoopmanDynamics(2, 1)
    model.train_batch(z, u, z @ a.T + u @ b.T)
    np.testing.assert_allclose(model.a, a, atol=1e-3)
    np.testing.assert_allclose(model.b, b, atol=1e-3)


def test_transformer_window_maintenance():
    model = TransformerDynamics(2, 1, context=3, rng=np.random.default_rng(11))
    for _ in range(5):
        model.predict(np.zeros(2), np.zeros(1))
    assert len(model._window) == 3
    model.reset_context()
    assert len(model._window) == 0


def test_recurrent_reset_context():
    model = RecurrentDynamics(2, 1, rng=np.random.default_rng(12))
    model.predict(np.zeros((1, 2)), np.zeros((1, 1)))
    assert model._h is not None
    model.reset_context()
    assert model._h is None


def test_spectral_dynamics_odd_latent_ok_via_pairs():
    model = SpectralKoopmanDynamics(3, 1, n_pairs=4)
    assert model.latent_dim == 8
    out = model.predict(np.zeros(3), np.zeros(1))
    assert out.shape == (1, 3)


# ------------------------------------------------------------- controllers
def test_collect_transitions_shapes():
    s, u, s2 = collect_transitions(n_episodes=3, steps=20,
                                   rng=np.random.default_rng(13))
    assert s.shape == s2.shape
    assert u.shape == (s.shape[0], 1)
    assert s.shape[1] == 4


def test_mpc_action_within_limits():
    model = build_model("mlp", 4, 1, rng=np.random.default_rng(14))
    a = mpc_action(model, np.zeros(4), np.random.default_rng(15),
                   n_samples=8, horizon=4)
    assert -1.0 <= a <= 1.0


def test_dense_koopman_controller_balances():
    rng = np.random.default_rng(16)
    transitions = collect_transitions(n_episodes=10, rng=rng)
    model = build_model("dense_koopman", 4, 1)
    fit_dynamics_model(model, transitions, epochs=1)
    controller = make_controller(model)
    reward = evaluate_controller(controller, 0.0, n_episodes=3, steps=100,
                                 seed=17)
    assert reward > 80


def test_evaluate_controller_disturbance_reduces_reward():
    """A weak controller must suffer under strong disturbances."""
    def weak(s):
        return 0.0

    calm = evaluate_controller(weak, 0.0, n_episodes=5, steps=100, seed=18)
    stormy = evaluate_controller(weak, 0.8, n_episodes=5, steps=100,
                                 seed=18, a_min=10, a_max=20)
    assert stormy <= calm


# ----------------------------------------------------- contrastive encoder
def test_encoder_shapes_and_training():
    enc = ContrastiveKoopmanEncoder(image_size=16, n_pairs=4,
                                    rng=np.random.default_rng(19))
    states = np.random.default_rng(20).uniform(-0.1, 0.1, size=(12, 4))
    actions = np.random.default_rng(21).uniform(-1, 1, size=(12, 1))
    z = enc.encode_state(states[0])
    assert z.shape == (8,)
    con, pred = enc.train(states, actions, states, epochs=2, batch_size=6)
    assert len(con) == 2 and len(pred) == 2
    assert np.isfinite(con).all() and np.isfinite(pred).all()


def test_encoder_contrastive_loss_decreases():
    enc = ContrastiveKoopmanEncoder(image_size=16, n_pairs=4,
                                    rng=np.random.default_rng(22))
    rng = np.random.default_rng(23)
    # Well-separated states so positives are distinguishable.
    states = np.stack([np.array([x, 0, th, 0])
                       for x in (-1.5, 0.0, 1.5) for th in (-0.3, 0.0, 0.3)])
    first = enc.contrastive_step(states)
    for _ in range(30):
        last = enc.contrastive_step(states)
    assert last < first


def test_encoder_key_momentum_update():
    enc = ContrastiveKoopmanEncoder(image_size=16, n_pairs=2, momentum=0.5,
                                    rng=np.random.default_rng(24))
    q0 = enc.query.parameters()[0].data.copy()
    k0 = enc.key.parameters()[0].data.copy()
    np.testing.assert_allclose(q0, k0)  # hard-synced at init
    enc.query.parameters()[0].data += 1.0
    enc._sync_key()
    k1 = enc.key.parameters()[0].data
    np.testing.assert_allclose(k1, 0.5 * k0 + 0.5 * (q0 + 1.0))


# -------------------------------------------------------------------- SAC
def test_replay_buffer_fifo():
    buf = ReplayBuffer(capacity=5, state_dim=2, action_dim=1)
    for i in range(8):
        buf.add(np.full(2, i), np.zeros(1), float(i), np.zeros(2), False)
    assert len(buf) == 5
    s, a, r, s2, d = buf.sample(10, np.random.default_rng(25))
    assert s.shape == (10, 2)
    assert set(r.astype(int)) <= {3, 4, 5, 6, 7}


def test_replay_buffer_validation():
    with pytest.raises(ValueError):
        ReplayBuffer(0, 2, 1)


def test_sac_actions_bounded():
    agent = SACAgent(4, 1, rng=np.random.default_rng(26))
    for _ in range(20):
        a = agent.act(np.random.default_rng(27).normal(size=4))
        assert -1.0 <= a[0] <= 1.0


def test_sac_update_runs_and_targets_move():
    agent = SACAgent(4, 1, rng=np.random.default_rng(28))
    buf = ReplayBuffer(256, 4, 1)
    rng = np.random.default_rng(29)
    for _ in range(128):
        buf.add(rng.normal(size=4), rng.uniform(-1, 1, 1), rng.random(),
                rng.normal(size=4), False)
    t0 = agent.q1_target.parameters()[0].data.copy()
    stats = agent.update(buf)
    assert np.isfinite(stats["critic_loss"])
    assert not np.allclose(t0, agent.q1_target.parameters()[0].data)


def test_sac_update_skips_small_buffer():
    agent = SACAgent(4, 1)
    buf = ReplayBuffer(16, 4, 1)
    stats = agent.update(buf)
    assert stats == {"critic_loss": 0.0, "actor_loss": 0.0}
