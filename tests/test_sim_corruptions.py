"""Tests for the LiDAR corruption suite (the KITTI-C substitute)."""

import numpy as np
import pytest

from repro.sim import (
    CORRUPTIONS,
    LidarConfig,
    LidarScanner,
    apply_corruption,
    corruption_names,
    sample_scene,
)


def _clean_scan(seed=0):
    rng = np.random.default_rng(seed)
    scanner = LidarScanner(LidarConfig(n_azimuth=36, n_elevation=8), rng=rng)
    return scanner.scan(sample_scene(rng))


SCAN = _clean_scan()


def test_corruption_registry_complete():
    assert set(corruption_names()) == {
        "snow", "rain", "fog", "beam_missing", "motion_blur", "crosstalk",
        "cross_sensor"}


def test_apply_corruption_unknown_name():
    with pytest.raises(ValueError, match="valid corruptions"):
        apply_corruption(SCAN, "solar_flare")


def test_apply_corruption_requires_rng():
    """No silent fallback to a shared default generator."""
    with pytest.raises(ValueError, match="explicit rng"):
        apply_corruption(SCAN, "snow", severity=0.5)


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_zero_severity_is_exact_identity(name):
    """Severity 0 is a guaranteed exact identity (fresh arrays, bit-equal)."""
    out = apply_corruption(SCAN, name, severity=0.0,
                           rng=np.random.default_rng(1))
    assert out.points is not SCAN.points
    np.testing.assert_array_equal(out.points, SCAN.points)
    np.testing.assert_array_equal(out.labels, SCAN.labels)
    np.testing.assert_array_equal(out.beam_ids, SCAN.beam_ids)
    np.testing.assert_array_equal(out.ranges, SCAN.ranges)
    np.testing.assert_array_equal(out.fired_mask, SCAN.fired_mask)


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_zero_severity_needs_no_rng(name):
    out = apply_corruption(SCAN, name, severity=0.0)
    np.testing.assert_array_equal(out.points, SCAN.points)


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_corruption_preserves_invariants(name):
    out = apply_corruption(SCAN, name, severity=0.7,
                           rng=np.random.default_rng(2))
    assert out.points.shape[1] == 4
    assert out.labels.shape == (out.num_points,)
    assert out.beam_ids.shape == (out.num_points,)
    assert out.ranges.shape == (out.num_points,)
    assert np.all(np.isfinite(out.points))
    # Original scan untouched.
    assert SCAN.num_points == _clean_scan().num_points


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_corruption_severity_clipped(name):
    out = apply_corruption(SCAN, name, severity=5.0,
                           rng=np.random.default_rng(3))
    assert np.all(np.isfinite(out.points))


def test_snow_adds_near_range_clutter():
    out = apply_corruption(SCAN, "snow", severity=0.8,
                           rng=np.random.default_rng(4))
    spurious = out.labels == -2
    assert spurious.sum() > 0
    assert np.median(out.ranges[spurious]) < np.median(SCAN.ranges)


def test_rain_attenuates_intensity():
    out = apply_corruption(SCAN, "rain", severity=0.8,
                           rng=np.random.default_rng(5))
    genuine = out.labels != -2
    assert out.points[genuine, 3].mean() < SCAN.points[:, 3].mean()


def test_fog_preferentially_drops_far_points():
    out = apply_corruption(SCAN, "fog", severity=1.0,
                           rng=np.random.default_rng(6))
    assert out.num_points < SCAN.num_points
    # Survivors skew nearer than the original population.
    assert out.ranges.mean() < SCAN.ranges.mean() + 1.0


def test_beam_missing_drops_whole_rows():
    out = apply_corruption(SCAN, "beam_missing", severity=1.0,
                           rng=np.random.default_rng(7))
    n_el = SCAN.config.n_elevation
    rows_before = set((SCAN.beam_ids % n_el).tolist())
    rows_after = set((out.beam_ids % n_el).tolist())
    assert rows_after < rows_before


def test_motion_blur_keeps_count_moves_points():
    out = apply_corruption(SCAN, "motion_blur", severity=1.0,
                           rng=np.random.default_rng(8))
    assert out.num_points == SCAN.num_points
    displacement = np.linalg.norm(out.points[:, :2] - SCAN.points[:, :2],
                                  axis=1)
    assert displacement.max() > 0.1
    # Blur is tangential: ranges stay (roughly) the same.
    np.testing.assert_allclose(out.points[:, 2], SCAN.points[:, 2])


def test_crosstalk_teleports_ranges():
    out = apply_corruption(SCAN, "crosstalk", severity=1.0,
                           rng=np.random.default_rng(9))
    moved = out.labels == -2
    assert moved.sum() > 0
    assert out.num_points == SCAN.num_points


def test_cross_sensor_adds_ghost_arc():
    out = apply_corruption(SCAN, "cross_sensor", severity=0.6,
                           rng=np.random.default_rng(10))
    ghosts = out.labels == -2
    assert ghosts.sum() > 20
    # Ghost returns sit on a ring-like band, not uniformly everywhere.
    ghost_r = out.ranges[ghosts]
    assert ghost_r.std() < 6.0


def test_severity_monotone_snow_clutter():
    counts = []
    for sev in (0.2, 0.5, 0.9):
        out = apply_corruption(SCAN, "snow", severity=sev,
                               rng=np.random.default_rng(11))
        counts.append(int((out.labels == -2).sum()))
    assert counts[0] < counts[-1]
