"""Integration tests: full cross-module pipelines at small scale.

Each test exercises one of the paper's closed loops end to end: sensing
(simulator) -> perception (models) -> monitoring -> action -> adapted
sensing, plus the federated and neuromorphic pipelines.
"""

import numpy as np

from repro.core import (
    Action,
    Actuator,
    Environment,
    Percept,
    Perception,
    Policy,
    SensingToActionLoop,
    Sensor,
    SensorReading,
)
from repro.detect import BEVDetector, build_target_maps, finetune_detector
from repro.federated import FLClient, FLServer, NGramLM, make_fleet, speculative_decode
from repro.generative import RMAE, pretrain_rmae, reconstruction_iou
from repro.koopman import (
    RoboKoopAgent,
    build_model,
    collect_transitions,
    evaluate_controller,
    fit_dynamics_model,
    make_controller,
)
from repro.multiagent import compare_swarm_strategies
from repro.neuromorphic import DOTIE, build_flow_model, evaluate_aee, train_flow_model
from repro.runtime import WorkerPool
from repro.sim import (
    LidarConfig,
    LidarScanner,
    make_flow_dataset,
    make_synthetic_cifar,
    sample_scene,
    shard_dirichlet,
    snow,
)
from repro.starnet import LidarFeatureExtractor, STARNet, run_recovery_experiment
from repro.voxel import (
    RadialMaskConfig,
    VoxelGridConfig,
    beam_mask_from_segments,
    radial_mask,
    voxelize,
)


GRID = VoxelGridConfig(nx=16, ny=16, nz=2)
LIDAR = LidarConfig(n_azimuth=48, n_elevation=8)


def test_generative_sensing_closed_loop():
    """Mask radially -> scan only the selected beams -> reconstruct.

    The full Sec. III loop: the masking decision controls the physical
    sensor (action-to-sensing), and the generative model fills in the
    unsensed scene.
    """
    rng = np.random.default_rng(0)
    scanner = LidarScanner(LIDAR, rng=rng)
    scenes = [sample_scene(rng) for _ in range(6)]
    full_scans = [scanner.scan(s) for s in scenes]
    clouds = [voxelize(s.points, s.labels, GRID) for s in full_scans]

    model = RMAE(GRID, rng=np.random.default_rng(1))
    mask_cfg = RadialMaskConfig()
    pretrain_rmae(model, clouds[:-1], mask_cfg, epochs=8,
                  rng=np.random.default_rng(2))

    # Deploy: stage-1 segment decision -> physical beam mask -> frugal
    # scan -> reconstruction.
    cloud = clouds[-1]
    keep, segments = radial_mask(cloud, mask_cfg, np.random.default_rng(3))
    beam_mask = beam_mask_from_segments(segments, LIDAR, mask_cfg)
    frugal_scan = scanner.scan(scenes[-1], beam_mask)
    assert frugal_scan.coverage_fraction < 0.5

    frugal_cloud = voxelize(frugal_scan.points, frugal_scan.labels, GRID)
    recon = model.reconstruct_occupancy(frugal_cloud)
    target = cloud.occupancy_dense()
    iou_input = reconstruction_iou(frugal_cloud.occupancy_dense(), target)
    iou_recon = reconstruction_iou(recon, target)
    assert iou_recon > iou_input  # generation recovered unsensed structure

    # Energy: the frugal scan costs materially less than the full one.
    assert (frugal_scan.sensing_energy_mj()
            < 0.6 * full_scans[-1].sensing_energy_mj(adaptive=False))


def test_starnet_guards_detection_pipeline():
    """Detector + monitor + gated filtering recover snow-corrupted AP."""
    rng = np.random.default_rng(4)
    scanner = LidarScanner(LIDAR, rng=rng)
    scenes = [sample_scene(rng, n_cars=3, n_pedestrians=1, n_cyclists=1,
                           max_range=30.0, azimuth_limit=np.pi / 4)
              for _ in range(10)]
    scans = [scanner.scan(s) for s in scenes]
    clouds = [voxelize(s.points, s.labels, GRID) for s in scans]

    encoder = RMAE(GRID, rng=np.random.default_rng(5))
    pretrain_rmae(encoder, clouds[:6], epochs=4,
                  rng=np.random.default_rng(6))
    detector = BEVDetector(GRID, encoder=encoder,
                           rng=np.random.default_rng(7))
    train_pairs = [(clouds[i], build_target_maps(scenes[i], GRID))
                   for i in range(6)]
    finetune_detector(detector, train_pairs, epochs=8,
                      rng=np.random.default_rng(8))

    extractor = LidarFeatureExtractor(encoder, GRID)
    monitor = STARNet(extractor.feature_dim, score_method="recon",
                      rng=np.random.default_rng(9))
    # Unsupervised monitor fitting uses every available clean scan.
    monitor.fit(extractor.extract_batch(scans), epochs=20)

    results = run_recovery_experiment(detector, monitor, extractor,
                                      scans[6:], scenes[6:],
                                      severities=(0.0, 0.8), seed=10)
    heavy = results[0.8]
    clean = results[0.0]
    # Protected pipeline is never worse than unprotected under heavy snow.
    assert (sum(heavy["starnet"].values())
            >= sum(heavy["unprotected"].values()))
    # And clean performance is essentially untouched (occasional false
    # interventions may cost a little AP, never a collapse).
    assert sum(clean["starnet"].values()) >= \
        0.75 * sum(clean["unprotected"].values())


def test_starnet_as_loop_monitor():
    """STARNet plugs into the generic SensingToActionLoop as a Monitor."""

    class SceneEnv(Environment):
        def __init__(self):
            self.rng = np.random.default_rng(11)
            self.scanner = LidarScanner(LIDAR, rng=self.rng)
            self.scene = sample_scene(self.rng)
            self.snowing = False

        def observe_state(self):
            scan = self.scanner.scan(self.scene)
            if self.snowing:
                scan = snow(scan, 0.9, self.rng)
            return scan

        def advance(self, dt):
            pass

    class LidarSensor(Sensor):
        def sense(self, env, directive, t):
            scan = env.observe_state()
            return SensorReading(data=scan, timestamp=t,
                                 energy_mj=scan.sensing_energy_mj())

    rmae = RMAE(GRID, rng=np.random.default_rng(12))
    extractor = LidarFeatureExtractor(rmae, GRID)

    class FeaturePerception(Perception):
        def perceive(self, reading):
            return Percept(features=extractor.extract(reading.data))

    class NoopPolicy(Policy):
        def act(self, percept, t):
            return Action(command=None)

    class NoopActuator(Actuator):
        def actuate(self, env, action, t):
            return 0.0

    env = SceneEnv()
    nominal = [extractor.extract(env.observe_state()) for _ in range(24)]
    monitor = STARNet(extractor.feature_dim, score_method="recon",
                      rng=np.random.default_rng(13))
    monitor.fit(np.stack(nominal), epochs=25)

    loop = SensingToActionLoop(LidarSensor(), FeaturePerception(),
                               NoopPolicy(), NoopActuator(), monitor=monitor,
                               trust_threshold=0.5)
    loop.run(env, 4)
    clean_rejections = loop.metrics.rejected_cycles
    env.snowing = True
    loop.run(env, 4)
    snow_rejections = loop.metrics.rejected_cycles - clean_rejections
    # Corrupted cycles are rejected far more often than clean ones.
    assert snow_rejections >= 3
    assert clean_rejections <= 2


def test_koopman_control_pipeline():
    """Collect -> fit spectral Koopman -> LQR -> balance under disturbance."""
    rng = np.random.default_rng(14)
    transitions = collect_transitions(n_episodes=12, rng=rng)
    model = build_model("spectral_koopman", 4, 1,
                        rng=np.random.default_rng(15))
    fit_dynamics_model(model, transitions, epochs=90,
                       rng=np.random.default_rng(16))
    controller = make_controller(model)
    clean = evaluate_controller(controller, 0.0, n_episodes=3, steps=120,
                                seed=17)
    disturbed = evaluate_controller(controller, 0.25, n_episodes=3,
                                    steps=120, seed=17)
    assert clean > 90
    assert disturbed > 0.6 * clean  # graceful degradation


def test_robokoop_visual_agent_trains():
    agent = RoboKoopAgent.train(image_size=16, n_pairs=4, n_episodes=6,
                                epochs=2, seed=18)
    reward = agent.evaluate(disturbance_p=0.0, n_episodes=2, steps=40,
                            seed=19)
    assert np.isfinite(reward) and reward >= 0
    assert agent.encoder.operator.is_stable()


def test_neuromorphic_flow_pipeline():
    """Events -> SNN flow model -> AEE below the predict-zero baseline."""
    train = make_flow_dataset(30, seed=20, max_displacement=2.5)
    test = make_flow_dataset(8, seed=21, max_displacement=2.5)
    model = build_flow_model("adaptive_spikenet", channels=8,
                             rng=np.random.default_rng(22))
    train_flow_model(model, train, epochs=15, rng=np.random.default_rng(23))
    aee = evaluate_aee(model, test)
    zero_aee = np.mean([
        np.sqrt((s.flow ** 2).sum(axis=0))[s.has_event_mask].mean()
        for s in test])
    assert aee < zero_aee


def test_dotie_on_simulated_fast_object():
    """DOTIE detects the moving object in DVS-style event streams."""
    rng = np.random.default_rng(24)
    t, h, w = 8, 24, 24
    frames = np.zeros((t, 2, h, w))
    true_path = []
    for step in range(t):
        cx = 3 + step * 2
        cy = 12
        frames[step, 0, cy:cy + 4, cx:cx + 4] = 2.0
        true_path.append((cx + 1.5, cy + 1.5))
    for _ in range(25):
        frames[rng.integers(t), 1, rng.integers(h), rng.integers(w)] += 1
    boxes = DOTIE(leak=0.6, threshold=2.5, min_cluster=4).detect(frames)
    assert boxes
    cx, cy = boxes[0].center
    assert abs(cy - 13.5) < 4  # tracks the object's row band


def test_federated_pipeline_with_heterogeneity(monkeypatch):
    ds = make_synthetic_cifar(n_per_class=24, seed=25)
    train, test = ds.split(0.25, np.random.default_rng(26))
    shards = shard_dirichlet(train, 5, alpha=0.5,
                             rng=np.random.default_rng(27))
    fleet = make_fleet(5, rng=np.random.default_rng(28))
    clients = [FLClient(i, s, p, rng=np.random.default_rng(200 + i))
               for i, (s, p) in enumerate(zip(shards, fleet))]
    srv = FLServer(clients, test, hidden=24, mode="dcnas+halo",
                   rng=np.random.default_rng(29))
    # Route every round through the parallel client path so the pooled
    # run_round gets integration (not just unit) coverage.
    monkeypatch.setenv("REPRO_WORKERS", "2")
    with WorkerPool() as pool:
        srv.run(8, pool=pool)
    totals = srv.totals()
    assert totals["final_accuracy"] > 0.3
    # Adaptations actually engaged somewhere in the fleet.
    last = srv.history[-1]
    assert min(last.client_hidden) < 24 or min(last.client_bits) < 32


def test_speculative_decoding_edge_cloud():
    rng = np.random.default_rng(30)
    tokens = [0]
    for _ in range(4000):
        tokens.append((tokens[-1] + 1) % 8 if rng.random() < 0.85
                      else int(rng.integers(8)))
    cloud_model = NGramLM(8, order=3).fit(tokens)
    edge_model = NGramLM(8, order=1).fit(tokens)
    stats = speculative_decode(cloud_model, edge_model, tokens[:3], 150,
                               k=4, rng=np.random.default_rng(31))
    assert stats.speedup_vs_autoregressive() > 1.5


def test_swarm_coordination_full_run():
    res = compare_swarm_strategies(steps=50, seed=32)
    ratio = (res["uncoordinated"].total_energy_mj
             / res["coordinated"].total_energy_mj)
    assert ratio > 2.5
    assert res["coordinated"].detection_rate > 0.85
