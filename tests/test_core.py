"""Tests for the sensing-to-action loop abstraction (repro.core)."""

import numpy as np
import pytest

from repro.core import (
    Action,
    Actuator,
    CascadeModel,
    Environment,
    HierarchicalController,
    LoopSchedule,
    Monitor,
    Percept,
    Perception,
    Policy,
    RateAdaptation,
    ResolutionAdaptation,
    RiskCoverageAdaptation,
    SensingToActionLoop,
    Sensor,
    SensorReading,
    Stage,
    closed_loop_gain_estimate,
    staleness_error,
    synchronization_delay,
)


# ------------------------------------------------- a minimal concrete loop
class ScalarEnv(Environment):
    """1-D integrator: state drifts up unless pushed down."""

    def __init__(self):
        self.state = 1.0
        self.drift = 0.5

    def observe_state(self):
        return self.state

    def advance(self, dt):
        self.state += self.drift * dt


class ScalarSensor(Sensor):
    def __init__(self):
        self.last_directive = {}

    def sense(self, env, directive, t):
        self.last_directive = dict(directive)
        coverage = directive.get("coverage", 1.0)
        return SensorReading(data=env.observe_state(), timestamp=t,
                             coverage=coverage, energy_mj=coverage * 10.0)


class ScalarPerception(Perception):
    def perceive(self, reading):
        return Percept(features=np.array([reading.data]),
                       estimate=reading.data)


class ProportionalPolicy(Policy):
    def act(self, percept, t):
        command = -percept.estimate if percept.confidence > 0 else 0.0
        return Action(command=command,
                      sensing_directive={"coverage": 0.5},
                      energy_mj=0.1)


class ScalarActuator(Actuator):
    def actuate(self, env, action, t):
        env.state += action.command
        return 0.05


class ThresholdMonitor(Monitor):
    def __init__(self, limit):
        self.limit = limit

    def assess(self, percept):
        return 1.0 if abs(percept.estimate) < self.limit else 0.0


def _make_loop(monitor=None, latency=0.0):
    return SensingToActionLoop(ScalarSensor(), ScalarPerception(),
                               ProportionalPolicy(), ScalarActuator(),
                               monitor=monitor, compute_latency_s=latency,
                               period_s=0.1)


def test_loop_runs_and_regulates():
    env = ScalarEnv()
    loop = _make_loop()
    metrics = loop.run(env, 30)
    assert metrics.cycles == 30
    assert abs(env.state) < 1.0  # regulated near zero despite drift


def test_loop_energy_accounting():
    env = ScalarEnv()
    loop = _make_loop()
    loop.run(env, 10)
    e = loop.metrics.energy
    assert e.sensing_mj > 0
    assert e.compute_mj == pytest.approx(10 * 0.1)
    assert e.actuation_mj == pytest.approx(10 * 0.05)


def test_action_to_sensing_directive_applied_next_cycle():
    env = ScalarEnv()
    loop = _make_loop()
    loop.run_cycle(env)  # first cycle: empty directive, full coverage
    assert loop.history[0].reading.coverage == 1.0
    loop.run_cycle(env)
    assert loop.history[1].reading.coverage == 0.5


def test_monitor_rejects_and_resets_directive():
    env = ScalarEnv()
    env.state = 100.0  # wildly out-of-distribution
    loop = _make_loop(monitor=ThresholdMonitor(limit=10.0))
    record = loop.run_cycle(env)
    assert not record.trusted
    assert record.percept.confidence == 0.0
    assert loop.metrics.rejected_cycles == 1
    # Next cycle falls back to full coverage.
    env.state = 0.0
    record2 = loop.run_cycle(env)
    assert record2.reading.coverage == 1.0


def test_compute_latency_makes_data_stale():
    env = ScalarEnv()
    loop = _make_loop(latency=0.05)
    record = loop.run_cycle(env)
    assert record.staleness_s == pytest.approx(0.05)
    assert loop.metrics.max_staleness_s == pytest.approx(0.05)


def test_latency_degrades_regulation():
    def final_state(latency):
        env = ScalarEnv()
        env.drift = 4.0
        loop = _make_loop(latency=latency)
        loop.run(env, 40)
        return abs(env.state)

    assert final_state(0.09) >= final_state(0.0)


def test_loop_validation():
    with pytest.raises(ValueError):
        SensingToActionLoop(ScalarSensor(), ScalarPerception(),
                            ProportionalPolicy(), ScalarActuator(),
                            period_s=0.0)
    with pytest.raises(ValueError):
        SensingToActionLoop(ScalarSensor(), ScalarPerception(),
                            ProportionalPolicy(), ScalarActuator(),
                            period_s=0.1, compute_latency_s=0.2)


# --------------------------------------------------------------- adaptation
def test_rate_adaptation_surges_on_events():
    adapt = RateAdaptation(min_rate_hz=1.0, max_rate_hz=20.0,
                           surge_threshold=0.5)
    adapt.update(0.0)
    stable = [adapt.update(0.0) for _ in range(10)]
    assert stable[-1] == pytest.approx(1.0, abs=0.5)
    surge = adapt.update(5.0)  # pollutant spike
    assert surge == 20.0


def test_rate_adaptation_decays_back():
    adapt = RateAdaptation()
    adapt.update(0.0)
    adapt.update(5.0)
    rates = [adapt.update(5.0) for _ in range(30)]
    assert rates[-1] < 20.0


def test_risk_coverage_bounds_and_hysteresis():
    adapt = RiskCoverageAdaptation(min_coverage=0.1, hysteresis=0.2)
    high = adapt.update(1.0)
    assert high == pytest.approx(1.0)
    # Small risk wiggle does not move coverage (hysteresis).
    assert adapt.update(0.95) == high
    low = adapt.update(0.0)
    assert low == pytest.approx(0.1)


def test_risk_coverage_directive():
    d = RiskCoverageAdaptation().directive(1.0)
    assert d["coverage"] == pytest.approx(1.0)


def test_resolution_ladder_selection():
    adapt = ResolutionAdaptation(ladder=[4.0, 2.0, 1.0, 0.5])
    assert adapt.select(5.0) == 0   # coarsest suffices
    assert adapt.select(1.5) == 2
    assert adapt.select(0.1) == 3   # finest even if insufficient


def test_resolution_ladder_validation():
    with pytest.raises(ValueError):
        ResolutionAdaptation(ladder=[])
    with pytest.raises(ValueError):
        ResolutionAdaptation(ladder=[1.0, 2.0])  # must go coarse -> fine


# ------------------------------------------------------------------ errors
def test_staleness_error_linear():
    assert staleness_error(2.0, 0.1) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        staleness_error(1.0, -0.1)


def test_cascade_stable_decays():
    model = CascadeModel(gain=0.5)
    traj = model.propagate(1.0, 10)
    assert traj[-1] < 1e-2
    assert model.stable


def test_cascade_unstable_grows():
    model = CascadeModel(gain=1.5)
    traj = model.propagate(0.01, 20)
    assert traj[-1] > 10
    assert not model.stable


def test_cascade_steady_state():
    model = CascadeModel(gain=0.8)
    ss = model.steady_state_error(0.1)
    traj = model.propagate(0.0, 200, injected=np.full(200, 0.1))
    assert traj[-1] == pytest.approx(ss, rel=1e-3)


def test_cascade_cycles_to_threshold():
    model = CascadeModel(gain=2.0)
    n = model.cycles_to_threshold(0.01, 1.0)
    assert n is not None
    traj = model.propagate(0.01, n)
    assert traj[-1] >= 1.0
    assert CascadeModel(gain=0.9).cycles_to_threshold(0.01, 1.0) is None


def test_gain_estimation_recovers_truth():
    model = CascadeModel(gain=0.7)
    traj = model.propagate(1.0, 30)
    assert closed_loop_gain_estimate(traj) == pytest.approx(0.7, abs=1e-6)


# -------------------------------------------------------------- scheduling
def test_sync_delay_is_slowest_stream():
    assert synchronization_delay([0.01, 0.1, 0.05]) == pytest.approx(0.1)
    assert synchronization_delay([]) == 0.0
    with pytest.raises(ValueError):
        synchronization_delay([0.1, 0.0])


def test_schedule_feasibility_and_slack():
    sched = LoopSchedule(period_s=0.1)
    sched.add_stage("sense", 0.02).add_stage("compute", 0.05, jitter_s=0.01)
    assert sched.feasible()
    assert sched.slack_s == pytest.approx(0.02)
    sched.add_stage("actuate", 0.03)
    assert not sched.feasible()


def test_schedule_staleness_excludes_sensing():
    sched = LoopSchedule(period_s=0.2)
    sched.add_stage("sense", 0.02).add_stage("fuse", 0.03)
    sched.add_stage("compute", 0.05)
    assert sched.staleness_at_actuation_s() == pytest.approx(0.08)


def test_schedule_critical_stage_and_rate():
    sched = LoopSchedule(period_s=1.0)
    sched.add_stage("a", 0.1).add_stage("b", 0.4)
    assert sched.critical_stage().name == "b"
    assert sched.max_rate_hz() == pytest.approx(2.0)


def test_stage_validation():
    with pytest.raises(ValueError):
        Stage("bad", -1.0)


# --------------------------------------------------------------- hierarchy
def test_hierarchical_controller_interleaving():
    calls = {"high": 0, "low": 0}

    def high(obs):
        calls["high"] += 1
        return obs * 2

    def low(obs, target):
        calls["low"] += 1
        return target - obs

    ctrl = HierarchicalController(low, high, plan_interval=5)
    for i in range(20):
        ctrl.step(1.0)
    assert calls["low"] == 20
    assert calls["high"] == 4


def test_hierarchical_compute_savings():
    ctrl = HierarchicalController(lambda o, t: 0, lambda o: 0,
                                  plan_interval=10, low_cost_macs=1_000,
                                  high_cost_macs=100_000)
    for _ in range(100):
        ctrl.step(0.0)
    savings = ctrl.compute_savings()
    assert 0.85 < savings < 0.92  # planner runs 10x less often


def test_hierarchical_validation():
    with pytest.raises(ValueError):
        HierarchicalController(lambda o, t: 0, lambda o: 0, plan_interval=0)
