"""Tests for the micro-batching serving runtime (``repro.serve``).

The deterministic :class:`MicroBatcher` core is driven with a
:class:`VirtualClock`, so the coalescing policy (flush-on-full,
flush-on-deadline, shedding) is an exact function of submit/advance
calls.  The threaded :class:`BatchedService` is exercised with real
concurrency, and the integration test runs sensing-to-action loops
through a shared :class:`BatchedMonitor` and checks request-for-request
equivalence with direct per-sample assessment.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    Action,
    Actuator,
    Clock,
    Environment,
    Percept,
    Perception,
    Policy,
    SensingToActionLoop,
    Sensor,
    SensorReading,
    SystemClock,
    VirtualClock,
)
from repro.serve import (
    BatchedMonitor,
    BatchedService,
    BatcherConfig,
    MicroBatcher,
    ServiceOverloaded,
    ServingBenchConfig,
    monitor_runner,
    run_serving_benchmark,
)


def doubling_runner(items):
    return [2 * x for x in items]


def make_batcher(runner=doubling_runner, clock=None, **kwargs):
    clock = clock if clock is not None else VirtualClock()
    return MicroBatcher(runner, BatcherConfig(**kwargs), clock=clock), clock


# ----------------------------------------------------------------- clocks
def test_virtual_clock_advances_only_on_demand():
    clock = VirtualClock(start=5.0)
    assert clock.now() == 5.0
    clock.advance(0.25)
    assert clock.now() == 5.25
    clock.sleep(0.75)  # sleep == advance for virtual time
    assert clock.now() == 6.0


def test_virtual_clock_rejects_negative_advance():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_system_clock_is_monotonic_nonblocking():
    clock = SystemClock()
    t0 = clock.now()
    clock.sleep(0.0)  # must not block
    clock.sleep(-1.0)  # negative tolerated as no-op
    assert clock.now() >= t0
    assert isinstance(clock, Clock)


def test_loop_accepts_injected_clock():
    clock = VirtualClock()

    class _Sensor(Sensor):
        def sense(self, env, directive, t):
            return SensorReading(data=np.zeros(2), timestamp=t)

    class _Perception(Perception):
        def perceive(self, reading):
            return Percept(features=np.asarray(reading.data))

    class _Policy(Policy):
        def act(self, percept, t):
            return Action(command=None)

    class _Actuator(Actuator):
        def actuate(self, env, action, t):
            return 0.0

    class _Env(Environment):
        def observe_state(self):
            return np.zeros(2)

        def advance(self, dt):
            pass

    loop = SensingToActionLoop(_Sensor(), _Perception(), _Policy(),
                               _Actuator(), clock=clock)
    assert loop.clock is clock
    loop.run(_Env(), 3)
    # Virtual time never advanced inside the cycle, so the measured
    # cycle wall time is exactly zero — deterministic timing.
    assert loop.metrics.cycles == 3
    assert clock.now() == 0.0


# ----------------------------------------------------- coalescing policy
def test_flush_on_full_batch():
    batcher, clock = make_batcher(max_batch_size=3, max_wait_ms=50.0)
    tickets = [batcher.submit(i) for i in range(3)]
    assert batcher.ready()  # full: ready with zero elapsed time
    assert batcher.poll() == 3
    assert [t.result() for t in tickets] == [0, 2, 4]
    assert batcher.pending == 0


def test_partial_batch_waits_for_deadline():
    batcher, clock = make_batcher(max_batch_size=4, max_wait_ms=50.0)
    tickets = [batcher.submit(i) for i in range(2)]
    assert not batcher.ready()
    assert batcher.poll() == 0  # policy says wait
    clock.advance(0.049)
    assert not batcher.ready()
    clock.advance(0.001)  # head request has now waited max_wait_ms
    assert batcher.ready()
    assert batcher.poll() == 2
    assert [t.result() for t in tickets] == [0, 2]


def test_next_deadline_tracks_head_request():
    batcher, clock = make_batcher(max_batch_size=4, max_wait_ms=20.0)
    assert batcher.next_deadline() is None
    clock.advance(1.0)
    batcher.submit("a")
    assert batcher.next_deadline() == pytest.approx(1.02)
    clock.advance(0.5)
    batcher.submit("b")  # later request must not extend the deadline
    assert batcher.next_deadline() == pytest.approx(1.02)


def test_routing_preserves_submission_order():
    batcher, _ = make_batcher(runner=lambda items: [f"r:{x}" for x in items],
                              max_batch_size=8, max_wait_ms=0.0)
    tickets = [batcher.submit(f"req{i}") for i in range(5)]
    batcher.poll()
    assert [t.result() for t in tickets] == [f"r:req{i}" for i in range(5)]


def test_oversize_queue_drains_in_chunks():
    batcher, _ = make_batcher(max_batch_size=3, max_wait_ms=0.0,
                              max_queue_depth=10)
    tickets = [batcher.submit(i) for i in range(7)]
    assert batcher.flush() == 7
    assert batcher.batch_count == 3  # 3 + 3 + 1
    assert [t.result() for t in tickets] == [2 * i for i in range(7)]
    assert batcher.batch_sizes.max == 3


# ------------------------------------------------------------ backpressure
def test_shed_at_max_queue_depth():
    batcher, _ = make_batcher(max_batch_size=2, max_wait_ms=1e6,
                              max_queue_depth=3)
    for i in range(3):
        batcher.submit(i)
    with pytest.raises(ServiceOverloaded):
        batcher.submit(99)
    assert batcher.shed_count == 1
    assert batcher.request_count == 3  # shed submissions are not counted
    assert batcher.pending == 3


def test_config_validation():
    with pytest.raises(ValueError):
        BatcherConfig(max_batch_size=0)
    with pytest.raises(ValueError):
        BatcherConfig(max_wait_ms=-1.0)
    with pytest.raises(ValueError):
        BatcherConfig(max_batch_size=8, max_queue_depth=4)


# ----------------------------------------------------------------- metrics
def test_metrics_and_quantiles():
    batcher, clock = make_batcher(max_batch_size=2, max_wait_ms=10.0)
    t1 = batcher.submit(1)
    clock.advance(0.004)
    t2 = batcher.submit(2)
    batcher.poll()
    assert batcher.batch_count == 1
    assert batcher.request_count == 2
    assert t1.result() == 2 and t2.result() == 4
    # Head waited 4 ms, second 0 ms; latency == queue wait here because
    # the virtual clock does not advance during run_batch.
    assert batcher.queue_wait.max == pytest.approx(0.004)
    q = batcher.latency_quantiles()
    assert set(q) == {"p50", "p95", "p99"}
    assert q["p99"] <= 0.004 + 1e-12


# ----------------------------------------------------------- error routing
def test_runner_error_routes_to_all_tickets():
    def boom(items):
        raise RuntimeError("model fell over")

    batcher, _ = make_batcher(runner=boom, max_batch_size=2,
                              max_wait_ms=0.0)
    tickets = [batcher.submit(i) for i in range(2)]
    batcher.poll()  # must not raise in the scheduling loop
    for t in tickets:
        with pytest.raises(RuntimeError, match="fell over"):
            t.result()


def test_row_count_mismatch_is_an_error():
    batcher, _ = make_batcher(runner=lambda items: items[:-1],
                              max_batch_size=2, max_wait_ms=0.0)
    tickets = [batcher.submit(i) for i in range(2)]
    batcher.poll()
    for t in tickets:
        with pytest.raises(RuntimeError, match="returned 1 results"):
            t.result()


def test_unresolved_ticket_refuses_result():
    batcher, _ = make_batcher(max_batch_size=4, max_wait_ms=1e6)
    ticket = batcher.submit(0)
    with pytest.raises(RuntimeError, match="not resolved"):
        ticket.result()


# ----------------------------------------------------- threaded service
def test_batched_service_concurrent_submitters():
    calls = []

    def runner(items):
        calls.append(len(items))
        return [x * x for x in items]

    config = BatcherConfig(max_batch_size=4, max_wait_ms=20.0)
    results = {}

    def client(i):
        results[i] = service.submit(i, timeout=10.0)

    with BatchedService(runner, config) as service:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert results == {i: i * i for i in range(8)}
    assert sum(calls) == 8
    # Concurrent submitters actually coalesced: fewer batches than
    # requests (8 requests, batch limit 4 -> at least two multi-row
    # batches unless the host serialized everything).
    assert len(calls) >= 2


def test_batched_service_close_drains_and_rejects():
    service = BatchedService(doubling_runner, BatcherConfig())
    assert service.submit(21, timeout=10.0) == 42
    service.close()
    with pytest.raises(RuntimeError, match="closed"):
        service.submit(1)
    service.close()  # idempotent


def test_batched_service_routes_runner_errors():
    def flaky(items):
        raise ValueError("bad batch")

    with BatchedService(flaky, BatcherConfig(max_wait_ms=1.0)) as service:
        with pytest.raises(ValueError, match="bad batch"):
            service.submit(1, timeout=10.0)


# ------------------------------------------------------------ integration
class _SumMonitor:
    """Stand-in monitor: trust is a deterministic function of features."""

    def assess(self, percept):
        return float(1.0 / (1.0 + np.exp(-np.sum(percept.features))))

    def assess_batch(self, percepts):
        feats = np.stack([p.features for p in percepts])
        return 1.0 / (1.0 + np.exp(-feats.sum(axis=1)))


def test_loops_through_batched_monitor_match_direct():
    from repro.serve.driver import FeatureEnv, _build_loop

    config = ServingBenchConfig(n_loops=3, cycles_per_loop=5,
                                max_batch_size=3, max_wait_ms=20.0)
    monitor = _SumMonitor()

    direct_loops = [_build_loop(monitor, config)
                    for _ in range(config.n_loops)]
    for i, loop in enumerate(direct_loops):
        loop.monitor = monitor
        loop.run(FeatureEnv(config.feature_dim, seed=i),
                 config.cycles_per_loop)
    direct = np.array([[r.trust for r in loop.history]
                       for loop in direct_loops])

    served_loops = [_build_loop(None, config)
                    for _ in range(config.n_loops)]
    errors = []

    def drive(loop, env):
        try:
            loop.run(env, config.cycles_per_loop)
        except BaseException as exc:
            errors.append(exc)

    batcher_config = BatcherConfig(max_batch_size=config.max_batch_size,
                                   max_wait_ms=config.max_wait_ms)
    with BatchedService(monitor_runner(monitor), batcher_config) as service:
        for loop in served_loops:
            loop.monitor = BatchedMonitor(service, timeout=30.0)
        threads = [threading.Thread(
            target=drive, args=(loop, FeatureEnv(config.feature_dim, seed=i)))
            for i, loop in enumerate(served_loops)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not errors
    served = np.array([[r.trust for r in loop.history]
                       for loop in served_loops])
    np.testing.assert_allclose(served, direct, atol=1e-12)


def test_serving_benchmark_smoke_payload():
    result = run_serving_benchmark(ServingBenchConfig.smoke())
    assert result["config"]["requests"] == 16
    assert result["equivalence_ok"], result["equivalence_max_abs_diff"]
    assert result["batched"]["shed"] == 0
    assert result["batched"]["requests"] == 16
    assert result["serial"]["throughput_rps"] > 0
    assert result["batched"]["mean_batch_size"] >= 1.0
    # Quantile keys feed the committed bench JSON and the CI gate.
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        assert key in result["batched"]
