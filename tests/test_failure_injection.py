"""Failure-injection tests: degenerate inputs through full pipelines.

Edge systems meet empty scans, dead sensors, and single-agent fleets;
every subsystem must degrade gracefully rather than crash.
"""

import numpy as np

from repro.core import (
    Action,
    Actuator,
    Environment,
    Percept,
    Perception,
    Policy,
    SensingToActionLoop,
    Sensor,
    SensorReading,
)
from repro.detect import BEVDetector
from repro.federated import FLClient, FLServer, make_fleet
from repro.generative import RMAE, pretrain_rmae
from repro.multiagent import run_coordinated
from repro.neuromorphic import DOTIE, build_flow_model
from repro.sim import (
    GridWorldConfig,
    LidarConfig,
    LidarScanner,
    Scene,
    make_flow_dataset,
    make_synthetic_cifar,
    sample_scene,
    shard_iid,
)
from repro.sim.events import FlowSample
from repro.starnet import LidarFeatureExtractor, filter_backscatter
from repro.voxel import RadialMaskConfig, VoxelGridConfig, radial_mask, voxelize

GRID = VoxelGridConfig(nx=16, ny=16, nz=2)
LIDAR = LidarConfig(n_azimuth=24, n_elevation=6)


def _empty_scan():
    cfg = LidarConfig(n_azimuth=8, n_elevation=4, elevation_min_deg=5,
                      elevation_max_deg=10)  # all beams point skyward
    return LidarScanner(cfg, rng=np.random.default_rng(0)).scan(
        Scene(objects=[]))


# --------------------------------------------------------- empty LiDAR data
def test_empty_scan_through_voxelizer():
    scan = _empty_scan()
    cloud = voxelize(scan.points, scan.labels, GRID)
    assert cloud.num_occupied == 0
    assert cloud.occupancy_dense().sum() == 0


def test_empty_cloud_through_rmae():
    scan = _empty_scan()
    cloud = voxelize(scan.points, scan.labels, GRID)
    model = RMAE(GRID, rng=np.random.default_rng(1))
    occ = model.reconstruct_occupancy(cloud)
    assert occ.shape == GRID.shape  # predicts something, never crashes


def test_empty_cloud_through_detector():
    scan = _empty_scan()
    cloud = voxelize(scan.points, scan.labels, GRID)
    det = BEVDetector(GRID, rng=np.random.default_rng(2))
    detections = det.detect(cloud, score_threshold=0.99)
    assert isinstance(detections, list)


def test_empty_scan_through_feature_extractor():
    scan = _empty_scan()
    extractor = LidarFeatureExtractor(RMAE(GRID), GRID)
    feats = extractor.extract(scan)
    assert feats.shape == (extractor.feature_dim,)
    assert np.all(np.isfinite(feats))


def test_empty_scan_through_filter():
    filtered = filter_backscatter(_empty_scan())
    assert filtered.num_points == 0


def test_radial_mask_on_empty_cloud():
    scan = _empty_scan()
    cloud = voxelize(scan.points, scan.labels, GRID)
    keep, segments = radial_mask(cloud, RadialMaskConfig(),
                                 np.random.default_rng(3))
    assert keep == {}
    assert segments.any()


def test_pretrain_skips_all_empty_clouds():
    scan = _empty_scan()
    cloud = voxelize(scan.points, scan.labels, GRID)
    model = RMAE(GRID, rng=np.random.default_rng(4))
    losses = pretrain_rmae(model, [cloud], epochs=2,
                           rng=np.random.default_rng(5))
    assert losses == [0.0, 0.0]  # nothing trainable, no crash


# --------------------------------------------------------- dead sensor loop
class DeadSensor(Sensor):
    def sense(self, env, directive, t):
        return SensorReading(data=None, timestamp=t, coverage=0.0,
                             energy_mj=0.0)


class NullEnv(Environment):
    def observe_state(self):
        return None

    def advance(self, dt):
        pass


class NullPerception(Perception):
    def perceive(self, reading):
        return Percept(features=np.zeros(1), estimate=None, confidence=0.0)


class NullPolicy(Policy):
    def act(self, percept, t):
        return Action(command=None)


class NullActuator(Actuator):
    def actuate(self, env, action, t):
        return 0.0


def test_loop_survives_dead_sensor():
    loop = SensingToActionLoop(DeadSensor(), NullPerception(), NullPolicy(),
                               NullActuator())
    metrics = loop.run(NullEnv(), 5)
    assert metrics.cycles == 5
    assert metrics.energy.total_mj == 0.0
    assert metrics.mean_coverage == 0.0


# ------------------------------------------------------------- flow / DOTIE
def test_flow_model_on_eventless_sample():
    sample = make_flow_dataset(1, seed=0)[0]
    dead = FlowSample(event_volume=np.zeros_like(sample.event_volume),
                      frames=sample.frames,
                      flow=sample.flow,
                      event_frames=np.zeros_like(sample.event_frames))
    for name in ("evflownet", "adaptive_spikenet"):
        model = build_flow_model(name, channels=4,
                                 rng=np.random.default_rng(6))
        pred = model.predict(dead)
        assert np.all(np.isfinite(pred))
        assert model.inference_energy_pj(dead) >= 0.0


def test_dotie_on_empty_stream():
    assert DOTIE().detect(np.zeros((4, 2, 10, 10))) == []


# ------------------------------------------------------------- federated
def test_fl_single_client_fleet():
    ds = make_synthetic_cifar(n_per_class=8, seed=7)
    train, test = ds.split(0.25, np.random.default_rng(8))
    client = FLClient(0, train, make_fleet(1)[0],
                      rng=np.random.default_rng(9))
    server = FLServer([client], test, hidden=8,
                      rng=np.random.default_rng(10))
    summary = server.run_round()
    assert 0.0 <= summary.test_accuracy <= 1.0


def test_fl_client_with_tiny_shard():
    ds = make_synthetic_cifar(n_per_class=8, seed=11)
    train, test = ds.split(0.25, np.random.default_rng(12))
    shards = shard_iid(train, 8, rng=np.random.default_rng(13))
    tiny = min(shards, key=len)
    client = FLClient(0, tiny, make_fleet(1)[0],
                      rng=np.random.default_rng(14))
    server = FLServer([client], test, hidden=8,
                      rng=np.random.default_rng(15))
    summary = server.run_round()
    assert np.isfinite(summary.mean_train_loss)


# --------------------------------------------------------------- swarm
def test_swarm_single_agent():
    res = run_coordinated(GridWorldConfig(size=8, n_agents=1), steps=10,
                          seed=16)
    assert res.steps == 10
    assert res.total_energy_mj > 0


def test_swarm_more_agents_than_sensible():
    res = run_coordinated(GridWorldConfig(size=6, n_agents=7), steps=5,
                          seed=17)
    assert res.detection_rate >= 0.0


# -------------------------------------------------------- masked-out scan
def test_scan_with_zero_fired_beams():
    scanner = LidarScanner(LIDAR, rng=np.random.default_rng(18))
    scan = scanner.scan(sample_scene(np.random.default_rng(19)),
                        np.zeros(LIDAR.n_beams, dtype=bool))
    assert scan.num_points == 0
    assert scan.coverage_fraction == 0.0
    assert scan.sensing_energy_mj() == 0.0
