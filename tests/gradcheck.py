"""Numerical gradient-checking helpers shared by the nn test modules."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import Module


def numeric_gradient(f: Callable[[], float], array: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array``.

    ``array`` is perturbed in place and restored.
    """
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"], op_flags=["readwrite"])
    while not it.finished:
        idx = it.multi_index
        orig = array[idx]
        array[idx] = orig + eps
        f_plus = f()
        array[idx] = orig - eps
        f_minus = f()
        array[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer: Module, x: np.ndarray,
                          rtol: float = 1e-4, atol: float = 1e-6,
                          loss_weight: np.ndarray | None = None) -> None:
    """Assert analytic grads (input + parameters) match numeric ones.

    Loss = sum(w * layer(x)) for a fixed random weight tensor w, which
    exercises every output element with distinct gradient signal.
    """
    rng = np.random.default_rng(123)
    out = layer.forward(x)
    w = (rng.normal(size=out.shape) if loss_weight is None else loss_weight)

    def loss() -> float:
        return float(np.sum(w * layer.forward(x)))

    # Analytic pass.
    layer.zero_grad()
    layer.forward(x)
    dx = layer.backward(w)

    dx_num = numeric_gradient(loss, x)
    np.testing.assert_allclose(dx, dx_num, rtol=rtol, atol=atol,
                               err_msg="input gradient mismatch")
    for p in layer.parameters():
        # Re-run analytic to fill caches consistently per parameter.
        dp_num = numeric_gradient(loss, p.data)
        np.testing.assert_allclose(p.grad, dp_num, rtol=rtol, atol=atol,
                                   err_msg=f"gradient mismatch for {p.name}")
