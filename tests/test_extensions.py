"""Tests for the paper's future-work extensions: time-varying Koopman,
conformal uncertainty, drift detection, and adaptive masking."""

import numpy as np
import pytest

from repro.koopman import ConformalPredictor, RecursiveKoopman, uncertainty_to_coverage
from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.starnet import DriftDetector
from repro.voxel import AdaptiveMaskPlanner, RadialMaskConfig, VoxelGridConfig, voxelize


# --------------------------------------------------------- RecursiveKoopman
def _linear_system(seed=0, drift_at=None, n=300, noise=0.0):
    """Transitions from z' = A z + B u, with A switching mid-stream."""
    rng = np.random.default_rng(seed)
    a1 = np.array([[0.95, 0.1], [0.0, 0.9]])
    a2 = np.array([[0.7, -0.2], [0.1, 1.02]])
    b = np.array([[0.0], [0.1]])
    zs, us, z_nexts = [], [], []
    for t in range(n):
        a = a2 if (drift_at is not None and t >= drift_at) else a1
        z = rng.normal(size=2)
        u = rng.normal(size=1)
        zs.append(z)
        us.append(u)
        z_nexts.append(a @ z + b[:, 0] * u[0]
                       + rng.normal(0.0, noise, size=2))
    return np.stack(zs), np.stack(us), np.stack(z_nexts)


def test_rls_recovers_stationary_operator():
    z, u, z_next = _linear_system(seed=1)
    model = RecursiveKoopman(2, 1, forgetting=1.0)
    model.update_batch(z, u, z_next)
    np.testing.assert_allclose(model.a, [[0.95, 0.1], [0.0, 0.9]],
                               atol=1e-2)
    np.testing.assert_allclose(model.b, [[0.0], [0.1]], atol=1e-2)


def test_rls_tracks_drift():
    z, u, z_next = _linear_system(seed=2, drift_at=150, n=400)
    model = RecursiveKoopman(2, 1, forgetting=0.95)
    model.update_batch(z, u, z_next)
    # After drift + forgetting, the estimate matches the NEW operator.
    np.testing.assert_allclose(model.a, [[0.7, -0.2], [0.1, 1.02]],
                               atol=5e-2)


def test_rls_stationary_beats_forgetting_on_static_systems():
    """Averaged over seeds, forgetting adds variance on static systems."""
    true_a = np.array([[0.95, 0.1], [0.0, 0.9]])
    static_err, leaky_err = [], []
    for seed in range(5):
        z, u, z_next = _linear_system(seed=seed + 100, n=400, noise=0.1)
        static = RecursiveKoopman(2, 1, forgetting=1.0)
        leaky = RecursiveKoopman(2, 1, forgetting=0.9)
        static.update_batch(z, u, z_next)
        leaky.update_batch(z, u, z_next)
        static_err.append(np.linalg.norm(static.a - true_a))
        leaky_err.append(np.linalg.norm(leaky.a - true_a))
    assert np.mean(static_err) <= np.mean(leaky_err) + 1e-6


def test_rls_prediction_error_drops():
    z, u, z_next = _linear_system(seed=4, n=200)
    model = RecursiveKoopman(2, 1)
    first = model.update_batch(z[:20], u[:20], z_next[:20])
    later = model.update_batch(z[100:120], u[100:120], z_next[100:120])
    assert later < first


def test_rls_spectral_radius_monitor():
    z, u, z_next = _linear_system(seed=5, n=200)
    model = RecursiveKoopman(2, 1)
    model.update_batch(z, u, z_next)
    assert model.spectral_radius() == pytest.approx(0.95, abs=0.03)


def test_rls_validation():
    with pytest.raises(ValueError):
        RecursiveKoopman(2, 1, forgetting=0.0)
    with pytest.raises(ValueError):
        RecursiveKoopman(2, 1, ridge=0.0)


# ------------------------------------------------------------- conformal
def _noisy_predictor(noise=0.1, seed=6):
    a = np.array([[0.9, 0.1], [0.0, 0.95]])
    rng = np.random.default_rng(seed)

    def predict(z, u):
        return np.atleast_2d(z) @ a.T

    def sample(n, rng2):
        z = rng2.normal(size=(n, 2))
        u = rng2.normal(size=(n, 1))
        z_next = z @ a.T + rng2.normal(0, noise, size=(n, 2))
        return z, u, z_next

    return predict, sample


def test_conformal_coverage_holds():
    predict, sample = _noisy_predictor()
    cp = ConformalPredictor(predict)
    rng = np.random.default_rng(7)
    cp.calibrate(*sample(300, rng))
    coverage = cp.empirical_coverage(*sample(500, rng), alpha=0.1)
    assert coverage >= 0.85  # nominal 0.90 with finite-sample slack


def test_conformal_radius_monotone_in_alpha():
    predict, sample = _noisy_predictor()
    cp = ConformalPredictor(predict)
    cp.calibrate(*sample(200, np.random.default_rng(8)))
    assert cp.radius(alpha=0.05) >= cp.radius(alpha=0.2)


def test_conformal_radius_grows_with_noise():
    radii = []
    for noise in (0.05, 0.3):
        predict, sample = _noisy_predictor(noise=noise)
        cp = ConformalPredictor(predict)
        cp.calibrate(*sample(200, np.random.default_rng(9)))
        radii.append(cp.radius(0.1))
    assert radii[1] > radii[0]


def test_conformal_requires_calibration():
    cp = ConformalPredictor(lambda z, u: np.atleast_2d(z))
    with pytest.raises(RuntimeError):
        cp.radius()
    with pytest.raises(ValueError):
        cp.calibrate(np.zeros((1, 2)), np.zeros((1, 1)), np.zeros((1, 2)))


def test_uncertainty_to_coverage_mapping():
    # Confident -> frugal sensing; uncertain -> ramps to full.
    assert uncertainty_to_coverage(0.5, 1.0) == pytest.approx(0.1)
    assert uncertainty_to_coverage(1.0, 1.0) == pytest.approx(0.1)
    mid = uncertainty_to_coverage(1.5, 1.0)
    assert 0.1 < mid < 1.0
    assert uncertainty_to_coverage(5.0, 1.0) == 1.0
    with pytest.raises(ValueError):
        uncertainty_to_coverage(1.0, 0.0)


# ---------------------------------------------------------------- drift
def test_drift_detector_fires_on_gradual_ramp():
    rng = np.random.default_rng(10)
    stable = list(rng.normal(1.0, 0.1, size=50))
    ramp = list(1.0 + 0.05 * np.arange(60) + rng.normal(0, 0.1, size=60))
    detector = DriftDetector()
    idx = detector.monitor_stream(stable + ramp)
    assert idx is not None
    assert idx >= 45  # not during the stable prefix... (warmup region)


def test_drift_detector_quiet_on_stationary_noise():
    rng = np.random.default_rng(11)
    detector = DriftDetector(threshold_sigma=4.0)
    idx = detector.monitor_stream(list(rng.normal(1.0, 0.1, size=300)))
    assert idx is None


def test_drift_detector_trend_sign():
    detector = DriftDetector()
    for s in np.linspace(0, 1, 20):
        detector.update(s)
    assert detector.trend() > 0
    detector2 = DriftDetector()
    for s in np.linspace(1, 0, 20):
        detector2.update(s)
    assert detector2.trend() < 0


def test_drift_detector_validation():
    with pytest.raises(ValueError):
        DriftDetector(fast=0.1, slow=0.5)
    with pytest.raises(ValueError):
        DriftDetector(warmup=1)


# ------------------------------------------------------- adaptive masking
def _cloud(seed=0):
    rng = np.random.default_rng(seed)
    grid = VoxelGridConfig(nx=16, ny=16, nz=2)
    scan = LidarScanner(LidarConfig(n_azimuth=48, n_elevation=8),
                        rng=rng).scan(sample_scene(rng))
    return voxelize(scan.points, scan.labels, grid)


def test_adaptive_planner_respects_budget():
    planner = AdaptiveMaskPlanner(RadialMaskConfig(n_segments=16,
                                                   segment_keep_fraction=0.25),
                                  rng=np.random.default_rng(12))
    mask = planner.plan_segments()
    assert mask.sum() == 4


def test_adaptive_planner_prefers_high_error_segments():
    config = RadialMaskConfig(n_segments=8, segment_keep_fraction=0.25)
    planner = AdaptiveMaskPlanner(config, exploration=0.05,
                                  rng=np.random.default_rng(13))
    planner.segment_error[:] = 0.01
    planner.segment_error[3] = 10.0
    hits = sum(planner.plan_segments()[3] for _ in range(50))
    assert hits > 40  # the high-error segment is almost always sensed


def test_adaptive_planner_error_feedback_updates():
    cloud = _cloud()
    planner = AdaptiveMaskPlanner(RadialMaskConfig(),
                                  rng=np.random.default_rng(14))
    before = planner.segment_error.copy()
    # Perfect reconstruction -> observed segments' error decays.
    perfect = cloud.occupancy_dense().astype(bool)
    planner.report_errors(cloud, perfect)
    observed = planner.segment_error < before
    assert observed.any()
    assert np.all(planner.segment_error <= before + 1e-12)


def test_adaptive_planner_plan_mask_consistency():
    cloud = _cloud(1)
    planner = AdaptiveMaskPlanner(RadialMaskConfig(),
                                  rng=np.random.default_rng(15))
    keep, segments = planner.plan_mask(cloud)
    from repro.voxel import segment_of_azimuth
    for coord, kept in keep.items():
        seg = segment_of_azimuth(cloud.config.voxel_azimuth(coord),
                                 planner.config.n_segments)
        if kept:
            assert segments[seg]


def test_adaptive_planner_validation():
    with pytest.raises(ValueError):
        AdaptiveMaskPlanner(smoothing=0.0)
    with pytest.raises(ValueError):
        AdaptiveMaskPlanner(exploration=1.5)
