"""Unit tests for the golden-trace verification harness itself.

``repro verify`` is only trustworthy if the machinery under it is: the
tolerance engine must fail closed (unmatched fields stay exact), golden
files must round-trip byte-identically and reject tampering loudly, and
the differential driver must actually catch a regression — so a
deliberate drift is injected here and must come back as a failure.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.kernels import kernel_backend
from repro.testkit import (
    CHECKS,
    EXACT,
    FieldTolerance,
    GoldenError,
    GoldenIntegrityError,
    Trace,
    ToleranceSpec,
    TraceRecorder,
    compare_traces,
    diff_payload,
    read_golden,
    run_scenario,
    run_scenario_task,
    run_verify,
    scenario_names,
    summarize_value,
    tensor_summary,
    write_golden,
)

# ------------------------------------------------------- FieldTolerance


def test_field_tolerance_exact_and_bounds():
    assert EXACT.exact
    assert EXACT.allows(1.0, 1.0)
    assert not EXACT.allows(1.0, 1.0 + 1e-15)
    tol = FieldTolerance(atol=0.1, rtol=0.01)
    assert tol.allows(10.0, 10.2)      # 0.1 + 0.01*10 = 0.2
    assert not tol.allows(10.0, 10.21)
    assert tol.allows(-10.0, -10.2)    # rtol uses |golden|


def test_field_tolerance_nan_semantics():
    nan = float("nan")
    # NaN == NaN only under exact comparison; any tolerance rejects NaN.
    assert EXACT.allows(nan, nan)
    assert not EXACT.allows(nan, 1.0)
    assert not FieldTolerance(atol=1.0).allows(nan, nan)
    assert not FieldTolerance(atol=1.0).allows(1.0, nan)


def test_field_tolerance_ignore_allows_anything():
    tol = FieldTolerance(ignore=True)
    assert tol.allows(0.0, 1e9)
    assert tol.allows(float("nan"), 1.0)
    assert tol.as_dict() == {"ignore": True}


# -------------------------------------------------------- ToleranceSpec


def test_spec_first_match_wins_and_unmatched_is_exact():
    spec = ToleranceSpec({
        "train/loss": {"atol": 0.5},
        "train/*": {"atol": 0.1},
    })
    assert spec.lookup("train/loss").atol == 0.5   # earlier rule wins
    assert spec.lookup("train/grad_norm").atol == 0.1
    assert spec.lookup("eval/iou") is EXACT        # fail closed


def test_spec_glob_patterns_cover_list_indices():
    # List elements diff at "field[i]" paths; a trailing * covers them
    # (fnmatch would read a literal "[*]" as a character class).
    spec = ToleranceSpec({"rollout/reward*": {"rtol": 0.01}})
    assert spec.lookup("rollout/reward[3]").rtol == 0.01
    assert spec.lookup("rollout/rewind") is EXACT


def test_spec_round_trips_through_dict():
    raw = {"a/*": {"atol": 0.25, "rtol": 0.0}, "b": {"ignore": True}}
    assert ToleranceSpec.from_dict(raw).as_dict() == raw


# ---------------------------------------------------------- diff_payload


def test_diff_exact_equal_payloads_clean():
    payload = {"a": 1, "b": [1.5, "x"], "c": {"d": None, "e": True}}
    assert diff_payload(payload, dict(payload)) == []


def test_diff_reports_value_type_and_structure():
    golden = {"x": 1.0, "y": "s", "keep": 2, "nested": [1, 2]}
    actual = {"x": 1.5, "y": 3, "extra": 0, "nested": [1, 2, 3]}
    kinds = {m.path: m.kind for m in diff_payload(golden, actual)}
    assert kinds == {"x": "value", "y": "type", "keep": "structure",
                     "extra": "structure", "nested": "structure"}


def test_diff_list_paths_use_indices():
    (m,) = diff_payload({"r": [1.0, 2.0]}, {"r": [1.0, 2.5]})
    assert m.path == "r[1]" and m.kind == "value"
    assert "r[1]" in m.render()


def test_diff_tolerance_mode_allows_bounded_drift():
    spec = ToleranceSpec({"loss": {"atol": 0.1}})
    assert diff_payload({"loss": 1.0, "n": 3},
                        {"loss": 1.05, "n": 3}, spec) == []
    (m,) = diff_payload({"loss": 1.0}, {"loss": 1.2}, spec)
    assert m.kind == "tolerance" and "atol=0.1" in m.detail


def test_diff_tensor_exact_uses_hash_tolerance_uses_stats():
    a = np.arange(12, dtype=np.float64).reshape(3, 4)
    b = a + 1e-9
    ga, gb = tensor_summary(a), tensor_summary(b)
    # Exact: the content hash witnesses the bit difference.
    (m,) = diff_payload({"t": ga}, {"t": gb})
    assert m.path == "t/sha256"
    # Tolerance: hash is expected to change; stats stay in bounds.
    spec = ToleranceSpec({"t": {"atol": 1e-6}})
    assert diff_payload({"t": ga}, {"t": gb}, spec) == []
    # ... but a real drift still trips the stat comparison (mean, min,
    # max, and l2 all shift by 1.0; std is invariant).
    mismatches = diff_payload({"t": ga}, {"t": tensor_summary(a + 1.0)},
                              ToleranceSpec({"t": {"atol": 1e-6}}))
    assert mismatches and all(m.kind == "tolerance" for m in mismatches)
    assert {m.path for m in mismatches} >= {"t/mean", "t/min", "t/max"}


def test_diff_tensor_shape_mismatch_is_structural():
    ga = tensor_summary(np.zeros((2, 3)))
    gb = tensor_summary(np.zeros((3, 2)))
    (m,) = diff_payload({"t": ga}, {"t": gb})
    assert m.path == "t/shape" and m.kind == "structure"


# ------------------------------------------------------ canonicalization


def test_summarize_value_unwraps_numpy_scalars():
    out = summarize_value({"i": np.int64(3), "f": np.float32(0.5),
                           "b": np.bool_(True), "t": (1, 2)})
    assert out == {"i": 3, "f": 0.5, "b": True, "t": [1, 2]}
    assert isinstance(out["i"], int) and isinstance(out["f"], float)


def test_summarize_value_rejects_opaque_objects():
    with pytest.raises(TypeError, match="cannot record"):
        summarize_value({"model": object()})


def test_tensor_summary_hash_is_bit_sensitive():
    a = np.ones((4, 4))
    b = a.copy()
    b[3, 3] = np.nextafter(1.0, 2.0)  # single-ULP flip
    assert tensor_summary(a)["sha256"] != tensor_summary(b)["sha256"]
    # dtype participates in the hash even when the bytes could match.
    assert (tensor_summary(np.zeros(2, dtype=np.float64))["sha256"]
            != tensor_summary(np.zeros(4, dtype=np.float32))["sha256"])


# ------------------------------------------------------------- golden IO


def _toy_trace():
    rec = TraceRecorder("toy", {"step/loss": {"atol": 0.1}})
    rec.add("step", loss=0.5, weights=np.linspace(0, 1, 5), note="hi")
    rec.add("eval", acc=0.75, confusion=[[3, 1], [0, 4]])
    return rec.trace


def test_golden_round_trip_preserves_everything(tmp_path):
    trace = _toy_trace()
    write_golden(trace, str(tmp_path))
    loaded = read_golden("toy", str(tmp_path))
    assert loaded.scenario == "toy"
    assert loaded.records == trace.records
    assert loaded.tolerances == trace.tolerances
    assert compare_traces(trace, loaded, mode="exact") == []


def test_golden_rerecord_is_byte_identical(tmp_path):
    path = write_golden(_toy_trace(), str(tmp_path))
    first = open(path, "rb").read()
    write_golden(_toy_trace(), str(tmp_path))
    assert open(path, "rb").read() == first


def test_golden_missing_names_the_remedy(tmp_path):
    with pytest.raises(GoldenError, match="--update-goldens"):
        read_golden("nonexistent", str(tmp_path))


def test_golden_hand_edit_raises_integrity_error(tmp_path):
    path = write_golden(_toy_trace(), str(tmp_path))
    lines = open(path).read().splitlines()
    lines[2] = lines[2].replace("0.75", "0.99")
    open(path, "w").write("\n".join(lines) + "\n")
    with pytest.raises(GoldenIntegrityError, match="content hash mismatch"):
        read_golden("toy", str(tmp_path))


def test_golden_truncation_raises_integrity_error(tmp_path):
    path = write_golden(_toy_trace(), str(tmp_path))
    lines = open(path).read().splitlines()
    open(path, "w").write("\n".join(lines[:-1]) + "\n")
    with pytest.raises(GoldenIntegrityError, match="declares 2 records"):
        read_golden("toy", str(tmp_path))


def test_golden_format_version_gate(tmp_path):
    path = write_golden(_toy_trace(), str(tmp_path))
    lines = open(path).read().splitlines()
    header = json.loads(lines[0])
    header["format_version"] = 999
    # Keep the record hash valid: only the header changes.
    lines[0] = json.dumps(header, sort_keys=True, separators=(",", ":"))
    open(path, "w").write("\n".join(lines) + "\n")
    with pytest.raises(GoldenError, match="format_version"):
        read_golden("toy", str(tmp_path))


def test_goldens_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_GOLDENS_DIR", str(tmp_path))
    path = write_golden(_toy_trace())  # no explicit directory
    assert os.path.dirname(path) == str(tmp_path)
    assert read_golden("toy").scenario == "toy"


# --------------------------------------------------------- compare_traces


def test_compare_traces_step_sequence_gate():
    a = _toy_trace()
    b = _toy_trace()
    b.records.pop()
    (m,) = compare_traces(a, b)
    assert m.path == "<steps>" and m.kind == "structure"


def test_compare_traces_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown comparison mode"):
        compare_traces(_toy_trace(), _toy_trace(), mode="fuzzy")


def test_compare_traces_tolerance_uses_golden_spec():
    golden, actual = _toy_trace(), _toy_trace()
    actual.records[0]["payload"]["loss"] = 0.55  # inside step/loss atol
    assert compare_traces(golden, actual, mode="exact") != []
    assert compare_traces(golden, actual, mode="tolerance") == []


# -------------------------------------------------------------- scenarios


def test_scenario_registry_shape():
    assert set(scenario_names()) == {"rmae_detect", "koopman_lqr",
                                     "starnet_monitor", "snn_flow",
                                     "federated_round",
                                     "control_adaptation",
                                     "scenario_sweep"}
    assert CHECKS == ("serial", "pooled", "cache", "quantized", "kernels",
                      "compiled")


def test_run_scenario_validates_name_and_variant():
    with pytest.raises(KeyError, match="unknown scenario"):
        run_scenario("not-a-scenario")
    with pytest.raises(ValueError, match="unknown variant"):
        run_scenario("koopman_lqr", variant="int4")


def test_run_scenario_is_deterministic():
    a = run_scenario("koopman_lqr")
    b = run_scenario_task("koopman_lqr")  # the pool-task wrapper
    assert a.content_sha256() == b.content_sha256()
    assert a.steps()[-1] == "telemetry"


def test_quantized_variant_drifts_within_declared_tolerances():
    base = run_scenario("koopman_lqr")
    quant = run_scenario_task(("koopman_lqr", "quantized"))
    assert compare_traces(base, quant, mode="exact") != []
    assert compare_traces(base, quant, mode="tolerance") == []


def test_scenario_traces_are_finite_json():
    trace = run_scenario("snn_flow")
    for line in trace.record_lines():
        payload = json.loads(line)  # round-trips
        assert "nan" not in line.lower() or not any(
            isinstance(v, float) and math.isnan(v)
            for v in payload.get("payload", {}).values())


# ------------------------------------------------------------- run_verify


def test_run_verify_validates_inputs(tmp_path):
    with pytest.raises(KeyError, match="unknown scenario"):
        run_verify(["bogus"], goldens_dir=str(tmp_path))
    with pytest.raises(KeyError, match="unknown check"):
        run_verify(["koopman_lqr"], goldens_dir=str(tmp_path),
                   skip=("turbo",))


def test_run_verify_missing_golden_fails_serial_check(tmp_path):
    report = run_verify(["koopman_lqr"], goldens_dir=str(tmp_path),
                        skip=("pooled", "cache", "quantized"))
    assert not report.ok
    (failure,) = report.failures()
    assert failure.check == "serial"
    assert "--update-goldens" in failure.detail


def test_run_verify_update_then_verify_round_trip(tmp_path):
    recorded = run_verify(["koopman_lqr"], update_goldens=True,
                          goldens_dir=str(tmp_path),
                          skip=("pooled", "cache"))
    assert recorded.ok and recorded.updated == ["koopman_lqr"]
    report = run_verify(["koopman_lqr"], goldens_dir=str(tmp_path),
                        skip=("pooled", "cache"))
    assert report.ok
    statuses = {(r.check, r.status) for r in report.results}
    assert statuses == {("serial", "pass"), ("pooled", "skip"),
                        ("cache", "skip"), ("quantized", "pass"),
                        ("kernels", "pass"), ("compiled", "pass")}
    as_dict = report.as_dict()
    assert as_dict["ok"] is True and len(as_dict["results"]) == 6
    assert as_dict["kernel_backend"] in ("reference", "vectorized")
    assert "koopman_lqr" in report.render()


def test_run_verify_catches_injected_regression(tmp_path):
    """The harness's reason to exist: a drifted golden must fail loudly.

    Pinned to the reference kernel backend so the serial check compares
    bit-for-bit (under the vectorized backend it runs in tolerance mode
    and the exact comparison moves to the ``kernels`` check).
    """
    with kernel_backend("reference"):
        _injected_regression_body(tmp_path)


def _injected_regression_body(tmp_path):
    run_verify(["koopman_lqr"], update_goldens=True,
               goldens_dir=str(tmp_path), skip=("pooled", "cache",
                                                "quantized", "kernels",
                                                "compiled"))
    golden = read_golden("koopman_lqr", str(tmp_path))
    drifted = Trace(scenario=golden.scenario,
                    records=json.loads(json.dumps(golden.records)),
                    tolerances=golden.tolerances)
    # Perturb one recorded scalar the way a real regression would —
    # the first float leaf outside a tensor summary (whose stats only
    # matter under tolerance; exact mode compares the content hash).
    def _bump_first_float(node):
        if isinstance(node, dict):
            if node.get("__tensor__"):
                return False
            for k in sorted(node):
                if isinstance(node[k], float):
                    node[k] += 1e-6
                    return True
                if _bump_first_float(node[k]):
                    return True
        elif isinstance(node, list):
            for i, v in enumerate(node):
                if isinstance(v, float):
                    node[i] += 1e-6
                    return True
                if _bump_first_float(v):
                    return True
        return False

    assert any(_bump_first_float(r["payload"]) for r in drifted.records)
    write_golden(drifted, str(tmp_path))  # re-hash: file is "valid"
    report = run_verify(["koopman_lqr"], goldens_dir=str(tmp_path),
                        skip=("pooled", "cache", "quantized", "kernels",
                              "compiled"))
    assert not report.ok
    (failure,) = report.failures()
    assert failure.check == "serial" and failure.mismatches
    assert failure.mismatches[0].kind == "value"
