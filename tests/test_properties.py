"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CascadeModel, LoopSchedule, synchronization_delay
from repro.federated import NGramLM, merge_subnetwork, slice_weights
from repro.hardware import EnergyLedger, LidarPowerModel
from repro.metrics import roc_auc
from repro.multiagent import minimal_radius, rectangular_partition
from repro.nn import bce_with_logits, gaussian_kl, quantization_noise_power, quantize, softmax
from repro.nn.quantize import affine_qparams
from repro.nn.losses import info_nce
from repro.voxel import RadialMaskConfig, VoxelGridConfig


finite_floats = st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-10.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------- quantization
@given(arrays(np.float64, st.integers(1, 40), elements=small_floats),
       st.sampled_from([2, 4, 8, 16]))
@settings(max_examples=60, deadline=None)
def test_quantize_idempotent_property(x, bits):
    q = quantize(x, bits)
    np.testing.assert_allclose(quantize(q, bits), q, atol=1e-9)


@given(arrays(np.float64, st.integers(1, 40), elements=small_floats))
@settings(max_examples=60, deadline=None)
def test_quantize_bounded_by_maxabs(x):
    q = quantize(x, 4)
    assert np.max(np.abs(q)) <= np.max(np.abs(x)) + 1e-12


@given(arrays(np.float64, st.integers(2, 30), elements=small_floats))
@settings(max_examples=40, deadline=None)
def test_quantization_noise_within_shrinking_bound(x):
    # Pointwise noise is NOT monotone in bits for max-abs uniform grids
    # (a value can land exactly on a coarse grid point, e.g.
    # x = [7.125, 3.0625] has less 4-bit than 8-bit error).  The sound
    # property is the worst-case bound (scale/2)^2, which shrinks
    # strictly with precision.
    max_abs = float(np.max(np.abs(x)))
    for bits in (4, 8, 16):
        levels = 2 ** (bits - 1) - 1
        bound = (max_abs / levels / 2.0) ** 2
        assert quantization_noise_power(x, bits) <= bound + 1e-18


@given(arrays(np.float64, st.integers(1, 40), elements=small_floats),
       st.sampled_from([2, 4, 8]))
@settings(max_examples=80, deadline=None)
def test_asymmetric_quantize_roundtrip_within_half_step(x, bits):
    # The affine grid covers [min(x),0]..[0,max(x)], so every value —
    # including the exact range boundaries, the int8 edge case the
    # compile layer depends on — round-trips within half a step.  No
    # idempotence is claimed: re-quantizing derives a *new* grid from
    # the quantized range, which may differ.
    q = quantize(x, bits, symmetric=False)
    scale, zp = affine_qparams(float(np.min(x)), float(np.max(x)), bits)
    assert 0 <= zp <= 2 ** bits - 1
    np.testing.assert_array_less(np.abs(q - x), scale / 2.0 + 1e-12)


@given(arrays(np.float64, st.integers(1, 30),
              elements=st.floats(min_value=-10.0, max_value=-0.25)))
@settings(max_examples=60, deadline=None)
def test_asymmetric_quantize_preserves_negatives(x):
    # Regression guard for the pre-fix behavior that clipped the whole
    # negative half-range to the zero-point.
    q = quantize(x, 8, symmetric=False)
    assert np.all(q < 0.0)


@given(st.integers(1, 20), st.sampled_from([2, 4, 8]))
@settings(max_examples=30, deadline=None)
def test_asymmetric_quantize_all_zero_exact(n, bits):
    x = np.zeros(n)
    np.testing.assert_array_equal(quantize(x, bits, symmetric=False), x)
    assert affine_qparams(0.0, 0.0, bits) == (1.0, 0)


@given(arrays(np.float64, st.integers(2, 40), elements=small_floats),
       st.sampled_from([4, 8]))
@settings(max_examples=60, deadline=None)
def test_asymmetric_quantize_zero_exactly_representable(x, bits):
    x = np.append(x, 0.0)  # ensure zero sits in the tensor
    q = quantize(x, bits, symmetric=False)
    assert q[-1] == 0.0


# ---------------------------------------------------------------- softmax
@given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 6)),
              elements=finite_floats))
@settings(max_examples=60, deadline=None)
def test_softmax_is_distribution(x):
    p = softmax(x)
    assert np.all(p >= 0)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-9)


@given(arrays(np.float64, st.integers(2, 10), elements=small_floats),
       st.floats(min_value=0.1, max_value=50.0))
@settings(max_examples=40, deadline=None)
def test_softmax_shift_invariance(x, shift):
    np.testing.assert_allclose(softmax(x), softmax(x + shift), atol=1e-9)


# ------------------------------------------------------------------ losses
@given(arrays(np.float64, st.integers(1, 20), elements=small_floats),
       st.integers(0, 2 ** 20))
@settings(max_examples=50, deadline=None)
def test_bce_nonnegative(logits, seed):
    target = (np.random.default_rng(seed).random(logits.shape) > 0.5).astype(
        float)
    loss, grad = bce_with_logits(logits, target)
    assert loss >= -1e-12
    assert np.all(np.isfinite(grad))


@given(arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 5)),
              elements=small_floats),
       arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 5)),
              elements=st.floats(min_value=-3, max_value=3,
                                 allow_nan=False)))
@settings(max_examples=50, deadline=None)
def test_gaussian_kl_nonnegative(mu, logvar):
    if mu.shape != logvar.shape:
        mu = mu[: logvar.shape[0], : logvar.shape[1]]
        logvar = logvar[: mu.shape[0], : mu.shape[1]]
    kl, _, _ = gaussian_kl(mu, logvar)
    assert kl >= -1e-9


@given(st.integers(2, 8), st.integers(2 ** 1, 2 ** 20))
@settings(max_examples=30, deadline=None)
def test_info_nce_nonnegative_finite(n, seed):
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(n, 4))
    k = rng.normal(size=(n, 4))
    loss, gq, gk = info_nce(q, k)
    assert loss >= -1e-12
    assert np.all(np.isfinite(gq)) and np.all(np.isfinite(gk))
    # Unit-scaled aligned pairs beat mismatched ones.
    qn = q / np.linalg.norm(q, axis=1, keepdims=True)
    aligned, _, _ = info_nce(qn, qn)
    shuffled, _, _ = info_nce(qn, np.roll(qn, 1, axis=0))
    assert aligned <= shuffled + 1e-9


# ------------------------------------------------------------------ energy
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                max_size=20))
@settings(max_examples=50, deadline=None)
def test_energy_ledger_total_is_sum(charges):
    ledger = EnergyLedger()
    for i, c in enumerate(charges):
        [ledger.charge_sensing, ledger.charge_compute,
         ledger.charge_communication, ledger.charge_actuation][i % 4](c)
    assert ledger.total_mj == pytest.approx(sum(charges))


@given(st.floats(min_value=0.5, max_value=200.0))
@settings(max_examples=50, deadline=None)
def test_pulse_energy_monotone_in_range(r):
    model = LidarPowerModel()
    assert model.pulse_energy_uj(r) <= model.pulse_energy_uj(r * 1.5) + 1e-12


# ----------------------------------------------------------------- masking
@given(st.floats(min_value=0.1, max_value=200.0),
       st.floats(min_value=1.0, max_value=50.0),
       st.floats(min_value=0.5, max_value=4.0))
@settings(max_examples=60, deadline=None)
def test_range_keep_probability_valid(r, ref, exponent):
    cfg = RadialMaskConfig(reference_range_m=ref, range_exponent=exponent)
    p = cfg.range_keep_probability(r)
    assert 0.0 <= p <= 1.0
    # Monotone non-increasing in range.
    assert cfg.range_keep_probability(r * 2) <= p + 1e-12


@given(st.floats(min_value=-300.0, max_value=300.0),
       st.floats(min_value=-300.0, max_value=300.0),
       st.floats(min_value=-2.0, max_value=5.0))
@settings(max_examples=60, deadline=None)
def test_point_to_voxel_roundtrip_consistency(x, y, z):
    grid = VoxelGridConfig()
    coord = grid.point_to_voxel(np.array([x, y, z]))
    if coord is not None:
        center = grid.voxel_center(coord)
        sx, sy, sz = grid.voxel_size
        assert abs(center[0] - x) <= sx
        assert abs(center[1] - y) <= sy
        assert abs(center[2] - z) <= sz


# ----------------------------------------------------------------- cascade
@given(st.floats(min_value=0.0, max_value=0.99),
       st.floats(min_value=0.0, max_value=5.0),
       st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_stable_cascade_bounded(gain, e0, n):
    model = CascadeModel(gain=gain)
    traj = model.propagate(e0, n)
    assert np.all(traj <= e0 + 1e-12)


@given(st.lists(st.floats(min_value=1e-3, max_value=10.0), min_size=1,
                max_size=10))
@settings(max_examples=40, deadline=None)
def test_sync_delay_is_max(periods):
    assert synchronization_delay(periods) == pytest.approx(max(periods))


# ------------------------------------------------------------------ fedavg
@given(st.integers(1, 5), st.integers(2 ** 1, 2 ** 20))
@settings(max_examples=30, deadline=None)
def test_merge_is_convex_combination(n_clients, seed):
    """Each merged coordinate lies within the clients' value range."""
    rng = np.random.default_rng(seed)
    hidden = 6
    global_w = [rng.normal(size=(3, hidden)), rng.normal(size=hidden),
                rng.normal(size=(hidden, 2)), rng.normal(size=2)]
    widths = [int(rng.integers(2, hidden + 1)) for _ in range(n_clients)]
    updates = [[w.copy() for w in slice_weights(global_w, h)]
               for h in widths]
    for u in updates:
        for w in u:
            w += rng.normal(size=w.shape)
    samples = [int(rng.integers(1, 20)) for _ in range(n_clients)]
    merged = merge_subnetwork(global_w, updates, widths, samples)
    # Check unit 0 of w1 (trained by every client).
    values = np.stack([u[0][:, 0] for u in updates])
    lo, hi = values.min(axis=0), values.max(axis=0)
    assert np.all(merged[0][:, 0] >= lo - 1e-9)
    assert np.all(merged[0][:, 0] <= hi + 1e-9)


# ------------------------------------------------------------------- AUC
@given(st.integers(2, 40), st.integers(2 ** 1, 2 ** 20))
@settings(max_examples=40, deadline=None)
def test_auc_in_unit_interval(n, seed):
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=2 * n)
    labels = np.array([0] * n + [1] * n)
    auc = roc_auc(scores, labels)
    assert 0.0 <= auc <= 1.0


@given(st.integers(2, 30), st.integers(2 ** 1, 2 ** 20))
@settings(max_examples=40, deadline=None)
def test_auc_complement_symmetry(n, seed):
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=2 * n)
    labels = np.array([0] * n + [1] * n)
    a = roc_auc(scores, labels)
    b = roc_auc(-scores, labels)
    assert a + b == pytest.approx(1.0)


# --------------------------------------------------------------- coverage
@given(st.integers(4, 20), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_rectangular_partition_total_property(size, agents):
    regions = rectangular_partition(size, agents)
    assert sum(len(r) for r in regions) == size * size
    assert len(regions) == agents


@given(st.tuples(st.integers(0, 20), st.integers(0, 20)),
       st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_minimal_radius_covers_all(position, cells):
    r = minimal_radius(position, cells)
    for (cx, cy) in cells:
        assert (cx - position[0]) ** 2 + (cy - position[1]) ** 2 <= r * r


# ------------------------------------------------------------------ ngram
@given(st.lists(st.integers(0, 5), min_size=10, max_size=200),
       st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_ngram_distributions_normalized(tokens, order):
    lm = NGramLM(6, order=order).fit(tokens)
    for start in range(min(len(tokens) - order, 5)):
        p = lm.distribution(tokens[start:start + order])
        assert p.shape == (6,)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)


# --------------------------------------------------------------- schedule
@given(st.lists(st.floats(min_value=0.001, max_value=0.05), min_size=1,
                max_size=6))
@settings(max_examples=40, deadline=None)
def test_schedule_slack_consistency(durations):
    sched = LoopSchedule(period_s=1.0)
    for i, d in enumerate(durations):
        sched.add_stage(f"s{i}", d)
    assert sched.slack_s == pytest.approx(1.0 - sum(durations))
    assert sched.feasible()
    assert sched.utilization() == pytest.approx(sum(durations))
