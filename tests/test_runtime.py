"""Tests for repro.runtime: worker pools, artifact cache, seeding,
parallel federated rounds, and the bench driver."""

import os
import pickle

import numpy as np
import pytest

from repro import obs
from repro.federated import FLClient, FLServer, make_fleet
from repro.nn import VAE, train_vae
from repro.runtime import (
    SEED_AUDIT_MIN,
    ArtifactCache,
    TaskFailure,
    WorkerPool,
    assert_private_rngs,
    cached_fit,
    fingerprint,
    resolve_workers,
    run_suite,
    spawn_rngs,
    spawn_seeds,
)
from repro.sim import make_synthetic_cifar, shard_iid


# ----------------------------------------------------- module-level tasks
# (pool tasks must be picklable, hence top-level)
def _square(x):
    return x * x


def _seeded_draw(seed):
    return float(np.random.default_rng(seed).normal())


def _boom(x):
    raise RuntimeError(f"task exploded on {x}")


def _cache_stress(item):
    """Hammer a shared cache dir: interleaved store/load on few slots.

    Every writer stores the same payload for a given slot, so any
    non-None load must round-trip exactly; a torn read, a lost index
    update, or the old eviction race (corrupt-read unlink deleting a
    concurrently re-stored valid entry) all surface as mismatches or
    ``runtime.cache_corrupt`` counts in the parent registry.
    """
    root, worker_seed, rounds = item
    cache = ArtifactCache(root)
    rng = np.random.default_rng(worker_seed)
    mismatches = 0
    for _ in range(rounds):
        slot = int(rng.integers(0, 4))
        key = cache.key("stress", slot=slot)
        cache.store("stress", key, {"slot": slot,
                                    "blob": np.full(256, slot)})
        out = cache.load("stress", key)
        if out is not None and (out["slot"] != slot
                                or not np.all(out["blob"] == slot)):
            mismatches += 1
    return mismatches


def _instrumented(x):
    reg = obs.get_registry()
    reg.counter("test.task_count").inc()
    reg.counter("test.task_sum").inc(float(x))
    reg.histogram("test.task_hist").observe(float(x))
    reg.gauge("test.task_last").set(float(x))
    return x


# -------------------------------------------------------------- resolve
def test_resolve_workers_default_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers(None) == 4
    assert resolve_workers(2) == 2  # explicit beats env
    with pytest.raises(ValueError):
        resolve_workers(-1)


# ------------------------------------------------------------------ pool
def test_pool_serial_and_parallel_identical_ordered():
    seeds = list(range(8))
    with WorkerPool(1) as serial:
        expected = serial.map(_seeded_draw, seeds)
    with WorkerPool(3) as pool:
        got = pool.map(_seeded_draw, seeds)
    assert got == expected  # bit-identical, submission order


def test_pool_workers_one_never_forks():
    pool = WorkerPool(1)
    assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert pool._executor is None


def test_pool_task_failure_raises_in_parent():
    with WorkerPool(2) as pool:
        with pytest.raises(TaskFailure) as exc_info:
            pool.map(_boom, ["a", "b"])
    assert "task 0" in str(exc_info.value)
    assert "exploded" in str(exc_info.value)
    assert isinstance(exc_info.value.__cause__, RuntimeError)


def test_pool_task_failure_serial_path_too():
    with WorkerPool(1) as pool:
        with pytest.raises(TaskFailure):
            pool.map(_boom, [1])


def test_pool_failure_carries_worker_traceback():
    # The original traceback object cannot cross the process boundary;
    # the formatted text must, so CI logs show where the task died.
    with WorkerPool(2) as pool:
        with pytest.raises(TaskFailure) as exc_info:
            pool.map(_boom, ["a", "b"])
    failure = exc_info.value
    assert failure.worker_traceback
    assert "_boom" in failure.worker_traceback
    assert "exploded" in failure.worker_traceback
    assert "worker traceback" in str(failure)


def test_pool_failure_carries_traceback_serially_too():
    with WorkerPool(1) as pool:
        with pytest.raises(TaskFailure) as exc_info:
            pool.map(_boom, [1])
    assert "_boom" in exc_info.value.worker_traceback
    assert "exploded" in str(exc_info.value)


def test_pool_merges_worker_obs_counters():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with WorkerPool(2) as pool:
            pool.map(_instrumented, [1.0, 2.0, 3.0, 4.0])
    counters = registry.snapshot()["counters"]
    assert counters["test.task_count"] == 4.0
    assert counters["test.task_sum"] == 10.0
    assert counters["runtime.tasks_submitted"] == 4.0
    assert counters["runtime.tasks_completed"] == 4.0
    hist = registry.histogram("test.task_hist")
    assert hist.count == 4
    assert hist.total == 10.0
    # gauges: last submission wins, as in a serial run
    assert registry.gauge("test.task_last").value == 4.0
    assert registry.histogram("runtime.task_wall_s").count == 4


def test_pool_obs_match_serial_exactly():
    serial_reg = obs.MetricsRegistry()
    with obs.use_registry(serial_reg):
        with WorkerPool(1) as pool:
            pool.map(_instrumented, [5.0, 7.0])
    parallel_reg = obs.MetricsRegistry()
    with obs.use_registry(parallel_reg):
        with WorkerPool(2) as pool:
            pool.map(_instrumented, [5.0, 7.0])
    s = serial_reg.snapshot()["counters"]
    p = parallel_reg.snapshot()["counters"]
    for name in ("test.task_count", "test.task_sum",
                 "runtime.tasks_submitted", "runtime.tasks_completed"):
        assert s[name] == p[name]


def test_starmap_unpacks_args():
    with WorkerPool(2) as pool:
        assert pool.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]


# --------------------------------------------------------------- seeding
def test_spawn_seeds_deterministic_and_distinct():
    a = spawn_seeds(42, 6)
    b = spawn_seeds(42, 6)
    assert a == b
    assert len(set(a)) == 6
    assert spawn_seeds(43, 6) != a


def test_spawn_rngs_independent_streams():
    rngs = spawn_rngs(0, 4)
    draws = [r.normal() for r in rngs]
    assert len(set(draws)) == 4
    again = [r.normal() for r in spawn_rngs(0, 4)]
    assert [r for r in draws] == again


def test_spawn_seeds_fleet_scale_collision_audit():
    # 32-bit seeds collide with ~1% odds by 10^4 draws (birthday bound);
    # at fleet scale spawn_seeds must switch to 64-bit derivation and
    # still guarantee pairwise-distinct streams.
    n = 10_000
    seeds = spawn_seeds(0, n)
    assert len(set(seeds)) == n
    assert max(seeds) >= 2 ** 32  # the wide derivation actually engaged
    assert spawn_seeds(0, n) == seeds  # still deterministic
    # Below the audit threshold the historical 32-bit values are kept,
    # so committed baselines seeded through spawn_seeds stay valid.
    small = spawn_seeds(7, SEED_AUDIT_MIN - 1)
    assert all(s < 2 ** 32 for s in small)
    children = np.random.SeedSequence(7).spawn(SEED_AUDIT_MIN - 1)
    assert small == [int(c.generate_state(2, dtype=np.uint32)[0])
                     for c in children]


def test_assert_private_rngs_rejects_aliases():
    shared = np.random.default_rng(0)
    assert_private_rngs([np.random.default_rng(0),
                         np.random.default_rng(0)])  # equal state is fine
    with pytest.raises(ValueError, match="share one numpy Generator"):
        assert_private_rngs([shared, shared])


# ----------------------------------------------------------------- cache
def _tmp_cache(tmp_path):
    return ArtifactCache(str(tmp_path / "cache"))


def test_cache_roundtrip_and_counters(tmp_path):
    cache = _tmp_cache(tmp_path)
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        key = cache.key("thing", a=1, arr=np.arange(4))
        assert cache.load("thing", key) is None  # miss
        cache.store("thing", key, {"x": np.ones(3), "n": 7})
        loaded = cache.load("thing", key)
    assert loaded["n"] == 7
    np.testing.assert_array_equal(loaded["x"], np.ones(3))
    counters = registry.snapshot()["counters"]
    assert counters["runtime.cache_misses"] == 1.0
    assert counters["runtime.cache_hits"] == 1.0
    assert counters["runtime.cache_writes"] == 1.0
    info = cache.info()
    assert info["entries"] == 1
    assert info["by_kind"] == {"thing": 1}
    assert cache.clear() == 1
    assert cache.info()["entries"] == 0


def test_cache_corrupt_entry_recovers(tmp_path):
    cache = _tmp_cache(tmp_path)
    key = cache.key("blob", seed=3)
    cache.store("blob", key, {"v": 1})
    path = cache._path("blob", key)
    with open(path, "wb") as f:
        f.write(b"\x00not a pickle at all")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        assert cache.load("blob", key) is None
    assert registry.snapshot()["counters"]["runtime.cache_corrupt"] == 1.0
    assert not os.path.exists(path)  # poisoned entry evicted
    cache.store("blob", key, {"v": 2})  # recompute-and-store works again
    assert cache.load("blob", key)["v"] == 2


def test_cache_concurrent_pooled_writers_stay_consistent(tmp_path):
    root = str(tmp_path / "shared-cache")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with WorkerPool(4) as pool:
            mismatches = pool.map(_cache_stress,
                                  [(root, seed, 25) for seed in range(8)],
                                  label="cache.stress")
    assert sum(mismatches) == 0
    counters = registry.snapshot()["counters"]
    assert counters.get("runtime.cache_corrupt", 0.0) == 0.0
    # The survivors are intact and the index agrees with the files.
    cache = ArtifactCache(root)
    for slot in range(4):
        out = cache.load("stress", cache.key("stress", slot=slot))
        assert out is not None and np.all(out["blob"] == slot)


def test_fingerprint_content_addressed():
    a = fingerprint({"x": np.arange(5), "lr": 0.1})
    b = fingerprint({"lr": 0.1, "x": np.arange(5)})  # key order irrelevant
    assert a == b
    assert fingerprint({"x": np.arange(5), "lr": 0.2}) != a
    changed = np.arange(5).copy()
    changed[0] = 9
    assert fingerprint({"x": changed, "lr": 0.1}) != a
    # RNG state participates: same seed same key, different seed not
    assert fingerprint(np.random.default_rng(1)) == \
        fingerprint(np.random.default_rng(1))
    assert fingerprint(np.random.default_rng(1)) != \
        fingerprint(np.random.default_rng(2))


def test_cached_fit_hit_restores_model_and_rng(tmp_path):
    cache = _tmp_cache(tmp_path)

    def build():
        return VAE(6, latent_dim=2, hidden=(8,),
                   rng=np.random.default_rng(0))

    data = np.random.default_rng(1).normal(size=(24, 6))

    vae_a = build()
    rng_a = np.random.default_rng(2)
    losses_a = train_vae(vae_a, data, epochs=2, rng=rng_a, cache=cache)

    registry = obs.MetricsRegistry()
    vae_b = build()
    rng_b = np.random.default_rng(2)
    with obs.use_registry(registry):
        losses_b = train_vae(vae_b, data, epochs=2, rng=rng_b, cache=cache)
    assert registry.snapshot()["counters"]["runtime.cache_hits"] == 1.0
    assert losses_a == losses_b
    for pa, pb in zip(vae_a.parameters(), vae_b.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
    # post-training RNG state restored: downstream draws are identical
    assert rng_a.bit_generator.state == rng_b.bit_generator.state

    # different epochs -> different key -> miss
    vae_c = build()
    registry2 = obs.MetricsRegistry()
    with obs.use_registry(registry2):
        train_vae(vae_c, data, epochs=3, rng=np.random.default_rng(2),
                  cache=cache)
    assert registry2.snapshot()["counters"].get(
        "runtime.cache_hits", 0.0) == 0.0


def test_cached_fit_disabled_paths(tmp_path, monkeypatch):
    calls = []

    class Toy:
        pass

    def train():
        calls.append(1)
        return "aux"

    monkeypatch.setenv("REPRO_CACHE", "0")
    assert cached_fit("toy", {}, Toy(), None, train, cache=None) == "aux"
    assert cached_fit("toy", {}, Toy(), None, train, cache=False) == "aux"
    assert len(calls) == 2  # env kill-switch + explicit opt-out: no memo


# ----------------------------------------------- parallel federated round
def _small_server(n_clients=3, seed=0, pool_safe=True):
    ds = make_synthetic_cifar(n_per_class=8, seed=seed, cache=False)
    train, test = ds.split(0.25, np.random.default_rng(seed + 1))
    shards = shard_iid(train, n_clients, rng=np.random.default_rng(seed + 2))
    fleet = make_fleet(n_clients, rng=np.random.default_rng(seed + 3))
    clients = [FLClient(i, s, p, rng=np.random.default_rng(50 + i))
               for i, (s, p) in enumerate(zip(shards, fleet))]
    return FLServer(clients, test, hidden=8, mode="dcnas+halo",
                    rng=np.random.default_rng(seed + 4))


def test_fl_round_parallel_bit_identical_to_serial():
    serial = _small_server()
    serial.run(2)
    parallel = _small_server()
    with WorkerPool(2) as pool:
        parallel.run(2, pool=pool)
    for a, b in zip(serial.global_weights, parallel.global_weights):
        np.testing.assert_array_equal(a, b)
    assert [h.test_accuracy for h in serial.history] == \
        [h.test_accuracy for h in parallel.history]
    assert [h.mean_train_loss for h in serial.history] == \
        [h.mean_train_loss for h in parallel.history]
    # client RNGs advanced exactly as in the serial run
    for ca, cb in zip(serial.clients, parallel.clients):
        assert ca.rng.bit_generator.state == cb.rng.bit_generator.state


def test_fl_round_parallel_obs_counters_match_serial():
    serial = _small_server()
    reg_s = obs.MetricsRegistry()
    with obs.use_registry(reg_s):
        serial.run_round()
    parallel = _small_server()
    reg_p = obs.MetricsRegistry()
    with obs.use_registry(reg_p):
        with WorkerPool(2) as pool:
            parallel.run_round(pool=pool)
    s, p = reg_s.snapshot()["counters"], reg_p.snapshot()["counters"]
    assert s["federated.client_macs"] == p["federated.client_macs"]
    assert s["federated.client_energy_mj"] == p["federated.client_energy_mj"]
    assert p["runtime.tasks_submitted"] == 3.0


def test_fl_round_rejects_shared_generator_in_parallel():
    server = _small_server()
    shared = np.random.default_rng(9)
    for client in server.clients:
        client.rng = shared
    with WorkerPool(2) as pool:
        with pytest.raises(ValueError, match="share one numpy Generator"):
            server.run_round(pool=pool)
    # serial semantics (interleaved draws through one state) still allowed
    server.run_round()


def test_flclient_emulated_wall_validation():
    with pytest.raises(ValueError):
        FLClient(0, make_synthetic_cifar(n_per_class=2, cache=False),
                 make_fleet(1)[0], emulated_round_s=-1.0)


def test_flclient_is_picklable():
    server = _small_server()
    blob = pickle.dumps(server.clients[0])
    clone = pickle.loads(blob)
    assert clone.client_id == server.clients[0].client_id
    assert clone.rng.bit_generator.state == \
        server.clients[0].rng.bit_generator.state


# ---------------------------------------------------------- bench driver
def test_run_suite_unknown_name_rejected():
    with pytest.raises(KeyError, match="unknown benches"):
        run_suite(["not_a_bench"], workers=1)


def test_run_suite_results_identical_across_workers():
    serial = run_suite(["fig5a_model_macs", "codesign"], workers=1)
    parallel = run_suite(["fig5a_model_macs", "codesign"], workers=2)
    assert serial["results"] == parallel["results"]
    assert serial["meta"]["workers"] == 1
    assert parallel["meta"]["workers"] == 2
    assert set(parallel["meta"]["bench_wall_s"]) == {
        "fig5a_model_macs", "codesign"}
