"""Tests for neurons, spiking layers, flow models, DOTIE, conversion,
and the neuromorphic energy model."""

import numpy as np
import pytest

from repro.metrics import average_endpoint_error
from repro.neuromorphic import (
    DOTIE,
    E_AC_PJ,
    E_MAC_PJ,
    FLOW_MODEL_FAMILIES,
    LIFParameters,
    RateCodedSNN,
    SpikingConv2d,
    ann_energy_pj,
    build_flow_model,
    convert_ann_to_snn,
    energy_ratio_ann_over_snn,
    evaluate_aee,
    lif_step,
    snn_energy_pj,
    spike_rate,
    surrogate_gradient,
    train_flow_model,
)
from repro.nn import Adam, cross_entropy_with_logits, mlp, softmax
from repro.sim import make_flow_dataset


# ----------------------------------------------------------------- neurons
def test_lif_integrates_and_fires():
    v = np.zeros(3)
    current = np.array([0.3, 0.6, 1.5])
    v, s = lif_step(v, current, leak=1.0, threshold=1.0)
    np.testing.assert_array_equal(s, [0, 0, 1])
    assert v[2] == pytest.approx(0.5)  # soft reset keeps the residue


def test_lif_leak_decays_subthreshold():
    v = np.array([0.8])
    v, s = lif_step(v, np.zeros(1), leak=0.5, threshold=1.0)
    assert v[0] == pytest.approx(0.4)
    assert s[0] == 0


def test_lif_accumulates_over_steps():
    v = np.zeros(1)
    fired = 0
    for _ in range(5):
        v, s = lif_step(v, np.array([0.4]), leak=1.0, threshold=1.0)
        fired += int(s[0])
    assert fired == 2  # 0.4*5 = 2.0 total drive, threshold 1.0


def test_surrogate_gradient_triangular():
    sg = surrogate_gradient(np.array([1.0, 0.5, 2.5]), threshold=1.0,
                            width=1.0)
    assert sg[0] == pytest.approx(1.0)
    assert sg[1] == pytest.approx(0.5)
    assert sg[2] == pytest.approx(0.0)


def test_lif_parameters_validation():
    with pytest.raises(ValueError):
        LIFParameters(leak=0.0)
    with pytest.raises(ValueError):
        LIFParameters(threshold=-1.0)


# ------------------------------------------------------------ spiking conv
def _spike_input(t=4, n=1, c=2, h=8, w=8, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((t, n, c, h, w)) < 0.3).astype(np.float64)


def test_spiking_conv_output_binary():
    layer = SpikingConv2d(2, 4, rng=np.random.default_rng(1))
    out = layer.forward(_spike_input())
    assert out.shape == (4, 1, 4, 8, 8)
    assert set(np.unique(out)) <= {0.0, 1.0}
    assert layer.last_membrane.shape == (1, 4, 8, 8)


def test_spiking_conv_requires_5d():
    layer = SpikingConv2d(2, 4)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((1, 2, 8, 8)))


def test_spiking_conv_backward_shapes():
    layer = SpikingConv2d(2, 3, rng=np.random.default_rng(2))
    x = _spike_input(c=2)
    out = layer.forward(x)
    grad_in = layer.backward(np.ones_like(out))
    assert grad_in.shape == x.shape
    assert float(np.abs(layer.conv.weight.grad).sum()) > 0


def test_spiking_conv_learnable_dynamics_params():
    layer = SpikingConv2d(2, 3, learnable_dynamics=True, leak=0.9,
                          threshold=1.0, rng=np.random.default_rng(3))
    assert layer.leak() == pytest.approx(0.9, abs=1e-6)
    assert layer.threshold() == pytest.approx(1.0, abs=1e-6)
    names = [p.name for p in layer.parameters()]
    assert any("leak" in n for n in names)
    assert any("thr" in n for n in names)


def test_spiking_conv_dynamics_receive_gradients():
    layer = SpikingConv2d(2, 3, learnable_dynamics=True,
                          rng=np.random.default_rng(4))
    out = layer.forward(_spike_input(seed=5))
    layer.backward(np.random.default_rng(6).normal(size=out.shape))
    assert abs(float(layer.leak_raw.grad[0])) > 0
    assert abs(float(layer.thr_raw.grad[0])) > 0


def test_spike_rate_bounds():
    assert spike_rate(np.zeros((4, 2, 3))) == 0.0
    assert spike_rate(np.ones((4, 2, 3))) == 1.0
    assert spike_rate(np.array([])) == 0.0


# ------------------------------------------------------------ energy model
def test_snn_cheaper_at_low_rates():
    macs = 1_000_000
    ann = ann_energy_pj(macs)
    snn = snn_energy_pj(macs, timesteps=4, mean_spike_rate=0.05)
    assert snn < ann
    ratio = energy_ratio_ann_over_snn(macs, macs, 4, 0.05)
    assert ratio == pytest.approx(ann / snn)


def test_snn_energy_scales_with_rate():
    low = snn_energy_pj(1000, 4, 0.01)
    high = snn_energy_pj(1000, 4, 0.5)
    assert high == pytest.approx(50 * low)


def test_energy_validation():
    with pytest.raises(ValueError):
        ann_energy_pj(-1)
    with pytest.raises(ValueError):
        snn_energy_pj(100, 4, -0.1)


def test_ac_cheaper_than_mac():
    assert E_AC_PJ < E_MAC_PJ


# ------------------------------------------------------------- flow models
TRAIN = make_flow_dataset(12, seed=0)
TEST = make_flow_dataset(6, seed=1)


@pytest.mark.parametrize("name", sorted(FLOW_MODEL_FAMILIES))
def test_flow_models_train_and_predict(name):
    model = build_flow_model(name, channels=6, rng=np.random.default_rng(2))
    losses = train_flow_model(model, TRAIN, epochs=4,
                              rng=np.random.default_rng(3))
    assert losses[-1] < losses[0]
    pred = model.predict(TEST[0])
    assert pred.shape == (2, 16, 16)
    aee = evaluate_aee(model, TEST)
    assert np.isfinite(aee) and aee >= 0


def test_build_flow_model_unknown():
    with pytest.raises(KeyError):
        build_flow_model("flownet3")


def test_snn_models_use_less_energy_than_ann():
    ann = build_flow_model("evflownet", channels=8,
                           rng=np.random.default_rng(4))
    snn = build_flow_model("adaptive_spikenet", channels=8,
                           rng=np.random.default_rng(4))
    snn.predict(TEST[0])  # populate spike-rate cache
    assert snn.inference_energy_pj(TEST[0]) < ann.inference_energy_pj(TEST[0])


def test_hybrid_energy_between_ann_and_snn():
    ann = build_flow_model("evflownet", channels=8,
                           rng=np.random.default_rng(5))
    hyb = build_flow_model("spikeflownet", channels=8,
                           rng=np.random.default_rng(5))
    full_snn = build_flow_model("adaptive_spikenet", channels=8,
                                rng=np.random.default_rng(5))
    full_snn.predict(TEST[0])
    e_ann = ann.inference_energy_pj(TEST[0])
    e_hyb = hyb.inference_energy_pj(TEST[0])
    e_snn = full_snn.inference_energy_pj(TEST[0])
    assert e_snn < e_hyb < e_ann


def test_adaptive_spikenet_fewer_params_than_ann():
    ann = build_flow_model("evflownet", channels=8)
    snn = build_flow_model("adaptive_spikenet", channels=8)
    assert snn.num_parameters() < ann.num_parameters()


def test_flow_models_have_distinct_predictions():
    a = build_flow_model("evflownet", channels=6,
                         rng=np.random.default_rng(6))
    b = build_flow_model("fusionflownet", channels=6,
                         rng=np.random.default_rng(6))
    assert not np.allclose(a.predict(TEST[0]), b.predict(TEST[0]))


# ------------------------------------------------------------------ DOTIE
def _fast_and_slow_events(seed=0):
    """A fast-moving blob plus sparse slow background events."""
    rng = np.random.default_rng(seed)
    t, h, w = 6, 20, 20
    frames = np.zeros((t, 2, h, w))
    # Fast object: dense events along a moving 3x3 patch.
    for step in range(t):
        cx, cy = 4 + step * 2, 8
        frames[step, 0, cy:cy + 3, cx:cx + 3] = 2.0
    # Slow background: isolated single events.
    for _ in range(15):
        frames[rng.integers(t), 1, rng.integers(h), rng.integers(w)] += 1.0
    return frames


def test_dotie_detects_fast_object():
    dotie = DOTIE(leak=0.6, threshold=2.5, min_cluster=3)
    boxes = dotie.detect(_fast_and_slow_events())
    assert len(boxes) >= 1
    # The top box tracks the moving patch's row band.
    top = boxes[0]
    assert 6 <= top.center[1] <= 12


def test_dotie_filters_slow_background():
    dotie = DOTIE(leak=0.3, threshold=2.5, min_cluster=3)
    rng = np.random.default_rng(1)
    background = np.zeros((6, 2, 20, 20))
    for _ in range(20):
        background[rng.integers(6), 0, rng.integers(20),
                   rng.integers(20)] += 1.0
    assert dotie.detect(background) == []


def test_dotie_spike_map_shape():
    dotie = DOTIE()
    spikes = dotie.spike_map(_fast_and_slow_events())
    assert spikes.shape == (20, 20)
    with pytest.raises(ValueError):
        dotie.spike_map(np.zeros((2, 20, 20)))


def test_dotie_synops_counts_events():
    frames = _fast_and_slow_events()
    assert DOTIE().synops(frames) == int(frames.sum())


def test_dotie_validation():
    with pytest.raises(ValueError):
        DOTIE(leak=0.0)
    with pytest.raises(ValueError):
        DOTIE(threshold=0.0)


def test_bounding_box_geometry():
    from repro.neuromorphic import BoundingBox
    box = BoundingBox(2, 3, 6, 8, mass=5.0)
    assert box.center == (4.0, 5.5)
    assert box.area == 5 * 6
    assert box.contains(4, 5)
    assert not box.contains(0, 0)


# -------------------------------------------------------------- conversion
def test_ann_to_snn_conversion_preserves_predictions():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(200, 6))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    net = mlp([6, 16, 2], rng=rng)
    opt = Adam(net.parameters(), lr=5e-3)
    for _ in range(300):
        logits = net.forward(x)
        _, grad = cross_entropy_with_logits(logits, y)
        opt.zero_grad()
        net.backward(grad)
        opt.step()
    ann_acc = float((np.argmax(softmax(net.forward(x)), 1) == y).mean())
    snn = convert_ann_to_snn(net, x[:64], timesteps=64)
    snn_out = snn.forward(x)
    snn_acc = float((np.argmax(snn_out, 1) == y).mean())
    assert ann_acc > 0.9
    assert snn_acc > ann_acc - 0.12  # rate coding costs a little accuracy


def test_converted_snn_sparsity_measurable():
    rng = np.random.default_rng(8)
    net = mlp([4, 8, 2], rng=rng)
    snn = convert_ann_to_snn(net, rng.normal(size=(32, 4)), timesteps=16)
    rate = snn.mean_spike_rate(rng.normal(size=(16, 4)))
    assert 0.0 <= rate <= 1.0


def test_conversion_validation():
    from repro.nn import ReLU, Sequential
    with pytest.raises(ValueError):
        convert_ann_to_snn(Sequential(ReLU()), np.zeros((4, 3)))
    with pytest.raises(ValueError):
        RateCodedSNN([np.zeros((2, 2))], [], timesteps=4)


# ---------------------------------------------------------------- AEE math
def test_aee_zero_for_perfect_flow():
    flow = np.random.default_rng(9).normal(size=(2, 8, 8))
    assert average_endpoint_error(flow, flow) == 0.0


def test_aee_known_offset():
    pred = np.zeros((2, 4, 4))
    target = np.zeros((2, 4, 4))
    target[0] += 3.0
    target[1] += 4.0
    assert average_endpoint_error(pred, target) == pytest.approx(5.0)


def test_aee_masked():
    pred = np.zeros((2, 4, 4))
    target = np.ones((2, 4, 4))
    mask = np.zeros((4, 4), dtype=bool)
    mask[0, 0] = True
    assert average_endpoint_error(pred, target, mask) == pytest.approx(
        np.sqrt(2))
