"""Unit tests for optimizers: SGD, Adam, SPSA, LoRA, grad clipping."""

import numpy as np
import pytest

from repro.nn import SGD, SPSA, Adam, Dense, LoRAAdapter, Parameter, clip_grad_norm, mlp, mse_loss

RNG = np.random.default_rng(13)


def _quadratic_problem():
    """A parameter pulled toward a fixed target by MSE."""
    target = np.array([1.0, -2.0, 3.0])
    p = Parameter(np.zeros(3), name="theta")

    def step_loss() -> float:
        loss, grad = mse_loss(p.data, target)
        p.zero_grad()
        p.grad += grad
        return loss

    return p, target, step_loss


def test_sgd_descends():
    p, target, step_loss = _quadratic_problem()
    opt = SGD([p], lr=0.5)
    first = step_loss()
    for _ in range(200):
        step_loss()
        opt.step()
    assert mse_loss(p.data, target)[0] < first * 1e-4


def test_sgd_momentum_converges():
    p, target, step_loss = _quadratic_problem()
    opt = SGD([p], lr=0.2, momentum=0.9)
    for _ in range(200):
        step_loss()
        opt.step()
    np.testing.assert_allclose(p.data, target, atol=1e-3)


def test_sgd_weight_decay_shrinks():
    p = Parameter(np.ones(4) * 10)
    opt = SGD([p], lr=0.1, weight_decay=1.0)
    for _ in range(100):
        p.zero_grad()
        opt.step()
    assert np.all(np.abs(p.data) < 1.0)


def test_sgd_skips_frozen():
    p = Parameter(np.ones(2), trainable=False)
    p.grad += 1.0
    SGD([p], lr=1.0).step()
    np.testing.assert_array_equal(p.data, 1.0)


def test_adam_converges():
    p, target, step_loss = _quadratic_problem()
    opt = Adam([p], lr=0.1)
    for _ in range(400):
        step_loss()
        opt.step()
    np.testing.assert_allclose(p.data, target, atol=1e-3)


def test_adam_trains_mlp():
    net = mlp([2, 16, 1], rng=np.random.default_rng(1))
    opt = Adam(net.parameters(), lr=1e-2)
    x = RNG.normal(size=(64, 2))
    y = (x[:, :1] * x[:, 1:]).copy()  # multiplicative target
    first = None
    for _ in range(200):
        pred = net.forward(x)
        loss, grad = mse_loss(pred, y)
        if first is None:
            first = loss
        opt.zero_grad()
        net.backward(grad)
        opt.step()
    assert loss < first * 0.2


def test_clip_grad_norm():
    p = Parameter(np.zeros(4))
    p.grad += 10.0
    pre = clip_grad_norm([p], max_norm=1.0)
    assert pre == pytest.approx(20.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0)


def test_clip_grad_norm_noop_under_limit():
    p = Parameter(np.zeros(4))
    p.grad += 0.1
    clip_grad_norm([p], max_norm=10.0)
    np.testing.assert_allclose(p.grad, 0.1)


def test_spsa_minimizes_quadratic():
    spsa = SPSA(a=0.5, c=0.1, rng=np.random.default_rng(2))
    target = np.array([2.0, -1.0, 0.5])
    best, f_best, history = spsa.minimize(
        lambda t: float(np.sum((t - target) ** 2)),
        np.zeros(3), steps=200)
    assert f_best < 0.05
    assert history[0] > f_best


def test_spsa_normalized_gradient_scale_invariance():
    """Normalized SPSA makes identical progress on scaled objectives."""
    target = np.ones(4) * 3

    def run(scale):
        spsa = SPSA(a=0.5, c=0.1, normalize_gradient=True,
                    rng=np.random.default_rng(3))
        _, f_best, _ = spsa.minimize(
            lambda t: scale * float(np.sum((t - target) ** 2)),
            np.zeros(4), steps=150)
        return f_best / scale

    assert run(1.0) == pytest.approx(run(1e6), rel=1e-6)


def test_spsa_evaluations_per_step():
    assert SPSA().evaluations_per_step() == 3


def test_lora_starts_as_identity():
    base = Dense(6, 4, rng=np.random.default_rng(4))
    adapter = LoRAAdapter(base.weight, rank=2)
    np.testing.assert_allclose(adapter.effective_weight(), base.weight.data)


def test_lora_freezes_base():
    base = Dense(6, 4, rng=np.random.default_rng(4))
    adapter = LoRAAdapter(base.weight, rank=2)
    assert not base.weight.trainable
    assert all(p.trainable for p in adapter.parameters())


def test_lora_trainable_fraction():
    base = Dense(100, 100, rng=np.random.default_rng(4))
    adapter = LoRAAdapter(base.weight, rank=4)
    assert adapter.trainable_fraction() == pytest.approx(
        4 * 200 / 10000)


def test_lora_learns_offset():
    """LoRA factors can absorb a rank-limited weight correction."""
    rng = np.random.default_rng(5)
    base = Parameter(rng.normal(size=(5, 5)))
    true_delta = np.outer(rng.normal(size=5), rng.normal(size=5))
    target_w = base.data + true_delta
    adapter = LoRAAdapter(base, rank=2, rng=rng)
    opt = Adam(adapter.parameters(), lr=5e-2)
    x = rng.normal(size=(64, 5))
    y = x @ target_w
    for _ in range(300):
        pred = adapter.forward(x)
        loss, grad = mse_loss(pred, y)
        opt.zero_grad()
        adapter.backward(grad)
        opt.step()
    assert loss < 1e-3


def test_lora_rejects_non_matrix():
    with pytest.raises(ValueError):
        LoRAAdapter(Parameter(np.zeros(3)), rank=2)
