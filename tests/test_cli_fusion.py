"""Tests for the CLI and the adaptive-fusion / context-threshold extensions."""

import json

import numpy as np
import pytest

from repro.cli import DEMOS, EXPERIMENTS, main
from repro.starnet import ContextAwareThreshold, ReliabilityWeightedFusion


# -------------------------------------------------------------------- CLI
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "table2" in out


def test_cli_experiment_fig5a(capsys):
    assert main(["experiment", "fig5a"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spectral_koopman"]["total"] < payload["mlp"]["total"]


def test_cli_experiment_swarm(capsys):
    assert main(["experiment", "swarm"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["uncoordinated"]["energy_mj"] > \
        payload["coordinated"]["energy_mj"]


def test_cli_experiment_speculative(capsys):
    assert main(["experiment", "speculative"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["k=4"]["speedup"] > 1.0


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["experiment", "figure99"])


def test_cli_no_command_shows_help(capsys):
    assert main([]) == 1


def test_cli_registries_complete():
    assert set(EXPERIMENTS) == {"table2", "fig5a", "fig5b", "auc", "fig11",
                                "swarm", "speculative", "codesign"}
    assert len(DEMOS) == 7


# -------------------------------------------------------- adaptive fusion
def _fusion():
    return ReliabilityWeightedFusion({"lidar": 3, "camera": 2})


def test_fusion_equal_trust_preserves_features():
    fusion = _fusion()
    feats = {"lidar": np.array([1.0, 2.0, 3.0]),
             "camera": np.array([4.0, 5.0])}
    fused, weights = fusion.fuse(feats, {"lidar": 0.8, "camera": 0.8})
    np.testing.assert_allclose(fused, [1, 2, 3, 4, 5])
    assert weights["lidar"] == pytest.approx(0.5)


def test_fusion_downweights_untrusted_stream():
    fusion = _fusion()
    feats = {"lidar": np.ones(3), "camera": np.ones(2)}
    fused, weights = fusion.fuse(feats, {"lidar": 0.01, "camera": 1.0})
    # LiDAR under the floor: excluded; camera carries everything.
    assert weights["lidar"] == 0.0
    np.testing.assert_allclose(fused[:3], 0.0)
    np.testing.assert_allclose(fused[3:], 2.0)  # 1.0 * (1.0 * 2 modalities)


def test_fusion_all_distrusted_fails_operational():
    fusion = _fusion()
    weights = fusion.weights({"lidar": 0.0, "camera": 0.0})
    assert weights["lidar"] == pytest.approx(0.5)
    assert weights["camera"] == pytest.approx(0.5)


def test_fusion_validation():
    with pytest.raises(ValueError):
        ReliabilityWeightedFusion({})
    with pytest.raises(ValueError):
        ReliabilityWeightedFusion({"x": 0})
    fusion = _fusion()
    with pytest.raises(KeyError):
        fusion.fuse({"lidar": np.ones(3)}, {"lidar": 1.0, "camera": 1.0})
    with pytest.raises(KeyError):
        fusion.weights({"lidar": 1.0})
    with pytest.raises(ValueError):
        fusion.fuse({"lidar": np.ones(4), "camera": np.ones(2)},
                    {"lidar": 1.0, "camera": 1.0})


def test_fusion_dim_property():
    assert _fusion().fused_dim == 5


# ------------------------------------------------- context-aware threshold
def _context_data(seed=0, n=300):
    """Nominal scores whose scale depends on a context variable."""
    rng = np.random.default_rng(seed)
    contexts = rng.uniform(0, 1, size=n)
    scores = (1.0 + 4.0 * contexts) * rng.gamma(2.0, 0.5, size=n)
    return contexts, scores


def test_context_threshold_controls_fpr():
    contexts, scores = _context_data()
    model = ContextAwareThreshold(n_buckets=3, quantile=0.95).fit(
        contexts, scores)
    c2, s2 = _context_data(seed=1)
    fpr = model.false_positive_rate(c2, s2)
    assert abs(fpr - 0.05) < 0.05


def test_context_threshold_beats_global_on_skewed_contexts():
    """Per-context thresholds detect low-context anomalies a global
    95th-percentile threshold hides."""
    contexts, scores = _context_data(seed=2)
    model = ContextAwareThreshold(n_buckets=3).fit(contexts, scores)
    global_thr = float(np.quantile(scores, 0.95))
    # An anomaly in a quiet context: moderate absolute score.
    quiet_context, anomaly_score = 0.05, global_thr * 0.6
    assert anomaly_score < global_thr            # global misses it
    assert model.is_anomalous(quiet_context, anomaly_score)


def test_context_threshold_monotone_buckets():
    contexts, scores = _context_data(seed=3)
    model = ContextAwareThreshold(n_buckets=3).fit(contexts, scores)
    assert model.threshold(0.05) < model.threshold(0.95)


def test_context_threshold_validation():
    with pytest.raises(ValueError):
        ContextAwareThreshold(n_buckets=0)
    with pytest.raises(ValueError):
        ContextAwareThreshold(quantile=0.4)
    model = ContextAwareThreshold()
    with pytest.raises(RuntimeError):
        model.threshold(0.5)
    with pytest.raises(ValueError):
        model.fit([1.0], [1.0])
