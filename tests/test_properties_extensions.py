"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.koopman import ConformalPredictor, RecursiveKoopman, uncertainty_to_coverage
from repro.starnet import ContextAwareThreshold, DriftDetector, ReliabilityWeightedFusion


@given(st.integers(5, 60), st.floats(min_value=0.01, max_value=0.4),
       st.integers(0, 2 ** 20))
@settings(max_examples=40, deadline=None)
def test_conformal_radius_is_a_calibration_score(n, alpha, seed):
    """The radius always equals one of the calibration scores and covers
    at least the requested fraction of them."""
    rng = np.random.default_rng(seed)
    def predict(z, u):
        return np.atleast_2d(z)

    cp = ConformalPredictor(predict)
    z = rng.normal(size=(n, 2))
    u = rng.normal(size=(n, 1))
    z_next = z + rng.normal(0, 0.5, size=(n, 2))
    cp.calibrate(z, u, z_next)
    r = cp.radius(alpha)
    scores = np.linalg.norm(z - z_next, axis=1)
    assert np.any(np.isclose(scores, r))
    assert (scores <= r + 1e-12).mean() >= 1 - alpha - 1.0 / n


@given(st.floats(min_value=1e-3, max_value=10.0),
       st.floats(min_value=1e-3, max_value=10.0))
@settings(max_examples=60, deadline=None)
def test_uncertainty_coverage_bounds(radius, nominal):
    c = uncertainty_to_coverage(radius, nominal)
    assert 0.1 <= c <= 1.0
    # Monotone in the radius.
    assert uncertainty_to_coverage(radius * 2, nominal) >= c - 1e-12


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2,
                max_size=6),
       st.integers(0, 2 ** 20))
@settings(max_examples=50, deadline=None)
def test_fusion_weights_form_distribution(trust_values, seed):
    modalities = {f"m{i}": 2 for i in range(len(trust_values))}
    fusion = ReliabilityWeightedFusion(modalities)
    weights = fusion.weights({f"m{i}": t
                              for i, t in enumerate(trust_values)})
    total = sum(weights.values())
    assert total == pytest.approx(1.0)
    assert all(w >= 0 for w in weights.values())


@given(st.integers(1, 4), st.integers(0, 2 ** 20))
@settings(max_examples=40, deadline=None)
def test_context_threshold_buckets_in_range(n_buckets, seed):
    rng = np.random.default_rng(seed)
    contexts = rng.uniform(0, 1, size=50)
    scores = rng.gamma(2.0, 1.0, size=50)
    model = ContextAwareThreshold(n_buckets=n_buckets).fit(contexts, scores)
    for c in rng.uniform(-1, 2, size=10):
        assert 0 <= model.bucket(float(c)) < n_buckets
        assert model.threshold(float(c)) > 0


@given(st.integers(0, 2 ** 20), st.integers(20, 120))
@settings(max_examples=30, deadline=None)
def test_drift_detector_gap_small_on_constant_stream(seed, n):
    detector = DriftDetector()
    value = float(np.random.default_rng(seed).uniform(0.1, 5.0))
    for _ in range(n):
        fired = detector.update(value)
        assert not fired
    assert abs(detector.gap) < 1e-6 or detector.gap < value * 0.5


@given(st.floats(min_value=0.5, max_value=0.999),
       st.integers(0, 2 ** 20))
@settings(max_examples=30, deadline=None)
def test_rls_theta_finite_under_random_streams(forgetting, seed):
    rng = np.random.default_rng(seed)
    model = RecursiveKoopman(2, 1, forgetting=forgetting)
    for _ in range(40):
        model.update(rng.normal(size=2), rng.normal(size=1),
                     rng.normal(size=2))
    assert np.all(np.isfinite(model.theta))
    assert np.all(np.isfinite(model.p))
