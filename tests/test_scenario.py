"""Tests for the scenario sweep engine (spec, store, engine, driver)."""

import numpy as np
import pytest

from repro.scenario import (
    PLATFORMS,
    TRAFFIC,
    ReplayStore,
    Scenario,
    ScenarioBenchConfig,
    SweepPlan,
    evaluate_scenario,
    run_scenario_sweep_benchmark,
    run_sweep,
    stack_grid,
)


def _plan(**kw):
    defaults = dict(
        stacks=tuple(stack_grid(("snow", "fog"), (0.5, 1.0), depth=2)),
        platforms=("vehicle",), traffics=("urban",), seeds=(0,))
    defaults.update(kw)
    return SweepPlan(**defaults)


# ------------------------------------------------------------------ spec
def test_stack_grid_counts():
    # 2 singles-per-name * 2 sevs = 4 singles; 2 ordered pairs * 4 sev
    # combos = 8 pairs.
    assert len(stack_grid(("snow", "fog"), (0.5, 1.0), depth=2)) == 12
    # The full bench grid: 28 singles + 672 ordered pairs.
    full = stack_grid(
        ("snow", "rain", "fog", "beam_missing", "motion_blur",
         "crosstalk", "cross_sensor"), (0.25, 0.5, 0.75, 1.0), depth=2)
    assert len(full) == 700


def test_plan_expansion_order_deterministic():
    plan = _plan(platforms=("vehicle", "drone"), seeds=(0, 1))
    scenarios = plan.scenarios()
    assert len(scenarios) == plan.count == 12 * 2 * 2
    assert [s.fingerprint() for s in scenarios] == \
        [s.fingerprint() for s in plan.scenarios()]


def test_scenario_rejects_unknown_axes():
    with pytest.raises(ValueError, match="valid platforms"):
        Scenario(stack=(("snow", 0.5),), platform="submarine")
    with pytest.raises(ValueError, match="valid .*regimes"):
        Scenario(stack=(("snow", 0.5),), traffic="gridlock")
    with pytest.raises(ValueError, match="valid corruptions"):
        Scenario(stack=(("hail", 0.5),))


def test_fingerprint_is_content_addressed():
    a = Scenario(stack=(("snow", 0.5),), seed=0)
    b = Scenario(stack=(("snow", 0.5),), seed=0)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != Scenario(stack=(("snow", 0.6),),
                                       seed=0).fingerprint()
    assert a.fingerprint() != Scenario(stack=(("snow", 0.5),),
                                       seed=1).fingerprint()
    # Stage order is semantic: snow-then-fog != fog-then-snow.
    ab = Scenario(stack=(("snow", 0.5), ("fog", 0.5)))
    ba = Scenario(stack=(("fog", 0.5), ("snow", 0.5)))
    assert ab.fingerprint() != ba.fingerprint()


def test_evaluate_scenario_is_position_independent():
    s = Scenario(stack=(("snow", 0.7), ("crosstalk", 0.4)))
    first = evaluate_scenario(s)
    again = evaluate_scenario(Scenario(stack=(("snow", 0.7),
                                              ("crosstalk", 0.4))))
    assert first == again
    assert all(isinstance(v, float) for v in first.values())


# ----------------------------------------------------------------- store
def test_store_roundtrip(tmp_path):
    store = ReplayStore(str(tmp_path))
    entries = {f"{i:02x}deadbeef{i:014x}": {"m": float(i)}
               for i in range(20)}
    store.insert(entries)
    found = store.lookup(list(entries) + ["ffnothere000000000000000"])
    assert found == entries
    info = store.info()
    assert info["entries"] == 20
    assert info["packs"] >= 1


def test_store_corrupt_pack_is_missed_and_evicted(tmp_path):
    store = ReplayStore(str(tmp_path))
    key = "ab" + "0" * 22
    store.insert({key: {"m": 1.0}})
    pack = tmp_path / "pack-ab.pkl"
    pack.write_bytes(b"not a pickle")
    assert store.lookup([key]) == {}
    assert not pack.exists()
    # The store recovers: a fresh insert works.
    store.insert({key: {"m": 2.0}})
    assert store.lookup([key]) == {key: {"m": 2.0}}


# ---------------------------------------------------------------- engine
def test_sweep_replays_from_store(tmp_path):
    plan = _plan()
    store = ReplayStore(str(tmp_path))
    cold = run_sweep(plan, workers=1, store=store)
    assert (cold.executed, cold.replayed) == (plan.count, 0)
    warm = run_sweep(plan, workers=1, store=store)
    assert (warm.executed, warm.replayed) == (0, plan.count)
    assert warm.payload_sha() == cold.payload_sha()
    assert warm.metrics == cold.metrics


def test_sweep_identical_across_worker_counts():
    plan = _plan()
    serial = run_sweep(plan, workers=1)
    pooled = run_sweep(plan, workers=2)
    assert pooled.payload_bytes() == serial.payload_bytes()


def test_sweep_incremental_extension_executes_only_novel(tmp_path):
    store = ReplayStore(str(tmp_path))
    run_sweep(_plan(), workers=1, store=store)
    extended = _plan(seeds=(0, 1))
    result = run_sweep(extended, workers=1, store=store)
    assert result.executed == extended.count // 2
    assert result.replayed == extended.count // 2


def test_sweep_deduplicates_within_one_run():
    scenario = Scenario(stack=(("fog", 0.5),))
    result = run_sweep([scenario, scenario, scenario], workers=1)
    assert result.executed == 1
    assert result.count == 3
    assert result.metrics[0] == result.metrics[1] == result.metrics[2]


def test_sweep_reordered_plan_hits_same_entries(tmp_path):
    store = ReplayStore(str(tmp_path))
    scenarios = _plan().scenarios()
    run_sweep(scenarios, workers=1, store=store)
    reordered = list(reversed(scenarios))
    result = run_sweep(reordered, workers=1, store=store)
    assert result.executed == 0
    assert result.replayed == len(scenarios)


def test_severity_zero_stage_is_free_identity():
    with_zero = Scenario(stack=(("snow", 0.5), ("fog", 0.0)))
    without = Scenario(stack=(("snow", 0.5),))
    # Different content (different fingerprints, different streams) —
    # but both execute, and the severity-0 stage costs nothing.
    assert with_zero.fingerprint() != without.fingerprint()
    metrics = evaluate_scenario(with_zero)
    assert np.isfinite(list(metrics.values())).all()


# ---------------------------------------------------------------- driver
def test_driver_smoke_claims():
    payload = run_scenario_sweep_benchmark(ScenarioBenchConfig.smoke())
    claims = payload["claims"]
    assert claims["identical_across_workers"]
    assert claims["warm_speedup_ok"]
    assert claims["fused_equivalent"]
    assert claims["incremental_only_novel"]
    assert payload["incremental"]["executed"] == \
        payload["incremental"]["novel_expected"]


def test_driver_max_scenarios_cap():
    cfg = ScenarioBenchConfig.smoke()
    from dataclasses import replace
    payload = run_scenario_sweep_benchmark(replace(cfg, max_scenarios=7))
    assert payload["n_scenarios"] == 7
    # The capped widened prefix interleaves cached and novel specs; the
    # novel-only claim must hold against the key-set difference.
    assert payload["claims"]["incremental_only_novel"]
    assert payload["incremental"]["executed"] == \
        payload["incremental"]["novel_expected"]


def test_traffic_and_platform_registries_are_valid():
    for name in PLATFORMS:
        Scenario(stack=(("snow", 0.5),), platform=name)
    for name in TRAFFIC:
        Scenario(stack=(("snow", 0.5),), traffic=name)
