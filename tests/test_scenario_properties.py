"""Property-based tests (hypothesis) for corruption-stack invariants.

The fused corruption kernel is differentially tested against the
sequential reference across randomly drawn stacks, severities, and
seeds; the corruption primitives themselves are checked for the
invariants the scenario engine relies on (severity-0 exact identity,
bounded point counts, fired-mask preservation).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import kernel_backend
from repro.runtime import spawn_rngs
from repro.sim import (
    CORRUPTIONS,
    LidarScanner,
    LidarConfig,
    apply_corruption,
    apply_corruption_stack,
    sample_scene,
)

NAMES = tuple(sorted(CORRUPTIONS))

# Corruptions that fabricate spurious returns vs. those that only
# drop or perturb existing points.
_ADDING = ("snow", "rain", "cross_sensor")
_NON_ADDING = tuple(n for n in NAMES if n not in _ADDING)

severities = st.floats(min_value=0.0, max_value=1.0,
                       allow_nan=False, allow_infinity=False)
stack_lists = st.lists(
    st.tuples(st.sampled_from(NAMES), severities), min_size=1, max_size=4)


def _scan(seed, n_azimuth=24, n_elevation=4):
    scene_rng, scan_rng = spawn_rngs(seed, 2)
    scene = sample_scene(scene_rng, n_cars=2, n_pedestrians=1,
                         n_buildings=1)
    config = LidarConfig(n_azimuth=n_azimuth, n_elevation=n_elevation)
    return LidarScanner(config, rng=scan_rng).scan(scene)


@given(st.sampled_from(NAMES), st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_zero_severity_is_exact_identity(name, seed):
    scan = _scan(seed)
    out = apply_corruption(scan, name, severity=0.0)
    assert out.points is not scan.points
    np.testing.assert_array_equal(out.points, scan.points)
    np.testing.assert_array_equal(out.labels, scan.labels)
    np.testing.assert_array_equal(out.beam_ids, scan.beam_ids)
    np.testing.assert_array_equal(out.fired_mask, scan.fired_mask)
    np.testing.assert_array_equal(out.ranges, scan.ranges)


@given(st.sampled_from(_NON_ADDING), severities, st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_non_adding_corruptions_never_grow_point_count(name, sev, seed):
    scan = _scan(seed)
    out = apply_corruption(scan, name, severity=sev,
                           rng=np.random.default_rng(seed + 1))
    assert 0 <= out.num_points <= scan.num_points


@given(st.sampled_from(_ADDING), severities, st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_spurious_points_are_bounded_and_labelled(name, sev, seed):
    scan = _scan(seed)
    out = apply_corruption(scan, name, severity=sev,
                           rng=np.random.default_rng(seed + 1))
    # Spurious returns are added after dropout, so the total can never
    # exceed the original count plus the labelled spurious points.
    n_spurious = int(np.sum(out.labels == -2))
    assert out.num_points - n_spurious <= scan.num_points
    if sev > 0:
        assert (out.points[out.labels == -2].shape[0] == n_spurious)


@given(stack_lists, st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_stack_preserves_fired_mask_shape(stack, seed):
    scan = _scan(seed)
    out = apply_corruption_stack(scan, stack, seed=seed + 1)
    assert out.fired_mask.shape == scan.fired_mask.shape
    assert out.points.shape[0] == out.labels.shape[0] == \
        out.beam_ids.shape[0] == out.ranges.shape[0]


@given(stack_lists, st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_fused_stack_matches_sequential_reference(stack, seed):
    scan = _scan(seed)
    rngs = spawn_rngs(seed + 1, len(stack))
    rngs_ref = spawn_rngs(seed + 1, len(stack))
    with kernel_backend("vectorized"):
        fused = apply_corruption_stack(scan, stack, rngs=rngs)
    with kernel_backend("reference"):
        ref = apply_corruption_stack(scan, stack, rngs=rngs_ref)
    np.testing.assert_array_equal(fused.points, ref.points)
    np.testing.assert_array_equal(fused.labels, ref.labels)
    np.testing.assert_array_equal(fused.beam_ids, ref.beam_ids)
    np.testing.assert_array_equal(fused.fired_mask, ref.fired_mask)
    np.testing.assert_array_equal(fused.ranges, ref.ranges)


@given(stack_lists, st.integers(0, 200))
@settings(max_examples=30, deadline=None)
def test_stack_seed_path_is_deterministic(stack, seed):
    scan = _scan(seed)
    a = apply_corruption_stack(scan, stack, seed=seed + 1)
    b = apply_corruption_stack(scan, stack, seed=seed + 1)
    np.testing.assert_array_equal(a.points, b.points)
    np.testing.assert_array_equal(a.labels, b.labels)
