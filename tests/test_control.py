"""Tests for the context-aware reconfiguration control plane
(``repro.control``).

Everything deterministic runs under a :class:`VirtualClock` (or the
loop's simulated timebase): actuator registry semantics and scoped
revert, rule validation and hysteresis/cooldown firing, the
``REPRO_CONTROL`` kill switch, the kernel/compile-mode actuators, loop
and micro-batcher integration.  The one threaded test exercises a real
:class:`BatchedService` whose controller retunes the batch size
mid-stream, mirroring ``tests/test_serve.py``.  A static scan pins the
package's no-wall-clock contract at the source level.
"""

import os

import numpy as np
import pytest

from repro.compile import active_mode
from repro.control import (
    ActuatorRegistry,
    ContextSnapshot,
    ControlError,
    Controller,
    EnergyWindow,
    LoopControlBinding,
    Rule,
    ServiceControlBinding,
    SignalSource,
    attr_actuator,
    compile_mode_actuator,
    config_field_actuator,
    control_enabled,
    kernel_backend_actuator,
    microbatcher_actuators,
    precision_bits_actuator,
)
from repro.core import (
    Action,
    Actuator,
    Environment,
    Percept,
    Perception,
    Policy,
    SensingToActionLoop,
    Sensor,
    SensorReading,
    VirtualClock,
)
from repro.hardware.energy import EnergyLedger
from repro.kernels import active_backend
from repro.serve import BatcherConfig, MicroBatcher


class Knob:
    def __init__(self, x=1.0, mode="a"):
        self.x = x
        self.mode = mode


def make_controller(rules=None, knob=None, **kwargs):
    knob = knob or Knob()
    registry = ActuatorRegistry()
    attr_actuator(registry, "knob.x", knob, "x", bounds=(0.0, 10.0))
    attr_actuator(registry, "knob.mode", knob, "mode", choices=("a", "b"))
    rules = rules if rules is not None else [
        Rule("r", signal="s", actuator="knob.x",
             low=0.2, high=0.8, low_value=9.0, high_value=1.0)]
    return Controller(rules, registry, enabled=True), registry, knob


# ------------------------------------------------------------- actuators
def test_actuator_requires_bounds_xor_choices():
    registry = ActuatorRegistry()
    knob = Knob()
    with pytest.raises(ControlError, match="exactly one"):
        registry.register("k", lambda: knob.x,
                          lambda v: setattr(knob, "x", v))
    with pytest.raises(ControlError, match="exactly one"):
        registry.register("k", lambda: knob.x,
                          lambda v: setattr(knob, "x", v),
                          bounds=(0, 1), choices=("a",))


def test_numeric_bounds_clamp_and_int_bounds_stay_integral():
    registry = ActuatorRegistry()
    knob = Knob()
    act = attr_actuator(registry, "f", knob, "x", bounds=(0.5, 2.0))
    act.set(99.0)
    assert knob.x == 2.0
    act.set(-1.0)
    assert knob.x == 0.5
    iknob = Knob(x=4)
    iact = attr_actuator(registry, "i", iknob, "x", bounds=(1, 8))
    iact.set(3.7)
    assert iknob.x == 4 and isinstance(iknob.x, int)
    iact.set(100)
    assert iknob.x == 8


def test_categorical_rejects_unknown_choice():
    registry = ActuatorRegistry()
    act = attr_actuator(registry, "m", Knob(), "mode", choices=("a", "b"))
    with pytest.raises(ControlError, match="not in declared choices"):
        act.set("c")


def test_set_returns_previous_value():
    registry = ActuatorRegistry()
    knob = Knob(x=1.5)
    act = attr_actuator(registry, "f", knob, "x", bounds=(0.0, 10.0))
    assert act.set(3.0) == 1.5
    assert act.set(4.0) == 3.0


def test_registry_names_contains_and_unknown_errors():
    registry = ActuatorRegistry()
    attr_actuator(registry, "f", Knob(), "x", bounds=(0, 1))
    assert registry.names() == ("f",)
    assert "f" in registry and "g" not in registry
    with pytest.raises(ControlError, match="unknown actuator"):
        registry.get("g")
    with pytest.raises(ControlError, match="already registered"):
        attr_actuator(registry, "f", Knob(), "x", bounds=(0, 1))


def test_scope_reverts_on_exit_and_on_exception():
    registry = ActuatorRegistry()
    knob = Knob(x=1.0, mode="a")
    attr_actuator(registry, "f", knob, "x", bounds=(0.0, 10.0))
    attr_actuator(registry, "m", knob, "mode", choices=("a", "b"))
    with registry.scope():
        registry.set("f", 5.0)
        registry.set("m", "b")
        assert (knob.x, knob.mode) == (5.0, "b")
    assert (knob.x, knob.mode) == (1.0, "a")
    with pytest.raises(RuntimeError, match="boom"):
        with registry.scope():
            registry.set("f", 7.0)
            raise RuntimeError("boom")
    assert knob.x == 1.0


def test_config_field_actuator_replaces_frozen_config():
    batcher = MicroBatcher(lambda xs: xs,
                           BatcherConfig(max_batch_size=2,
                                         max_queue_depth=32),
                           clock=VirtualClock())
    registry = ActuatorRegistry()
    act = config_field_actuator(registry, "b", batcher, "max_batch_size",
                                bounds=(1, 16))
    original = batcher.config
    act.set(8)
    assert batcher.config.max_batch_size == 8
    assert original.max_batch_size == 2  # frozen value untouched
    with pytest.raises(ControlError, match="no field"):
        config_field_actuator(registry, "bad", batcher, "nope",
                              bounds=(0, 1))


def test_kernel_and_compile_actuators_revert_under_scope():
    from repro.compile import force_mode
    from repro.kernels import force_backend

    registry = ActuatorRegistry()
    kernel_backend_actuator(registry)
    compile_mode_actuator(registry)
    backend0, mode0 = active_backend(), active_mode()
    other = "reference" if backend0 == "vectorized" else "vectorized"
    try:
        with registry.scope():
            registry.set("kernel_backend", other)
            registry.set("compile_mode", "compiled")
            assert active_backend() == other
            assert active_mode() == "compiled"
        assert active_backend() == backend0
        assert active_mode() == mode0
    finally:
        # The scope revert re-installs the *resolved* value as a forced
        # override (the actuator cannot see "no override"); clear it so
        # env-var selection keeps working for the rest of the session.
        force_backend(None)
        force_mode(None)


def test_precision_bits_actuator_choices():
    registry = ActuatorRegistry()
    model = Knob(x=32)
    precision_bits_actuator(registry, model, attr="x")
    registry.set("precision_bits", 8)
    assert model.x == 8
    with pytest.raises(ControlError):
        registry.set("precision_bits", 7)


# ----------------------------------------------------------------- rules
def test_rule_validation():
    with pytest.raises(ControlError, match="low < high"):
        Rule("r", "s", "a", low=0.8, high=0.2, low_value=1, high_value=2)
    with pytest.raises(ControlError, match="identical"):
        Rule("r", "s", "a", low=0.2, high=0.8, low_value=1, high_value=1)
    with pytest.raises(ControlError, match="cooldown"):
        Rule("r", "s", "a", low=0.2, high=0.8, low_value=1, high_value=2,
             cooldown_s=-1.0)


def test_controller_validates_wiring_at_construction():
    registry = ActuatorRegistry()
    attr_actuator(registry, "m", Knob(), "mode", choices=("a", "b"))
    rule = Rule("r", "s", "m", low=0.2, high=0.8,
                low_value="a", high_value="b")
    with pytest.raises(ControlError, match="duplicate rule"):
        Controller([rule, rule], registry, enabled=True)
    with pytest.raises(ControlError, match="unregistered actuator"):
        Controller([Rule("q", "s", "ghost", low=0, high=1,
                         low_value=1, high_value=2)],
                   registry, enabled=True)
    with pytest.raises(ControlError, match="not in actuator"):
        Controller([Rule("q", "s", "m", low=0, high=1,
                         low_value="a", high_value="z")],
                   registry, enabled=True)


def test_hysteresis_band_fires_nothing():
    controller, _, knob = make_controller()
    controller.step(ContextSnapshot(t=0.0, signals={"s": 0.5}))
    assert knob.x == 1.0 and controller.decisions == []
    controller.step(ContextSnapshot(t=1.0, signals={"s": 0.1}))
    assert knob.x == 9.0
    controller.step(ContextSnapshot(t=2.0, signals={"s": 0.5}))
    assert knob.x == 9.0  # band holds the last setting
    controller.step(ContextSnapshot(t=3.0, signals={"s": 0.9}))
    assert knob.x == 1.0
    assert [d.rule for d in controller.decisions] == ["r", "r"]
    assert [d.old for d in controller.decisions] == [1.0, 9.0]


def test_missing_signal_leaves_rule_dormant():
    controller, _, knob = make_controller()
    controller.step(ContextSnapshot(t=0.0, signals={"other": 0.0}))
    assert knob.x == 1.0 and controller.steps == 1


def test_cooldown_suppresses_then_allows():
    controller, _, knob = make_controller(rules=[
        Rule("r", signal="s", actuator="knob.x",
             low=0.2, high=0.8, low_value=9.0, high_value=1.0,
             cooldown_s=1.0)])
    controller.step(ContextSnapshot(t=0.0, signals={"s": 0.0}))
    assert knob.x == 9.0
    controller.step(ContextSnapshot(t=0.5, signals={"s": 1.0}))
    assert knob.x == 9.0 and controller.suppressed_cooldown == 1
    controller.step(ContextSnapshot(t=1.0, signals={"s": 1.0}))
    assert knob.x == 1.0
    assert controller.last_fired("r") == 1.0


def test_no_refire_when_already_at_target():
    controller, _, knob = make_controller()
    for t in range(5):
        controller.step(ContextSnapshot(t=float(t), signals={"s": 0.0}))
    assert len(controller.decisions) == 1  # applied once, then steady


def test_disabled_controller_is_inert():
    registry = ActuatorRegistry()
    knob = Knob()
    attr_actuator(registry, "knob.x", knob, "x", bounds=(0.0, 10.0))
    controller = Controller(
        [Rule("r", "s", "knob.x", low=0.2, high=0.8,
              low_value=9.0, high_value=1.0)],
        registry, enabled=False)
    assert controller.step(ContextSnapshot(t=0.0, signals={"s": 0.0})) == []
    assert knob.x == 1.0 and controller.steps == 0


def test_repro_control_env_gate(monkeypatch):
    monkeypatch.setenv("REPRO_CONTROL", "off")
    assert not control_enabled()
    registry = ActuatorRegistry()
    knob = Knob()
    attr_actuator(registry, "knob.x", knob, "x", bounds=(0.0, 10.0))
    env_controller = Controller(
        [Rule("r", "s", "knob.x", low=0.2, high=0.8,
              low_value=9.0, high_value=1.0)], registry)  # enabled=None
    env_controller.step(ContextSnapshot(t=0.0, signals={"s": 0.0}))
    assert knob.x == 1.0
    monkeypatch.setenv("REPRO_CONTROL", "on")
    assert control_enabled()
    monkeypatch.setenv("REPRO_CONTROL", "maybe")
    with pytest.raises(ControlError, match="REPRO_CONTROL"):
        control_enabled()


def test_decision_trace_and_bounded_retention():
    registry = ActuatorRegistry()
    knob = Knob()
    attr_actuator(registry, "knob.x", knob, "x", bounds=(0.0, 10.0))
    controller = Controller(
        [Rule("r", "s", "knob.x", low=0.2, high=0.8,
              low_value=9.0, high_value=1.0)],
        registry, enabled=True, max_decisions=3)
    for i in range(6):  # alternate below/above the band every step
        s = 0.0 if i % 2 == 0 else 1.0
        controller.step(ContextSnapshot(t=float(i), signals={"s": s}))
    assert len(controller.decisions) == 3
    assert controller.dropped_decisions == 3
    trace = controller.decision_trace()
    assert [d["t"] for d in trace] == [3.0, 4.0, 5.0]
    assert {"t", "rule", "actuator", "signal", "signal_value", "old",
            "new", "context"} <= set(trace[0])


# --------------------------------------------------------------- signals
def test_energy_window_read_resets_peek_does_not():
    ledger = EnergyLedger()
    window = EnergyWindow(ledger)
    ledger.charge_sensing(2.0)
    assert window.peek()["sensing_mj"] == pytest.approx(2.0)
    assert window.peek()["sensing_mj"] == pytest.approx(2.0)
    assert window.read()["total_mj"] == pytest.approx(2.0)
    assert window.read()["total_mj"] == pytest.approx(0.0)


def test_signal_source_omits_none_and_merges_extra():
    source = SignalSource()
    source.register("a", lambda: 1.0)
    source.register("b", lambda: None)
    snap = source.sample(2.5, extra={"c": 3})
    assert snap.t == 2.5
    assert snap.signals == {"a": 1.0, "c": 3.0}
    assert snap.get("b") is None
    assert snap.as_dict()["t"] == 2.5


# ------------------------------------------------------ loop integration
class _FractionSensor(Sensor):
    def __init__(self):
        self.fraction = 0.3

    def sense(self, env, directive, t):
        return SensorReading(data=np.zeros(2), timestamp=t,
                             coverage=self.fraction)


class _PassPerception(Perception):
    def perceive(self, reading):
        return Percept(features=np.asarray(reading.data))


class _NullPolicy(Policy):
    def act(self, percept, t):
        return Action(command=None)


class _NullActuator(Actuator):
    def actuate(self, env, action, t):
        return 0.0


class _ScriptedEnv(Environment):
    def observe_state(self):
        return np.zeros(2)

    def advance(self, dt):
        pass


class _ScriptedMonitor:
    """Trust follows a script, indexed by assessment count."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def assess(self, percept):
        trust = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        return trust


def test_loop_controller_retunes_sensing_fraction():
    sensor = _FractionSensor()
    registry = ActuatorRegistry()
    attr_actuator(registry, "sensor.fraction", sensor, "fraction",
                  bounds=(0.1, 1.0))
    controller = Controller(
        [Rule("boost", signal="trust", actuator="sensor.fraction",
              low=0.55, high=0.92, low_value=0.9, high_value=0.3)],
        registry, enabled=True)
    monitor = _ScriptedMonitor([1.0, 1.0, 0.4, 0.4, 1.0, 1.0])
    loop = SensingToActionLoop(
        sensor, _PassPerception(), _NullPolicy(), _NullActuator(),
        monitor=monitor, trust_threshold=0.2, period_s=0.05,
        clock=VirtualClock(),
        controller=LoopControlBinding(controller))
    loop.run(_ScriptedEnv(), 6)
    coverages = [r.reading.coverage for r in loop.history]
    # Trust dips at cycle 2 -> the *next* cycle senses at 0.9; recovers
    # at cycle 4 -> cycle 5 is lean again.
    assert coverages == [0.3, 0.3, 0.3, 0.9, 0.9, 0.3]
    trace = controller.decision_trace()
    assert [d["new"] for d in trace] == [0.9, 0.3]
    # Snapshots are stamped with loop.t (simulated time), which at the
    # cycle-end hook reads (cycle_index + 1) * period_s.
    assert trace[0]["t"] == pytest.approx(3 * 0.05)
    assert loop.metrics.cycles == 6


def test_loop_binding_interval_and_energy_signal():
    sensor = _FractionSensor()
    registry = ActuatorRegistry()
    attr_actuator(registry, "sensor.fraction", sensor, "fraction",
                  bounds=(0.1, 1.0))
    controller = Controller([
        Rule("nop", signal="trust", actuator="sensor.fraction",
             low=-2.0, high=-1.0, low_value=0.9, high_value=0.3)],
        registry, enabled=True)
    binding = LoopControlBinding(controller, interval_cycles=3)
    seen = []
    binding.add_signal("probe", lambda: seen.append(1) or 1.0)
    loop = SensingToActionLoop(
        sensor, _PassPerception(), _NullPolicy(), _NullActuator(),
        monitor=_ScriptedMonitor([1.0]), period_s=0.05,
        clock=VirtualClock(), controller=binding)
    loop.run(_ScriptedEnv(), 7)
    assert controller.steps == 2  # cycles 3 and 6 only
    assert len(seen) == 2
    with pytest.raises(ValueError):
        LoopControlBinding(controller, interval_cycles=0)


# ------------------------------------------------- batcher integration
def test_microbatcher_controller_retunes_batch_size():
    clock = VirtualClock()
    batcher = MicroBatcher(lambda xs: xs,
                           BatcherConfig(max_batch_size=2, max_wait_ms=0.0,
                                         max_queue_depth=64),
                           clock=clock)
    registry = ActuatorRegistry()
    microbatcher_actuators(registry, batcher, prefix="serve")
    controller = Controller(
        [Rule("batch_up", signal="queue_depth",
              actuator="serve.max_batch_size",
              low=1.0, high=4.0, low_value=2, high_value=8)],
        registry, enabled=True)
    batcher.controller = ServiceControlBinding(controller)

    for i in range(8):
        batcher.submit(i)
    # First poll runs a batch of 2; the post-batch hook sees 6 queued
    # (>= high) and raises max_batch_size to 8 for the next poll.
    assert batcher.poll() == 2
    assert batcher.config.max_batch_size == 8
    assert batcher.poll() == 6
    assert controller.decision_trace()[0]["new"] == 8


def test_batched_service_threaded_controller_adapts():
    import threading

    from repro.serve import BatchedService

    registry = ActuatorRegistry()
    state = {"service": None}

    def runner(items):
        return [x * x for x in items]

    config = BatcherConfig(max_batch_size=2, max_wait_ms=20.0,
                           max_queue_depth=64)
    controller_holder = {}

    with BatchedService(runner, config) as service:
        microbatcher_actuators(registry, service.batcher, prefix="serve")
        controller = Controller(
            [Rule("batch_up", signal="queue_depth",
                  actuator="serve.max_batch_size",
                  low=0.5, high=3.0, low_value=2, high_value=8)],
            registry, enabled=True)
        service.batcher.controller = ServiceControlBinding(controller)
        controller_holder["c"] = controller
        state["service"] = service

        results = {}

        def client(i):
            results[i] = service.submit(i, timeout=10.0)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert results == {i: i * i for i in range(16)}
    # The hook ran under the batcher lock after every batch; whether the
    # rule fired depends on thread interleaving, but the controller
    # must have stepped and any applied setting must be admissible.
    controller = controller_holder["c"]
    assert controller.steps >= 1
    assert state["service"].batcher.config.max_batch_size in (2, 8)


# ------------------------------------------------------ source hygiene
def test_control_package_never_reads_the_wall_clock():
    import repro.control as control_pkg

    pkg_dir = os.path.dirname(control_pkg.__file__)
    offenders = []
    for fname in sorted(os.listdir(pkg_dir)):
        if not fname.endswith(".py"):
            continue
        with open(os.path.join(pkg_dir, fname)) as f:
            source = f.read()
        for needle in ("time.sleep", "time.time(", "time.monotonic(",
                       "time.perf_counter(", "import time"):
            if needle in source:
                offenders.append(f"{fname}: {needle}")
    assert not offenders, (
        "repro.control must be wall-clock-free; time only enters via "
        f"ContextSnapshot.t. Found: {offenders}")
