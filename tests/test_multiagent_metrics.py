"""Tests for multi-agent coordination and shared metrics (AUC, ROC)."""

import numpy as np
import pytest

from repro.metrics import average_endpoint_error, flow_outlier_fraction, roc_auc, roc_curve
from repro.multiagent import (
    compare_swarm_strategies,
    coverage_redundancy,
    minimal_radius,
    plan_coordinated_step,
    rectangular_partition,
    run_coordinated,
    voronoi_partition,
)
from repro.sim import GridWorldConfig


# ---------------------------------------------------------------- coverage
def test_voronoi_partition_covers_grid():
    parts = voronoi_partition(6, [(1, 1), (4, 4)])
    total = sum(len(cells) for cells in parts.values())
    assert total == 36
    # Cells near each agent belong to it.
    assert (1, 1) in parts[0]
    assert (4, 4) in parts[1]


def test_voronoi_partition_requires_agents():
    with pytest.raises(ValueError):
        voronoi_partition(4, [])


def test_minimal_radius_exact():
    assert minimal_radius((0, 0), [(0, 0)]) == 0
    assert minimal_radius((0, 0), [(3, 4)]) == 5
    assert minimal_radius((5, 5), []) == 0


def test_coverage_redundancy():
    assert coverage_redundancy([{(0, 0)}, {(0, 0)}]) == pytest.approx(2.0)
    assert coverage_redundancy([{(0, 0)}, {(1, 1)}]) == pytest.approx(1.0)


def test_rectangular_partition_balanced():
    regions = rectangular_partition(12, 4)
    assert len(regions) == 4
    total = sum(len(r) for r in regions)
    assert total == 144
    sizes = [len(r) for r in regions]
    assert max(sizes) - min(sizes) <= 12  # near-equal areas


def test_rectangular_partition_no_overlap():
    regions = rectangular_partition(10, 5)
    seen = set()
    for region in regions:
        for cell in region:
            assert cell not in seen
            seen.add(cell)


def test_rectangular_partition_validation():
    with pytest.raises(ValueError):
        rectangular_partition(8, 0)


def test_plan_coordinated_step_moves_toward_regions():
    commands = plan_coordinated_step(12, [(0, 0), (11, 11), (0, 11),
                                          (11, 0)])
    assert len(commands) == 4
    for (dx, dy), radius in commands:
        assert dx in (-1, 0, 1) and dy in (-1, 0, 1)
        assert radius >= 0


def test_coordinated_radii_shrink_as_agents_settle():
    size = 12
    positions = [(0, 0), (11, 11), (0, 11), (11, 0)]
    radii_before = [r for _, r in plan_coordinated_step(size, positions)]
    # March agents toward their stations for a while.
    for _ in range(10):
        commands = plan_coordinated_step(size, positions)
        positions = [(p[0] + c[0][0], p[1] + c[0][1])
                     for p, c in zip(positions, commands)]
    radii_after = [r for _, r in plan_coordinated_step(size, positions)]
    assert sum(radii_after) <= sum(radii_before)


# ------------------------------------------------------------------ swarm
def test_swarm_strategies_comparable_detection():
    res = compare_swarm_strategies(steps=30, seed=1)
    un, co = res["uncoordinated"], res["coordinated"]
    assert un.detection_rate > 0.8
    assert co.detection_rate > 0.8
    assert abs(un.detection_rate - co.detection_rate) < 0.2


def test_swarm_coordination_saves_energy():
    res = compare_swarm_strategies(steps=30, seed=2)
    ratio = (res["uncoordinated"].total_energy_mj
             / res["coordinated"].total_energy_mj)
    assert ratio > 2.0  # the paper's ~3x claim at our scale


def test_swarm_coordination_reduces_redundancy():
    res = compare_swarm_strategies(steps=30, seed=3)
    assert (res["coordinated"].mean_redundancy
            < res["uncoordinated"].mean_redundancy)


def test_swarm_energy_per_detection():
    res = run_coordinated(GridWorldConfig(size=10, n_agents=4), steps=20,
                          seed=4)
    assert res.energy_per_detection() > 0


def test_swarm_runs_with_odd_agent_counts():
    cfg = GridWorldConfig(size=9, n_agents=3)
    res = run_coordinated(cfg, steps=10, seed=5)
    assert res.steps == 10


# ---------------------------------------------------------------- metrics
def test_roc_auc_perfect_separation():
    scores = [0.1, 0.2, 0.8, 0.9]
    labels = [0, 0, 1, 1]
    assert roc_auc(scores, labels) == 1.0


def test_roc_auc_inverted():
    assert roc_auc([0.9, 0.8, 0.1, 0.2], [0, 0, 1, 1]) == 0.0


def test_roc_auc_random_is_half():
    rng = np.random.default_rng(6)
    scores = rng.random(2000)
    labels = rng.integers(0, 2, 2000)
    assert abs(roc_auc(scores, labels) - 0.5) < 0.05


def test_roc_auc_ties_midrank():
    # All equal scores -> AUC exactly 0.5.
    assert roc_auc([0.5, 0.5, 0.5, 0.5], [0, 1, 0, 1]) == pytest.approx(0.5)


def test_roc_auc_degenerate_single_class_is_chance_level():
    # No negatives (or no positives): no separation evidence, defined 0.5.
    assert roc_auc([0.5, 0.6], [1, 1]) == 0.5
    assert roc_auc([0.5, 0.6], [0, 0]) == 0.5


def test_roc_auc_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        roc_auc([0.5, 0.6, 0.7], [1, 0])


def test_roc_curve_endpoints():
    fpr, tpr = roc_curve([0.9, 0.1, 0.8, 0.2], [1, 0, 1, 0])
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == 1.0 and tpr[-1] == 1.0
    assert np.all(np.diff(fpr) >= 0)


def test_roc_curve_validation():
    with pytest.raises(ValueError):
        roc_curve([0.5], [2])


def test_flow_outlier_fraction():
    pred = np.zeros((2, 4, 4))
    target = np.zeros((2, 4, 4))
    target[0, 0, 0] = 10.0
    assert flow_outlier_fraction(pred, target, threshold=3.0) == \
        pytest.approx(1 / 16)


def test_aee_shape_validation():
    with pytest.raises(ValueError):
        average_endpoint_error(np.zeros((3, 4, 4)), np.zeros((3, 4, 4)))
    with pytest.raises(ValueError):
        average_endpoint_error(np.zeros((2, 4, 4)), np.zeros((2, 4, 4)),
                               mask=np.zeros((2, 2), dtype=bool))
