"""Property-based tests for the control plane's safety guarantees.

Hypothesis drives the :class:`repro.control.Controller` with adversarial
signal trajectories and rule declarations to pin the four contracts the
package docstring promises:

* actuated values never leave the declared bounds, whatever a rule asks
  for;
* a monotone signal trajectory can never oscillate an actuator — once a
  setting is abandoned it is never revisited (no A->B->A);
* consecutive firings of one rule are always at least ``cooldown_s``
  apart, under arbitrary step timing;
* a constant context reconfigures at most once per rule — after the
  initial alignment, the controller is quiescent.

All time is explicit snapshot time; nothing here (or in the package)
touches a wall clock, so every failing example shrinks and replays
exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    ActuatorRegistry,
    ContextSnapshot,
    Controller,
    Rule,
    attr_actuator,
)


class Knob:
    def __init__(self, x):
        self.x = x


def build(low, high, low_value, high_value, cooldown_s=0.0,
          bounds=(0.0, 1.0), start=None):
    knob = Knob(start if start is not None else bounds[0])
    registry = ActuatorRegistry()
    attr_actuator(registry, "k", knob, "x", bounds=bounds)
    controller = Controller(
        [Rule("r", signal="s", actuator="k", low=low, high=high,
              low_value=low_value, high_value=high_value,
              cooldown_s=cooldown_s)],
        registry, enabled=True)
    return controller, knob


finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@st.composite
def band(draw):
    low = draw(st.floats(min_value=-100, max_value=100,
                         allow_nan=False, allow_infinity=False))
    width = draw(st.floats(min_value=1e-3, max_value=100,
                           allow_nan=False, allow_infinity=False))
    return low, low + width


@settings(max_examples=200, deadline=None)
@given(b=band(),
       low_value=finite, high_value=finite,
       signals=st.lists(finite, min_size=1, max_size=40))
def test_actuated_value_always_within_bounds(b, low_value, high_value,
                                             signals):
    """Rules may request any setting; the knob never leaves its bounds."""
    if low_value == high_value:
        low_value, high_value = low_value, low_value + 1.0
    low, high = b
    controller, knob = build(low, high, low_value, high_value,
                             bounds=(0.0, 1.0), start=0.5)
    for i, s in enumerate(signals):
        controller.step(ContextSnapshot(t=float(i), signals={"s": s}))
        assert 0.0 <= knob.x <= 1.0


@settings(max_examples=200, deadline=None)
@given(b=band(),
       signals=st.lists(finite, min_size=1, max_size=40),
       increasing=st.booleans(),
       start=st.sampled_from([0.0, 0.25, 1.0]))
def test_monotone_trajectory_never_oscillates(b, signals, increasing,
                                              start):
    """Under a monotone signal, an abandoned setting never returns."""
    low, high = b
    controller, knob = build(low, high, low_value=0.0, high_value=1.0,
                             bounds=(0.0, 1.0), start=start)
    trajectory = sorted(signals, reverse=not increasing)
    for i, s in enumerate(trajectory):
        controller.step(ContextSnapshot(t=float(i), signals={"s": s}))
    fired = [d.new for d in controller.decisions]
    # Each threshold is crossed at most once, so at most two firings,
    # never the same setting twice (a repeat would mean the rule
    # re-applied an abandoned value — flapping).
    assert len(fired) <= 2, fired
    assert len(fired) == len(set(fired)), fired
    # And the firing order follows the sweep direction: an increasing
    # signal can only go low_value -> high_value, decreasing the
    # reverse — the controller never moves against the trajectory.
    expected_order = [0.0, 1.0] if increasing else [1.0, 0.0]
    assert fired == [v for v in expected_order if v in fired]


@settings(max_examples=200, deadline=None)
@given(cooldown_s=st.floats(min_value=0.0, max_value=10.0,
                            allow_nan=False),
       steps=st.lists(
           st.tuples(st.floats(min_value=0.0, max_value=5.0,
                               allow_nan=False),  # dt between snapshots
                     st.sampled_from([-10.0, 0.5, 10.0])),  # signal
           min_size=1, max_size=60))
def test_cooldown_spacing_under_arbitrary_timing(cooldown_s, steps):
    """Consecutive firings of one rule are >= cooldown_s apart."""
    controller, _ = build(low=0.0, high=1.0, low_value=0.0,
                          high_value=1.0, cooldown_s=cooldown_s,
                          bounds=(0.0, 1.0), start=0.5)
    t = 0.0
    for dt, s in steps:
        t += dt
        controller.step(ContextSnapshot(t=t, signals={"s": s}))
    times = [d.t for d in controller.decisions]
    for earlier, later in zip(times, times[1:]):
        assert later - earlier >= cooldown_s, times


@settings(max_examples=200, deadline=None)
@given(signal=finite,
       b=band(),
       n_steps=st.integers(min_value=1, max_value=50),
       start=st.sampled_from([0.0, 0.5, 1.0]))
def test_constant_context_reconfigures_at_most_once(signal, b, n_steps,
                                                    start):
    """A constant world yields at most one decision, on the first step."""
    low, high = b
    controller, _ = build(low, high, low_value=0.0, high_value=1.0,
                          bounds=(0.0, 1.0), start=start)
    for i in range(n_steps):
        controller.step(ContextSnapshot(t=float(i), signals={"s": signal}))
    assert len(controller.decisions) <= 1
    if controller.decisions:
        assert controller.decisions[0].t == 0.0
    assert controller.steps == n_steps


@settings(max_examples=100, deadline=None)
@given(signals=st.lists(finite, min_size=1, max_size=40),
       b=band())
def test_step_decisions_match_retained_trace(signals, b):
    """What step() returns is exactly what the trace retains, in order."""
    low, high = b
    controller, _ = build(low, high, low_value=0.0, high_value=1.0,
                          bounds=(0.0, 1.0), start=0.5)
    returned = []
    for i, s in enumerate(signals):
        returned.extend(
            controller.step(ContextSnapshot(t=float(i), signals={"s": s})))
    assert returned == controller.decisions
