"""Unit tests for loss functions: values and gradients."""

import numpy as np
import pytest

from gradcheck import numeric_gradient
from repro.nn import (
    bce_with_logits,
    cross_entropy_with_logits,
    gaussian_kl,
    huber_loss,
    info_nce,
    mse_loss,
    softmax,
)

RNG = np.random.default_rng(11)


def test_mse_zero_at_match():
    x = RNG.normal(size=(4, 3))
    loss, grad = mse_loss(x, x.copy())
    assert loss == 0.0
    np.testing.assert_array_equal(grad, 0.0)


def test_mse_gradient_numeric():
    pred = RNG.normal(size=(3, 4))
    target = RNG.normal(size=(3, 4))
    _, grad = mse_loss(pred, target)
    num = numeric_gradient(lambda: mse_loss(pred, target)[0], pred)
    np.testing.assert_allclose(grad, num, rtol=1e-5, atol=1e-8)


def test_huber_quadratic_region_matches_half_mse():
    pred = np.array([0.5, -0.3])
    target = np.zeros(2)
    loss, _ = huber_loss(pred, target, delta=1.0)
    assert loss == pytest.approx(0.5 * np.mean(pred ** 2))


def test_huber_linear_tail():
    loss, grad = huber_loss(np.array([10.0]), np.zeros(1), delta=1.0)
    assert loss == pytest.approx(10.0 - 0.5)
    assert grad[0] == pytest.approx(1.0)


def test_bce_with_logits_matches_manual():
    logits = np.array([0.0, 2.0, -2.0])
    target = np.array([1.0, 1.0, 0.0])
    loss, _ = bce_with_logits(logits, target)
    p = 1 / (1 + np.exp(-logits))
    manual = -np.mean(target * np.log(p) + (1 - target) * np.log(1 - p))
    assert loss == pytest.approx(manual, rel=1e-9)


def test_bce_gradient_numeric():
    logits = RNG.normal(size=(6,))
    target = (RNG.random(6) > 0.5).astype(float)
    _, grad = bce_with_logits(logits, target)
    num = numeric_gradient(lambda: bce_with_logits(logits, target)[0], logits)
    np.testing.assert_allclose(grad, num, rtol=1e-5, atol=1e-8)


def test_bce_weighting_scales_loss():
    logits = np.array([1.0, -1.0])
    target = np.array([1.0, 0.0])
    base, _ = bce_with_logits(logits, target)
    weighted, _ = bce_with_logits(logits, target, weight=np.array([2.0, 2.0]))
    assert weighted == pytest.approx(2 * base)


def test_bce_extreme_logits_finite():
    loss, grad = bce_with_logits(np.array([1000.0, -1000.0]),
                                 np.array([0.0, 1.0]))
    assert np.isfinite(loss) and np.all(np.isfinite(grad))


def test_softmax_rows_sum_to_one():
    p = softmax(RNG.normal(size=(5, 7)) * 30)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-12)
    assert np.all(p >= 0)


def test_cross_entropy_perfect_prediction():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    loss, _ = cross_entropy_with_logits(logits, np.array([0, 1]))
    assert loss == pytest.approx(0.0, abs=1e-9)


def test_cross_entropy_gradient_numeric():
    logits = RNG.normal(size=(4, 3))
    labels = np.array([0, 2, 1, 1])
    _, grad = cross_entropy_with_logits(logits, labels)
    num = numeric_gradient(
        lambda: cross_entropy_with_logits(logits, labels)[0], logits)
    np.testing.assert_allclose(grad, num, rtol=1e-5, atol=1e-8)


def test_info_nce_aligned_pairs_have_low_loss():
    z = np.eye(4) * 10
    aligned, _, _ = info_nce(z, z)
    shuffled, _, _ = info_nce(z, np.roll(z, 1, axis=0))
    assert aligned < shuffled


def test_info_nce_gradients_numeric():
    q = RNG.normal(size=(4, 3))
    k = RNG.normal(size=(4, 3))
    _, gq, gk = info_nce(q, k, temperature=0.5)
    num_q = numeric_gradient(lambda: info_nce(q, k, temperature=0.5)[0], q)
    num_k = numeric_gradient(lambda: info_nce(q, k, temperature=0.5)[0], k)
    np.testing.assert_allclose(gq, num_q, rtol=1e-4, atol=1e-7)
    np.testing.assert_allclose(gk, num_k, rtol=1e-4, atol=1e-7)


def test_gaussian_kl_zero_at_standard_normal():
    mu = np.zeros((3, 4))
    logvar = np.zeros((3, 4))
    kl, gmu, glv = gaussian_kl(mu, logvar)
    assert kl == pytest.approx(0.0)
    np.testing.assert_array_equal(gmu, 0.0)
    np.testing.assert_array_equal(glv, 0.0)


def test_gaussian_kl_positive_otherwise():
    kl, _, _ = gaussian_kl(np.ones((2, 3)), np.ones((2, 3)) * 0.5)
    assert kl > 0


def test_gaussian_kl_gradients_numeric():
    mu = RNG.normal(size=(2, 3))
    logvar = RNG.normal(size=(2, 3)) * 0.3
    _, gmu, glv = gaussian_kl(mu, logvar)
    num_mu = numeric_gradient(lambda: gaussian_kl(mu, logvar)[0], mu)
    num_lv = numeric_gradient(lambda: gaussian_kl(mu, logvar)[0], logvar)
    np.testing.assert_allclose(gmu, num_mu, rtol=1e-5, atol=1e-8)
    np.testing.assert_allclose(glv, num_lv, rtol=1e-5, atol=1e-8)
