"""Hypothesis parity tests for the batched inference forward paths.

The serving runtime's whole correctness story is the
:meth:`repro.nn.Module.forward_batch` contract: a batched forward must
produce, row for row, exactly what the per-sample ``forward`` would
(up to BLAS re-association), without touching any instance state.
These properties pin that down for every ``repro.nn`` layer and for
each pillar's batched serving entry point.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Percept
from repro.nn import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ConvTranspose2d,
    Dense,
    Dropout,
    Flatten,
    GRUCell,
    Identity,
    LayerNorm,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    mlp,
)

ATOL = 1e-9

seeds = st.integers(min_value=0, max_value=10_000)
batch_sizes = st.integers(min_value=1, max_value=5)


def _primed_batchnorm(rng):
    """BatchNorm with non-trivial running statistics (one training step)."""
    bn = BatchNorm(5)
    bn.forward(rng.normal(size=(8, 5)))
    bn.zero_grad()
    bn._cache = None
    return bn


# (name, builder(rng) -> layer, per-sample input shape sans batch axis)
LAYER_CASES = [
    ("dense", lambda rng: Dense(5, 3, rng=rng), (5,)),
    ("dense_nobias", lambda rng: Dense(4, 4, rng=rng, bias=False), (4,)),
    ("relu", lambda rng: ReLU(), (7,)),
    ("leaky_relu", lambda rng: LeakyReLU(), (7,)),
    ("tanh", lambda rng: Tanh(), (6,)),
    ("sigmoid", lambda rng: Sigmoid(), (6,)),
    ("softplus", lambda rng: Softplus(), (6,)),
    ("identity", lambda rng: Identity(), (5,)),
    ("dropout", lambda rng: Dropout(0.5, rng=rng), (8,)),
    ("layernorm", lambda rng: LayerNorm(5), (5,)),
    ("batchnorm", _primed_batchnorm, (5,)),
    ("flatten", lambda rng: Flatten(), (2, 3, 4)),
    ("conv2d", lambda rng: Conv2d(2, 3, kernel=3, stride=1, pad=1,
                                  rng=rng), (2, 6, 6)),
    ("conv2d_stride2", lambda rng: Conv2d(2, 3, kernel=3, stride=2,
                                          pad=1, rng=rng), (2, 8, 8)),
    ("deconv", lambda rng: ConvTranspose2d(2, 3, kernel=4, stride=2,
                                           pad=1, rng=rng), (2, 5, 5)),
    ("maxpool", lambda rng: MaxPool2d(2), (2, 6, 6)),
    ("avgpool", lambda rng: AvgPool2d(2), (2, 6, 6)),
    ("gru", lambda rng: GRUCell(4, 6, rng=rng), (4,)),
    ("mlp", lambda rng: mlp([5, 8, 3], rng=rng), (5,)),
    ("sequential_conv", lambda rng: Sequential(
        Conv2d(2, 4, kernel=3, stride=1, pad=1, rng=rng), ReLU(),
        MaxPool2d(2), Flatten(), Dense(4 * 3 * 3, 2, rng=rng)), (2, 6, 6)),
]


@pytest.mark.parametrize("name,build,shape",
                         LAYER_CASES, ids=[c[0] for c in LAYER_CASES])
@given(batch=batch_sizes, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_forward_batch_matches_stacked_per_sample(name, build, shape,
                                                  batch, seed):
    rng = np.random.default_rng(seed)
    layer = build(rng).eval()
    x = rng.normal(size=(batch,) + shape)
    batched = layer.forward_batch(x)
    per_sample = np.concatenate(
        [layer.forward(x[i:i + 1]) for i in range(batch)])
    np.testing.assert_allclose(batched, per_sample, atol=ATOL, rtol=ATOL)


@pytest.mark.parametrize("name,build,shape",
                         LAYER_CASES, ids=[c[0] for c in LAYER_CASES])
@given(batch=batch_sizes, seed=seeds)
@settings(max_examples=10, deadline=None)
def test_forward_batch_touches_no_state(name, build, shape, batch, seed):
    rng = np.random.default_rng(seed)
    layer = build(rng).eval()
    before = {k: v.copy() for module in layer.modules()
              for k, v in vars(module).items()
              if isinstance(v, np.ndarray)}
    caches_before = {id(m): [k for k, v in vars(m).items()
                             if k.startswith("_") and v is None]
                     for m in layer.modules()}
    layer.forward_batch(rng.normal(size=(batch,) + shape))
    for module in layer.modules():
        for k, v in vars(module).items():
            if isinstance(v, np.ndarray):
                np.testing.assert_array_equal(v, before[k])
        # Backward caches that were empty must stay empty: batched
        # inference never arms a training backward.
        for k in caches_before[id(module)]:
            assert getattr(module, k) is None, f"{k} was populated"


def test_forward_batch_interleaves_with_training_pair():
    # A batched inference between forward and backward must not corrupt
    # the in-flight gradients.
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 5))
    g = rng.normal(size=(4, 3))

    ref = Dense(5, 3, rng=np.random.default_rng(1))
    ref.forward(x)
    ref.backward(g)

    interleaved = Dense(5, 3, rng=np.random.default_rng(1))
    interleaved.forward(x)
    interleaved.forward_batch(rng.normal(size=(7, 5)))
    interleaved.backward(g)

    np.testing.assert_array_equal(interleaved.weight.grad, ref.weight.grad)
    np.testing.assert_array_equal(interleaved.bias.grad, ref.bias.grad)


def test_forward_batch_unimplemented_is_loud():
    from repro.nn import Module

    class Bare(Module):
        def forward(self, x):
            return x

    with pytest.raises(NotImplementedError, match="Bare"):
        Bare().forward_batch(np.zeros((1, 2)))


# ----------------------------------------------------- pillar entry points
@functools.lru_cache(maxsize=1)
def _starnet():
    from repro.starnet.monitor import STARNet
    monitor = STARNet(6, score_method="exact",
                      rng=np.random.default_rng(1))
    monitor.fit(np.random.default_rng(0).normal(size=(48, 6)), epochs=5)
    return monitor


@given(batch=batch_sizes, seed=seeds)
@settings(max_examples=10, deadline=None)
def test_starnet_assess_batch_parity(batch, seed):
    monitor = _starnet()
    feats = np.random.default_rng(seed).normal(size=(batch, 6))
    batched = monitor.assess_batch([Percept(features=f) for f in feats])
    per_sample = [monitor.assess(Percept(features=f)) for f in feats]
    np.testing.assert_allclose(batched, per_sample, atol=1e-9)


@functools.lru_cache(maxsize=1)
def _koopman():
    from repro.koopman.encoder import ContrastiveKoopmanEncoder
    return ContrastiveKoopmanEncoder(image_size=8, n_pairs=2,
                                     rng=np.random.default_rng(2))


@given(batch=batch_sizes, seed=seeds,
       horizon=st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None)
def test_koopman_rollout_batch_parity(batch, seed, horizon):
    encoder = _koopman()
    rng = np.random.default_rng(seed)
    images = rng.normal(size=(batch, 8, 8))
    actions = rng.normal(size=(batch, horizon))
    batched = encoder.rollout_batch(images, actions)
    assert batched.shape == (batch, horizon + 1, encoder.latent_dim)
    for i in range(batch):
        np.testing.assert_allclose(
            batched[i], encoder.rollout(images[i], actions[i]), atol=1e-9)


@functools.lru_cache(maxsize=1)
def _clouds_and_detector():
    from repro.detect import BEVDetector
    from repro.sim import LidarConfig, LidarScanner, sample_scene
    from repro.voxel import VoxelGridConfig, voxelize
    grid = VoxelGridConfig(nx=16, ny=16, nz=2, x_range=(0.0, 60.0),
                           y_range=(-30.0, 30.0))
    rng = np.random.default_rng(3)
    scanner = LidarScanner(LidarConfig(n_azimuth=48, n_elevation=8),
                           rng=rng)
    clouds = tuple(voxelize(scanner.scan(sample_scene(rng)).points,
                            config=grid) for _ in range(4))
    detector = BEVDetector(grid, rng=np.random.default_rng(4))
    return clouds, detector


@given(picks=st.lists(st.integers(min_value=0, max_value=3),
                      min_size=1, max_size=4))
@settings(max_examples=8, deadline=None)
def test_detector_batch_parity(picks):
    clouds, detector = _clouds_and_detector()
    chosen = [clouds[i] for i in picks]
    batched_maps = detector.score_maps_batch(chosen)
    batched_dets = detector.detect_batch(chosen)
    for i, cloud in enumerate(chosen):
        np.testing.assert_allclose(batched_maps[i],
                                   detector.score_maps(cloud),
                                   atol=1e-9)
        assert batched_dets[i] == detector.detect(cloud)


@given(picks=st.lists(st.integers(min_value=0, max_value=3),
                      min_size=1, max_size=3))
@settings(max_examples=8, deadline=None)
def test_rmae_occupancy_batch_parity(picks):
    clouds, detector = _clouds_and_detector()
    rmae = detector.rmae
    chosen = [clouds[i] for i in picks]
    batched = rmae.occupancy_probability_batch(chosen)
    for i, cloud in enumerate(chosen):
        np.testing.assert_allclose(batched[i],
                                   rmae.occupancy_probability(cloud),
                                   atol=1e-9)


@functools.lru_cache(maxsize=None)
def _flow_model(name):
    from repro.neuromorphic import build_flow_model
    return build_flow_model(name, channels=4, image_size=16,
                            rng=np.random.default_rng(5))


@functools.lru_cache(maxsize=1)
def _flow_samples():
    from repro.sim import make_flow_dataset
    return tuple(make_flow_dataset(3, seed=6))


@pytest.mark.parametrize("name", ["evflownet", "spikeflownet",
                                  "fusionflownet", "adaptive_spikenet"])
@given(picks=st.lists(st.integers(min_value=0, max_value=2),
                      min_size=1, max_size=3))
@settings(max_examples=5, deadline=None)
def test_flow_predict_batch_parity(name, picks):
    model = _flow_model(name)
    samples = _flow_samples()
    chosen = [samples[i] for i in picks]
    batched = model.predict_batch(chosen)
    for i, sample in enumerate(chosen):
        np.testing.assert_allclose(batched[i], model.predict(sample),
                                   atol=1e-9)
