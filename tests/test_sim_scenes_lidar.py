"""Tests for procedural scenes and the raycast LiDAR scanner."""

import numpy as np
import pytest

from repro.sim import (
    CLASS_NAMES,
    LidarConfig,
    LidarScanner,
    Scene,
    SceneObject,
    sample_dataset,
    sample_scene,
)


RNG = np.random.default_rng(21)


def _box(cls="Car", center=(10.0, 0.0, 0.8), size=(4.0, 2.0, 1.6), yaw=0.0):
    return SceneObject(cls, np.array(center), np.array(size), yaw)


# ------------------------------------------------------------------ scenes
def test_scene_object_validation():
    with pytest.raises(ValueError):
        SceneObject("Car", np.zeros(2), np.ones(3))
    with pytest.raises(ValueError):
        SceneObject("Car", np.zeros(3), np.array([1.0, -1.0, 1.0]))


def test_contains_axis_aligned():
    obj = _box()
    inside = np.array([[10.0, 0.0, 0.8]])
    outside = np.array([[10.0, 3.0, 0.8]])
    assert obj.contains(inside)[0]
    assert not obj.contains(outside)[0]


def test_contains_respects_yaw():
    obj = _box(yaw=np.pi / 2)  # length now along y
    assert obj.contains(np.array([[10.0, 1.8, 0.8]]))[0]
    assert not obj.contains(np.array([[11.8, 0.0, 0.8]]))[0]


def test_ray_intersect_hits_front_face():
    obj = _box(center=(10.0, 0.0, 1.0), size=(2.0, 2.0, 2.0))
    t = obj.ray_intersect(np.array([0.0, 0.0, 1.0]),
                          np.array([1.0, 0.0, 0.0]))
    assert t == pytest.approx(9.0)


def test_ray_intersect_miss():
    obj = _box(center=(10.0, 5.0, 1.0))
    t = obj.ray_intersect(np.array([0.0, 0.0, 1.0]),
                          np.array([1.0, 0.0, 0.0]))
    assert t is None


def test_ray_intersect_from_inside():
    obj = _box(center=(0.0, 0.0, 1.0), size=(4.0, 4.0, 4.0))
    t = obj.ray_intersect(np.array([0.0, 0.0, 1.0]),
                          np.array([1.0, 0.0, 0.0]))
    assert t == pytest.approx(2.0)


def test_corners_bev_shape_and_extent():
    obj = _box(yaw=0.3)
    corners = obj.corners_bev()
    assert corners.shape == (4, 2)
    center = corners.mean(axis=0)
    np.testing.assert_allclose(center, obj.center[:2], atol=1e-9)


def test_sample_scene_counts():
    scene = sample_scene(np.random.default_rng(0), n_cars=3, n_pedestrians=2,
                         n_cyclists=1, n_buildings=0)
    counts = scene.class_counts()
    assert counts.get("Car", 0) <= 3
    assert len(scene.foreground()) == sum(
        counts.get(c, 0) for c in CLASS_NAMES)


def test_sample_scene_objects_dont_overlap():
    scene = sample_scene(np.random.default_rng(1), n_cars=4)
    fg = scene.foreground()
    for i, a in enumerate(fg):
        for b in fg[i + 1:]:
            d = np.linalg.norm(a.center[:2] - b.center[:2])
            assert d > 0.4


def test_sample_scene_azimuth_limit():
    scene = sample_scene(np.random.default_rng(2), n_cars=5,
                         azimuth_limit=np.pi / 6)
    for obj in scene.foreground():
        az = np.arctan2(obj.center[1], obj.center[0])
        assert abs(az) <= np.pi / 6 + 1e-9


def test_sample_dataset_reproducible():
    a = sample_dataset(42, 3)
    b = sample_dataset(42, 3)
    for sa, sb in zip(a, b):
        assert sa.class_counts() == sb.class_counts()


def test_scene_assigns_object_ids():
    scene = sample_scene(np.random.default_rng(3))
    for i, obj in enumerate(scene.objects):
        assert obj.object_id == i


# ------------------------------------------------------------------- lidar
def test_beam_directions_unit_norm():
    cfg = LidarConfig(n_azimuth=12, n_elevation=4)
    dirs = cfg.beam_directions()
    assert dirs.shape == (48, 3)
    np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0, atol=1e-12)


def test_scan_hits_ground():
    cfg = LidarConfig(n_azimuth=8, n_elevation=4, elevation_min_deg=-20,
                      elevation_max_deg=-5, range_noise_std_m=0.0)
    scanner = LidarScanner(cfg, rng=np.random.default_rng(4))
    scan = scanner.scan(Scene(objects=[]))
    assert scan.num_points == cfg.n_beams  # every downward beam hits ground
    assert np.all(scan.labels == -1)
    np.testing.assert_allclose(scan.points[:, 2], 0.0, atol=1e-9)


def test_scan_hits_object_before_ground():
    cfg = LidarConfig(n_azimuth=16, n_elevation=6, azimuth_fov_deg=60,
                      range_noise_std_m=0.0)
    scene = Scene(objects=[_box(center=(10.0, 0.0, 1.0),
                                size=(3.0, 3.0, 2.0))])
    scan = LidarScanner(cfg, rng=np.random.default_rng(5)).scan(scene)
    assert (scan.labels == 0).sum() > 0
    obj_ranges = scan.ranges[scan.labels == 0]
    assert np.all(obj_ranges < 12.0)


def test_scan_fired_mask_restricts_beams():
    cfg = LidarConfig(n_azimuth=8, n_elevation=4)
    scanner = LidarScanner(cfg, rng=np.random.default_rng(6))
    mask = np.zeros(cfg.n_beams, dtype=bool)
    mask[:8] = True
    scan = scanner.scan(sample_scene(np.random.default_rng(7)), mask)
    assert scan.coverage_fraction == pytest.approx(8 / 32)
    assert set(scan.beam_ids) <= set(range(8))


def test_scan_fired_mask_shape_check():
    cfg = LidarConfig(n_azimuth=8, n_elevation=4)
    scanner = LidarScanner(cfg)
    with pytest.raises(ValueError):
        scanner.scan(Scene(objects=[]), np.ones(5, dtype=bool))


def test_scan_energy_accounts_for_misses():
    cfg = LidarConfig(n_azimuth=8, n_elevation=4, elevation_min_deg=5,
                      elevation_max_deg=10)  # upward beams: all miss
    scan = LidarScanner(cfg, rng=np.random.default_rng(8)).scan(
        Scene(objects=[]))
    assert scan.num_points == 0
    # Misses still cost full pulse energy.
    assert scan.sensing_energy_mj() == pytest.approx(32 * 50.0 * 1e-3)


def test_scan_subset():
    cfg = LidarConfig(n_azimuth=8, n_elevation=4)
    scan = LidarScanner(cfg, rng=np.random.default_rng(9)).scan(
        sample_scene(np.random.default_rng(10)))
    mask = scan.ranges < np.median(scan.ranges)
    sub = scan.subset(mask)
    assert sub.num_points == int(mask.sum())
    assert np.all(sub.ranges < np.median(scan.ranges))


def test_intensity_decreases_with_range():
    # Steep vs shallow downward beams hit the ground near vs far.
    cfg = LidarConfig(n_azimuth=4, n_elevation=8, elevation_min_deg=-30,
                      elevation_max_deg=-2, range_noise_std_m=0.0)
    scene = Scene(objects=[])
    scan = LidarScanner(cfg, rng=np.random.default_rng(11)).scan(scene)
    order = np.argsort(scan.ranges)
    intensities = scan.points[order, 3]
    # Distant ground returns are dimmer than close ones.
    assert intensities[0] > intensities[-1]
    assert scan.ranges[order][0] < scan.ranges[order][-1]
