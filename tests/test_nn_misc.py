"""Tests for tensor init, counting, quantization, VAE, and sparse 3-D conv."""

import numpy as np
import pytest

from repro.nn import (
    VAE,
    Conv2d,
    Dense,
    Flatten,
    GRUCell,
    Parameter,
    PrecisionConfig,
    ReLU,
    Sequential,
    SparseConv3d,
    SparseGlobalPool,
    SparseReLU,
    SparseSequential,
    SparseVoxelTensor,
    count_conv2d,
    count_dense,
    count_macs,
    count_module,
    glorot_uniform,
    he_normal,
    mlp,
    orthogonal_init,
    quantization_noise_power,
    quantize,
    train_vae,
)

RNG = np.random.default_rng(17)


# --------------------------------------------------------------- tensor init
def test_parameter_zero_grad():
    p = Parameter(np.ones((2, 2)))
    p.grad += 5.0
    p.zero_grad()
    np.testing.assert_array_equal(p.grad, 0.0)


def test_glorot_uniform_bounds():
    w = glorot_uniform(np.random.default_rng(0), 100, 100)
    limit = np.sqrt(6.0 / 200)
    assert np.all(np.abs(w) <= limit)


def test_he_normal_std():
    w = he_normal(np.random.default_rng(0), 1000, (1000, 50))
    assert abs(w.std() - np.sqrt(2 / 1000)) < 0.005


def test_orthogonal_init_orthonormal_columns():
    q = orthogonal_init(np.random.default_rng(0), (8, 4))
    np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-10)


# ------------------------------------------------------------------ counting
def test_count_dense_formula():
    assert count_dense(10, 5) == 55
    assert count_dense(10, 5, bias=False) == 50


def test_count_conv2d_formula():
    assert count_conv2d(2, 4, 3, 8, 8) == 2 * 4 * 9 * 64


def test_count_module_mlp():
    net = mlp([10, 20, 5])
    count = count_module(net, (10,))
    assert count.macs == count_dense(10, 20) + count_dense(20, 5)
    assert count.flops == 2 * count.macs
    assert count.params == net.num_parameters()


def test_count_module_conv_stack():
    net = Sequential(Conv2d(1, 4, kernel=3, stride=1, pad=1), ReLU(),
                     Flatten(), Dense(4 * 8 * 8, 2))
    count = count_module(net, (1, 8, 8))
    assert count.macs == count_conv2d(1, 4, 3, 8, 8) + count_dense(256, 2)


def test_count_macs_gru():
    cell = GRUCell(4, 8)
    macs = count_macs(cell, (4,))
    assert macs == 3 * 12 * 8 + 3 * 8


# ---------------------------------------------------------------- quantize
def test_quantize_identity_at_32bit():
    x = RNG.normal(size=(10,))
    np.testing.assert_array_equal(quantize(x, 32), x)


def test_quantize_idempotent():
    x = RNG.normal(size=(100,))
    q = quantize(x, 8)
    np.testing.assert_allclose(quantize(q, 8), q, atol=1e-12)


def test_quantize_error_decreases_with_bits():
    x = RNG.normal(size=(500,))
    errs = [quantization_noise_power(x, b) for b in (2, 4, 8, 16)]
    assert errs == sorted(errs, reverse=True)
    assert errs[-1] < errs[0]


def test_quantize_preserves_zero_tensor():
    z = np.zeros(5)
    np.testing.assert_array_equal(quantize(z, 4), z)


def test_quantize_rejects_bad_bits():
    with pytest.raises(ValueError):
        quantize(np.ones(3), 7)


def test_precision_config_validation():
    with pytest.raises(ValueError):
        PrecisionConfig(weight_bits=5)
    cfg = PrecisionConfig(8, 4, 16)
    assert cfg.mac_bits == 8
    assert cfg.mean_bits() == pytest.approx((8 + 4 + 16) / 3)


def test_precision_config_uniform():
    cfg = PrecisionConfig.uniform(8)
    assert (cfg.weight_bits, cfg.activation_bits, cfg.gradient_bits) == (8, 8, 8)


# --------------------------------------------------------------------- VAE
def test_vae_shapes():
    vae = VAE(input_dim=10, latent_dim=3, rng=np.random.default_rng(1))
    x = RNG.normal(size=(6, 10))
    recon = vae.forward(x)
    assert recon.shape == (6, 10)
    mu, logvar = vae.encode(x)
    assert mu.shape == (6, 3) and logvar.shape == (6, 3)


def test_vae_training_reduces_loss():
    rng = np.random.default_rng(2)
    # Data on a 2-D manifold in 8-D space.
    z = rng.normal(size=(200, 2))
    proj = rng.normal(size=(2, 8))
    data = z @ proj + 0.05 * rng.normal(size=(200, 8))
    vae = VAE(input_dim=8, latent_dim=2, rng=rng)
    losses = train_vae(vae, data, epochs=25, rng=rng)
    assert losses[-1] < losses[0] * 0.5


def test_vae_elbo_higher_for_indistribution():
    rng = np.random.default_rng(3)
    data = rng.normal(size=(200, 6)) * 0.5
    vae = VAE(input_dim=6, latent_dim=2, rng=rng)
    train_vae(vae, data, epochs=25, rng=rng)
    in_elbo = vae.elbo(data[:20])
    out_elbo = vae.elbo(data[:20] + 8.0)
    assert in_elbo > out_elbo


# ------------------------------------------------------------- sparse conv
def _toy_sparse(channels=2):
    coords = [(1, 1, 1), (1, 2, 1), (3, 3, 0)]
    return SparseVoxelTensor.from_coords(coords, channels, (5, 5, 2))


def test_sparse_tensor_dense_roundtrip():
    t = _toy_sparse()
    dense = t.dense()
    assert dense.shape == (2, 5, 5, 2)
    assert dense.sum() == t.num_active * t.channels


def test_sparse_conv_preserves_active_set():
    t = _toy_sparse()
    conv = SparseConv3d(2, 4, kernel=3, rng=np.random.default_rng(4))
    out = conv.forward(t)
    assert set(out.coords()) == set(t.coords())
    assert out.channels == 4


def test_sparse_conv_stride_downsamples():
    t = _toy_sparse()
    conv = SparseConv3d(2, 3, kernel=3, stride=2, rng=np.random.default_rng(4))
    out = conv.forward(t)
    assert out.grid_shape == (2, 2, 1)
    # (1,1,1),(1,2,1) merge into (0,0,0)/(0,1,0); (3,3,0) -> (1,1,0)
    assert out.num_active <= t.num_active


def test_sparse_conv_neighbors_contribute():
    """A neighbour within the kernel changes the output at a site."""
    conv = SparseConv3d(1, 1, kernel=3, rng=np.random.default_rng(5))
    solo = SparseVoxelTensor.from_coords([(2, 2, 1)], 1, (5, 5, 3))
    pair = SparseVoxelTensor.from_coords([(2, 2, 1), (2, 3, 1)], 1, (5, 5, 3))
    out_solo = conv.forward(solo).features[(2, 2, 1)]
    out_pair = conv.forward(pair).features[(2, 2, 1)]
    assert not np.allclose(out_solo, out_pair)


def test_sparse_conv_backward_accumulates():
    t = _toy_sparse()
    conv = SparseConv3d(2, 3, kernel=3, rng=np.random.default_rng(6))
    out = conv.forward(t)
    grad = {c: np.ones(3) for c in out.coords()}
    din = conv.backward(grad)
    assert set(din.keys()) == set(t.coords())
    assert float(np.abs(conv.weight.grad).sum()) > 0
    assert float(np.abs(conv.bias.grad).sum()) > 0


def test_sparse_relu_masks_negative():
    t = _toy_sparse()
    for c in t.features:
        t.features[c] = np.array([-1.0, 2.0])
    out = SparseReLU().forward(t)
    for c in out.features:
        np.testing.assert_array_equal(out.features[c], [0.0, 2.0])


def test_sparse_global_pool_mean_and_backward():
    t = _toy_sparse()
    pool = SparseGlobalPool()
    pooled = pool.forward(t)
    np.testing.assert_allclose(pooled, 1.0)
    grads = pool.backward(np.array([3.0, 3.0]))
    for g in grads.values():
        np.testing.assert_allclose(g, 1.0)


def test_sparse_sequential_pipeline():
    t = _toy_sparse()
    net = SparseSequential(
        SparseConv3d(2, 4, rng=np.random.default_rng(7)),
        SparseReLU(),
        SparseGlobalPool(),
    )
    out = net.forward(t)
    assert out.shape == (4,)
    grads = net.backward(np.ones(4))
    assert set(grads.keys()) == set(t.coords())


def test_sparse_conv_even_kernel_rejected():
    with pytest.raises(ValueError):
        SparseConv3d(1, 1, kernel=2)
