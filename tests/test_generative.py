"""Tests for generative sensing: R-MAE, pretraining baselines, energy."""

import numpy as np
import pytest

from repro.generative import (
    RMAE,
    compare_energy,
    energy_ratio,
    pretrain_also,
    pretrain_occmae,
    pretrain_rmae,
    reconstruction_energy_mj,
    reconstruction_iou,
)
from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.voxel import RadialMaskConfig, VoxelGridConfig, radial_mask, voxelize

GRID = VoxelGridConfig(nx=16, ny=16, nz=2)
LIDAR = LidarConfig(n_azimuth=48, n_elevation=8)


def _clouds(n=4, seed=0):
    rng = np.random.default_rng(seed)
    scanner = LidarScanner(LIDAR, rng=rng)
    out = []
    for _ in range(n):
        scan = scanner.scan(sample_scene(rng))
        out.append(voxelize(scan.points, scan.labels, GRID))
    return out


def _scans(seed=0):
    rng = np.random.default_rng(seed)
    scanner = LidarScanner(LIDAR, rng=rng)
    scene = sample_scene(rng)
    full = scanner.scan(scene)
    mask = np.zeros(LIDAR.n_beams, dtype=bool)
    mask[:: 10] = True  # ~10% coverage
    masked = scanner.scan(scene, mask)
    return full, masked


def test_rmae_forward_shapes():
    model = RMAE(GRID, rng=np.random.default_rng(1))
    cloud = _clouds(1)[0]
    logits = model.forward(cloud)
    assert logits.shape == (GRID.nz, GRID.nx, GRID.ny)
    occ = model.reconstruct_occupancy(cloud)
    assert occ.shape == GRID.shape
    assert occ.dtype == bool


def test_rmae_grid_divisibility_check():
    with pytest.raises(ValueError):
        RMAE(VoxelGridConfig(nx=15, ny=16, nz=2))


def test_rmae_pretraining_reduces_loss():
    clouds = _clouds(4)
    model = RMAE(GRID, rng=np.random.default_rng(2))
    losses = pretrain_rmae(model, clouds, epochs=6,
                           rng=np.random.default_rng(3))
    assert losses[-1] < losses[0]


def test_rmae_reconstructs_masked_regions():
    """After pretraining, reconstruction from a masked cloud must beat
    the trivial prediction (the masked input itself)."""
    clouds = _clouds(6, seed=4)
    model = RMAE(GRID, rng=np.random.default_rng(5))
    pretrain_rmae(model, clouds, epochs=10, rng=np.random.default_rng(6))
    cloud = clouds[0]
    keep, _ = radial_mask(cloud, RadialMaskConfig(),
                          np.random.default_rng(7))
    masked = cloud.masked(keep)
    recon = model.reconstruct_occupancy(masked)
    target = cloud.occupancy_dense()
    input_iou = reconstruction_iou(masked.occupancy_dense(), target)
    recon_iou = reconstruction_iou(recon, target)
    assert recon_iou > input_iou


def test_occmae_and_also_train():
    clouds = _clouds(3, seed=8)
    for pretrainer in (pretrain_occmae, pretrain_also):
        model = RMAE(GRID, rng=np.random.default_rng(9))
        losses = pretrainer(model, clouds, epochs=4,
                            rng=np.random.default_rng(10))
        assert losses[-1] < losses[0] * 1.2


def test_occmae_validation():
    model = RMAE(GRID)
    with pytest.raises(ValueError):
        pretrain_occmae(model, [], mask_ratio=1.0)
    with pytest.raises(ValueError):
        pretrain_also(model, [], subsample=0.0)


def test_reconstruction_iou_properties():
    a = np.zeros((4, 4, 2), dtype=bool)
    a[0, 0, 0] = True
    assert reconstruction_iou(a, a) == 1.0
    assert reconstruction_iou(a, ~a) == 0.0
    assert reconstruction_iou(np.zeros_like(a), np.zeros_like(a)) == 1.0


def test_rmae_macs_positive_and_scale_with_activity():
    model = RMAE(GRID)
    assert model.reconstruction_macs(50) < model.reconstruction_macs(500)


# -------------------------------------------------------- energy accounting
def test_compare_energy_table2_shape():
    full, masked = _scans()
    model = RMAE(GRID)
    reports = compare_energy(full, masked, model.num_parameters(),
                             2 * model.reconstruction_macs(100))
    conv, rmae = reports["conventional"], reports["rmae"]
    assert conv.coverage_fraction == pytest.approx(1.0)
    assert rmae.coverage_fraction == pytest.approx(0.1, abs=0.02)
    assert rmae.mean_pulse_energy_uj < conv.mean_pulse_energy_uj
    assert rmae.sensing_energy_mj < conv.sensing_energy_mj / 5
    assert conv.reconstruction_energy_mj == 0.0
    assert rmae.reconstruction_energy_mj > 0.0


def test_energy_ratio_favors_rmae():
    full, masked = _scans()
    model = RMAE(GRID)
    reports = compare_energy(full, masked, model.num_parameters(),
                             2 * model.reconstruction_macs(100))
    assert energy_ratio(reports) > 2.0


def test_reconstruction_energy_calibration():
    """The paper's numbers: 335 MFLOPs -> ~7.1 mJ on an edge GPU."""
    assert reconstruction_energy_mj(335_000_000) == pytest.approx(7.1,
                                                                  rel=0.02)


def test_energy_report_row_format():
    full, masked = _scans()
    reports = compare_energy(full, masked, 830_000, 335_000_000)
    row = reports["rmae"].as_row()
    assert row["model_parameters"] == 830_000
    assert row["total_mj"] == pytest.approx(
        reports["rmae"].total_energy_mj, abs=1e-3)
