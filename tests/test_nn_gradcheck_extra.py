"""Gradient checks for the layers tier-1 previously left unchecked.

* ``nn/sparse3d.py`` — submanifold sparse convolution: dict-structured
  activations/gradients fall outside the generic
  ``gradcheck.check_layer_gradients`` array contract, so the loss is
  assembled site by site here.
* ``neuromorphic/snn.py`` — the surrogate-gradient BPTT path.  The spike
  nonlinearity is a step function, so analytic and numeric gradients can
  only agree where the surrogate is exact: in the subthreshold regime
  the membrane dynamics are smooth (leaky integration + conv) and the
  BPTT recursion must match central differences to machine precision.
  The spiking regime is covered differentially instead, against an
  independently written reference BPTT of the same surrogate semantics.
"""

import numpy as np
import pytest

from gradcheck import numeric_gradient
from repro.kernels import BACKENDS, kernel_backend
from repro.neuromorphic.snn import SpikingConv2d
from repro.nn.sparse3d import SparseConv3d, SparseVoxelTensor


@pytest.fixture(params=BACKENDS, autouse=True)
def _kernel_backend(request):
    """Run every gradient check under both kernel backends: the analytic
    backward of each implementation must match central differences."""
    with kernel_backend(request.param):
        yield request.param


# ------------------------------------------------------------- sparse conv


def _sparse_input(rng, grid=(5, 5, 3), in_ch=3, n_active=9):
    all_coords = [(i, j, k) for i in range(grid[0])
                  for j in range(grid[1]) for k in range(grid[2])]
    picks = rng.choice(len(all_coords), size=n_active, replace=False)
    coords = [all_coords[p] for p in sorted(picks)]
    values = rng.normal(size=(n_active, in_ch))
    return SparseVoxelTensor.from_coords(coords, in_ch, grid, values=values)


def _check_sparse_conv(stride):
    rng = np.random.default_rng(7 + stride)
    in_ch, out_ch = 3, 2
    layer = SparseConv3d(in_ch, out_ch, kernel=3, stride=stride, rng=rng)
    x = _sparse_input(rng, in_ch=in_ch)
    out = layer.forward(x)
    weights = {c: rng.normal(size=out_ch) for c in out.features}

    def loss() -> float:
        y = layer.forward(x)
        return float(sum(np.dot(weights[c], f)
                         for c, f in y.features.items()))

    layer.zero_grad()
    layer.forward(x)
    din = layer.backward({c: w.copy() for c, w in weights.items()})

    # Parameter gradients.
    for p in (layer.weight, layer.bias):
        np.testing.assert_allclose(
            p.grad, numeric_gradient(loss, p.data), rtol=1e-5, atol=1e-7,
            err_msg=f"{p.name} gradient mismatch (stride={stride})")
    # Input-feature gradients, one active site at a time.
    for coord in x.coords():
        np.testing.assert_allclose(
            din[coord], numeric_gradient(loss, x.features[coord]),
            rtol=1e-5, atol=1e-7,
            err_msg=f"input gradient mismatch at {coord} (stride={stride})")


def test_sparse_conv_gradients_submanifold():
    _check_sparse_conv(stride=1)


def test_sparse_conv_gradients_strided():
    # stride=2 merges coordinates onto a coarser grid; the gather map
    # must still route every contribution's gradient home.
    _check_sparse_conv(stride=2)


def test_sparse_conv_preserves_active_set():
    rng = np.random.default_rng(3)
    layer = SparseConv3d(2, 4, kernel=3, rng=rng)
    x = _sparse_input(rng, in_ch=2, n_active=6)
    y = layer.forward(x)
    assert sorted(y.features) == sorted(x.features)  # submanifold property


# ------------------------------------------------------- SNN BPTT (smooth)


def _subthreshold_layer(learnable):
    # Threshold far above any reachable membrane: no spikes fire, the
    # surrogate window (width 1.0 around thr=10) is never entered, and
    # the unrolled dynamics are exactly differentiable.
    rng = np.random.default_rng(11)
    layer = SpikingConv2d(2, 3, kernel=3, stride=1, pad=1, leak=0.8,
                          threshold=10.0, learnable_dynamics=learnable,
                          rng=rng)
    x = 0.3 * np.random.default_rng(12).normal(size=(3, 1, 2, 4, 4))
    return layer, x


def _membrane_loss(layer, x, w):
    def loss() -> float:
        layer.forward(x)
        return float(np.sum(w * layer.last_membrane))
    return loss


def _run_membrane_gradcheck(learnable):
    layer, x = _subthreshold_layer(learnable)
    spikes = layer.forward(x)
    assert spikes.sum() == 0.0  # genuinely subthreshold
    w = np.random.default_rng(13).normal(size=layer.last_membrane.shape)
    loss = _membrane_loss(layer, x, w)

    layer.zero_grad()
    layer.forward(x)
    din = layer.backward(np.zeros_like(spikes), grad_membrane=w.copy())

    np.testing.assert_allclose(din, numeric_gradient(loss, x),
                               rtol=1e-4, atol=1e-7,
                               err_msg="BPTT input gradient mismatch")
    for p in layer.parameters():
        np.testing.assert_allclose(
            p.grad, numeric_gradient(loss, p.data), rtol=1e-4, atol=1e-7,
            err_msg=f"BPTT gradient mismatch for {p.name}")


def test_snn_bptt_gradients_fixed_dynamics():
    _run_membrane_gradcheck(learnable=False)


def test_snn_bptt_gradients_learnable_dynamics():
    # Adaptive-SpikeNet path: leak/threshold are parameters; the leak
    # gradient flows through every timestep's membrane recursion.
    _run_membrane_gradcheck(learnable=True)


# --------------------------------------------- SNN surrogate (spiking)


def _reference_bptt(conv, x, grad_out, leak, thr, width):
    """Independently written surrogate BPTT for a fixed-dynamics
    SpikingConv2d, straight from the update equations:

        v_pre[t] = leak * v[t-1] + conv(x[t])
        s[t]     = H(v_pre[t] - thr)          (surrogate: triangular)
        v[t]     = v_pre[t] - thr * s[t]
    """
    t_steps = x.shape[0]
    v = None
    caches = []
    for t in range(t_steps):
        current = conv.forward(x[t])
        cache = conv._cache
        v = current if v is None else leak * v + current
        s = (v > thr).astype(np.float64)
        caches.append((cache, v.copy(), s))
        v = v - thr * s
    grad_in = np.zeros_like(x)
    gv = np.zeros_like(caches[-1][1])
    for t in range(t_steps - 1, -1, -1):
        cache, v_pre, s = caches[t]
        sg = np.maximum(0.0, 1.0 - np.abs(v_pre - thr) / width) / width
        gv_pre = gv * (1.0 - thr * sg) + grad_out[t] * sg
        conv._cache = cache
        grad_in[t] = conv.backward(gv_pre)
        gv = gv_pre * leak
    return grad_in


def test_snn_surrogate_path_matches_reference_in_spiking_regime():
    rng = np.random.default_rng(21)
    leak, thr, width = 0.9, 1.0, 1.0
    layer = SpikingConv2d(1, 2, kernel=3, stride=1, pad=1, leak=leak,
                          threshold=thr, surrogate_width=width, rng=rng)
    x = np.abs(np.random.default_rng(22).normal(size=(4, 1, 1, 5, 5)))
    spikes = layer.forward(x)
    assert spikes.sum() > 0  # genuinely spiking

    grad_out = np.random.default_rng(23).normal(size=spikes.shape)
    layer.zero_grad()
    layer.forward(x)
    din = layer.backward(grad_out.copy())

    ref_conv = SpikingConv2d(1, 2, kernel=3, stride=1, pad=1, leak=leak,
                             threshold=thr, surrogate_width=width,
                             rng=np.random.default_rng(21)).conv
    ref_din = _reference_bptt(ref_conv, x, grad_out, leak, thr, width)
    np.testing.assert_allclose(din, ref_din, rtol=1e-10, atol=1e-12)
