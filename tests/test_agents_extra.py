"""Additional coverage: Koopman agents, RoboKoop internals, Norm2d,
detection pipeline grid handling, and disturbance harness."""

import numpy as np
import pytest

from gradcheck import numeric_gradient
from repro.generative.rmae import Norm2d
from repro.koopman import RoboKoopAgent, build_model, run_disturbance_experiment
from repro.koopman.agent import _stage_cost
from repro.koopman.encoder import ContrastiveKoopmanEncoder
from repro.sim import CartPole


# ------------------------------------------------------------ Norm2d
def test_norm2d_normalizes_channels():
    norm = Norm2d(3)
    rng = np.random.default_rng(0)
    x = rng.normal(3.0, 2.0, size=(2, 3, 4, 4))
    y = norm.forward(x)
    flat = y.transpose(0, 2, 3, 1).reshape(-1, 3)
    np.testing.assert_allclose(flat.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(flat.std(axis=0), 1.0, atol=1e-2)


def test_norm2d_gradients_numeric():
    norm = Norm2d(2)
    rng = np.random.default_rng(1)
    x = rng.normal(size=(1, 2, 3, 3))
    w = rng.normal(size=x.shape)

    def loss():
        return float(np.sum(w * norm.forward(x)))

    norm.zero_grad()
    norm.forward(x)
    dx = norm.backward(w)
    np.testing.assert_allclose(dx, numeric_gradient(loss, x), rtol=1e-3,
                               atol=1e-6)


# ------------------------------------------------------------ stage cost
def test_stage_cost_zero_at_upright():
    assert _stage_cost(np.zeros(4), 0.0) == 0.0


def test_stage_cost_penalizes_angle_most():
    angle = _stage_cost(np.array([0, 0, 0.5, 0]), 0.0)
    offset = _stage_cost(np.array([0.5, 0, 0, 0]), 0.0)
    assert angle > offset


# ------------------------------------------------ disturbance experiment
def test_run_disturbance_experiment_smoke():
    result = run_disturbance_experiment(
        model_names=("dense_koopman",), disturbance_ps=(0.0, 0.2),
        n_train_episodes=6, fit_epochs=1, eval_episodes=2, eval_steps=60)
    assert set(result) == {"dense_koopman"}
    assert set(result["dense_koopman"]) == {0.0, 0.2}
    assert all(np.isfinite(v) for v in result["dense_koopman"].values())


# -------------------------------------------------------------- RoboKoop
def test_robokoop_requires_controller():
    encoder = ContrastiveKoopmanEncoder(image_size=12, n_pairs=2,
                                        rng=np.random.default_rng(2))
    agent = RoboKoopAgent(encoder=encoder)
    with pytest.raises(RuntimeError):
        agent.act(np.zeros(4))


def test_robokoop_act_returns_scalar_in_bounds():
    agent = RoboKoopAgent.train(image_size=12, n_pairs=2, n_episodes=3,
                                epochs=1, seed=3)
    a = agent.act(np.array([0.1, 0.0, 0.05, 0.0]))
    assert isinstance(a, float)
    assert -1.0 <= a <= 1.0


def test_robokoop_goal_is_upright_encoding():
    agent = RoboKoopAgent.train(image_size=12, n_pairs=2, n_episodes=3,
                                epochs=1, seed=4)
    goal = agent.encoder.encode_state(np.zeros(4))
    np.testing.assert_allclose(agent.controller.goal, goal)


def test_encoder_prediction_step_trains_operator():
    enc = ContrastiveKoopmanEncoder(image_size=12, n_pairs=2,
                                    rng=np.random.default_rng(5))
    states = np.random.default_rng(6).uniform(-0.2, 0.2, size=(8, 4))
    actions = np.random.default_rng(7).uniform(-1, 1, size=(8, 1))
    mu_before = enc.operator.mu_raw.data.copy()
    b_before = enc.operator.b.data.copy()
    for _ in range(5):
        enc.prediction_step(states, actions, states)
    assert (not np.allclose(mu_before, enc.operator.mu_raw.data)
            or not np.allclose(b_before, enc.operator.b.data))


# ----------------------------------------------------- mpc context safety
def test_mpc_models_reset_between_calls():
    """MPC rollouts must not leak recurrent state into the next call."""
    from repro.koopman import mpc_action
    model = build_model("recurrent", 4, 1, rng=np.random.default_rng(8))
    rng = np.random.default_rng(9)
    a1 = mpc_action(model, np.zeros(4), np.random.default_rng(10),
                    n_samples=4, horizon=3)
    assert model._h is None  # context cleared after planning
    a2 = mpc_action(model, np.zeros(4), np.random.default_rng(10),
                    n_samples=4, horizon=3)
    assert a1 == a2  # deterministic given the same sampling rng


def test_cartpole_energy_independent_models():
    """Distinct CartPole instances do not share disturbance RNG state."""
    e1 = CartPole(rng=np.random.default_rng(11))
    e2 = CartPole(rng=np.random.default_rng(11))
    e1.reset(), e2.reset()
    s1, _, _ = e1.step(0.5)
    s2, _, _ = e2.step(0.5)
    np.testing.assert_allclose(s1, s2)
