"""Tests for the end-to-end co-design module (the paper's thesis)."""

import pytest

from repro.core import LoopDesign, LoopPlant, end_to_end_codesign, modular_codesign, pareto_front


PLANT = LoopPlant()


def test_loop_design_validation():
    with pytest.raises(ValueError):
        LoopDesign(coverage=0.0, model="small", precision_bits=8,
                   rate_hz=10.0)
    with pytest.raises(ValueError):
        LoopDesign(coverage=0.5, model="huge", precision_bits=8,
                   rate_hz=10.0)
    with pytest.raises(ValueError):
        LoopDesign(coverage=0.5, model="small", precision_bits=8,
                   rate_hz=0.0)


def test_observability_saturates():
    assert PLANT.observability(1.0) < 1.0
    assert PLANT.observability(0.5) > 0.5 * PLANT.observability(1.0)
    # Diminishing returns: doubling coverage less than doubles quality.
    assert PLANT.observability(0.2) < 2 * PLANT.observability(0.1)


def test_utility_zero_when_deadline_infeasible():
    # Large model at 4x real-time rate on a slow platform.
    slow = LoopPlant(compute_gmacs_s=0.5)
    design = LoopDesign(coverage=0.5, model="large", precision_bits=32,
                        rate_hz=50.0)
    assert not slow.deadline_feasible(design)
    assert slow.utility(design) == 0.0


def test_utility_decreases_with_environment_speed():
    fast_world = LoopPlant(environment_speed=10.0)
    slow_world = LoopPlant(environment_speed=0.5)
    design = LoopDesign(coverage=0.5, model="medium", precision_bits=16,
                        rate_hz=10.0)
    assert fast_world.utility(design) < slow_world.utility(design)


def test_power_monotone_in_coverage_and_rate():
    base = LoopDesign(coverage=0.2, model="medium", precision_bits=16,
                      rate_hz=10.0)
    more_cov = LoopDesign(coverage=0.4, model="medium", precision_bits=16,
                          rate_hz=10.0)
    more_rate = LoopDesign(coverage=0.2, model="medium", precision_bits=16,
                           rate_hz=20.0)
    assert PLANT.power_mw(more_cov) > PLANT.power_mw(base)
    assert PLANT.power_mw(more_rate) > PLANT.power_mw(base)


def test_lower_precision_cheaper():
    hi = LoopDesign(coverage=0.2, model="large", precision_bits=32,
                    rate_hz=20.0)
    lo = LoopDesign(coverage=0.2, model="large", precision_bits=8,
                    rate_hz=20.0)
    assert PLANT.power_mw(lo) < PLANT.power_mw(hi)


def test_e2e_respects_budget():
    design, utility = end_to_end_codesign(PLANT, power_budget_mw=3000)
    assert design is not None
    assert PLANT.power_mw(design) <= 3000
    assert utility > 0


def test_e2e_infeasible_budget_returns_none():
    design, utility = end_to_end_codesign(PLANT, power_budget_mw=10.0)
    assert design is None
    assert utility == 0.0


def test_e2e_at_least_matches_modular():
    """Joint search dominates per-knob search at every budget."""
    for budget in (2000, 4000, 8000, 15000, 30000):
        _, u_e2e = end_to_end_codesign(PLANT, budget)
        _, u_mod = modular_codesign(PLANT, budget)
        assert u_e2e >= u_mod - 1e-12, budget


def test_e2e_strictly_beats_modular_when_constrained():
    """At tight budgets cross-layer trades buy real utility."""
    gains = []
    for budget in (2000, 4000, 8000):
        _, u_e2e = end_to_end_codesign(PLANT, budget)
        _, u_mod = modular_codesign(PLANT, budget)
        if u_mod > 0:
            gains.append(u_e2e / u_mod - 1.0)
    assert max(gains) > 0.08  # >8% utility somewhere in the sweep


def test_codesign_exploits_precision_coverage_trade():
    """At a tight budget the joint optimum spends fewer compute bits to
    afford more sensing — the interdependency modular search misses."""
    design, _ = end_to_end_codesign(PLANT, power_budget_mw=2000)
    assert design.precision_bits < 32


def test_pareto_front_monotone():
    front = pareto_front(PLANT)
    powers = [p for _, p, _ in front]
    utilities = [u for _, _, u in front]
    assert powers == sorted(powers)
    assert utilities == sorted(utilities)
    assert len(front) >= 3


def test_modular_composition_can_be_infeasible():
    """Each knob can be individually affordable while the composition
    blows the budget — the classic modular-optimization failure."""
    # Defaults near the budget edge: every per-knob upgrade fits alone.
    defaults = LoopDesign(coverage=0.4, model="medium", precision_bits=32,
                          rate_hz=10.0)
    budget = PLANT.power_mw(defaults) * 1.4
    combined, utility = modular_codesign(PLANT, budget, defaults=defaults)
    if PLANT.power_mw(combined) > budget:
        assert utility == 0.0
    else:  # if it composes, it must at least respect the budget
        assert PLANT.power_mw(combined) <= budget
