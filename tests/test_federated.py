"""Tests for federated learning: clients, DC-NAS, HaLo-FL, server,
speculative decoding."""

import numpy as np
import pytest

from repro.federated import (
    MODES,
    PROFILE_TIERS,
    FLClient,
    FLServer,
    NGramLM,
    PrecisionSelector,
    autoregressive_decode,
    candidate_configs,
    make_client_model,
    make_fleet,
    merge_subnetwork,
    select_hidden_width,
    slice_weights,
    speculative_decode,
)
from repro.nn import PrecisionConfig
from repro.sim import make_synthetic_cifar, shard_iid


def _setup(n_clients=4, seed=0):
    ds = make_synthetic_cifar(n_per_class=20, seed=seed)
    train, test = ds.split(0.25, np.random.default_rng(seed + 1))
    shards = shard_iid(train, n_clients, rng=np.random.default_rng(seed + 2))
    fleet = make_fleet(n_clients, rng=np.random.default_rng(seed + 3))
    clients = [FLClient(i, s, p, rng=np.random.default_rng(100 + i))
               for i, (s, p) in enumerate(zip(shards, fleet))]
    return clients, test


# ----------------------------------------------------------------- client
def test_client_local_train_returns_report():
    clients, test = _setup()
    w = [p.data.copy() for p in make_client_model(
        test.dim, 16, test.n_classes, np.random.default_rng(0)).parameters()]
    new_w, report = clients[0].local_train(
        w, hidden_used=16, precision=PrecisionConfig.full_precision())
    assert len(new_w) == 4
    assert report.energy_mj > 0
    assert report.latency_ms > 0
    assert report.train_loss > 0
    assert not np.allclose(new_w[0], w[0])  # training moved the weights


def test_client_quantized_training_cheaper():
    clients, test = _setup()
    w = [p.data.copy() for p in make_client_model(
        test.dim, 16, test.n_classes, np.random.default_rng(0)).parameters()]
    _, fp = clients[0].local_train(w, 16, PrecisionConfig.full_precision())
    _, q8 = clients[0].local_train(w, 16, PrecisionConfig.uniform(8))
    assert q8.energy_mj < fp.energy_mj / 5
    assert q8.latency_ms < fp.latency_ms
    assert q8.area_um2 < fp.area_um2


# ----------------------------------------------------------------- dc-nas
def test_select_hidden_width_binds_on_small_devices():
    big = select_hidden_width(PROFILE_TIERS["server"], 64, 10, 32)
    small = select_hidden_width(PROFILE_TIERS["mcu"], 64, 10, 32)
    assert big == 32
    assert small < 32
    assert small >= 4


def test_slice_weights_prefix():
    rng = np.random.default_rng(1)
    w = [rng.normal(size=(8, 16)), rng.normal(size=16),
         rng.normal(size=(16, 3)), rng.normal(size=3)]
    sliced = slice_weights(w, 5)
    assert sliced[0].shape == (8, 5)
    assert sliced[1].shape == (5,)
    assert sliced[2].shape == (5, 3)
    np.testing.assert_array_equal(sliced[0], w[0][:, :5])
    with pytest.raises(ValueError):
        slice_weights(w, 20)


def test_merge_subnetwork_weighted_average():
    rng = np.random.default_rng(2)
    global_w = [np.zeros((4, 6)), np.zeros(6), np.zeros((6, 2)), np.zeros(2)]
    c1 = [np.ones((4, 6)), np.ones(6), np.ones((6, 2)), np.ones(2)]
    c2 = [np.full((4, 3), 3.0), np.full(3, 3.0), np.full((3, 2), 3.0),
          np.full(2, 3.0)]
    merged = merge_subnetwork(global_w, [c1, c2], [6, 3], [1, 1])
    # Units 0-2 trained by both -> mean 2; units 3-5 only by c1 -> 1.
    np.testing.assert_allclose(merged[0][:, :3], 2.0)
    np.testing.assert_allclose(merged[0][:, 3:], 1.0)
    np.testing.assert_allclose(merged[3], 2.0)


def test_merge_subnetwork_untrained_units_keep_global():
    global_w = [np.full((4, 6), 7.0), np.zeros(6), np.zeros((6, 2)),
                np.zeros(2)]
    c = [np.ones((4, 2)), np.ones(2), np.ones((2, 2)), np.ones(2)]
    merged = merge_subnetwork(global_w, [c], [2], [1])
    np.testing.assert_allclose(merged[0][:, 2:], 7.0)


def test_merge_subnetwork_no_clients():
    global_w = [np.ones((2, 2)), np.ones(2), np.ones((2, 2)), np.ones(2)]
    merged = merge_subnetwork(global_w, [], [], [])
    for g, m in zip(global_w, merged):
        np.testing.assert_array_equal(g, m)


# ----------------------------------------------------------------- halo
def test_candidate_configs_respect_gradient_floor():
    for cfg in candidate_configs():
        assert cfg.gradient_bits >= 8


def test_precision_selector_low_noise_tolerance_forces_high_bits():
    rng = np.random.default_rng(3)
    weights = [rng.normal(size=(32, 32))]
    strict = PrecisionSelector(noise_tolerance=1e-9)
    loose = PrecisionSelector(noise_tolerance=0.5)
    profile = PROFILE_TIERS["workstation"]
    cfg_strict = strict.select(weights, profile, int(1e6))
    cfg_loose = loose.select(weights, profile, int(1e6))
    assert cfg_strict.weight_bits >= cfg_loose.weight_bits


def test_precision_selector_fallback_full_precision():
    # A workload so large that no precision fits the energy budget.
    selector = PrecisionSelector(noise_tolerance=1.0)
    cfg = selector.select([np.ones((4, 4))], PROFILE_TIERS["mcu"],
                          int(1e15))
    assert cfg == PrecisionConfig.full_precision()


def test_precision_selector_prefers_cheaper_feasible():
    rng = np.random.default_rng(4)
    weights = [rng.normal(size=(16, 16))]
    selector = PrecisionSelector(noise_tolerance=1.0)
    cfg = selector.select(weights, PROFILE_TIERS["phone"], int(1e6))
    assert cfg.mac_bits <= 8  # something low-precision wins on cost


# ----------------------------------------------------------------- server
def test_server_mode_validation():
    clients, test = _setup()
    with pytest.raises(ValueError):
        FLServer(clients, test, mode="split-learning")
    with pytest.raises(ValueError):
        FLServer([], test)


def test_fedavg_improves_accuracy():
    clients, test = _setup(seed=5)
    srv = FLServer(clients, test, hidden=24, mode="fedavg",
                   rng=np.random.default_rng(6))
    acc0 = srv.evaluate()
    srv.run(8)
    assert srv.history[-1].test_accuracy > max(acc0, 0.3)


@pytest.mark.parametrize("mode", MODES)
def test_all_modes_run(mode):
    clients, test = _setup(seed=7)
    srv = FLServer(clients, test, hidden=16, mode=mode,
                   rng=np.random.default_rng(8))
    summary = srv.run_round()
    assert 0.0 <= summary.test_accuracy <= 1.0
    assert summary.total_energy_mj > 0
    assert len(summary.client_hidden) == len(clients)


def test_dcnas_uses_smaller_widths_on_weak_clients():
    clients, test = _setup(seed=9)
    srv = FLServer(clients, test, hidden=32, mode="dcnas",
                   rng=np.random.default_rng(10))
    summary = srv.run_round()
    assert min(summary.client_hidden) < 32  # someone pruned


def test_halo_reduces_energy_vs_fedavg():
    clients_a, test = _setup(seed=11)
    clients_b, _ = _setup(seed=11)
    base = FLServer(clients_a, test, hidden=16, mode="fedavg",
                    rng=np.random.default_rng(12))
    halo = FLServer(clients_b, test, hidden=16, mode="halo",
                    rng=np.random.default_rng(12))
    base.run(5)
    halo.run(5)
    assert halo.totals()["energy_mj"] < base.totals()["energy_mj"]
    # Low precision must not wreck learning: stay within reach of the
    # full-precision baseline.
    assert halo.totals()["final_accuracy"] > \
        base.totals()["final_accuracy"] - 0.25


def test_totals_requires_rounds():
    clients, test = _setup(seed=13)
    srv = FLServer(clients, test)
    with pytest.raises(RuntimeError):
        srv.totals()


# ------------------------------------------------------------- speculative
def _structured_tokens(n=3000, vocab=10, seed=14):
    rng = np.random.default_rng(seed)
    tokens = [int(rng.integers(vocab))]
    for _ in range(n - 1):
        if rng.random() < 0.8:
            tokens.append((tokens[-1] + 1) % vocab)
        else:
            tokens.append(int(rng.integers(vocab)))
    return tokens


def test_ngram_distribution_sums_to_one():
    lm = NGramLM(8, order=2).fit(_structured_tokens(vocab=8))
    p = lm.distribution([0, 1])
    assert p.shape == (8,)
    assert p.sum() == pytest.approx(1.0)


def test_ngram_learns_structure():
    lm = NGramLM(10, order=1).fit(_structured_tokens())
    p = lm.distribution([3])
    assert np.argmax(p) == 4  # successor structure


def test_autoregressive_decode_counts_calls():
    lm = NGramLM(10, order=2).fit(_structured_tokens())
    stats = autoregressive_decode(lm, [0, 1], 50,
                                  rng=np.random.default_rng(15))
    assert len(stats.tokens) == 50
    assert stats.target_calls == 50


def test_speculative_decode_fewer_target_calls():
    tokens = _structured_tokens()
    target = NGramLM(10, order=3).fit(tokens)
    draft = NGramLM(10, order=1).fit(tokens)
    stats = speculative_decode(target, draft, tokens[:3], 120, k=4,
                               rng=np.random.default_rng(16))
    assert len(stats.tokens) == 120
    assert stats.target_calls < 120
    assert stats.speedup_vs_autoregressive() > 1.2
    assert 0.0 < stats.acceptance_rate <= 1.0


def test_speculative_decode_k_validation():
    lm = NGramLM(4, order=1)
    with pytest.raises(ValueError):
        speculative_decode(lm, lm, [0], 10, k=0)


def test_speculative_output_distribution_close_to_target():
    """Speculative sampling must preserve the target distribution."""
    tokens = _structured_tokens(vocab=6, seed=17)
    target = NGramLM(6, order=1).fit(tokens)
    draft = NGramLM(6, order=1, alpha=2.0).fit(tokens[:200])  # mismatched
    spec_counts = np.zeros(6)
    ar_counts = np.zeros(6)
    for seed in range(30):
        spec = speculative_decode(target, draft, [0], 40, k=3,
                                  rng=np.random.default_rng(seed))
        ar = autoregressive_decode(target, [0], 40,
                                   rng=np.random.default_rng(seed + 500))
        spec_counts += np.bincount(spec.tokens, minlength=6)
        ar_counts += np.bincount(ar.tokens, minlength=6)
    spec_p = spec_counts / spec_counts.sum()
    ar_p = ar_counts / ar_counts.sum()
    assert np.abs(spec_p - ar_p).max() < 0.06
