"""Tests for the sharded serving fabric (``repro.fleet``).

The deterministic :class:`FleetScheduler` core is driven with a
:class:`VirtualClock`, so every routing, staleness-shedding, downgrade,
and backpressure decision is an exact function of recorded dispatches
and completions.  The :class:`ServingFleet` fabric is exercised both
in-process (thread replicas, deterministic gating) and as real
processes over shared-memory slabs, and the shed accounting is checked
against the ``fleet.*`` observability counters.
"""

import queue
import threading

import numpy as np
import pytest

from repro import obs
from repro.core import Percept, VirtualClock
from repro.fleet import (
    ConsistentHashRing,
    FleetConfig,
    FleetReplicaError,
    FleetScheduler,
    MonitorRunnerFactory,
    ReplicaSpec,
    RequestShed,
    ServingFleet,
    ShmSlab,
    replica_loop,
    shm_available,
)
from repro.serve import BatcherConfig, ServiceOverloaded


# --------------------------------------------------- module-level factories
# (process-mode replica factories must be picklable, hence top-level)
def _double_runner_factory(index, seed):
    return lambda items: [np.asarray(x) * 2.0 for x in items]


def _poisonable_runner_factory(index, seed):
    def run(items):
        out = []
        for x in items:
            arr = np.asarray(x, dtype=np.float64)
            if arr.flat[0] > 100.0:
                raise ValueError("poison payload")
            out.append(arr * 2.0)
        return out
    return run


class _GatedFactory:
    """In-process-only factory whose runner blocks until released —
    makes queue-depth scenarios deterministic."""

    def __init__(self):
        self.gate = threading.Event()

    def __call__(self, index, seed):
        def run(items):
            assert self.gate.wait(10.0), "gate never opened"
            return [float(np.asarray(x).sum()) for x in items]
        return run


def _key_for_replica(ring: ConsistentHashRing, replica: int) -> str:
    for i in range(10_000):
        if ring.route(f"probe-{i}") == replica:
            return f"probe-{i}"
    raise AssertionError("no key routes to replica")  # pragma: no cover


# ------------------------------------------------------------------- ring
def test_hash_ring_is_deterministic_and_covers_all_replicas():
    a = ConsistentHashRing(4, vnodes=32)
    b = ConsistentHashRing(4, vnodes=32)
    routes = [a.route(f"client-{i}") for i in range(256)]
    assert routes == [b.route(f"client-{i}") for i in range(256)]
    assert set(routes) == {0, 1, 2, 3}
    assert all(0 <= r < 4 for r in routes)


def test_hash_ring_key_affinity_is_stable():
    ring = ConsistentHashRing(3)
    assert ring.route("tenant-a") == ring.route("tenant-a")
    with pytest.raises(ValueError):
        ConsistentHashRing(0)


# ------------------------------------------------------------------- slab
@pytest.mark.skipif(not shm_available(), reason="no shared_memory")
def test_shm_slab_roundtrip_and_attach():
    slab = ShmSlab(4, 256)
    try:
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        shape, dtype = slab.write(2, arr)
        np.testing.assert_array_equal(slab.read(2, shape, dtype), arr)

        ints = np.array([1, 2, 3], dtype=np.int32)
        shape, dtype = slab.write(0, ints)
        other = ShmSlab.attach(slab.name, 4, 256)
        try:
            got = other.read(0, shape, dtype)
        finally:
            other.close()
        np.testing.assert_array_equal(got, ints)
        assert got.dtype == np.int32
    finally:
        slab.close()
        slab.unlink()
        slab.unlink()  # idempotent


@pytest.mark.skipif(not shm_available(), reason="no shared_memory")
def test_shm_slab_bounds_checks():
    slab = ShmSlab(2, 64)
    try:
        assert slab.fits(np.zeros(8))
        assert not slab.fits(np.zeros(9))
        with pytest.raises(ValueError):
            slab.write(0, np.zeros(9))
        with pytest.raises(IndexError):
            slab.write(2, np.zeros(1))
        with pytest.raises(IndexError):
            slab.read(-1, (1,), "<f8")
    finally:
        slab.close()
        slab.unlink()


# -------------------------------------------------------- scheduler policy
def _loaded_scheduler(per_replica: int = 10, **config_kw):
    """A 2-replica scheduler with ``per_replica`` in-flight requests on
    each replica (projected wait = per_replica x 5ms prior)."""
    clock = VirtualClock()
    sched = FleetScheduler(FleetConfig(replicas=2, **config_kw),
                           clock=clock)
    for replica in (0, 1):
        for _ in range(per_replica):
            sched.record_dispatch(replica)
    return sched, clock


def test_scheduler_dispatches_when_idle():
    sched, _ = _loaded_scheduler(per_replica=0)
    decision = sched.assign("client-1")
    assert decision.action == "dispatch"
    assert decision.replica == sched.ring.route("client-1")
    assert sched.shed_total == 0


def test_scheduler_sheds_stale_request_before_dispatch():
    # Projected wait is 10 x 5ms = 50ms on both replicas; a 20ms budget
    # cannot be met, the lane is not downgradable -> shed, not queued.
    sched, _ = _loaded_scheduler(per_replica=10)
    depth_before = [sched.depth(0), sched.depth(1)]
    decision = sched.assign("client-1", lane="default",
                            staleness_budget_ms=20.0)
    assert decision.action == "shed"
    assert decision.reason == "stale"
    assert decision.projected_wait_s == pytest.approx(0.05)
    assert [sched.depth(0), sched.depth(1)] == depth_before
    assert sched.shed_stale == 1 and sched.shed_total == 1


def test_scheduler_sheds_request_that_arrives_already_stale():
    # Even an idle fleet sheds a request whose observation age already
    # exceeds its budget: serving it would be acting on dead state.
    sched, clock = _loaded_scheduler(per_replica=0)
    taken_at = clock.now()
    clock.advance(0.3)  # default lane budget is 250ms
    decision = sched.assign("client-1", lane="default",
                            enqueue_t=taken_at)
    assert decision.action == "shed" and decision.reason == "stale"


def test_scheduler_downgrades_when_lane_allows():
    sched, _ = _loaded_scheduler(per_replica=10)
    decision = sched.assign("client-1", lane="besteffort",
                            staleness_budget_ms=20.0)
    assert decision.action == "downgrade"
    assert sched.downgraded == 1 and sched.shed_total == 0
    # Without a registered fallback the same request is shed instead.
    decision = sched.assign("client-1", lane="besteffort",
                            staleness_budget_ms=20.0, can_downgrade=False)
    assert decision.action == "shed" and decision.reason == "stale"


def test_scheduler_priority0_retries_least_loaded():
    # Primary cannot meet the budget but the other replica can: an
    # interactive (priority-0) request is rerouted, a default one shed.
    clock = VirtualClock()
    sched = FleetScheduler(FleetConfig(replicas=2, spill_depth=1000),
                           clock=clock)
    key = _key_for_replica(sched.ring, 0)
    for _ in range(30):  # 150ms projected on the primary
        sched.record_dispatch(0)
    shed = sched.assign(key, lane="default", staleness_budget_ms=100.0)
    assert shed.action == "shed"
    saved = sched.assign(key, lane="interactive",
                         staleness_budget_ms=100.0)
    assert saved.action == "dispatch"
    assert saved.replica == 1
    assert sched.spills == 1


def test_scheduler_sheds_overload_when_every_replica_full():
    sched, _ = _loaded_scheduler(per_replica=4, max_queue_depth=4)
    decision = sched.assign("client-1", staleness_budget_ms=1e6)
    assert decision.action == "shed" and decision.reason == "overload"
    assert sched.shed_overload == 1


def test_scheduler_completion_updates_depth_and_ema():
    sched, _ = _loaded_scheduler(per_replica=4)
    sched.record_completion(0, service_s=0.08, batch_size=4)
    assert sched.depth(0) == 0 and sched.depth(1) == 4
    # EMA: 0.2 * (80ms / 4) + 0.8 * 5ms prior
    assert sched.projected_wait_s(0) == 0.0
    assert sched._ema_service_s[0] == pytest.approx(0.008)
    assert sched.least_loaded() == 0
    snap = sched.snapshot()
    assert snap["completed"] == 4
    assert snap["queue_depth"] == [0, 4]


def test_scheduler_counts_match_obs_metrics():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        sched, _ = _loaded_scheduler(per_replica=10)
        sched.assign("a", staleness_budget_ms=20.0)       # stale shed
        sched.assign("b", lane="besteffort",
                     staleness_budget_ms=20.0)            # downgrade
        sched.assign("c", staleness_budget_ms=1e6)        # dispatchable
    counters = registry.snapshot()["counters"]
    assert counters["fleet.requests"] == sched.requests == 3
    assert counters["fleet.shed"] == sched.shed_total == 1
    assert counters["fleet.shed_stale"] == sched.shed_stale == 1
    assert counters["fleet.downgraded"] == sched.downgraded == 1
    assert counters["fleet.dispatched"] == sched.dispatched == 20


def test_scheduler_rejects_unknown_lane():
    sched, _ = _loaded_scheduler(per_replica=0)
    with pytest.raises(ValueError, match="unknown SLO lane"):
        sched.assign("x", lane="no-such-lane")


# ------------------------------------------------------------ replica loop
def test_replica_loop_batches_and_drains_on_stop():
    request_q, response_q = queue.Queue(), queue.Queue()
    spec = ReplicaSpec(runner_factory=_double_runner_factory,
                       batch=BatcherConfig(max_batch_size=3,
                                           max_wait_ms=5.0))
    for seq in range(5):
        request_q.put(("req", seq, -1, None, None,
                       np.full(2, float(seq))))
    request_q.put(("stop",))
    stats = replica_loop(0, spec, seed=0, request_q=request_q,
                         response_q=response_q)
    assert stats == {"requests": 5, "batches": 2, "errors": 0}
    assert response_q.get_nowait() == ("ready", 0)
    rows = []
    while not response_q.empty():
        message = response_q.get_nowait()
        assert message[0] == "res"
        rows.extend(message[3])
    assert sorted(row[0] for row in rows) == [0, 1, 2, 3, 4]
    for seq, _slot, _shape, _dtype, payload, error in rows:
        assert error is None
        np.testing.assert_array_equal(payload, np.full(2, float(seq) * 2))


# -------------------------------------------------- in-process integration
def test_inprocess_fleet_round_trips_requests():
    spec = ReplicaSpec(runner_factory=_double_runner_factory,
                       batch=BatcherConfig(max_batch_size=4,
                                           max_wait_ms=2.0))
    with ServingFleet(spec, FleetConfig(replicas=2),
                      inprocess=True) as fleet:
        assert fleet.transport == "inline"
        payloads = [np.full(3, float(i)) for i in range(20)]
        results = [fleet.submit(p, key=f"client-{i % 5}", timeout=30.0)
                   for i, p in enumerate(payloads)]
        for payload, result in zip(payloads, results):
            np.testing.assert_array_equal(result, payload * 2.0)
        snap = fleet.scheduler.snapshot()
        assert snap["dispatched"] == snap["completed"] == 20
        assert snap["shed"] == 0
    stats = fleet.stats()
    assert stats["inprocess"] is True
    assert sum(r["requests"] for r in stats["replicas"].values()) == 20


def test_inprocess_fleet_saturation_sheds_and_accounts():
    """Saturating ``max_queue_depth`` across 2 replicas: overload sheds
    surface as :class:`ServiceOverloaded` and the counts agree between
    raised exceptions, the scheduler, and the ``fleet.*`` metrics."""
    factory = _GatedFactory()
    spec = ReplicaSpec(runner_factory=factory,
                       batch=BatcherConfig(max_batch_size=8,
                                           max_wait_ms=5.0))
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with ServingFleet(spec, FleetConfig(replicas=2, max_queue_depth=2),
                          inprocess=True) as fleet:
            tickets, sheds = [], []
            for i in range(12):  # capacity is 2 replicas x depth 2
                try:
                    tickets.append(fleet.submit_async(
                        np.full(2, float(i)), key=f"client-{i}",
                        staleness_budget_ms=10_000.0))
                except RequestShed as exc:
                    assert isinstance(exc, ServiceOverloaded)
                    assert exc.reason == "overload"
                    sheds.append(exc)
            assert len(tickets) == 4 and len(sheds) == 8
            factory.gate.set()
            for ticket in tickets:
                assert ticket.event.wait(30.0)
                ticket.result()
            sched = fleet.scheduler
            assert sched.shed_overload == len(sheds) == 8
            assert sched.shed_stale == 0
            assert sched.completed == 4
    counters = registry.snapshot()["counters"]
    assert counters["fleet.shed"] == 8
    assert counters["fleet.shed_overload"] == 8
    assert counters["fleet.dispatched"] == 4
    assert counters["fleet.completed"] == 4


def test_inprocess_fleet_downgrades_to_fallback():
    """A downgradeable request that cannot meet its budget is answered
    by the fallback method, synchronously, and counted."""
    factory = _GatedFactory()
    spec = ReplicaSpec(runner_factory=factory,
                       batch=BatcherConfig(max_batch_size=8,
                                           max_wait_ms=5.0))
    fallback_calls = []

    def fallback(payload):
        fallback_calls.append(np.asarray(payload).copy())
        return -1.0

    with ServingFleet(spec, FleetConfig(replicas=1), fallback=fallback,
                      inprocess=True) as fleet:
        blocked = [fleet.submit_async(np.full(2, float(i)), key="warm",
                                      staleness_budget_ms=10_000.0)
                   for i in range(2)]
        # Projected wait is 2 x 5ms prior = 10ms > the 1ms budget.
        result = fleet.submit(np.ones(2), key="warm", lane="besteffort",
                              staleness_budget_ms=1.0, timeout=30.0)
        assert result == -1.0
        assert len(fallback_calls) == 1
        assert fleet.scheduler.downgraded == 1
        assert fleet.scheduler.shed_total == 0
        factory.gate.set()
        for ticket in blocked:
            assert ticket.event.wait(30.0)


def test_inprocess_fleet_contains_batch_runner_failures():
    spec = ReplicaSpec(runner_factory=_poisonable_runner_factory,
                       batch=BatcherConfig(max_batch_size=4,
                                           max_wait_ms=2.0))
    with ServingFleet(spec, FleetConfig(replicas=1),
                      inprocess=True) as fleet:
        np.testing.assert_array_equal(
            fleet.submit(np.full(2, 3.0), timeout=30.0), np.full(2, 6.0))
        with pytest.raises(FleetReplicaError) as exc_info:
            fleet.submit(np.full(2, 999.0), timeout=30.0)
        # The replica-side traceback rides along, and the replica
        # survives to serve the next request.
        assert "poison payload" in str(exc_info.value)
        assert "Traceback" in str(exc_info.value)
        np.testing.assert_array_equal(
            fleet.submit(np.full(2, 4.0), timeout=30.0), np.full(2, 8.0))


def test_inprocess_fleet_monitor_equivalence_across_sharding():
    """Sharding the STARNet trust workload across replicas returns the
    same per-request values as scoring directly — the contract the
    fleet bench gates on, minus the processes."""
    factory = MonitorRunnerFactory(fit_epochs=3, per_batch_ms=0.0,
                                   per_item_ms=0.0)
    rng = np.random.default_rng(7)
    rows = [rng.normal(size=6) for _ in range(24)]
    monitor = factory.make_monitor()
    expected = [float(t) for t in monitor.assess_batch(
        [Percept(features=row) for row in rows])]
    spec = ReplicaSpec(runner_factory=factory,
                       batch=BatcherConfig(max_batch_size=4,
                                           max_wait_ms=2.0))
    with ServingFleet(spec, FleetConfig(replicas=2),
                      inprocess=True) as fleet:
        got = [fleet.submit(row, key=f"client-{i % 6}", timeout=60.0)
               for i, row in enumerate(rows)]
    np.testing.assert_allclose(got, expected, rtol=0, atol=1e-9)


# ------------------------------------------------------ process-mode smoke
@pytest.mark.skipif(not shm_available(), reason="no shared_memory")
def test_process_fleet_serves_over_shared_memory():
    spec = ReplicaSpec(runner_factory=_double_runner_factory,
                       batch=BatcherConfig(max_batch_size=4,
                                           max_wait_ms=5.0))
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with ServingFleet(spec, FleetConfig(replicas=2, max_queue_depth=8,
                                            slot_bytes=512)) as fleet:
            assert fleet.transport == "shm"
            payloads = [np.full(6, float(i)) for i in range(16)]
            tickets = [fleet.submit_async(p, key=f"client-{i % 4}")
                       for i, p in enumerate(payloads)]
            for payload, ticket in zip(payloads, tickets):
                assert ticket.event.wait(60.0)
                np.testing.assert_array_equal(ticket.result(),
                                              payload * 2.0)
            assert fleet.scheduler.completed == 16
        # Replica-side telemetry merged back on close, in index order.
        counters = registry.snapshot()["counters"]
        replica_requests = sum(
            counters.get(f"fleet.r{i}.requests", 0.0) for i in range(2))
        assert replica_requests == 16
    stats = fleet.stats()
    assert sum(r["requests"] for r in stats["replicas"].values()) == 16
