"""Tests for detection heads, AP metric, and the Table I pipeline."""

import numpy as np
import pytest

from repro.detect import (
    BEVDetector,
    Detection,
    DetectionExperimentConfig,
    DetectorConfig,
    build_target_maps,
    compute_ap,
    evaluate_class,
    finetune_detector,
    make_detection_data,
    run_detection_experiment,
)
from repro.sim import Scene, SceneObject
from repro.voxel import VoxelGridConfig, voxelize


GRID = VoxelGridConfig(nx=16, ny=16, nz=2, x_range=(0.0, 60.0),
                       y_range=(-30.0, 30.0))


# ---------------------------------------------------------------------- AP
def test_compute_ap_perfect():
    matches = [(0.9, True), (0.8, True)]
    assert compute_ap(matches, n_ground_truth=2) == pytest.approx(1.0)


def test_compute_ap_no_predictions():
    assert compute_ap([], n_ground_truth=3) == 0.0


def test_compute_ap_no_ground_truth():
    assert compute_ap([(0.9, False)], n_ground_truth=0) == 0.0


def test_compute_ap_false_positives_lower_ap():
    clean = compute_ap([(0.9, True), (0.8, True)], 2)
    noisy = compute_ap([(0.95, False), (0.9, True), (0.8, True)], 2)
    assert noisy < clean


def test_compute_ap_partial_recall():
    # One of two GT found -> AP = 0.5 with perfect precision.
    assert compute_ap([(0.9, True)], 2) == pytest.approx(0.5)


def test_evaluate_class_distance_matching():
    preds = [[Detection("Car", 10.0, 0.0, 0.9)]]
    gts_close = [np.array([[11.0, 0.5]])]
    gts_far = [np.array([[30.0, 20.0]])]
    assert evaluate_class(preds, gts_close, "Car") == pytest.approx(100.0)
    assert evaluate_class(preds, gts_far, "Car") == 0.0


def test_evaluate_class_each_gt_claimed_once():
    preds = [[Detection("Car", 10.0, 0.0, 0.9),
              Detection("Car", 10.1, 0.0, 0.8)]]
    gts = [np.array([[10.0, 0.0]])]
    # Second prediction is a duplicate -> precision drops below 1.
    ap = evaluate_class(preds, gts, "Car")
    assert ap == pytest.approx(100.0)  # AP unaffected: recall hit first


def test_evaluate_class_scene_count_mismatch():
    with pytest.raises(ValueError):
        evaluate_class([[]], [np.zeros((0, 2)), np.zeros((0, 2))], "Car")


# ------------------------------------------------------------------- heads
def _toy_scene():
    return Scene(objects=[
        SceneObject("Car", np.array([15.0, 0.0, 0.8]),
                    np.array([4.0, 2.0, 1.6])),
        SceneObject("Pedestrian", np.array([10.0, 5.0, 0.9]),
                    np.array([0.8, 0.7, 1.8])),
    ])


def test_build_target_maps_marks_centers():
    scene = _toy_scene()
    targets = build_target_maps(scene, GRID, downsample=2)
    assert targets.shape == (3, 8, 8)
    assert targets[0].sum() == 1.0   # one car
    assert targets[1].sum() == 1.0   # one pedestrian
    assert targets[2].sum() == 0.0   # no cyclist


def test_detector_config_validation():
    with pytest.raises(ValueError):
        DetectorConfig(backbone="yolo")


def test_detector_score_maps_shape():
    det = BEVDetector(GRID, rng=np.random.default_rng(0))
    pts = np.array([[15.0, 0.0, 0.8, 0.5], [10.0, 5.0, 0.9, 0.4]])
    cloud = voxelize(pts, config=GRID)
    maps = det.score_maps(cloud)
    assert maps.shape == (3, 8, 8)


def test_pvrcnn_lite_has_more_parameters():
    a = BEVDetector(GRID, DetectorConfig(backbone="second_lite"),
                    rng=np.random.default_rng(1))
    b = BEVDetector(GRID, DetectorConfig(backbone="pvrcnn_lite"),
                    rng=np.random.default_rng(1))
    assert b.num_parameters() > a.num_parameters()


def test_detector_overfits_single_scene():
    """Sanity: the detector can memorize one labeled scene."""
    scene = _toy_scene()
    pts = []
    for obj in scene.objects:
        for _ in range(6):
            jitter = np.random.default_rng(2).normal(0, 0.3, size=3)
            pts.append([*(obj.center + jitter), 0.5])
    cloud = voxelize(np.array(pts),
                     labels=np.repeat([0, 1], 6), config=GRID)
    targets = build_target_maps(scene, GRID)
    det = BEVDetector(GRID, rng=np.random.default_rng(3))
    losses = finetune_detector(det, [(cloud, targets)], epochs=40,
                               rng=np.random.default_rng(4))
    assert losses[-1] < losses[0] * 0.5
    detections = det.detect(cloud, score_threshold=0.3)
    assert any(d.cls == "Car" and abs(d.x - 15.0) < 5 for d in detections)


def test_detect_returns_detections_with_scores():
    det = BEVDetector(GRID, rng=np.random.default_rng(5))
    pts = np.array([[15.0, 0.0, 0.8, 0.5]])
    cloud = voxelize(pts, config=GRID)
    for d in det.detect(cloud, score_threshold=0.0):
        assert 0.0 <= d.score <= 1.0
        assert d.cls in ("Car", "Pedestrian", "Cyclist")


# ---------------------------------------------------------------- pipeline
def test_make_detection_data_shapes():
    cfg = DetectionExperimentConfig(n_pretrain_scenes=2, n_train_scenes=2,
                                    n_eval_scenes=2)
    pretrain, train, evals = make_detection_data(cfg)
    assert len(pretrain) == 2
    assert len(train) == 2 and len(evals) == 2
    cloud, targets = train[0]
    assert targets.shape[0] == 3


def test_run_detection_experiment_smoke():
    cfg = DetectionExperimentConfig(n_pretrain_scenes=3, n_train_scenes=3,
                                    n_eval_scenes=3, pretrain_epochs=1,
                                    finetune_epochs=2)
    data = make_detection_data(cfg)
    ap = run_detection_experiment("rmae", config=cfg, data=data)
    assert set(ap.keys()) == {"Car", "Pedestrian", "Cyclist"}
    assert all(0.0 <= v <= 100.0 for v in ap.values())


def test_run_detection_experiment_unknown_method():
    with pytest.raises(KeyError):
        run_detection_experiment("simclr")


def test_pretraining_transfers_encoder():
    """Pretraining must actually change the encoder the detector gets."""
    from repro.generative import RMAE, pretrain_rmae
    from repro.sim import LidarConfig, LidarScanner, sample_scene

    rng = np.random.default_rng(6)
    scanner = LidarScanner(LidarConfig(n_azimuth=32, n_elevation=6), rng=rng)
    clouds = [voxelize(scanner.scan(sample_scene(rng)).points, config=GRID)
              for _ in range(2)]
    encoder = RMAE(GRID, rng=np.random.default_rng(7))
    before = [p.data.copy() for p in encoder.parameters()]
    pretrain_rmae(encoder, clouds, epochs=2, rng=np.random.default_rng(8))
    changed = any(not np.allclose(b, p.data)
                  for b, p in zip(before, encoder.parameters()))
    assert changed
    det = BEVDetector(GRID, encoder=encoder, rng=np.random.default_rng(9))
    # The detector really shares the pretrained object (not a copy).
    assert det.rmae is encoder
