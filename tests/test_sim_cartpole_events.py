"""Tests for the cart-pole and event-camera simulators."""

import numpy as np
import pytest

from repro.sim import (
    CartPole,
    DisturbanceProcess,
    EventCameraConfig,
    EventCameraSimulator,
    make_flow_dataset,
    render_observation,
)


# ---------------------------------------------------------------- cartpole
def test_cartpole_reset_near_upright():
    env = CartPole(rng=np.random.default_rng(0))
    s = env.reset(noise_scale=0.01)
    assert np.all(np.abs(s) <= 0.01)


def test_cartpole_falls_without_control():
    env = CartPole(rng=np.random.default_rng(1))
    env.reset(noise_scale=0.05)
    done = False
    for _ in range(500):
        _, _, done = env.step(0.0)
        if done:
            break
    assert done  # the upright equilibrium is unstable


def test_cartpole_action_clipped():
    env = CartPole(rng=np.random.default_rng(2))
    env.reset()
    s_big, _, _ = env.step(100.0)
    env2 = CartPole(rng=np.random.default_rng(2))
    env2.reset()
    s_one, _, _ = env2.step(1.0)
    np.testing.assert_allclose(s_big, s_one)


def test_cartpole_reward_upright_near_one():
    env = CartPole(rng=np.random.default_rng(3))
    env.reset(noise_scale=0.0)
    _, r, done = env.step(0.0)
    assert not done
    assert r == pytest.approx(1.0, abs=0.05)


def test_cartpole_done_outside_band():
    env = CartPole(rng=np.random.default_rng(4))
    env.reset()
    env.state = np.array([5.0, 0.0, 0.0, 0.0])  # beyond x limit
    _, r, done = env.step(0.0)
    assert done and r == 0.0


def test_disturbance_process_probability():
    d = DisturbanceProcess(p=1.0, a_min=2.0, a_max=2.0)
    rng = np.random.default_rng(5)
    forces = [d.sample(rng) for _ in range(100)]
    assert all(abs(f) == pytest.approx(2.0) for f in forces)
    # both signs occur
    assert any(f > 0 for f in forces) and any(f < 0 for f in forces)


def test_disturbance_process_zero_probability():
    d = DisturbanceProcess(p=0.0)
    rng = np.random.default_rng(6)
    assert all(d.sample(rng) == 0.0 for _ in range(50))


def test_disturbance_validation():
    with pytest.raises(ValueError):
        DisturbanceProcess(p=1.5)
    with pytest.raises(ValueError):
        DisturbanceProcess(a_min=5.0, a_max=1.0)


def test_disturbance_degrades_uncontrolled_survival():
    def survival(p):
        total = 0
        for seed in range(8):
            env = CartPole(disturbance=DisturbanceProcess(p=p, a_min=5,
                                                          a_max=15),
                           rng=np.random.default_rng(seed))
            env.reset(noise_scale=0.02)
            for t in range(300):
                _, _, done = env.step(0.0)
                if done:
                    break
            total += t
        return total

    assert survival(0.5) <= survival(0.0)


def test_linearized_dynamics_unstable_pole():
    env = CartPole()
    a, b = env.linearized_dynamics()
    eigs = np.abs(np.linalg.eigvals(a))
    assert eigs.max() > 1.0  # open-loop unstable
    assert b.shape == (4, 1)


def test_linearization_matches_nonlinear_near_origin():
    env = CartPole(rng=np.random.default_rng(7))
    a, b = env.linearized_dynamics()
    s0 = np.array([0.01, 0.0, 0.02, 0.0])
    env.state = s0.copy()
    s1, _, _ = env.step(0.1)
    s1_lin = a @ s0 + b[:, 0] * 0.1
    np.testing.assert_allclose(s1, s1_lin, atol=5e-4)


def test_render_observation_draws_cart_and_pole():
    img = render_observation(np.zeros(4), size=24)
    assert img.shape == (24, 24)
    assert img.max() == 1.0  # cart block
    assert (img > 0.5).sum() >= 10  # pole pixels present


def test_render_observation_responds_to_state():
    left = render_observation(np.array([-2.0, 0, 0, 0]), size=24)
    right = render_observation(np.array([2.0, 0, 0, 0]), size=24)
    assert not np.allclose(left, right)


# ------------------------------------------------------------ event camera
def test_flow_sample_shapes():
    sim = EventCameraSimulator(EventCameraConfig(height=12, width=12,
                                                 n_substeps=3),
                               rng=np.random.default_rng(8))
    s = sim.sample()
    assert s.event_volume.shape == (2, 12, 12)
    assert s.frames.shape == (2, 12, 12)
    assert s.flow.shape == (2, 12, 12)
    assert s.event_frames.shape == (3, 2, 12, 12)
    np.testing.assert_allclose(s.event_frames.sum(axis=0), s.event_volume)


def test_events_nonnegative_integers():
    sim = EventCameraSimulator(rng=np.random.default_rng(9))
    s = sim.sample()
    assert np.all(s.event_volume >= 0)
    np.testing.assert_allclose(s.event_volume, np.round(s.event_volume))


def test_larger_motion_makes_more_events():
    cfg = EventCameraConfig(noise_events_per_pixel=0.0)
    slow_total, fast_total = 0.0, 0.0
    for seed in range(5):
        slow = EventCameraSimulator(cfg, rng=np.random.default_rng(seed))
        fast = EventCameraSimulator(cfg, rng=np.random.default_rng(seed))
        slow_total += slow.sample(max_displacement=0.5).event_volume.sum()
        fast_total += fast.sample(max_displacement=4.0).event_volume.sum()
    assert fast_total > slow_total


def test_flow_ground_truth_constant_field():
    sim = EventCameraSimulator(rng=np.random.default_rng(10))
    s = sim.sample()
    assert np.unique(s.flow[0]).size == 1
    assert np.unique(s.flow[1]).size == 1
    assert np.abs(s.flow).max() <= 3.0


def test_make_flow_dataset_reproducible():
    a = make_flow_dataset(4, seed=5)
    b = make_flow_dataset(4, seed=5)
    for sa, sb in zip(a, b):
        np.testing.assert_array_equal(sa.event_volume, sb.event_volume)
        np.testing.assert_array_equal(sa.flow, sb.flow)


def test_event_mask_nontrivial():
    s = make_flow_dataset(1, seed=6)[0]
    mask = s.has_event_mask
    assert 0 < mask.sum() < mask.size
