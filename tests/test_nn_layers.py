"""Gradient-checked unit tests for every layer in repro.nn.layers."""

import numpy as np
import pytest

from gradcheck import check_layer_gradients
from repro.nn import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ConvTranspose2d,
    Dense,
    Dropout,
    Flatten,
    GRUCell,
    Identity,
    LayerNorm,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    mlp,
)

RNG = np.random.default_rng(7)


def test_dense_forward_shape():
    layer = Dense(5, 3, rng=np.random.default_rng(0))
    y = layer.forward(RNG.normal(size=(4, 5)))
    assert y.shape == (4, 3)


def test_dense_gradients():
    layer = Dense(4, 3, rng=np.random.default_rng(1))
    check_layer_gradients(layer, RNG.normal(size=(5, 4)))


def test_dense_no_bias():
    layer = Dense(4, 3, bias=False, rng=np.random.default_rng(1))
    assert layer.bias is None
    assert len(layer.parameters()) == 1
    check_layer_gradients(layer, RNG.normal(size=(2, 4)))


def test_dense_3d_input():
    layer = Dense(4, 3, rng=np.random.default_rng(1))
    y = layer.forward(RNG.normal(size=(2, 5, 4)))
    assert y.shape == (2, 5, 3)


@pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid, Softplus, Identity])
def test_simple_activations_gradients(cls):
    layer = cls()
    # Offset away from the ReLU kink to keep numeric gradients exact.
    x = RNG.normal(size=(3, 6)) + 0.05
    x[np.abs(x) < 0.02] = 0.1
    check_layer_gradients(layer, x)


def test_leaky_relu_negative_slope():
    layer = LeakyReLU(slope=0.1)
    x = np.array([[-2.0, 3.0]])
    y = layer.forward(x)
    np.testing.assert_allclose(y, [[-0.2, 3.0]])
    check_layer_gradients(layer, RNG.normal(size=(3, 4)) + 0.05)


def test_dropout_eval_mode_is_identity():
    layer = Dropout(0.5, rng=np.random.default_rng(2))
    layer.training = False
    x = RNG.normal(size=(10, 10))
    np.testing.assert_array_equal(layer.forward(x), x)


def test_dropout_train_mode_scales():
    layer = Dropout(0.5, rng=np.random.default_rng(2))
    x = np.ones((2000,))
    y = layer.forward(x)
    # Inverted dropout preserves the expectation.
    assert abs(y.mean() - 1.0) < 0.1
    assert set(np.round(np.unique(y), 6)) <= {0.0, 2.0}


def test_dropout_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_layernorm_normalizes_last_axis():
    layer = LayerNorm(8)
    y = layer.forward(RNG.normal(size=(5, 8)) * 10 + 3)
    np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-9)
    np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-2)


def test_layernorm_gradients():
    layer = LayerNorm(6)
    check_layer_gradients(layer, RNG.normal(size=(4, 6)), rtol=1e-3)


def test_batchnorm_train_statistics():
    layer = BatchNorm(4)
    x = RNG.normal(size=(64, 4)) * 3 + 1
    y = layer.forward(x)
    np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_eval_uses_running_stats():
    layer = BatchNorm(4, momentum=1.0)
    x = RNG.normal(size=(64, 4)) * 2 + 5
    layer.forward(x)
    layer.training = False
    y = layer.forward(x)
    np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=0.1)


def test_batchnorm_gradients():
    layer = BatchNorm(3)
    check_layer_gradients(layer, RNG.normal(size=(6, 3)), rtol=1e-3)


def test_flatten_roundtrip():
    layer = Flatten()
    x = RNG.normal(size=(2, 3, 4, 5))
    y = layer.forward(x)
    assert y.shape == (2, 60)
    assert layer.backward(y).shape == x.shape


def test_conv2d_output_shape():
    conv = Conv2d(2, 4, kernel=3, stride=1, pad=1, rng=np.random.default_rng(3))
    y = conv.forward(RNG.normal(size=(2, 2, 8, 8)))
    assert y.shape == (2, 4, 8, 8)


def test_conv2d_stride2_shape():
    conv = Conv2d(2, 4, kernel=3, stride=2, pad=1, rng=np.random.default_rng(3))
    y = conv.forward(RNG.normal(size=(1, 2, 8, 8)))
    assert y.shape == (1, 4, 4, 4)


def test_conv2d_gradients():
    conv = Conv2d(2, 3, kernel=3, stride=1, pad=1, rng=np.random.default_rng(3))
    check_layer_gradients(conv, RNG.normal(size=(2, 2, 5, 5)), rtol=1e-3)


def test_conv2d_matches_manual_single_pixel():
    conv = Conv2d(1, 1, kernel=3, stride=1, pad=1,
                  rng=np.random.default_rng(4), bias=False)
    x = np.zeros((1, 1, 5, 5))
    x[0, 0, 2, 2] = 1.0
    y = conv.forward(x)
    # Cross-correlation convention: the impulse response around the
    # impulse equals the spatially flipped kernel.
    k = conv.weight.data[0, 0]
    np.testing.assert_allclose(y[0, 0, 1:4, 1:4], k[::-1, ::-1],
                               atol=1e-12)


def test_conv_transpose_upsamples():
    deconv = ConvTranspose2d(3, 2, kernel=4, stride=2, pad=1,
                             rng=np.random.default_rng(5))
    y = deconv.forward(RNG.normal(size=(1, 3, 4, 4)))
    assert y.shape == (1, 2, 8, 8)


def test_conv_transpose_gradients():
    deconv = ConvTranspose2d(2, 2, kernel=4, stride=2, pad=1,
                             rng=np.random.default_rng(5))
    check_layer_gradients(deconv, RNG.normal(size=(1, 2, 3, 3)), rtol=1e-3)


def test_maxpool_values():
    pool = MaxPool2d(2)
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    y = pool.forward(x)
    np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])


def test_maxpool_gradients_route_to_max():
    pool = MaxPool2d(2)
    x = RNG.normal(size=(1, 2, 4, 4))
    y = pool.forward(x)
    g = pool.backward(np.ones_like(y))
    # Each 2x2 window contributes exactly one gradient unit.
    assert g.sum() == y.size


def test_avgpool_values_and_gradients():
    pool = AvgPool2d(2)
    x = np.ones((1, 1, 4, 4))
    y = pool.forward(x)
    np.testing.assert_allclose(y, 1.0)
    g = pool.backward(np.ones_like(y))
    np.testing.assert_allclose(g, 0.25)


def test_gru_cell_step_shapes():
    cell = GRUCell(3, 5, rng=np.random.default_rng(6))
    h = cell.step(RNG.normal(size=(2, 3)), np.zeros((2, 5)))
    assert h.shape == (2, 5)


def test_gru_cell_gradients():
    cell = GRUCell(3, 4, rng=np.random.default_rng(6))
    check_layer_gradients(cell, RNG.normal(size=(2, 3)), rtol=1e-3)


def test_module_parameter_discovery():
    net = mlp([4, 8, 2], rng=np.random.default_rng(7))
    params = net.parameters()
    assert len(params) == 4  # two Dense layers: weight + bias each
    assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


def test_train_eval_propagates_to_children():
    net = Sequential(Dense(3, 3), Dropout(0.5), Dense(3, 1))
    net.eval()
    assert all(not m.training for m in net.modules())
    net.train()
    assert all(m.training for m in net.modules())


def test_state_dict_roundtrip():
    net = mlp([3, 5, 2], rng=np.random.default_rng(8))
    state = net.state_dict()
    for p in net.parameters():
        p.data[...] = 0.0
    net.load_state_dict(state)
    total = sum(float(np.abs(p.data).sum()) for p in net.parameters())
    assert total > 0


def test_state_dict_shape_mismatch_raises():
    net = mlp([3, 5, 2], rng=np.random.default_rng(8))
    other = mlp([3, 6, 2], rng=np.random.default_rng(8))
    with pytest.raises(ValueError):
        net.load_state_dict(other.state_dict())
