"""Tests for synthetic datasets, federated sharding, and the gridworld."""

import numpy as np
import pytest

from repro.sim import (
    ClassificationDataset,
    CoverageGridWorld,
    GridWorldConfig,
    make_synthetic_cifar,
    shard_dirichlet,
    shard_iid,
)


# ----------------------------------------------------------------- dataset
def test_synthetic_cifar_shapes_and_range():
    ds = make_synthetic_cifar(n_per_class=10, n_classes=10, side=8, seed=0)
    assert len(ds) == 100
    assert ds.dim == 64
    assert ds.n_classes == 10
    assert np.all((ds.x >= 0) & (ds.x <= 1))
    assert set(np.unique(ds.y)) == set(range(10))


def test_synthetic_cifar_classes_separable():
    """A linear probe must beat chance by a wide margin."""
    ds = make_synthetic_cifar(n_per_class=40, seed=1)
    train, test = ds.split(0.25, np.random.default_rng(2))
    # Nearest-class-mean classifier.
    means = np.stack([train.x[train.y == c].mean(axis=0)
                      for c in range(ds.n_classes)])
    d2 = ((test.x[:, None, :] - means[None]) ** 2).sum(axis=2)
    acc = (np.argmin(d2, axis=1) == test.y).mean()
    assert acc > 0.5  # chance is 0.1


def test_dataset_split_disjoint():
    ds = make_synthetic_cifar(n_per_class=10, seed=3)
    train, test = ds.split(0.2, np.random.default_rng(4))
    assert len(train) + len(test) == len(ds)
    assert len(test) == int(0.2 * len(ds))


def test_dataset_mismatched_lengths():
    with pytest.raises(ValueError):
        ClassificationDataset(np.zeros((5, 3)), np.zeros(4), 2)


def test_dataset_batches_cover_everything():
    ds = make_synthetic_cifar(n_per_class=5, seed=5)
    seen = 0
    for xb, yb in ds.batches(8, rng=np.random.default_rng(6)):
        assert xb.shape[0] == yb.shape[0]
        seen += xb.shape[0]
    assert seen == len(ds)


def test_shard_iid_partitions():
    ds = make_synthetic_cifar(n_per_class=12, seed=7)
    shards = shard_iid(ds, 4, rng=np.random.default_rng(8))
    assert sum(len(s) for s in shards) == len(ds)
    assert len(shards) == 4


def test_shard_dirichlet_skews_labels():
    ds = make_synthetic_cifar(n_per_class=50, seed=9)
    iid = shard_iid(ds, 5, rng=np.random.default_rng(10))
    noniid = shard_dirichlet(ds, 5, alpha=0.1, rng=np.random.default_rng(10))

    def label_entropy(shards):
        ents = []
        for s in shards:
            p = np.bincount(s.y, minlength=ds.n_classes) / len(s)
            p = p[p > 0]
            ents.append(-(p * np.log(p)).sum())
        return np.mean(ents)

    assert label_entropy(noniid) < label_entropy(iid)


def test_shard_dirichlet_every_client_nonempty():
    ds = make_synthetic_cifar(n_per_class=6, seed=11)
    shards = shard_dirichlet(ds, 8, alpha=0.05,
                             rng=np.random.default_rng(12))
    assert all(len(s) >= 1 for s in shards)


def test_shard_dirichlet_alpha_validation():
    ds = make_synthetic_cifar(n_per_class=5, seed=13)
    with pytest.raises(ValueError):
        shard_dirichlet(ds, 3, alpha=0.0)


# --------------------------------------------------------------- gridworld
def test_gridworld_agents_placed_inside():
    world = CoverageGridWorld(GridWorldConfig(size=10, n_agents=3))
    for a in world.agents:
        assert 0 <= a.position[0] < 10
        assert 0 <= a.position[1] < 10


def test_gridworld_step_requires_all_commands():
    world = CoverageGridWorld(GridWorldConfig(n_agents=2))
    with pytest.raises(ValueError):
        world.step([((0, 0), 1)])


def test_gridworld_move_clipped_to_bounds():
    world = CoverageGridWorld(GridWorldConfig(size=6, n_agents=1))
    world.agents[0].position = (0, 0)
    world.step([((-5, -5), 1)])
    assert world.agents[0].position == (0, 0)


def test_gridworld_energy_charges_unclipped_disk():
    config = GridWorldConfig(size=6, n_agents=1, event_rate=0.0,
                             sense_energy_per_cell=1.0, move_energy=0.0)
    world = CoverageGridWorld(config)
    world.agents[0].position = (0, 0)  # disk mostly off-grid
    world.step([((0, 0), 2)])
    disk = CoverageGridWorld.disk_cell_count(2)
    assert world.total_energy_mj == pytest.approx(disk)


def test_gridworld_disk_cell_count_values():
    assert CoverageGridWorld.disk_cell_count(0) == 1
    assert CoverageGridWorld.disk_cell_count(1) == 5
    assert CoverageGridWorld.disk_cell_count(2) == 13


def test_gridworld_detection_accounting():
    config = GridWorldConfig(size=8, n_agents=1, event_rate=0.8, event_ttl=3)
    world = CoverageGridWorld(config, rng=np.random.default_rng(14))
    big = int(np.ceil(np.sqrt(2) * 8))
    for _ in range(20):
        world.step([((0, 0), big)])  # sense everything
    assert world.detected > 0
    assert world.detection_rate == pytest.approx(1.0)


def test_gridworld_events_expire_unobserved():
    config = GridWorldConfig(size=8, n_agents=1, event_rate=0.8, event_ttl=2)
    world = CoverageGridWorld(config, rng=np.random.default_rng(15))
    for _ in range(20):
        world.step([((0, 0), 0)])  # sense almost nothing
    assert world.expired > 0
    assert world.detection_rate < 0.5


def test_gridworld_redundancy_metric():
    config = GridWorldConfig(size=8, n_agents=2, event_rate=0.0)
    world = CoverageGridWorld(config, rng=np.random.default_rng(16))
    # Put both agents on the same cell: full overlap => redundancy ~2.
    world.agents[0].position = (4, 4)
    world.agents[1].position = (4, 4)
    out = world.step([((0, 0), 2), ((0, 0), 2)])
    assert out["redundancy"] == pytest.approx(2.0)
