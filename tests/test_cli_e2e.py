"""Subprocess-level CLI end-to-end tests.

``tests/test_cli_fusion.py`` exercises ``repro.cli.main`` in-process;
these tests instead spawn ``python -m repro ...`` the way CI and users
do, pinning *process* exit codes, stdout JSON shapes, and environment
handling (``REPRO_CACHE_DIR``) that in-process calls cannot witness.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _repro(*args, env_extra=None, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=timeout)


# ------------------------------------------------------------------- list
def test_list_exit_code_and_inventory():
    proc = _repro("list")
    assert proc.returncode == 0
    for token in ("demos:", "experiments:", "benches:", "quickstart",
                  "table2"):
        assert token in proc.stdout


# ------------------------------------------------------------------- demo
def test_demo_quickstart_succeeds():
    proc = _repro("demo", "quickstart", env_extra={"REPRO_CACHE": "0"})
    assert proc.returncode == 0


def test_demo_unknown_exits_nonzero():
    proc = _repro("demo", "not-a-demo")
    assert proc.returncode == 2


# ---------------------------------------------------------------- profile
def test_profile_demo_json_artifact(tmp_path):
    out = tmp_path / "trace.json"
    proc = _repro("profile", "demo", "--cycles", "10",
                  "--out", str(out))
    assert proc.returncode == 0
    payload = json.loads(out.read_text())
    assert payload["target"] == "demo"
    assert set(payload["metrics"]) == {"counters", "gauges", "histograms"}
    assert payload["metrics"]["counters"]  # the loop counted something
    assert isinstance(payload["spans"], list) and payload["spans"]


def test_profile_unknown_target_exits_nonzero():
    proc = _repro("profile", "not-a-target")
    assert proc.returncode == 2
    assert "unknown profile target" in proc.stderr


# ------------------------------------------------------------------ cache
def test_cache_info_clear_roundtrip(tmp_path):
    env = {"REPRO_CACHE_DIR": str(tmp_path / "cache")}

    proc = _repro("cache", "info", "--json", env_extra=env)
    assert proc.returncode == 0
    info = json.loads(proc.stdout)
    assert set(info) >= {"root", "entries", "total_bytes", "by_kind",
                         "files", "enabled"}
    assert info["entries"] == 0

    # Populate the cache through a real memoized code path.
    script = ("from repro.runtime import cached_build; "
              "print(cached_build('e2e', {'k': 1}, lambda: 41 + 1))")
    run = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
             **env})
    assert run.returncode == 0 and run.stdout.strip() == "42"

    info = json.loads(_repro("cache", "info", "--json",
                             env_extra=env).stdout)
    assert info["entries"] == 1
    assert info["by_kind"] == {"e2e": 1}

    proc = _repro("cache", "clear", env_extra=env)
    assert proc.returncode == 0
    assert "removed 1" in proc.stdout

    info = json.loads(_repro("cache", "info", "--json",
                             env_extra=env).stdout)
    assert info["entries"] == 0


# ----------------------------------------------------------------- verify
def test_verify_single_scenario_json_report(tmp_path):
    """Record then verify one scenario against a private goldens dir,
    checking the report covers every differential."""
    goldens = tmp_path / "goldens"
    record = _repro("verify", "koopman_lqr", "--update-goldens",
                    "--goldens-dir", str(goldens), "--workers", "2")
    assert record.returncode == 0, record.stdout + record.stderr
    assert (goldens / "koopman_lqr.jsonl").exists()

    proc = _repro("verify", "koopman_lqr", "--goldens-dir", str(goldens),
                  "--workers", "2", "--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["ok"] is True
    checks = {(r["scenario"], r["check"], r["status"])
              for r in report["results"]}
    assert checks == {("koopman_lqr", c, "pass")
                      for c in ("serial", "pooled", "cache", "quantized",
                                "kernels", "compiled")}
    assert report["kernel_backend"] in ("reference", "vectorized")


def test_verify_unknown_scenario_exits_nonzero():
    proc = _repro("verify", "not-a-scenario")
    assert proc.returncode == 2
    assert "unknown scenario" in proc.stderr


def test_verify_missing_golden_fails(tmp_path):
    proc = _repro("verify", "snn_flow", "--goldens-dir",
                  str(tmp_path / "empty"), "--skip",
                  "pooled,cache,quantized")
    assert proc.returncode == 1
