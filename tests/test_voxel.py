"""Tests for voxelization and R-MAE radial masking."""

import numpy as np
import pytest

from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.voxel import (
    RadialMaskConfig,
    VoxelGridConfig,
    angular_only_mask,
    beam_mask_from_segments,
    radial_mask,
    segment_of_azimuth,
    uniform_mask,
    voxelize,
)


GRID = VoxelGridConfig(nx=16, ny=16, nz=2)


def _cloud(seed=0):
    rng = np.random.default_rng(seed)
    scan = LidarScanner(LidarConfig(n_azimuth=48, n_elevation=8),
                        rng=rng).scan(sample_scene(rng))
    return voxelize(scan.points, scan.labels, GRID)


# ------------------------------------------------------------------- grid
def test_point_to_voxel_roundtrip():
    coord = (3, 7, 1)
    center = GRID.voxel_center(coord)
    assert GRID.point_to_voxel(center) == coord


def test_point_outside_grid_is_none():
    assert GRID.point_to_voxel(np.array([-10.0, 0.0, 0.0])) is None
    assert GRID.point_to_voxel(np.array([1000.0, 0.0, 0.0])) is None


def test_voxel_range_and_azimuth():
    coord = (4, 8, 0)  # y center = 0 + ... compute directly
    center = GRID.voxel_center(coord)
    assert GRID.voxel_range(coord) == pytest.approx(np.hypot(*center[:2]))
    assert GRID.voxel_azimuth(coord) == pytest.approx(
        np.arctan2(center[1], center[0]))


def test_voxelize_counts_every_in_grid_point():
    pts = np.array([
        [10.0, 0.0, 1.0, 0.5],
        [10.1, 0.1, 1.1, 0.7],   # same voxel
        [50.0, 20.0, 2.0, 0.2],  # different voxel
        [-5.0, 0.0, 0.0, 0.1],   # outside grid
    ])
    cloud = voxelize(pts, config=GRID)
    assert cloud.num_occupied == 2
    first = GRID.point_to_voxel(pts[0, :3])
    feats = cloud.features[first]
    assert feats[0] == pytest.approx(np.log1p(2))
    assert feats[1] == pytest.approx(0.6)


def test_voxelize_majority_labels():
    pts = np.array([
        [10.0, 0.0, 1.0, 0.5],
        [10.1, 0.1, 1.1, 0.7],
        [10.2, 0.0, 1.0, 0.5],
    ])
    labels = np.array([2, 2, 5])
    cloud = voxelize(pts, labels, GRID)
    coord = GRID.point_to_voxel(pts[0, :3])
    assert cloud.point_labels[coord] == 2


def test_occupancy_dense_matches_sparse():
    cloud = _cloud()
    dense = cloud.occupancy_dense()
    assert dense.sum() == cloud.num_occupied
    for c in cloud.coords:
        assert dense[c] == 1.0


def test_masked_subcloud():
    cloud = _cloud()
    keep = {c: (i % 2 == 0) for i, c in enumerate(cloud.coords)}
    sub = cloud.masked(keep)
    assert sub.num_occupied == sum(keep.values())
    assert all(keep[c] for c in sub.coords)


# ---------------------------------------------------------------- masking
def test_segment_of_azimuth_bounds():
    assert segment_of_azimuth(-np.pi, 24) == 0
    assert segment_of_azimuth(np.pi - 1e-9, 24) == 23
    assert 0 <= segment_of_azimuth(0.0, 24) < 24


def test_radial_mask_keeps_near_voxels():
    cloud = _cloud()
    config = RadialMaskConfig(n_segments=8, segment_keep_fraction=1.0,
                              reference_range_m=1000.0)
    keep, segments = radial_mask(cloud, config, np.random.default_rng(1))
    # All segments kept + huge reference range => everything survives.
    assert all(keep.values())
    assert segments.all()


def test_radial_mask_fraction_near_target():
    cloud = _cloud()
    config = RadialMaskConfig()
    fractions = []
    for seed in range(8):
        keep, _ = radial_mask(cloud, config, np.random.default_rng(seed))
        fractions.append(np.mean(list(keep.values())))
    mean_frac = float(np.mean(fractions))
    # The paper's operating regime: a small sensed fraction (<~25%).
    assert 0.02 < mean_frac < 0.3


def test_radial_mask_range_probability_monotone():
    config = RadialMaskConfig(reference_range_m=10.0, range_exponent=2.0)
    probs = [config.range_keep_probability(r) for r in (5, 10, 20, 40)]
    assert probs[0] == probs[1] == 1.0
    assert probs[2] > probs[3]


def test_radial_mask_respects_segments():
    cloud = _cloud()
    config = RadialMaskConfig(n_segments=12, segment_keep_fraction=0.25,
                              reference_range_m=1000.0)
    keep, segments = radial_mask(cloud, config, np.random.default_rng(2))
    for coord, kept in keep.items():
        seg = segment_of_azimuth(cloud.config.voxel_azimuth(coord), 12)
        if kept:
            assert segments[seg]
        if not segments[seg]:
            assert not kept


def test_uniform_mask_fraction():
    cloud = _cloud()
    keep = uniform_mask(cloud, 0.5, np.random.default_rng(3))
    frac = np.mean(list(keep.values()))
    assert 0.3 < frac < 0.7


def test_uniform_mask_validation():
    with pytest.raises(ValueError):
        uniform_mask(_cloud(), 1.5)


def test_angular_only_mask_all_or_nothing_per_segment():
    cloud = _cloud()
    config = RadialMaskConfig(n_segments=6, segment_keep_fraction=0.5)
    keep = angular_only_mask(cloud, config, np.random.default_rng(4))
    by_segment = {}
    for coord, kept in keep.items():
        seg = segment_of_azimuth(cloud.config.voxel_azimuth(coord), 6)
        by_segment.setdefault(seg, set()).add(kept)
    for values in by_segment.values():
        assert len(values) == 1  # consistent within each segment


def test_mask_config_validation():
    with pytest.raises(ValueError):
        RadialMaskConfig(segment_keep_fraction=0.0)
    with pytest.raises(ValueError):
        RadialMaskConfig(n_segments=0)


def test_beam_mask_from_segments():
    lidar = LidarConfig(n_azimuth=24, n_elevation=4)
    config = RadialMaskConfig(n_segments=24, segment_keep_fraction=0.25)
    segments = np.zeros(24, dtype=bool)
    segments[0] = True  # azimuth near -pi
    fired = beam_mask_from_segments(segments, lidar, config)
    assert fired.sum() == 4  # one azimuth column x 4 elevations
    assert fired[:4].all()


def test_beam_mask_with_expected_ranges_thins_far():
    lidar = LidarConfig(n_azimuth=8, n_elevation=8)
    config = RadialMaskConfig(n_segments=8, segment_keep_fraction=1.0,
                              reference_range_m=5.0, range_exponent=4.0)
    segments = np.ones(8, dtype=bool)
    near = np.full(lidar.n_beams, 2.0)
    far = np.full(lidar.n_beams, 80.0)
    rng = np.random.default_rng(5)
    fired_near = beam_mask_from_segments(segments, lidar, config, near, rng)
    fired_far = beam_mask_from_segments(segments, lidar, config, far, rng)
    assert fired_near.sum() > fired_far.sum()
