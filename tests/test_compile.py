"""Tests for :mod:`repro.compile` — tracing, fusion, the buffer arena,
true-int8 execution, mode routing, and the serve/fleet integration."""

import warnings

import numpy as np
import pytest

import repro.nn.layers as nn_layers
from repro.compile import (
    BufferArena,
    CompiledModule,
    CompileError,
    CompileFallbackWarning,
    FreshAllocator,
    Int8Dense,
    TraceError,
    active_mode,
    build_program,
    compile_mode,
    compile_module,
    compile_stats,
    supported_layers,
    trace,
)
from repro.compile.executor import COMPILE_ENV
from repro.kernels import BACKENDS, kernel_backend
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ConvTranspose2d,
    Dense,
    Dropout,
    Flatten,
    GRUCell,
    Identity,
    LayerNorm,
    LeakyReLU,
    MaxPool2d,
    Module,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
)
from repro.nn.sequential import Sequential, mlp


def _rng(seed=0):
    return np.random.default_rng(seed)


# --------------------------------------------------------- layer registry
# One (constructor, example input shape) per public repro.nn layer.  The
# parametrized test below walks repro.nn.layers.__all__, so adding a new
# layer without a trace rule (or without a case here) fails loudly.
LAYER_CASES = {
    "Dense": (lambda: Dense(6, 4, rng=_rng(1)), (3, 6)),
    "ReLU": (ReLU, (3, 5)),
    "LeakyReLU": (lambda: LeakyReLU(0.1), (3, 5)),
    "Tanh": (Tanh, (3, 5)),
    "Sigmoid": (Sigmoid, (3, 5)),
    "Softplus": (Softplus, (3, 5)),
    "Identity": (Identity, (3, 5)),
    "Dropout": (lambda: Dropout(0.4, rng=_rng(2)), (3, 5)),
    "LayerNorm": (lambda: LayerNorm(5), (3, 5)),
    "BatchNorm": (lambda: BatchNorm(5), (3, 5)),
    "Flatten": (Flatten, (3, 2, 4)),
    "Conv2d": (lambda: Conv2d(2, 3, rng=_rng(3)), (2, 2, 6, 6)),
    "ConvTranspose2d": (lambda: ConvTranspose2d(2, 3, rng=_rng(4)),
                        (2, 2, 5, 5)),
    "MaxPool2d": (MaxPool2d, (2, 2, 6, 6)),
    "AvgPool2d": (AvgPool2d, (2, 2, 6, 6)),
    "GRUCell": (lambda: GRUCell(4, 3, rng=_rng(5)), (3, 4)),
}


@pytest.mark.parametrize("name",
                         [n for n in nn_layers.__all__ if n != "Module"])
def test_every_nn_layer_traces_and_matches_eager(name):
    assert name in LAYER_CASES, (
        f"layer {name} is public in repro.nn.layers but has no trace "
        f"test case — add one (and a trace rule if needed)")
    factory, shape = LAYER_CASES[name]
    layer = factory()
    model = Sequential(layer)
    model.eval()
    x = _rng(10).standard_normal(shape)
    graph = trace(model, example=x)
    assert graph.output == len(graph.nodes) - 1
    compiled = CompiledModule(model)
    np.testing.assert_allclose(compiled.forward_batch(x),
                               model._eager_forward_batch(x),
                               rtol=0, atol=1e-12)


def test_supported_layers_cover_public_registry():
    missing = (set(nn_layers.__all__) - {"Module", "Sequential"}
               - set(supported_layers()))
    assert not missing, f"layers without trace rules: {missing}"


def test_trace_error_names_offending_op():
    class FancyCustomOp(Module):
        def forward_batch(self, x):
            return x

    with pytest.raises(TraceError) as exc:
        trace(Sequential(Dense(3, 3, rng=_rng(0)), FancyCustomOp()))
    msg = str(exc.value)
    assert "FancyCustomOp" in msg
    assert "Dense" in msg  # lists the traceable layers
    assert "fallback='eager'" in msg


# ----------------------------------------------------------------- parity
def _mixed_model():
    m = Sequential(
        Dense(10, 16, rng=_rng(1), name="p.fc0"), LeakyReLU(0.05),
        LayerNorm(16), Dense(16, 12, rng=_rng(2), name="p.fc1"), Tanh(),
        BatchNorm(12), Dense(12, 4, rng=_rng(3), name="p.fc2"), Sigmoid())
    m.eval()
    return m


@pytest.mark.parametrize("backend", BACKENDS)
def test_compiled_matches_eager_under_both_kernel_backends(backend):
    model = _mixed_model()
    x = _rng(7).standard_normal((9, 10))
    with kernel_backend(backend):
        eager = model._eager_forward_batch(x)
        got = CompiledModule(model).forward_batch(x)
    np.testing.assert_allclose(got, eager, rtol=0, atol=1e-12)


def test_conv_stack_compiled_bit_identical():
    model = Sequential(
        Conv2d(1, 3, rng=_rng(1)), ReLU(), MaxPool2d(2), Flatten(),
        Dense(3 * 4 * 4, 8, rng=_rng(2)), ReLU(), Dense(8, 2, rng=_rng(3)))
    model.eval()
    x = _rng(4).standard_normal((5, 1, 8, 8))
    assert np.array_equal(CompiledModule(model).forward_batch(x),
                          model._eager_forward_batch(x))


def test_forward_lifts_1d_input():
    model = mlp([6, 8, 3], rng=_rng(0))
    model.eval()
    x = _rng(1).standard_normal(6)
    got = CompiledModule(model).forward(x)
    assert got.shape == (3,)
    np.testing.assert_allclose(got, model._eager_forward(x),
                               rtol=0, atol=1e-12)


# ----------------------------------------------------------------- fusion
def test_fusion_absorbs_elementwise_chains():
    model = mlp([8, 16, 4], rng=_rng(0))  # gemm+bias+relu, gemm+bias
    prog = build_program(trace(model), fuse=True)
    assert len(prog.stages) == 2
    assert prog.fused_elementwise == 3  # bias, relu, bias
    unfused = build_program(trace(model), fuse=False)
    assert len(unfused.stages) == 5  # one per non-input node
    assert unfused.fused_elementwise == 0


def test_unfused_program_matches_fused():
    model = _mixed_model()
    x = _rng(11).standard_normal((4, 10))
    fused = CompiledModule(model, fuse=True)
    unfused = CompiledModule(model, fuse=False)
    np.testing.assert_allclose(unfused.forward_batch(x),
                               fused.forward_batch(x), rtol=0, atol=0)


# ------------------------------------------------------------------ arena
def test_arena_zero_steady_state_allocations():
    model = _mixed_model()
    art = CompiledModule(model, copy_output=False)
    x = _rng(3).standard_normal((8, 10))
    art.forward_batch(x)
    before = art.arena.allocations
    for _ in range(5):
        art.forward_batch(x)
    assert art.arena.allocations == before
    assert art.arena.slot_count() > 0
    assert art.arena.nbytes() > 0


def test_arena_grows_capacity_then_serves_views():
    model = mlp([6, 12, 3], rng=_rng(0))
    model.eval()
    art = CompiledModule(model, copy_output=False)
    small = _rng(1).standard_normal((4, 6))
    big = _rng(2).standard_normal((32, 6))
    art.forward_batch(small)
    grew = art.arena.allocations
    assert art.forward_batch(big).shape == (32, 3)
    assert art.arena.allocations > grew  # capacity grew for the bigger batch
    after_big = art.arena.allocations
    # Any batch at or under the grown capacity is a view, no new backing.
    assert art.forward_batch(_rng(3).standard_normal((16, 6))).shape == (16, 3)
    assert art.forward_batch(small).shape == (4, 3)
    assert art.arena.allocations == after_big
    np.testing.assert_allclose(art.forward_batch(small),
                               model._eager_forward_batch(small),
                               rtol=0, atol=0)


def test_copy_output_protects_result():
    model = mlp([4, 6, 2], rng=_rng(0))
    model.eval()
    art = CompiledModule(model, copy_output=True)
    a = art.forward_batch(np.ones((2, 4)))
    kept = np.copy(a)
    art.forward_batch(np.full((2, 4), 3.0))  # would overwrite an arena view
    np.testing.assert_array_equal(a, kept)


def test_fresh_allocator_reports_no_footprint():
    alloc = FreshAllocator()
    y = alloc.out("k", (3, 4), np.float64)
    assert y.shape == (3, 4)
    assert alloc.nbytes() == 0 and alloc.slot_count() == 0


# ------------------------------------------------------------------- int8
def test_int8_weights_stored_as_int8():
    dense = Dense(16, 8, rng=_rng(0))
    packed = Int8Dense(dense)
    assert packed.weight_q.dtype == np.int8
    rep = packed.report()
    assert rep["weight_bytes"] * 8 == rep["float_bytes"]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_int8_drift_within_analytic_bound(seed):
    dense = Dense(24, 10, rng=_rng(seed))
    packed = Int8Dense(dense)
    x = _rng(seed + 100).standard_normal((7, 24)) * (seed + 1)
    got = packed.run(x, BufferArena(), "t")
    ref = x @ dense.weight.data
    assert float(np.max(np.abs(got - ref))) <= packed.drift_bound(x)


def test_int8_zero_weight_column_exact():
    dense = Dense(6, 3, rng=_rng(0))
    dense.weight.data[:, 1] = 0.0
    packed = Int8Dense(dense)
    x = _rng(1).standard_normal((4, 6))
    got = packed.run(x, BufferArena(), "t")
    np.testing.assert_array_equal(got[:, 1], 0.0)


def test_int8_overflow_guard():
    dense = Dense(4, 2, rng=_rng(0))
    dense.weight.data = np.zeros((70_000, 2))  # beyond the int32-safe width
    with pytest.raises(ValueError, match="overflow"):
        Int8Dense(dense)


def test_int8_compiled_model_within_tolerance_and_counted():
    model = mlp([12, 24, 6], rng=_rng(5))
    model.eval()
    x = _rng(6).standard_normal((8, 12))
    before = compile_stats().snapshot()
    art = CompiledModule(model, precision="int8")
    got = art.forward_batch(x)
    delta = compile_stats().delta(before)
    assert delta["int8_gemms"] == 2
    eager = model._eager_forward_batch(x)
    assert float(np.max(np.abs(got - eager))) < 0.1
    assert not np.array_equal(got, eager)  # genuinely quantized, not float


def test_int8_weight_rebind_triggers_repack():
    model = mlp([5, 4], rng=_rng(0))
    model.eval()
    art = CompiledModule(model, precision="int8")
    x = _rng(1).standard_normal((3, 5))
    art.forward_batch(x)
    model.layers[0].weight.data = np.zeros((5, 4))  # rebound array
    np.testing.assert_allclose(art.forward_batch(x),
                               np.zeros((3, 4)), atol=1e-12)


def test_int8_inplace_mutation_needs_recompile():
    model = mlp([5, 4], rng=_rng(0))
    model.eval()
    art = CompiledModule(model, precision="int8")
    x = _rng(1).standard_normal((3, 5))
    stale = np.copy(art.forward_batch(x))
    model.layers[0].weight.data[...] *= 2.0  # in-place: witness unchanged
    np.testing.assert_array_equal(art.forward_batch(x), stale)
    art.recompile()
    fresh = art.forward_batch(x)
    assert float(np.max(np.abs(fresh - 2.0 * stale))) < 0.1


# ----------------------------------------------------- inference-only API
def test_compiled_module_refuses_training():
    art = CompiledModule(mlp([3, 2], rng=_rng(0)))
    with pytest.raises(CompileError):
        art.backward(np.ones((1, 2)))
    with pytest.raises(CompileError):
        art.train()


def test_compiled_module_delegates_attributes():
    model = mlp([3, 2], rng=_rng(0))
    art = CompiledModule(model)
    assert art.layers is model.layers
    assert len(art.parameters()) == len(model.parameters())


def test_compiled_module_is_not_a_module():
    # Wrapping must not double-count parameters if a host model holds
    # both the original and the artifact as attributes.
    assert not isinstance(CompiledModule(mlp([3, 2], rng=_rng(0))), Module)


# ---------------------------------------------------------------- routing
def test_mode_default_and_context():
    assert active_mode() == "eager"
    with compile_mode("compiled"):
        assert active_mode() == "compiled"
        with compile_mode("eager"):
            assert active_mode() == "eager"
        assert active_mode() == "compiled"
    assert active_mode() == "eager"
    with pytest.raises(CompileError):
        with compile_mode("jit"):
            pass


def test_env_selects_compiled(monkeypatch):
    model = mlp([4, 3], rng=_rng(0))
    model.eval()
    x = _rng(1).standard_normal((2, 4))
    eager = model.forward_batch(x)
    monkeypatch.setenv(COMPILE_ENV, "compiled")
    before = compile_stats().snapshot()
    np.testing.assert_allclose(model.forward_batch(x), eager,
                               rtol=0, atol=1e-12)
    assert compile_stats().delta(before)["runs"] == 1


def test_invalid_env_mode_raises(monkeypatch):
    monkeypatch.setenv(COMPILE_ENV, "turbo")
    with pytest.raises(CompileError, match="turbo"):
        active_mode()
    # Routing stays eager for anything that is not exactly "compiled".
    model = mlp([4, 3], rng=_rng(0))
    before = compile_stats().snapshot()
    model.forward_batch(np.zeros((1, 4)))
    assert compile_stats().delta(before)["runs"] == 0


def test_routing_caches_one_artifact_per_sequential():
    model = mlp([4, 3], rng=_rng(0))
    model.eval()
    x = np.zeros((2, 4))
    before = compile_stats().snapshot()
    with compile_mode("compiled"):
        model.forward_batch(x)
        model.forward_batch(x)
        model.forward(x)
    delta = compile_stats().delta(before)
    assert delta["captures"] == 1
    assert delta["runs"] == 3


def test_backward_after_routed_compiled_forward_raises():
    model = mlp([4, 3], rng=_rng(0))
    model.eval()
    x = np.zeros((2, 4))
    with compile_mode("compiled"):
        model.forward(x)
    with pytest.raises(CompileError, match="backward after a compiled"):
        model.backward(np.ones((2, 3)))
    model.forward(x)  # an eager forward re-arms training
    model.backward(np.ones((2, 3)))


def test_training_mode_dropout_bypasses_forward_only():
    model = Sequential(Dense(4, 4, rng=_rng(0)), Dropout(0.5, rng=_rng(1)))
    x = _rng(2).standard_normal((3, 4))
    before = compile_stats().snapshot()
    with compile_mode("compiled"):
        model.forward(x)          # training dropout: stateful, bypasses
        batched = model.forward_batch(x)  # pure inference: compiled
    delta = compile_stats().delta(before)
    assert delta["eager_bypasses"] == 1
    assert delta["runs"] == 1
    np.testing.assert_allclose(batched, model._eager_forward_batch(x),
                               rtol=0, atol=1e-12)


def test_untraceable_sequential_falls_back_with_warning():
    class Opaque(Module):
        def forward(self, x):
            return x

        def forward_batch(self, x):
            return x

    model = Sequential(Dense(3, 3, rng=_rng(0)), Opaque())
    model.eval()
    x = _rng(1).standard_normal((2, 3))
    before = compile_stats().snapshot()
    with compile_mode("compiled"):
        with pytest.warns(CompileFallbackWarning, match="Opaque"):
            first = model.forward_batch(x)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # cached fallback: warn once
            second = model.forward_batch(x)
    assert compile_stats().delta(before)["fallbacks"] == 1
    np.testing.assert_array_equal(first, model._eager_forward_batch(x))
    np.testing.assert_array_equal(second, first)


def test_compile_module_fallback_policies():
    class Opaque(Module):
        def forward_batch(self, x):
            return x

    bad = Sequential(Opaque())
    with pytest.raises(TraceError):
        compile_module(bad)
    with pytest.warns(CompileFallbackWarning):
        got = compile_module(bad, fallback="eager")
    assert got is bad
    with pytest.raises(CompileError, match="fallback"):
        compile_module(bad, fallback="maybe")


# ------------------------------------------------------------ serve/fleet
def test_compiled_monitor_runner_rejects_exact_scorer():
    from repro.serve import compiled_monitor_runner
    from repro.starnet import STARNet
    mon = STARNet(6, score_method="exact", rng=_rng(0))
    with pytest.raises(CompileError, match="exact"):
        compiled_monitor_runner(mon)


def test_fleet_factory_rejects_compiled_exact():
    from repro.fleet.driver import MonitorRunnerFactory
    with pytest.raises(ValueError, match="exact"):
        MonitorRunnerFactory(compiled=True)  # default scorer is exact
    MonitorRunnerFactory(compiled=True, score_method="recon")  # fine


def test_compiled_monitor_runner_matches_eager():
    from repro.core.components import Percept
    from repro.serve import compiled_monitor_runner, monitor_runner
    from repro.starnet import STARNet
    rng = _rng(3)
    mon = STARNet(6, score_method="recon", rng=_rng(4))
    mon.fit(rng.normal(size=(60, 6)) * 0.5, epochs=15)
    percepts = [Percept(features=rng.normal(size=6)) for _ in range(5)]
    eager = monitor_runner(mon)(percepts)
    compiled = compiled_monitor_runner(mon)(percepts)
    np.testing.assert_allclose(compiled, eager, rtol=0, atol=1e-9)
