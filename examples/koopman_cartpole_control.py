#!/usr/bin/env python
"""Action-to-sensing demo (Sec. IV): RoboKoop-style spectral control.

Fits the dynamics-model zoo on the same cart-pole transitions, derives a
controller for each (LQR for the linear families, random-shooting MPC for
the nonlinear ones), and evaluates closed-loop reward under increasing
disturbance — Fig. 5 end to end, plus the visual contrastive-encoder
agent.

Run:  python examples/koopman_cartpole_control.py
"""

import numpy as np

from repro.koopman import (
    RoboKoopAgent,
    build_model,
    collect_transitions,
    evaluate_controller,
    fig5a_macs,
    fit_dynamics_model,
    make_controller,
)

FIT_EPOCHS = {"mlp": 25, "dense_koopman": 1, "spectral_koopman": 90}


def main() -> None:
    print("1. MAC budget per dynamics family (Fig. 5a, latent dim 16):")
    for name, entry in sorted(fig5a_macs(16, 1).items(),
                              key=lambda kv: kv[1]["total"]):
        print(f"   {name:18s} prediction {entry['prediction']:8d}  "
              f"control {entry['control']:9d}  total {entry['total']:9d}")

    print("\n2. Fitting models on shared cart-pole transitions ...")
    rng = np.random.default_rng(0)
    transitions = collect_transitions(n_episodes=15, rng=rng)
    print(f"   {transitions[0].shape[0]} transitions collected")

    print("\n3. Closed-loop reward under disturbances (Fig. 5b):")
    print(f"   {'model':18s} {'p=0.0':>8s} {'p=0.1':>8s} {'p=0.25':>8s}")
    for name, epochs in FIT_EPOCHS.items():
        model = build_model(name, 4, 1, rng=np.random.default_rng(1))
        fit_dynamics_model(model, transitions, epochs=epochs,
                           rng=np.random.default_rng(2))
        controller = make_controller(model, np.random.default_rng(3))
        rewards = [
            evaluate_controller(controller, p, n_episodes=4, steps=150,
                                seed=4, a_min=5.0, a_max=20.0)
            for p in (0.0, 0.1, 0.25)
        ]
        print(f"   {name:18s} " + " ".join(f"{r:8.1f}" for r in rewards))

    print("\n4. Visual RoboKoop agent (contrastive spectral encoder + "
          "latent LQR):")
    agent = RoboKoopAgent.train(image_size=20, n_pairs=6, n_episodes=10,
                                epochs=4, seed=5)
    reward = agent.evaluate(disturbance_p=0.1, n_episodes=3, steps=80,
                            seed=6)
    eigs = agent.encoder.operator.eigenvalues()
    print(f"   stable spectrum: {agent.encoder.operator.is_stable()} "
          f"(|lambda| max = {np.abs(eigs).max():.3f})")
    print(f"   episodic reward from pixels under disturbance: {reward:.1f}")


if __name__ == "__main__":
    main()
