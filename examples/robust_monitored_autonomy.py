#!/usr/bin/env python
"""Reliability demo (Sec. V): STARNet guards a perception loop.

A LiDAR perception stack runs inside a sensing-to-action loop; STARNet
monitors the task network's intermediate features.  Midway through the
run, a snowstorm corrupts the sensor stream — the monitor flags it, the
loop rejects the untrusted cycles, and the gated backscatter filter
restores the point cloud before detection.

Run:  python examples/robust_monitored_autonomy.py
"""

import numpy as np

from repro.generative import RMAE, pretrain_rmae
from repro.sim import LidarConfig, LidarScanner, sample_scene, snow
from repro.starnet import GatedFilter, LidarFeatureExtractor, STARNet
from repro.voxel import VoxelGridConfig, voxelize


def main() -> None:
    rng = np.random.default_rng(0)
    lidar = LidarConfig(n_azimuth=48, n_elevation=10)
    grid = VoxelGridConfig(nx=16, ny=16, nz=2)
    scanner = LidarScanner(lidar, rng=rng)

    print("1. Training the perception backbone and the monitor ...")
    scenes = [sample_scene(rng) for _ in range(20)]
    scans = [scanner.scan(s) for s in scenes]
    clouds = [voxelize(s.points, s.labels, grid) for s in scans]
    backbone = RMAE(grid, rng=np.random.default_rng(1))
    pretrain_rmae(backbone, clouds[:12], epochs=6,
                  rng=np.random.default_rng(2))
    extractor = LidarFeatureExtractor(backbone, grid)
    monitor = STARNet(extractor.feature_dim, score_method="spsa",
                      spsa_steps=25, rng=np.random.default_rng(3))
    monitor.fit(extractor.extract_batch(scans), epochs=35)
    print(f"   monitor trained on {len(scans)} nominal scans "
          f"({extractor.feature_dim}-dim features, SPSA likelihood regret)")

    print("2. Runtime: 6 clear cycles, then the snowstorm hits ...")
    gate = GatedFilter(monitor, extractor)
    for cycle in range(12):
        scene = sample_scene(np.random.default_rng(100 + cycle))
        scan = scanner.scan(scene)
        snowing = cycle >= 6
        if snowing:
            scan = snow(scan, severity=0.8,
                        rng=np.random.default_rng(200 + cycle))
        features = extractor.extract(scan)
        z = monitor.zscore(features)
        filtered = gate.apply(scan)
        action = "FILTERED" if filtered.num_points < scan.num_points else \
            "passthrough"
        print(f"   cycle {cycle:2d} [{'snow' if snowing else 'clear'}] "
              f"score z={z:7.2f}  points {scan.num_points:4d} -> "
              f"{filtered.num_points:4d}  ({action})")

    print("3. Outcome:")
    print(f"   interventions: {gate.interventions}, "
          f"passthroughs: {gate.passthroughs}")
    print("   The monitor reliably fires on the corrupted stream (clean")
    print("   cycles pass through nearly always), so aggressive loop")
    print("   optimizations stay guarded by a cheap gradient-free check.")


if __name__ == "__main__":
    main()
