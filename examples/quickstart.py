#!/usr/bin/env python
"""Quickstart: build and run a complete sensing-to-action loop.

This is the paper's Fig. 1 in ~80 lines: a sensor that can modulate its
coverage, a perception stage, a policy that closes the action-to-sensing
pathway (it asks for cheap sensing when the scene is boring and full
fidelity when something moves), and the loop orchestrator tracking
energy, latency, and trust.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    Action,
    Actuator,
    Environment,
    Percept,
    Perception,
    Policy,
    SensingToActionLoop,
    Sensor,
    SensorReading,
)


class DriftingTarget(Environment):
    """A target that mostly sits still but occasionally dashes."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)
        self.position = 0.0
        self.velocity = 0.0

    def observe_state(self) -> float:
        return self.position

    def advance(self, dt: float) -> None:
        if self.rng.random() < 0.05:           # occasional dash
            self.velocity = self.rng.uniform(-3.0, 3.0)
        self.velocity *= 0.9
        self.position += self.velocity * dt


class RangeSensor(Sensor):
    """Reads the target position; noise shrinks with coverage spent."""

    def sense(self, env, directive, t) -> SensorReading:
        coverage = float(directive.get("coverage", 1.0))
        noise_std = 0.02 / max(coverage, 0.05)
        measured = env.observe_state() + np.random.default_rng(
            int(t * 1000) % (2 ** 31)).normal(0.0, noise_std)
        return SensorReading(data=measured, timestamp=t, coverage=coverage,
                             energy_mj=5.0 * coverage)


class TrackingPerception(Perception):
    """Maintains a position estimate and an activity level."""

    def __init__(self):
        self.last = 0.0

    def perceive(self, reading) -> Percept:
        activity = abs(reading.data - self.last)
        self.last = reading.data
        return Percept(features=np.array([reading.data, activity]),
                       estimate=reading.data,
                       meta={"activity": activity})


class AdaptiveTrackingPolicy(Policy):
    """Proportional control + action-to-sensing coverage modulation."""

    def act(self, percept, t) -> Action:
        command = -0.5 * percept.estimate          # pull target to origin
        activity = percept.meta["activity"]
        coverage = 1.0 if activity > 0.05 else 0.15  # frugal when static
        return Action(command=command,
                      sensing_directive={"coverage": coverage},
                      energy_mj=0.01)


class VelocityActuator(Actuator):
    def actuate(self, env, action, t) -> float:
        env.velocity += float(action.command)
        return 0.02


def main() -> None:
    env = DriftingTarget(seed=7)
    loop = SensingToActionLoop(
        sensor=RangeSensor(),
        perception=TrackingPerception(),
        policy=AdaptiveTrackingPolicy(),
        actuator=VelocityActuator(),
        period_s=0.05,
        compute_latency_s=0.01,
    )
    metrics = loop.run(env, n_cycles=200)

    print("Sensing-to-action loop: 200 cycles on a drifting target")
    print(f"  final |position|     : {abs(env.observe_state()):.3f}")
    print(f"  mean coverage        : {metrics.mean_coverage:.2f} "
          "(1.0 would be a static full-fidelity loop)")
    print(f"  sensing energy       : {metrics.energy.sensing_mj:.1f} mJ "
          f"(static loop would spend {5.0 * metrics.cycles:.0f} mJ)")
    print(f"  actuation energy     : {metrics.energy.actuation_mj:.1f} mJ")
    print(f"  mean loop latency    : {1e3 * metrics.mean_latency_s:.1f} ms")
    saved = 1.0 - metrics.energy.sensing_mj / (5.0 * metrics.cycles)
    print(f"  energy saved by action-to-sensing adaptation: {100 * saved:.0f}%")


if __name__ == "__main__":
    main()
