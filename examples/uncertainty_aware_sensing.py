#!/usr/bin/env python
"""Future-work demo: uncertainty-aware sensing over drifting dynamics.

Ties together the paper's future-work items, all implemented here:

* a **time-varying Koopman model** (`RecursiveKoopman`) tracks the
  latent dynamics online with forgetting-factor RLS;
* a **conformal predictor** wraps it with distribution-free error radii;
* the radius drives the **sensing coverage** through
  `uncertainty_to_coverage` — confident model => frugal sensing,
  uncertain model => full fidelity (the uncertainty-aware
  action-to-sensing loop of Sec. IV's outlook);
* a **drift detector** watches the prediction-error stream and flags the
  regime change (Sec. V's temporal-consistency outlook).

Midway through the run the plant's dynamics switch (sensor degradation /
task transition).  Watch the loop notice, spend more sensing while it
re-learns, and relax again once the new regime is mastered.

Run:  python examples/uncertainty_aware_sensing.py
"""

import numpy as np

from repro.koopman import ConformalPredictor, RecursiveKoopman, uncertainty_to_coverage
from repro.starnet import DriftDetector


def make_plant(regime: int):
    """Two latent-dynamics regimes; the switch models degradation."""
    if regime == 0:
        a = np.array([[0.95, 0.10], [0.00, 0.90]])
    else:
        a = np.array([[0.70, -0.25], [0.15, 1.00]])
    b = np.array([[0.0], [0.1]])
    return a, b


def main() -> None:
    rng = np.random.default_rng(0)
    model = RecursiveKoopman(2, 1, forgetting=0.97)
    detector = DriftDetector(threshold_sigma=3.0, fast=0.5, warmup=15)

    print("Online loop: RLS Koopman + conformal radii -> sensing coverage")
    print(f"{'step':>5s} {'regime':>7s} {'pred err':>9s} {'coverage':>9s} "
          f"{'drift?':>7s}")

    # Warm up on regime 0 and calibrate the conformal predictor.
    a, b = make_plant(0)
    calib = []
    for _ in range(120):
        z = rng.normal(size=2)
        u = rng.normal(size=1)
        z_next = a @ z + b[:, 0] * u[0] + rng.normal(0, 0.02, size=2)
        model.update(z, u, z_next)
        calib.append((z, u, z_next))
    cp = ConformalPredictor(lambda z, u: model.predict(z, u))
    zc = np.stack([c[0] for c in calib[-60:]])
    uc = np.stack([c[1] for c in calib[-60:]])
    zn = np.stack([c[2] for c in calib[-60:]])
    cp.calibrate(zc, uc, zn)
    nominal_radius = cp.radius(alpha=0.1)

    total_coverage = 0.0
    drift_step = None
    for step in range(200):
        regime = 0 if step < 100 else 1
        a, b = make_plant(regime)
        z = rng.normal(size=2)
        u = rng.normal(size=1)
        z_next = a @ z + b[:, 0] * u[0] + rng.normal(0, 0.02, size=2)

        err = model.update(z, u, z_next)
        fired = detector.update(err)
        if fired and drift_step is None:
            drift_step = step

        # Uncertainty -> sensing coverage: the observed error stands in
        # for the live radius (recalibrating every step would be free
        # here but is throttled on a real edge device).
        coverage = uncertainty_to_coverage(
            max(err, nominal_radius), nominal_radius)
        total_coverage += coverage

        if step % 20 == 0 or (fired and step == drift_step):
            print(f"{step:5d} {regime:7d} {err:9.4f} {coverage:9.2f} "
                  f"{'DRIFT' if fired else '':>7s}")

    print("\nOutcome:")
    print(f"  regime switch at step 100; drift flagged at step "
          f"{drift_step}")
    print(f"  mean sensing coverage: {total_coverage / 200:.2f} "
          "(a static loop would pay 1.00)")
    print(f"  final tracked spectral radius: "
          f"{model.spectral_radius():.3f} "
          f"(regime-1 truth ~{np.max(np.abs(np.linalg.eigvals(make_plant(1)[0]))):.3f})")
    print("  The loop sensed frugally while confident, surged during the")
    print("  regime change, and relaxed once the new dynamics were learned.")


if __name__ == "__main__":
    main()
