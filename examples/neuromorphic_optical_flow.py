#!/usr/bin/env python
"""Neuromorphic demo (Sec. VI): event-driven optical flow and DOTIE.

Trains the four flow families of Fig. 8 on simulated DVS data, compares
AEE / parameters / energy, and runs the single-layer DOTIE spiking
detector on a fast-object event stream.

Run:  python examples/neuromorphic_optical_flow.py
"""

import numpy as np

from repro.neuromorphic import (
    DOTIE,
    FLOW_MODEL_FAMILIES,
    build_flow_model,
    evaluate_aee,
    train_flow_model,
)
from repro.sim import make_flow_dataset
from repro.sim.events import EventCameraConfig


def main() -> None:
    cfg = EventCameraConfig(n_substeps=6, noise_events_per_pixel=0.02)
    train = make_flow_dataset(40, seed=0, config=cfg, max_displacement=2.5)
    test = make_flow_dataset(10, seed=1, config=cfg, max_displacement=2.5)
    zero = float(np.mean([
        np.sqrt((s.flow ** 2).sum(axis=0))[s.has_event_mask].mean()
        for s in test]))

    print("1. Optical-flow families on simulated DVS data "
          f"(zero-flow baseline AEE = {zero:.2f}):")
    print(f"   {'model':20s} {'AEE':>6s} {'params':>7s} {'energy':>10s}")
    for name in sorted(FLOW_MODEL_FAMILIES):
        model = build_flow_model(name, channels=8,
                                 rng=np.random.default_rng(2))
        train_flow_model(model, train, epochs=30,
                         rng=np.random.default_rng(3))
        aee = evaluate_aee(model, test)
        energy = np.mean([model.inference_energy_pj(s) for s in test])
        print(f"   {name:20s} {aee:6.3f} {model.num_parameters():7d} "
              f"{energy / 1e3:8.1f} nJ")

    print("\n2. DOTIE: single-layer SNN object detection from events")
    rng = np.random.default_rng(4)
    t, h, w = 8, 24, 24
    frames = np.zeros((t, 2, h, w))
    for step in range(t):                        # fast-moving 4x4 object
        cx = 2 + 2 * step
        frames[step, 0, 10:14, cx:cx + 4] = 2.0
    for _ in range(30):                          # slow background clutter
        frames[rng.integers(t), 1, rng.integers(h), rng.integers(w)] += 1
    dotie = DOTIE(leak=0.6, threshold=2.5, min_cluster=4)
    boxes = dotie.detect(frames)
    print(f"   events processed: {int(frames.sum())} "
          f"(synops = {dotie.synops(frames)})")
    for i, box in enumerate(boxes[:3]):
        print(f"   box {i}: x=[{box.x_min},{box.x_max}] "
              f"y=[{box.y_min},{box.y_max}] mass={box.mass:.0f}")
    print("   The speed-tuned LIF layer keeps only the fast object's "
          "events; background clutter leaks away.")


if __name__ == "__main__":
    main()
