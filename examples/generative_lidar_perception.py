#!/usr/bin/env python
"""Generative sensing demo (Sec. III): sense 10-15%, reconstruct the rest.

Pipeline:
1. pretrain an R-MAE on full scans of procedural street scenes;
2. at deployment, decide which angular sectors to fire (stage-1 radial
   mask), translate that into a physical beam mask, scan frugally;
3. reconstruct the full occupancy grid generatively;
4. account energy for both regimes with the R^4 link-budget model.

Run:  python examples/generative_lidar_perception.py
"""

import numpy as np

from repro.generative import RMAE, compare_energy, energy_ratio, pretrain_rmae, reconstruction_iou
from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.voxel import (
    RadialMaskConfig,
    VoxelGridConfig,
    beam_mask_from_segments,
    radial_mask,
    voxelize,
)


def main() -> None:
    rng = np.random.default_rng(0)
    lidar = LidarConfig(n_azimuth=72, n_elevation=12)
    grid = VoxelGridConfig(nx=16, ny=16, nz=2)
    scanner = LidarScanner(lidar, rng=rng)
    mask_cfg = RadialMaskConfig()

    print("1. Collecting full scans and pretraining R-MAE ...")
    scenes = [sample_scene(rng) for _ in range(10)]
    clouds = [voxelize((s := scanner.scan(scene)).points, s.labels, grid)
              for scene in scenes]
    model = RMAE(grid, rng=np.random.default_rng(1))
    losses = pretrain_rmae(model, clouds[:-1], mask_cfg, epochs=12,
                           rng=np.random.default_rng(2))
    print(f"   reconstruction BCE: {losses[0]:.3f} -> {losses[-1]:.3f}")

    print("2. Deploying: frugal scan of a new scene ...")
    scene = scenes[-1]
    full_scan = scanner.scan(scene)
    full_cloud = clouds[-1]
    _, segments = radial_mask(full_cloud, mask_cfg,
                              np.random.default_rng(3))
    expected = np.full(lidar.n_beams, lidar.max_range_m)
    expected[full_scan.beam_ids] = full_scan.ranges
    beam_mask = beam_mask_from_segments(segments, lidar, mask_cfg,
                                        expected_ranges=expected,
                                        rng=np.random.default_rng(4))
    frugal_scan = scanner.scan(scene, beam_mask)
    print(f"   beams fired: {int(beam_mask.sum())}/{lidar.n_beams} "
          f"({100 * frugal_scan.coverage_fraction:.1f}% coverage)")

    print("3. Generative reconstruction ...")
    frugal_cloud = voxelize(frugal_scan.points, frugal_scan.labels, grid)
    recon = model.reconstruct_occupancy(frugal_cloud)
    target = full_cloud.occupancy_dense()
    print(f"   input IoU (masked scan vs full scene): "
          f"{reconstruction_iou(frugal_cloud.occupancy_dense(), target):.3f}")
    print(f"   reconstructed IoU                    : "
          f"{reconstruction_iou(recon, target):.3f}")

    print("4. Energy accounting (Table II protocol) ...")
    reports = compare_energy(full_scan, frugal_scan,
                             model.num_parameters(),
                             2 * model.reconstruction_macs(
                                 frugal_cloud.num_occupied))
    for name, report in reports.items():
        row = report.as_row()
        print(f"   {name:12s} sensing {row['sensing_energy_mj']:8.3f} mJ  "
              f"reconstruction {row['reconstruction_mj']:6.3f} mJ  "
              f"total {row['total_mj']:8.3f} mJ")
    print(f"   combined energy ratio: {energy_ratio(reports):.2f}x lower")
    print("   (paper reports 9.11x with its 830K-param / 335 MFLOP model;")
    print("   our simulator model is far smaller, so reconstruction is")
    print("   cheaper and the ratio higher — see benchmarks/ for the")
    print("   paper-scale accounting)")


if __name__ == "__main__":
    main()
