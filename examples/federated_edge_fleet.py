#!/usr/bin/env python
"""Multi-agent demo (Sec. VII): a heterogeneous federated fleet + swarm.

Runs federated training across a device fleet spanning workstation to
MCU, with DC-NAS channel pruning and HaLo-FL precision selection, then
shows the coordinated-swarm energy reduction and edge-cloud speculative
decoding.

Run:  python examples/federated_edge_fleet.py
"""

import numpy as np

from repro.federated import FLClient, FLServer, NGramLM, make_fleet, speculative_decode
from repro.multiagent import compare_swarm_strategies
from repro.sim import make_synthetic_cifar, shard_dirichlet


def main() -> None:
    print("1. Federated learning over a heterogeneous fleet:")
    ds = make_synthetic_cifar(n_per_class=40, seed=0)
    train, test = ds.split(0.25, np.random.default_rng(1))
    shards = shard_dirichlet(train, 6, alpha=0.7,
                             rng=np.random.default_rng(2))
    fleet = make_fleet(6, rng=np.random.default_rng(3))
    print("   fleet:", ", ".join(p.name for p in fleet))

    baseline_energy = None
    for mode in ("fedavg", "dcnas", "halo", "dcnas+halo"):
        clients = [FLClient(i, s, p, rng=np.random.default_rng(10 + i))
                   for i, (s, p) in enumerate(zip(shards, fleet))]
        server = FLServer(clients, test, hidden=32, mode=mode,
                          rng=np.random.default_rng(4))
        server.run(8)
        t = server.totals()
        if baseline_energy is None:
            baseline_energy = t["energy_mj"]
        last = server.history[-1]
        print(f"   {mode:12s} acc={t['final_accuracy']:.3f} "
              f"energy x{baseline_energy / t['energy_mj']:5.2f} lower  "
              f"widths={last.client_hidden}  bits={last.client_bits}")

    print("\n2. Coordinated swarm sensing (conclusion's ~3x claim):")
    res = compare_swarm_strategies(steps=40, seed=5)
    un, co = res["uncoordinated"], res["coordinated"]
    print(f"   uncoordinated: detect={un.detection_rate:.2f} "
          f"energy={un.total_energy_mj:.0f} mJ "
          f"redundancy={un.mean_redundancy:.2f}")
    print(f"   coordinated  : detect={co.detection_rate:.2f} "
          f"energy={co.total_energy_mj:.0f} mJ "
          f"redundancy={co.mean_redundancy:.2f}")
    print(f"   energy reduction: "
          f"{un.total_energy_mj / co.total_energy_mj:.2f}x")

    print("\n3. Edge-cloud speculative decoding:")
    rng = np.random.default_rng(6)
    tokens = [0]
    for _ in range(5000):
        tokens.append((tokens[-1] + 1) % 10 if rng.random() < 0.8
                      else int(rng.integers(10)))
    cloud = NGramLM(10, order=3).fit(tokens)
    edge = NGramLM(10, order=1).fit(tokens)
    stats = speculative_decode(cloud, edge, tokens[:3], 200, k=4,
                               rng=np.random.default_rng(7))
    print(f"   draft acceptance: {stats.acceptance_rate:.2f}  "
          f"speedup vs autoregressive: "
          f"{stats.speedup_vs_autoregressive():.2f}x")
    print("   (the edge drafts tokens; the cloud verifies blocks in one "
          "call)")


if __name__ == "__main__":
    main()
