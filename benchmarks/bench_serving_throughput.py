"""Serving-throughput benchmark — micro-batched vs serial inference.

Runs the :mod:`repro.serve` multi-loop driver: N concurrent
sensing-to-action loops share one batched STARNet trust service, against
the serial per-request baseline over identical environment streams.
The committed JSON is the throughput evidence for the serving runtime;
``check_regressions.py`` gates on the batched and serial trust values
staying equivalent (blocking) and warns if the speedup regresses below
its target (non-blocking — wall-clock ratios jitter on loaded hosts).
"""

from repro.serve import ServingBenchConfig, run_serving_benchmark

from bench_utils import print_table, save_result

SPEEDUP_TARGET = 3.0


def run_serving_throughput() -> dict:
    result = run_serving_benchmark(ServingBenchConfig())
    result["speedup_target"] = SPEEDUP_TARGET
    return result


def test_serving_throughput(benchmark):
    result = benchmark.pedantic(run_serving_throughput, rounds=1,
                                iterations=1)
    cfg = result["config"]
    serial, batched = result["serial"], result["batched"]
    print_table(
        f"Serving throughput — {cfg['n_loops']} concurrent loops, "
        f"batch {cfg['max_batch_size']}, max_wait {cfg['max_wait_ms']}ms",
        ["Mode", "Requests", "Wall", "Throughput", "p95 latency"],
        [["serial", cfg["requests"], f"{serial['wall_s'] * 1e3:.1f}ms",
          f"{serial['throughput_rps']:.0f} rps",
          f"{serial['mean_latency_ms']:.2f}ms (mean)"],
         ["batched", cfg["requests"], f"{batched['wall_s'] * 1e3:.1f}ms",
          f"{batched['throughput_rps']:.0f} rps",
          f"{batched['p95_ms']:.2f}ms"]])
    print(f"speedup: {result['speedup']:.2f}x  "
          f"equivalence max|diff|: {result['equivalence_max_abs_diff']:.2e}  "
          f"mean batch: {batched['mean_batch_size']:.1f}  "
          f"shed: {batched['shed']}")
    save_result("bench_serving_throughput", result)

    # Correctness claims are hard; the throughput ratio is asserted here
    # (dedicated hosts) and only warned about by the regression gate.
    assert result["equivalence_ok"], result["equivalence_max_abs_diff"]
    assert batched["shed"] == 0
    assert result["p95_within_max_wait"], batched["p95_ms"]
    assert result["speedup"] >= SPEEDUP_TARGET, result["speedup"]
