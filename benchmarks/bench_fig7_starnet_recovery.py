"""Fig. 7 — object detection accuracy under snow, with STARNet recovery.

"STARNet increased object detection accuracy by ~15%, restoring
performance to clean data" — the monitor flags the corrupted LiDAR
stream and the system filters unreliable returns before detection.

Protocol: train a detector + monitor on clean synthetic scans, then
sweep snow severity and measure per-class AP three ways: clean ceiling,
unprotected, and STARNet-gated filtering.
"""

import numpy as np

from repro.detect import BEVDetector, build_target_maps, finetune_detector
from repro.generative import RMAE, pretrain_rmae
from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.starnet import LidarFeatureExtractor, STARNet, run_recovery_experiment
from repro.voxel import VoxelGridConfig, voxelize

from bench_utils import print_table, save_result

GRID = VoxelGridConfig(nx=24, ny=24, nz=2, x_range=(0.0, 60.0),
                       y_range=(-30.0, 30.0))
LIDAR = LidarConfig(n_azimuth=64, n_elevation=14, azimuth_fov_deg=100.0)
SEVERITIES = (0.0, 0.3, 0.6, 0.9)
CLASSES = ("Car", "Pedestrian")


def run_fig7(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    scanner = LidarScanner(LIDAR, rng=rng)
    scenes = [sample_scene(rng, n_cars=3, n_pedestrians=2, n_cyclists=1,
                           max_range=30.0, azimuth_limit=np.pi / 4)
              for _ in range(26)]
    scans = [scanner.scan(s) for s in scenes]
    clouds = [voxelize(s.points, s.labels, GRID) for s in scans]

    encoder = RMAE(GRID, rng=np.random.default_rng(seed + 1))
    pretrain_rmae(encoder, clouds[:14], epochs=6,
                  rng=np.random.default_rng(seed + 2))
    detector = BEVDetector(GRID, encoder=encoder,
                           rng=np.random.default_rng(seed + 3))
    train_pairs = [(clouds[i], build_target_maps(scenes[i], GRID))
                   for i in range(14)]
    finetune_detector(detector, train_pairs, epochs=20,
                      rng=np.random.default_rng(seed + 4))

    extractor = LidarFeatureExtractor(encoder, GRID)
    monitor = STARNet(extractor.feature_dim, score_method="spsa",
                      spsa_steps=25, rng=np.random.default_rng(seed + 5))
    monitor.fit(extractor.extract_batch(scans[:20]), epochs=35)

    raw = run_recovery_experiment(detector, monitor, extractor,
                                  scans[14:], scenes[14:],
                                  severities=SEVERITIES, classes=CLASSES,
                                  seed=seed + 6)
    return {str(k): v for k, v in raw.items()}


def _mean(entry: dict) -> float:
    return float(np.mean(list(entry.values())))


def test_fig7_starnet_recovery(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    rows = []
    for sev in SEVERITIES:
        entry = result[str(sev)]
        rows.append([sev,
                     *(f"{entry['unprotected'][c]:.1f}" for c in CLASSES),
                     *(f"{entry['starnet'][c]:.1f}" for c in CLASSES),
                     f"{_mean(entry['starnet']) - _mean(entry['unprotected']):+.1f}"])
    print_table(
        "Fig. 7 — detection AP vs snow severity, unprotected vs "
        "STARNet-gated filtering (paper: ~15% accuracy restored)",
        ["Severity", *(f"{c} (raw)" for c in CLASSES),
         *(f"{c} (STARNet)" for c in CLASSES), "Mean gain"], rows)
    save_result("fig7_starnet_recovery", result)

    clean = _mean(result["0.0"]["unprotected"])
    mid_raw = _mean(result["0.6"]["unprotected"])
    mid_protected = _mean(result["0.6"]["starnet"])
    # Snow hurts, STARNet recovers a substantial share of the loss.
    assert mid_raw < clean
    assert mid_protected > mid_raw
    recovered = (mid_protected - mid_raw) / max(clean - mid_raw, 1e-9)
    assert recovered > 0.3  # recovers a third or more of the damage
    # Heavy snow: protection still strictly helps.
    assert _mean(result["0.9"]["starnet"]) > _mean(result["0.9"]["unprotected"])
    # Clean data is not meaningfully harmed by the gate.
    assert _mean(result["0.0"]["starnet"]) >= clean - 1.5
