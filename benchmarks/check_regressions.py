#!/usr/bin/env python
"""CI benchmark gate: re-run the fast benches and diff *shape-level*
claims against the committed ``benchmarks/results/*.json`` baselines.

Absolute numbers from the simulated substrates may drift with numpy or
seed changes; what must not drift silently is the paper's qualitative
shape — who wins, by roughly what factor, where the ordering falls.
Four fast benches cover four pillars:

* ``fig1_loop_adaptation`` — adaptive loop saves energy at matched
  recall; event-driven compute beats clocked by >10x;
* ``starnet_auc``          — every corruption family stays detectable;
* ``fig5a_model_macs``     — the analytic MAC ordering is bit-exact;
* ``kernel_hotpaths``      — the vectorized kernel backend stays a
  clear wall-clock win over the reference one and numerically
  equivalent to it;
* ``serving_throughput``   — micro-batched serving stays equivalent to
  serial per-request inference (blocking) and keeps its throughput
  multiple (warning);
* ``fleet_scaling``        — the sharded serving fleet answers every
  request with the single-process trust value and sheds nothing below
  saturation (blocking), keeps its >=2x multiple at 4 replicas and
  sheds under overload (warning);
* ``compile_stages``       — compiled float execution stays
  bit-identical to eager with zero steady-state allocations and a
  >=1.5x fused+arena win somewhere; int8 drift stays inside each
  layer's analytic bound (blocking); per-stage wall-clock multiples
  are host jitter (warning);
* ``control_adaptation``   — the adaptive control plane matches the
  best static config's accuracy at no more than its energy across the
  corruption x load sweep, and the payload is bit-identical to the
  committed baseline (the model is analytic — blocking); the count of
  statics it strictly Pareto-dominates is reported (warning);
* ``federated_async``      — asynchronous staleness-weighted
  aggregation over the 10^3-client fleet reaches the lockstep
  cohort's accuracy on the same update budget, in >=2x less
  *simulated* fleet time (virtual-time quantities are deterministic,
  so both gate as blocking), and the async arm's payload is
  byte-identical under 1/2/4 pooled workers (blocking); accuracy
  drift vs the stored baseline and the emulated-device wall-clock
  sharding multiple are reported (warning);
* ``scenario_sweep``       — the committed 10^4-scenario sweep JSON
  keeps its scale and claims, and a reduced live sweep re-proves the
  deterministic ones on this host: byte-identical payloads at 1/2/4
  workers, warm-cache re-sweep >= 10x cold, fused corruption stack
  exactly equal to the per-stage reference, incremental extensions
  executing only novel scenarios (all blocking); pool wall-clock
  scaling is reported (warning).

Checks come in two severities.  **Blocking** checks guard shape-level
claims (who wins, orderings, detectability floors) and fail the gate.
**Warning** checks guard numeric drift against the stored baseline
(ratios, AUC deltas); they are reported but do not fail CI, because
absolute numbers legitimately move when numpy or seeds change.

Exit status: 0 = no blocking regression (warnings allowed),
1 = blocking regression, 2 = harness error.
Run from anywhere: ``python benchmarks/check_regressions.py``.
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(HERE, "results")
sys.path.insert(0, HERE)
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))

# Relative tolerance for "roughly the same factor" comparisons.
RATIO_TOL = 0.35
# Absolute tolerance for AUC comparisons against the stored baseline.
AUC_TOL = 0.08

failures = []
warnings = []
checked = 0


def check(name: str, ok: bool, detail: str, blocking: bool = True) -> None:
    global checked
    checked += 1
    if ok:
        status = "ok  "
    else:
        status = "FAIL" if blocking else "warn"
    print(f"  [{status}] {name}: {detail}")
    if not ok:
        (failures if blocking else warnings).append(f"{name}: {detail}")


def load_baseline(name: str) -> dict:
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path) as f:
        return json.load(f)


def check_fig1() -> None:
    from bench_fig1_loop_adaptation import run_fig1

    print("fig1_loop_adaptation:")
    base = load_baseline("fig1_loop_adaptation")
    now = run_fig1()

    # Shape claim 1: the adaptive loop still wins on energy, and by a
    # factor comparable to the baseline's (the factor itself is numeric
    # drift, warning-only).
    ratio_now = now["static"]["energy_mj"] / now["adaptive"]["energy_mj"]
    ratio_base = (base["static"]["energy_mj"]
                  / base["adaptive"]["energy_mj"])
    check("adaptive-wins-energy",
          now["adaptive"]["energy_mj"] < now["static"]["energy_mj"],
          f"static {now['static']['energy_mj']:.0f} mJ vs adaptive "
          f"{now['adaptive']['energy_mj']:.0f} mJ")
    check("energy-ratio-stable",
          abs(ratio_now - ratio_base) <= RATIO_TOL * ratio_base,
          f"ratio {ratio_now:.2f}x vs baseline {ratio_base:.2f}x "
          f"(tol {RATIO_TOL:.0%})",
          blocking=False)

    # Shape claim 2: recall stays near the static loop's.
    check("recall-held",
          now["adaptive"]["hazard_recall"]
          >= now["static"]["hazard_recall"] - 0.25,
          f"adaptive recall {now['adaptive']['hazard_recall']:.2f} vs "
          f"static {now['static']['hazard_recall']:.2f}")

    # Shape claim 3: event-driven compute still wins by >10x.
    check("event-driven-wins",
          now["event_pj"] * 10 < now["clocked_pj"],
          f"clocked {now['clocked_pj']:.3g} pJ vs event "
          f"{now['event_pj']:.3g} pJ")


def check_starnet_auc() -> None:
    from bench_starnet_auc import run_auc

    print("starnet_auc:")
    base = load_baseline("starnet_auc")
    now = run_auc()

    check("same-corruption-families", set(now) == set(base),
          f"families {sorted(now)}")
    for family in sorted(base):
        if family not in now:
            continue
        # Detectability floor is a shape claim; drift against the stored
        # baseline value is numeric and warning-only.
        check(f"auc-floor-{family}", now[family] >= 0.85,
              f"{now[family]:.4f} (floor 0.85)")
        check(f"auc-drift-{family}",
              abs(now[family] - base[family]) <= AUC_TOL,
              f"{now[family]:.4f} vs baseline {base[family]:.4f} "
              f"(tol {AUC_TOL})",
              blocking=False)


def check_fig5a() -> None:
    from bench_fig5a_model_macs import run_fig5a

    print("fig5a_model_macs:")
    base = load_baseline("fig5a_model_macs")
    now = run_fig5a()

    order_now = sorted(now, key=lambda k: now[k]["total"])
    order_base = sorted(base, key=lambda k: base[k]["total"])
    check("mac-ordering", order_now == order_base,
          f"{' < '.join(order_now)}")
    check("spectral-wins", order_now and order_now[0] == "spectral_koopman",
          f"cheapest model: {order_now[0] if order_now else '?'}")
    # The counts are analytic: they must be bit-exact.
    drift = {k for k in base
             if k in now and now[k]["total"] != base[k]["total"]}
    check("analytic-macs-exact", not drift,
          "all totals match baseline" if not drift
          else f"totals drifted for {sorted(drift)}")


def check_kernel_hotpaths() -> None:
    from bench_kernel_hotpaths import run_kernel_hotpaths

    print("kernel_hotpaths:")
    base = load_baseline("bench_kernel_hotpaths")
    now = run_kernel_hotpaths()

    # Shape claim 1: the kernel registry still covers the same hot paths.
    check("same-kernel-set",
          set(now["kernels"]) == set(base["kernels"]),
          f"kernels {sorted(now['kernels'])}")

    # Shape claim 2: vectorization is still a clear win somewhere.  The
    # per-kernel factors are wall clock and jitter with the host, so
    # only the best one is blocking (with a floor well under the
    # committed baseline's headline speedup).
    best = max(r["speedup"] for r in now["kernels"].values())
    check("vectorized-wins", best >= 2.0,
          f"best speedup {best:.2f}x (floor 2.0x)")

    for name in sorted(base["kernels"]):
        if name not in now["kernels"]:
            continue
        r = now["kernels"][name]
        # Shape claim 3: the backends stay numerically equivalent at
        # scenario-sized inputs (last-ulp drift only).
        check(f"equivalent-{name}", r["max_abs_diff"] < 1e-6,
              f"max |diff| {r['max_abs_diff']:.2e}")
        # Wall-clock drift against the stored baseline is warning-only.
        check(f"no-slowdown-{name}", r["speedup"] >= 1.0,
              f"{r['speedup']:.2f}x vs baseline "
              f"{base['kernels'][name]['speedup']:.2f}x",
              blocking=False)


def check_serving() -> None:
    from bench_serving_throughput import SPEEDUP_TARGET, \
        run_serving_throughput

    print("serving_throughput:")
    base = load_baseline("bench_serving_throughput")
    now = run_serving_throughput()

    # Shape claim 1 (blocking): batched inference answers every request
    # with the same trust value the serial path computes — batching must
    # never change results beyond kernel drift.
    check("batched-serial-equivalent", now["equivalence_ok"],
          f"max |diff| {now['equivalence_max_abs_diff']:.2e} "
          f"(tol {now['equivalence_tol']:.0e})")
    # Shape claim 2 (blocking): the scheduler honors its own contract —
    # no requests shed at this depth, p95 within the coalescing bound.
    check("no-shedding", now["batched"]["shed"] == 0,
          f"{now['batched']['shed']} requests shed")
    check("p95-within-max-wait", now["p95_within_max_wait"],
          f"p95 {now['batched']['p95_ms']:.2f}ms vs max_wait "
          f"{now['config']['max_wait_ms']:.0f}ms")
    # Throughput is wall clock and jitters with the host: regression
    # against the target factor is warning-only here (the dedicated
    # bench asserts it).
    check("throughput-multiple",
          now["speedup"] >= SPEEDUP_TARGET,
          f"{now['speedup']:.2f}x vs baseline {base['speedup']:.2f}x "
          f"(target {SPEEDUP_TARGET:.0f}x)",
          blocking=False)


def check_fleet() -> None:
    from bench_fleet_scaling import run_fleet_scaling
    from repro.fleet.driver import SPEEDUP_TARGET

    print("fleet_scaling:")
    base = load_baseline("bench_fleet_scaling")
    now = run_fleet_scaling()

    # Shape claim 1 (blocking): sharding requests across replica
    # processes never changes a trust value beyond kernel drift.
    check("fleet-serial-equivalent", now["equivalence_ok"],
          f"max |diff| {now['equivalence_max_abs_diff']:.2e} "
          f"(tol {now['equivalence_tol']:.0e})")
    # Shape claim 2 (blocking): the staleness admission contract — no
    # request is shed while the fleet is below saturation, in either
    # the closed-loop runs or the sub-saturation sweep points.
    check("zero-sheds-below-saturation",
          now["zero_sheds_below_saturation"],
          f"{now['closed_loop_sheds']} closed-loop + "
          f"{now['sub_saturation_sweep_sheds']} sub-saturation sheds")
    # Sheds engaging at overload is the feature working; wall-clock
    # dependent, so warning-only.
    check("overload-sheds-engage", now["overload_sheds_engaged"],
          "staleness shedding engaged at >1x offered load"
          if now["overload_sheds_engaged"]
          else "no sheds at the overload sweep point",
          blocking=False)
    # Throughput is wall clock and jitters with the host: regression
    # against the target factor is warning-only here (the dedicated
    # bench asserts it).
    check("throughput-multiple",
          now["speedup_at_max_replicas"] >= SPEEDUP_TARGET,
          f"{now['speedup_at_max_replicas']:.2f}x at "
          f"{max(now['config']['replica_counts'])} replicas vs baseline "
          f"{base['speedup_at_max_replicas']:.2f}x "
          f"(target {SPEEDUP_TARGET:.0f}x)",
          blocking=False)


def check_compile() -> None:
    from bench_compile import (FLOAT_EQUIV_TOL, SPEEDUP_TARGET,
                               run_compile_stages)

    print("compile_stages:")
    base = load_baseline("bench_compile")
    now = run_compile_stages()

    # Shape claim 1 (blocking): the compile ladder still covers the
    # same models.
    check("same-model-set", set(now["models"]) == set(base["models"]),
          f"models {sorted(now['models'])}")

    best = 0.0
    for name in sorted(now["models"]):
        m = now["models"][name]
        stages = m["stages"]
        # Shape claim 2 (blocking): every compiled float stage replays
        # the exact eager arithmetic — capture, fusion and the arena
        # must never change a result.
        worst = max(stages[s]["max_abs_diff"]
                    for s in ("traced", "fused", "fused_arena"))
        check(f"float-equivalent-{name}", worst < FLOAT_EQUIV_TOL,
              f"max |diff| {worst:.2e} (tol {FLOAT_EQUIV_TOL:.0e})")
        # Shape claim 3 (blocking): the arena's zero-allocation contract
        # holds in steady state (deterministic, not wall clock).
        allocs = sum(stages[s]["steady_state_allocations"]
                     for s in ("fused_arena", "int8"))
        check(f"zero-steady-allocs-{name}", allocs == 0,
              f"{allocs} steady-state allocations")
        # Shape claim 4 (blocking): observed int8 drift stays inside the
        # analytic per-layer bound — the bound is worst-case math, so
        # any violation is an arithmetic bug, not jitter.
        bad = [d["layer"] for d in m["int8_layer_drift"]
               if d["observed"] > d["bound"]]
        check(f"int8-within-bound-{name}", not bad,
              "all layers inside drift bound" if not bad
              else f"bound exceeded: {bad}")
        # Wall clock is host-dependent: per-model no-slowdown for the
        # fused stages is warning-only (the blocking claim is the best
        # multiple below).  traced and int8 are excluded by design:
        # traced prices capture alone and int8 trades wall clock on
        # this float substrate for the 8x weight-memory win.
        for s in ("fused", "fused_arena"):
            check(f"no-slowdown-{name}-{s}", stages[s]["speedup"] >= 1.0,
                  f"{stages[s]['speedup']:.2f}x vs baseline "
                  f"{base['models'][name]['stages'][s]['speedup']:.2f}x",
                  blocking=False)
        best = max(best, stages["fused_arena"]["speedup"])

    # Shape claim 5 (blocking): fusion + arena planning stays a clear
    # steady-state win somewhere.
    check("fused-arena-wins", best >= SPEEDUP_TARGET,
          f"best fused+arena speedup {best:.2f}x "
          f"(floor {SPEEDUP_TARGET:.1f}x)")


def check_control() -> None:
    from repro.control.driver import run_control_adaptation

    print("control_adaptation:")
    base = load_baseline("bench_control_adaptation")
    now = run_control_adaptation()

    agg = now["aggregate"]
    best = now["best_static"]
    # Shape claim 1 (blocking): adaptation never costs accuracy — the
    # controller matches the most accurate static operating point.
    check("adaptive-matches-best-accuracy",
          now["adaptive_matches_best_accuracy"],
          f"adaptive {agg['adaptive']['accuracy']:.4f} vs {best} "
          f"{agg[best]['accuracy']:.4f}")
    # Shape claim 2 (blocking): that accuracy comes cheaper — at most
    # the best static's energy across the whole sweep.
    check("adaptive-energy-leq-best-static",
          now["adaptive_energy_leq_best_static"],
          f"adaptive {agg['adaptive']['energy_mj']:.1f} mJ vs {best} "
          f"{agg[best]['energy_mj']:.1f} mJ")
    # Shape claim 3 (blocking): the win is not a vacuous tie — the
    # policy actually fired.
    check("policy-reconfigured", now["adaptive_decisions"] > 0,
          f"{now['adaptive_decisions']} decisions over "
          f"{now['adaptive_steps']} controller steps")
    # Shape claim 4 (blocking): the sweep is analytic with no RNG and
    # no clock reads, so regeneration must be *bit-identical* to the
    # committed baseline — any diff is a semantics change, not jitter.
    check("bit-identical-to-baseline",
          json.dumps(now, sort_keys=True) == json.dumps(base,
                                                        sort_keys=True),
          "payload matches committed baseline byte-for-byte")
    # How many statics the adaptive policy strictly dominates is the
    # headline number; a partial-dominance future tradeoff should be a
    # visible warning, not a CI failure.
    check("dominates-every-static",
          now["n_statics_dominated"] == now["n_statics"],
          f"{now['n_statics_dominated']}/{now['n_statics']} statics "
          f"dominated ({', '.join(now['statics_dominated']) or 'none'})",
          blocking=False)


def check_federated() -> None:
    from bench_federated_async import run_federated_async
    from repro.federated.driver import SIM_SPEEDUP_TARGET

    print("federated_async:")
    base = load_baseline("bench_federated_async")
    now = run_federated_async()
    claims = now["claims"]

    # Shape claim 1 (blocking): the simulation actually runs at fleet
    # scale — the headline is 10^3+ clients, not a toy cohort.
    check("fleet-scale", claims["fleet_scale"],
          f"{now['config']['n_clients']} simulated clients (>= 1000)")
    # Shape claim 2 (blocking): removing the round barrier costs no
    # accuracy — async reaches the lockstep arm's final accuracy on
    # the same client-update budget.
    check("async-reaches-lockstep-accuracy",
          claims["reached_lockstep_accuracy"],
          f"async {now['async']['final_accuracy']:.3f} vs target "
          f"{now['target_accuracy']:.3f} (lockstep "
          f"{now['lockstep']['final_accuracy']:.3f} - tolerance)")
    # Shape claim 3 (blocking): it gets there in a fraction of the
    # simulated fleet time.  Virtual-time totals come from the
    # deterministic event scheduler — no host jitter — so unlike the
    # wall-clock multiples elsewhere this one can gate.
    check("simulated-speedup", claims["simulated_speedup_ok"],
          f"{now['simulated_speedup']:.1f}x vs target "
          f"{SIM_SPEEDUP_TARGET:.0f}x (baseline "
          f"{base['simulated_speedup']:.1f}x)")
    # Shape claim 4 (blocking): sharding client training across worker
    # processes is invisible in the results — payloads (weights hash,
    # eval history, virtual timeline) are byte-identical at every
    # worker count.
    check("identical-across-workers", claims["identical_across_workers"],
          "async payload byte-identical at workers "
          f"{sorted(int(w) for w in now['async_by_workers'])}")
    # Absolute accuracy legitimately moves with numpy/seed changes:
    # drift vs the stored baseline is a warning, not a failure.
    drift = abs(now["async"]["final_accuracy"]
                - base["async"]["final_accuracy"])
    check("accuracy-vs-baseline", drift <= AUC_TOL,
          f"async accuracy {now['async']['final_accuracy']:.3f} vs "
          f"baseline {base['async']['final_accuracy']:.3f} "
          f"(|drift| {drift:.3f}, tol {AUC_TOL})",
          blocking=False)
    # The emulated-device sharding multiple is wall clock: report only.
    check("sharding-wall-speedup",
          now["sharding_speedup_at_max_workers"] >= 1.2,
          f"{now['sharding_speedup_at_max_workers']:.2f}x at "
          f"{max(now['config']['worker_counts'])} workers vs baseline "
          f"{base['sharding_speedup_at_max_workers']:.2f}x",
          blocking=False)


def check_scenario() -> None:
    from repro.scenario import ScenarioBenchConfig
    from repro.scenario.driver import (
        WARM_SPEEDUP_TARGET,
        run_scenario_sweep_benchmark,
    )

    print("scenario_sweep:")
    base = load_baseline("bench_scenario_sweep")

    # The committed baseline is the full 10^4-scenario run (nightly /
    # local); the gate re-verifies its claims and re-runs a reduced
    # sweep live so the deterministic claims are checked on this host,
    # not just trusted from the JSON.
    check("sweep-scale", base["claims"]["sweep_scale_ok"]
          and base["n_scenarios"] >= 10_000,
          f"committed sweep covers {base['n_scenarios']} scenarios "
          "(>= 10^4)")
    for claim in ("identical_across_workers", "warm_speedup_ok",
                  "fused_equivalent", "incremental_only_novel"):
        check(f"baseline-{claim.replace('_', '-')}",
              base["claims"][claim], "holds in committed full-sweep JSON")

    live = run_scenario_sweep_benchmark(ScenarioBenchConfig(
        severities=(0.5, 1.0), platforms=("vehicle",),
        traffics=("urban",), seeds=(0,), extension_seeds=(1,),
        fused_sample=24))

    # Shape claim 1 (blocking): sharded execution is invisible in the
    # results — payloads are byte-identical at 1/2/4 workers.
    check("identical-across-workers",
          live["claims"]["identical_across_workers"],
          f"payload byte-identical at workers "
          f"{[r['workers'] for r in live['worker_curve']]} over "
          f"{live['n_scenarios']} scenarios")
    # Shape claim 2 (blocking): the content-addressed replay store
    # makes a warm re-sweep >= 10x faster than cold.
    check("warm-cache-speedup", live["claims"]["warm_speedup_ok"],
          f"{live['warm_speedup']:.1f}x vs target "
          f"{WARM_SPEEDUP_TARGET:.0f}x (baseline "
          f"{base['warm_speedup']:.1f}x)")
    # Shape claim 3 (blocking): the fused single-pass corruption stack
    # is exactly the per-stage reference composition.
    check("fused-backend-equivalence", live["claims"]["fused_equivalent"],
          f"{live['fused']['stacks_compared']} stacks exactly equal "
          f"(fused {live['fused']['fused_speedup']:.2f}x faster)")
    # Shape claim 4 (blocking): an overlapping grid extension executes
    # only the novel scenarios.
    check("incremental-only-novel",
          live["claims"]["incremental_only_novel"],
          f"extension executed {live['incremental']['executed']} "
          f"(expected {live['incremental']['novel_expected']}), "
          f"replayed {live['incremental']['replayed']}")
    # Wall-clock scaling jitters on shared hosts: report only.
    check("pool-scaling", base["claims"]["pool_scaling_ok"],
          f"baseline full sweep {base['pool_scaling']:.2f}x at "
          f"{max(base['config']['worker_counts'])} workers (live "
          f"reduced sweep {live['pool_scaling']:.2f}x)",
          blocking=False)


GATES = (check_fig1, check_starnet_auc, check_fig5a,
         check_kernel_hotpaths, check_serving, check_fleet,
         check_compile, check_control, check_federated, check_scenario)


def main() -> int:
    print("benchmark regression gate "
          "(shape-level diffs vs benchmarks/results/)")
    summary = []  # (gate, checks, blocking fails, warnings, error?)
    for fn in GATES:
        gate = fn.__name__.replace("check_", "")
        before = (checked, len(failures), len(warnings))
        try:
            fn()
        except Exception as exc:  # harness failure, not a regression
            print(f"ERROR running {fn.__name__}: {exc!r}")
            summary.append((gate, checked - before[0], 0, 0, True))
            _print_summary(summary)
            return 2
        summary.append((gate, checked - before[0],
                        len(failures) - before[1],
                        len(warnings) - before[2], False))
    print(f"\n{checked} checks, {len(failures)} blocking regressions, "
          f"{len(warnings)} warnings")
    for w in warnings:
        print(f"  warning (non-blocking): {w}")
    if failures:
        for f in failures:
            print(f"  regression (blocking): {f}")
    _print_summary(summary)
    return 1 if failures else 0


def _print_summary(summary) -> None:
    """One line per gate so a CI log scan answers 'what failed?'."""
    width = max(len(gate) for gate, *_ in summary)
    print("\ngate summary:")
    for gate, n, fails, warns, errored in summary:
        if errored:
            status = "ERROR"
        elif fails:
            status = f"FAIL ({fails} blocking)"
        else:
            status = "PASS" + (f" ({warns} warnings)" if warns else "")
        print(f"  {gate.ljust(width)}  {n:3d} checks  {status}")


if __name__ == "__main__":
    raise SystemExit(main())
