"""Fig. 5a — computational load (MACs) of dynamical models.

The paper shows the spectral Koopman approach requiring the fewest
multiply-accumulate operations for control and prediction among MLP,
dense-Koopman, Transformer, and recurrent dynamics models.  MACs are
analytic (architecture-derived), evaluated at a shared latent dimension
since every model consumes the same visual encoder's embedding.
"""

from repro.koopman import fig5a_macs

from bench_utils import print_table, save_result


def run_fig5a(latent_dim: int = 16, action_dim: int = 1) -> dict:
    return fig5a_macs(latent_dim=latent_dim, action_dim=action_dim)


def test_fig5a_model_macs(benchmark):
    result = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)
    order = sorted(result, key=lambda k: result[k]["total"])
    print_table(
        "Fig. 5a — MACs for control + prediction per step "
        "(paper: spectral Koopman fewest, Transformer most)",
        ["Model", "Prediction MACs", "Control MACs", "Total"],
        [[name, result[name]["prediction"], result[name]["control"],
          result[name]["total"]] for name in order])
    save_result("fig5a_model_macs", result)

    totals = {k: v["total"] for k, v in result.items()}
    # The paper's ordering.
    assert min(totals, key=totals.get) == "spectral_koopman"
    assert max(totals, key=totals.get) == "transformer"
    assert totals["dense_koopman"] < totals["mlp"]
    assert totals["recurrent"] < totals["transformer"]
    # And the headline gap: orders of magnitude between the spectral
    # core and the sampled-MPC nonlinear families.
    assert totals["spectral_koopman"] * 1000 < totals["mlp"]
