"""High-throughput scenario sweep — 10^4 scenarios, cached + sharded.

Runs the :mod:`repro.scenario.driver` benchmark: a full corruption-stack
grid (singles + ordered pairs over all seven corruptions) crossed with
platform, traffic, and seed axes, executed four ways:

* a worker-scaling curve (1/2/4 processes) with payload hashes —
  byte-identical results across worker counts;
* cold vs warm against a fresh replay store — the warm re-sweep must be
  >= 10x faster than cold;
* an incremental grid extension — only the genuinely novel scenarios
  may execute, everything overlapping replays;
* fused vs per-stage reference corruption kernels — exactly equal
  outputs, fused timing reported.

Worker identity, warm speedup, fused equivalence, and the incremental
replay accounting are asserted here and re-checked as blocking gates by
``check_regressions.py`` against the committed JSON; the pool-scaling
ratio is informational (wall ratios jitter on shared hosts).
"""

from repro.scenario import ScenarioBenchConfig, run_scenario_sweep_benchmark
from repro.scenario.driver import WARM_SPEEDUP_TARGET

from bench_utils import print_table, save_result


def run_scenario_sweep() -> dict:
    return run_scenario_sweep_benchmark(ScenarioBenchConfig())


def test_scenario_sweep(benchmark):
    result = benchmark.pedantic(run_scenario_sweep, rounds=1, iterations=1)
    cfg = result["config"]
    print_table(
        f"Scenario sweep — {result['n_scenarios']} scenarios "
        f"({len(cfg['corruptions'])} corruptions, depth {cfg['depth']}, "
        f"{len(cfg['platforms'])} platforms, {len(cfg['traffics'])} "
        f"traffic regimes, {len(cfg['seeds'])} seeds)",
        ["Workers", "Wall", "Scenarios/s", "Payload sha"],
        [[row["workers"], f"{row['wall_s']:.2f}s",
          f"{row['scenarios_per_s']:.0f}", row["payload_sha"][:16]]
         for row in result["worker_curve"]])
    print_table(
        "Replay store: cold vs warm vs incremental extension",
        ["Phase", "Wall", "Executed", "Replayed"],
        [["cold", f"{result['cold']['wall_s']:.2f}s",
          result["cold"]["executed"], result["cold"]["replayed"]],
         ["warm", f"{result['warm']['wall_s']:.2f}s",
          result["warm"]["executed"], result["warm"]["replayed"]],
         ["incremental", "-", result["incremental"]["executed"],
          result["incremental"]["replayed"]]])
    fused = result["fused"]
    print(f"warm speedup: {result['warm_speedup']:.1f}x "
          f"(target {WARM_SPEEDUP_TARGET:.0f}x)  "
          f"pool scaling: {result['pool_scaling']:.2f}x  "
          f"fused kernel: {fused['fused_speedup']:.2f}x over reference "
          f"({fused['stacks_compared']} stacks)")
    save_result("bench_scenario_sweep", result)

    claims = result["claims"]
    assert claims["sweep_scale_ok"], result["n_scenarios"]
    assert claims["identical_across_workers"], result["worker_curve"]
    assert claims["warm_speedup_ok"], (
        result["warm_speedup"], WARM_SPEEDUP_TARGET)
    assert claims["fused_equivalent"], fused
    assert claims["incremental_only_novel"], result["incremental"]
