"""Compile-stage benchmark — eager vs traced vs fused vs fused+arena vs int8.

Times the same seeded models through each rung of the ``repro.compile``
ladder, isolating where the speedup comes from:

* ``eager``        — the ``Sequential`` layer loop (one fresh allocation
  per op), the "before" every other stage is measured against;
* ``traced``       — graph capture alone (``fuse=False``, fresh buffers
  per stage): prices the trace without fusion or planning;
* ``fused``        — elementwise chains absorbed into their producing
  GEMM (fresh buffers): prices fusion without the arena;
* ``fused_arena``  — fused program against the pre-planned buffer arena
  with ``copy_output=False``: the steady state, **zero allocations per
  call** (asserted, not assumed);
* ``int8``         — the fused+arena program with every GEMM lowered to
  the true-int8 path (int8 weights, exact int32 accumulation).

Float stages must be *bit-identical* to eager (the fused chains replay
the same ufunc arithmetic in place); the committed JSON is the evidence
for the compile PR's >=1.5x steady-state claim and
``check_regressions.py`` gates on it holding.  Int8 drift is checked
per layer against :meth:`repro.compile.Int8Dense.drift_bound` — the
analytic worst case, so the check is exact rather than a tuned
tolerance — and the end-to-end output gap is recorded alongside the
output scale for context.
"""

import time
from typing import Dict, List, Tuple

import numpy as np

from repro.compile import CompiledModule, FreshAllocator
from repro.compile.fusion import Int8GemmStage
from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.sequential import Sequential, mlp

from bench_utils import print_table, save_result

# Median-of-REPS wall times, INNER full forward passes per rep.  The
# workloads run at serving batch sizes (the micro-batching scheduler
# coalesces requests into exactly these shapes), where the eager loop
# is memory-bound: every op allocates a fresh temporary and ReLU's
# ``np.where`` mask adds two more passes — the traffic fusion and the
# arena eliminate.
REPS, INNER = 7, 40
SMOKE_REPS, SMOKE_INNER = 3, 8

# Blocking gate: float compiled stages must match eager to this.
FLOAT_EQUIV_TOL = 1e-9
# Blocking gate: best fused_arena speedup across models.
SPEEDUP_TARGET = 1.5


def _median_wall_s(fn, reps: int, inner: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times)) / inner


# ------------------------------------------------------- workload builders
def _workloads() -> Dict[str, Tuple[Sequential, np.ndarray, str]]:
    """name -> (model, batch input, workload description)."""
    rng = np.random.default_rng(42)
    loads: Dict[str, Tuple[Sequential, np.ndarray, str]] = {}

    m = mlp([64, 128, 128, 10], rng=np.random.default_rng(1), name="m1")
    loads["mlp_64x3"] = (
        m, rng.standard_normal((256, 64)),
        "3-layer MLP 64->128->128->10, batch 256 (coalesced policy "
        "serving)")

    m = mlp([8, 32, 64, 33], rng=np.random.default_rng(2), name="dec")
    loads["monitor_decoder"] = (
        m, rng.standard_normal((512, 8)),
        "STARNet VAE decoder 8->32->64->33, batch 512 (monitor fleet "
        "micro-batch)")

    m = Sequential(
        Conv2d(1, 4, kernel=3, pad=0, rng=np.random.default_rng(3),
               name="head.conv"),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(4 * 5 * 5, 32, rng=np.random.default_rng(4), name="head.fc0"),
        ReLU(),
        Dense(32, 10, rng=np.random.default_rng(5), name="head.fc1"))
    loads["conv_head"] = (
        m, rng.standard_normal((32, 1, 12, 12)),
        "conv(1->4,3x3)+pool head into 100->32->10 MLP, batch 32, 12x12 "
        "input (BEV patch classifier; conv dominates, fusion only "
        "touches the tail)")
    return loads


# ----------------------------------------------------------- int8 drift
def _int8_layer_drift(artifact: CompiledModule,
                      x: np.ndarray) -> List[dict]:
    """Walk the int8 program; for every int8 GEMM stage compare its raw
    GEMM output (before the fused tail) against the float GEMM on the
    *same* input, and against the analytic drift bound for that input.

    The bound is per stage and exact — no composition slack — because
    each stage is probed with the activations the int8 program actually
    feeds it.
    """
    records = []
    probe = FreshAllocator()
    for stage in artifact.program.stages:
        if isinstance(stage, Int8GemmStage):
            packed = stage.ensure_packed()
            ref = x @ stage.dense.weight.data
            got = np.array(packed.run(x, probe, "probe"))
            records.append({
                "layer": stage.dense.weight.name,
                "observed": float(np.max(np.abs(got - ref))),
                "bound": packed.drift_bound(x),
                "weight_bytes": int(packed.weight_q.nbytes),
                "float_bytes": int(packed.in_features
                                   * packed.out_features * 8),
            })
        x = stage.run(x, artifact.arena)
    return records


# --------------------------------------------------------------- the bench
def run_compile_stages(smoke: bool = False) -> dict:
    reps, inner = (SMOKE_REPS, SMOKE_INNER) if smoke else (REPS, INNER)
    models: Dict[str, dict] = {}

    for name, (model, x, workload) in _workloads().items():
        model.eval()
        eager_out = model.forward_batch(x)
        eager_s = _median_wall_s(lambda: model.forward_batch(x), reps, inner)

        artifacts = {
            "traced": CompiledModule(model, fuse=False, arena=False),
            "fused": CompiledModule(model, fuse=True, arena=False),
            "fused_arena": CompiledModule(model, fuse=True, arena=True,
                                          copy_output=False),
            "int8": CompiledModule(model, precision="int8", fuse=True,
                                   arena=True, copy_output=False),
        }

        stages = {"eager": {"wall_s": round(eager_s, 9), "speedup": 1.0}}
        for stage_name, art in artifacts.items():
            out = np.array(art.forward_batch(x))  # warm + materialize
            art.forward_batch(x)                  # arena fully planned
            allocs_before = getattr(art.arena, "allocations", 0)
            wall = _median_wall_s(lambda a=art: a.forward_batch(x),
                                  reps, inner)
            entry = {
                "wall_s": round(wall, 9),
                "speedup": round(eager_s / wall, 2),
                "max_abs_diff": float(np.max(np.abs(out - eager_out))),
            }
            if stage_name in ("fused_arena", "int8"):
                entry["steady_state_allocations"] = int(
                    art.arena.allocations - allocs_before)
                entry["arena_slots"] = art.arena.slot_count()
                entry["arena_bytes"] = art.arena.nbytes()
            stages[stage_name] = entry

        drift = _int8_layer_drift(
            CompiledModule(model, precision="int8", fuse=True, arena=True,
                           copy_output=False), x)
        models[name] = {
            "workload": workload,
            "batch": int(x.shape[0]),
            "fused_elementwise": artifacts["fused"].program.fused_elementwise,
            "stages": stages,
            "int8_layer_drift": drift,
            "int8_output_scale": float(np.max(np.abs(eager_out))),
        }

    return {"reps": reps, "inner": inner, "smoke": smoke,
            "float_equiv_tol": FLOAT_EQUIV_TOL,
            "speedup_target": SPEEDUP_TARGET,
            "models": models}


def _print_stage_table(result: dict) -> None:
    rows = []
    for name, m in result["models"].items():
        for stage, r in m["stages"].items():
            rows.append([
                name, stage, f"{r['wall_s'] * 1e6:.1f}us",
                f"{r['speedup']:.2f}x",
                f"{r.get('max_abs_diff', 0.0):.2e}",
                str(r.get("steady_state_allocations", "-"))])
    print_table(
        "Compile stages — eager vs traced vs fused vs fused+arena vs int8 "
        "(median wall clock per forward)",
        ["Model", "Stage", "Wall", "Speedup", "Max |diff|", "Allocs"],
        rows)


def test_compile_stages(benchmark):
    result = benchmark.pedantic(run_compile_stages, rounds=1, iterations=1)
    _print_stage_table(result)
    save_result("bench_compile", result)

    best = 0.0
    for name, m in result["models"].items():
        stages = m["stages"]
        for stage in ("traced", "fused", "fused_arena"):
            assert stages[stage]["max_abs_diff"] < FLOAT_EQUIV_TOL, \
                f"{name}/{stage}"
        for stage in ("fused_arena", "int8"):
            assert stages[stage]["steady_state_allocations"] == 0, \
                f"{name}/{stage}"
        for rec in m["int8_layer_drift"]:
            assert rec["observed"] <= rec["bound"], \
                f"{name}/{rec['layer']}: {rec['observed']} > {rec['bound']}"
        best = max(best, stages["fused_arena"]["speedup"])
    # The steady-state claim: fusion + arena planning must be a clear
    # win somewhere; individual models jitter on loaded hosts.
    assert best >= SPEEDUP_TARGET, f"best fused_arena speedup {best:.2f}x"
