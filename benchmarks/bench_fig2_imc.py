"""Fig. 2 — in-memory computing acceleration of synaptic operations.

The paper's Fig. 2 pipeline offloads synaptic functionality to in-memory
(IMC) / near-memory computing "alongside CPU/GPU architectures".  The
physics: digital MVMs pay weight movement per inference; crossbars keep
weights stationary and pay converters instead.  This bench sweeps matrix
size and input activity and reports where IMC wins — including the
spiking case, where sparse input activity multiplies the advantage.
"""

from repro.hardware import compare_architectures

from bench_utils import print_table, save_result

SIZES = (64, 256, 1024)
ACTIVITIES = (1.0, 0.1)


def run_imc() -> dict:
    results = {}
    for size in SIZES:
        for activity in ACTIVITIES:
            out = compare_architectures(rows=size, cols=size, batch=1,
                                        bits=8, input_activity=activity)
            results[f"{size}x{size}@{activity}"] = out
    return results


def test_fig2_imc(benchmark):
    result = benchmark.pedantic(run_imc, rounds=1, iterations=1)
    rows = []
    for key, out in result.items():
        rows.append([key, f"{out['digital_pj'] / 1e3:.1f}",
                     f"{out['imc_pj'] / 1e3:.1f}",
                     f"{out['imc_advantage']:.1f}x"])
    print_table(
        "Fig. 2 concept — digital vs in-memory MVM energy "
        "(batch-1 inference; '@a' = input activity)",
        ["Workload", "Digital (nJ)", "IMC (nJ)", "IMC advantage"], rows)
    save_result("fig2_imc", result)

    # IMC wins at every swept size for batch-1 inference ...
    for out in result.values():
        assert out["imc_advantage"] > 1.0
    # ... the advantage grows with matrix size (converters amortize) ...
    assert (result["1024x1024@1.0"]["imc_advantage"]
            > result["64x64@1.0"]["imc_advantage"])
    # ... and event-driven sparsity multiplies it further.
    assert (result["256x256@0.1"]["imc_advantage"]
            > result["256x256@1.0"]["imc_advantage"])
