"""Async federated simulation at fleet scale — 10^3 clients, no barrier.

Runs the :mod:`repro.federated.driver` comparison: sampled synchronous
FedAvg (lockstep, barriered on each cohort's slowest device) vs
buffered staleness-weighted asynchronous aggregation with cost-aware
client sampling, over an identical 1000-client heterogeneous fleet,
identical IID shards, identical seeds, and an identical client-update
budget.  Virtual time comes from the event-driven scheduler, so the
headline speedup is a deterministic quantity, not a wall-clock
measurement; the async arm is additionally re-run under 1/2/4 pooled
workers and must produce byte-identical result payloads.

All three headline claims (accuracy parity, >=2x simulated speedup,
cross-worker identity) are asserted here and re-checked as blocking
gates by ``check_regressions.py`` against the committed JSON.
"""

from repro.federated import FederatedBenchConfig, run_federated_async_benchmark
from repro.federated.driver import SIM_SPEEDUP_TARGET

from bench_utils import print_table, save_result


def run_federated_async() -> dict:
    return run_federated_async_benchmark(FederatedBenchConfig())


def test_federated_async(benchmark):
    result = benchmark.pedantic(run_federated_async, rounds=1, iterations=1)
    cfg = result["config"]
    lock, asy = result["lockstep"], result["async"]
    print_table(
        f"Async vs lockstep FedAvg — {cfg['n_clients']} clients, "
        f"cohort {result['cohort']}, budget {result['update_budget']} "
        "updates",
        ["Arm", "Updates", "Virtual time", "Accuracy", "Energy",
         "Staleness"],
        [["lockstep", lock["updates"], f"{lock['virtual_s']:.1f}s",
          f"{lock['final_accuracy']:.3f}",
          f"{lock['total_energy_mj']:.1f}mJ", "0 (barrier)"],
         ["async", asy["updates"], f"{asy['virtual_s']:.1f}s",
          f"{asy['final_accuracy']:.3f}",
          f"{asy['total_energy_mj']:.1f}mJ",
          f"mean {asy['staleness_mean']:.2f} max "
          f"{asy['staleness_max']}"]])
    print_table(
        "Async determinism + sharding across worker counts",
        ["Workers", "Weights sha", "Wall", "Emulated wall"],
        [[w, run["weights_sha"][:16], f"{run['wall_s']:.2f}s",
          f"{result['sharding_wall_s'][w]:.2f}s"]
         for w, run in sorted(result["async_by_workers"].items(),
                              key=lambda kv: int(kv[0]))])
    print(f"simulated speedup: {result['simulated_speedup']:.1f}x  "
          f"target acc: {result['target_accuracy']:.3f}  "
          f"sharding wall speedup@max workers: "
          f"{result['sharding_speedup_at_max_workers']:.2f}x")
    save_result("bench_federated_async", result)

    claims = result["claims"]
    assert claims["fleet_scale"], cfg["n_clients"]
    assert claims["reached_lockstep_accuracy"], (
        asy["final_accuracy"], result["target_accuracy"])
    assert claims["simulated_speedup_ok"], (
        result["simulated_speedup"], SIM_SPEEDUP_TARGET)
    assert claims["identical_across_workers"], result["async_by_workers"]
