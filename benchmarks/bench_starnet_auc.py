"""Sec. V (text) — STARNet anomaly-detection AUC per corruption family.

Paper values (LiDAR-only): crosstalk 0.9658, cross-sensor interference
0.9938, AUC above 0.90 across natural corruptions, external disruptions,
and internal sensor failures — *without training on any fault type*.

This bench runs the full protocol on the synthetic corruption suite at a
moderate severity and asserts the paper's band: every family detectable
(AUC >= 0.85), internal sensor failures near-perfect.
"""

from repro.starnet import AUCExperimentConfig, run_auc_experiment

from bench_utils import print_table, save_result

PAPER_REFERENCE = {
    "crosstalk": 0.9658,
    "cross_sensor": 0.9938,
}


def run_auc(seed: int = 0) -> dict:
    config = AUCExperimentConfig(n_fit_scans=28, n_test_scans=14,
                                 severity=0.45, spsa_steps=30,
                                 vae_epochs=40, seed=seed)
    return run_auc_experiment(config)


def test_starnet_auc(benchmark):
    result = benchmark.pedantic(run_auc, rounds=1, iterations=1)
    rows = []
    for name, auc in sorted(result.items(), key=lambda kv: -kv[1]):
        paper = PAPER_REFERENCE.get(name)
        rows.append([name, f"{auc:.4f}",
                     f"{paper:.4f}" if paper else "> 0.90 (band)"])
    print_table(
        "STARNet LiDAR-only anomaly detection AUC by corruption "
        "(likelihood regret via SPSA; no training on faults)",
        ["Corruption", "AUC (ours)", "AUC (paper)"], rows)
    save_result("starnet_auc", result)

    assert set(result) == {"snow", "rain", "fog", "beam_missing",
                           "motion_blur", "crosstalk", "cross_sensor"}
    for name, auc in result.items():
        assert auc >= 0.85, (name, auc)
    # Internal sensor failures: the paper's strongest detections.
    assert result["crosstalk"] >= 0.9
    assert result["cross_sensor"] >= 0.9
