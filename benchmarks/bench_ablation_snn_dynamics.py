"""Ablation — learnable neuronal dynamics and surrogate width (Sec. VI).

Adaptive-SpikeNet's contribution is *learnable* leak/threshold.  This
bench trains the same architecture with dynamics frozen vs learnable,
and sweeps the surrogate-gradient width (too narrow starves gradients,
too wide blurs the spike nonlinearity).
"""

import numpy as np

from repro.neuromorphic import evaluate_aee, train_flow_model
from repro.neuromorphic.flow_models import AdaptiveSpikeNet
from repro.sim import make_flow_dataset
from repro.sim.events import EventCameraConfig

from bench_utils import print_table, save_result

CFG = EventCameraConfig(n_substeps=6, noise_events_per_pixel=0.02)
WIDTHS = (0.25, 1.0, 4.0)


def _freeze_dynamics(model: AdaptiveSpikeNet) -> None:
    """Turn the learnable dynamics into constants (ablated variant)."""
    for layer in (model.l1, model.l2, model.l3):
        if layer.learnable_dynamics:
            layer.leak_raw.trainable = False
            layer.thr_raw.trainable = False


def run_ablation(seed: int = 0) -> dict:
    train = make_flow_dataset(40, seed=seed, config=CFG,
                              max_displacement=2.5)
    test = make_flow_dataset(12, seed=seed + 1, config=CFG,
                             max_displacement=2.5)

    dynamics = {}
    for learnable in (False, True):
        model = AdaptiveSpikeNet(channels=8,
                                 rng=np.random.default_rng(seed + 2))
        if not learnable:
            _freeze_dynamics(model)
        train_flow_model(model, train, epochs=35,
                         rng=np.random.default_rng(seed + 3))
        dynamics[learnable] = {
            "aee": evaluate_aee(model, test),
            "leak_l1": model.l1.leak(),
            "threshold_l1": model.l1.threshold(),
        }

    widths = {}
    for width in WIDTHS:
        model = AdaptiveSpikeNet(channels=8,
                                 rng=np.random.default_rng(seed + 4))
        for layer in (model.l1, model.l2, model.l3):
            layer.surrogate_width = width
        train_flow_model(model, train, epochs=35,
                         rng=np.random.default_rng(seed + 5))
        widths[width] = evaluate_aee(model, test)
    return {"dynamics": dynamics, "widths": widths}


def test_ablation_snn_dynamics(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    dyn = result["dynamics"]
    print_table(
        "Ablation — learnable vs frozen neuronal dynamics "
        "(Adaptive-SpikeNet, event-flow)",
        ["Dynamics", "AEE", "Learned leak (l1)", "Learned threshold (l1)"],
        [["frozen", f"{dyn[False]['aee']:.3f}",
          f"{dyn[False]['leak_l1']:.3f}", f"{dyn[False]['threshold_l1']:.3f}"],
         ["learnable", f"{dyn[True]['aee']:.3f}",
          f"{dyn[True]['leak_l1']:.3f}", f"{dyn[True]['threshold_l1']:.3f}"]])
    print_table(
        "Ablation — surrogate-gradient width",
        ["Width", "AEE"],
        [[w, f"{a:.3f}"] for w, a in result["widths"].items()])
    save_result("ablation_snn_dynamics", result)

    # Learnable dynamics help (the Adaptive-SpikeNet claim) — or at
    # minimum never hurt materially at this scale.
    assert dyn[True]["aee"] <= dyn[False]["aee"] + 0.1
    # Learnable parameters actually moved from their init.
    assert (abs(dyn[True]["leak_l1"] - 0.9) > 1e-4
            or abs(dyn[True]["threshold_l1"] - 0.75) > 1e-4)
    # The default width (1.0) is within noise of the best swept width.
    best = min(result["widths"].values())
    assert result["widths"][1.0] <= best + 0.25
