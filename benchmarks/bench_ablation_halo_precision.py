"""Ablation — precision policy in HaLo-FL (Sec. VII).

Compares uniform fixed precisions (32/16/8/4-bit everywhere) against
HaLo's hardware-aware selector on identical fleets: the selector should
match the best fixed point of the accuracy/energy frontier without the
manual sweep — and avoid the 4-bit collapse.
"""

import numpy as np

from repro.federated import FLClient, FLServer, make_fleet
from repro.nn import PrecisionConfig
from repro.sim import make_synthetic_cifar, shard_dirichlet

from bench_utils import print_table, save_result

UNIFORM_BITS = (32, 16, 8, 4)
ROUNDS = 8
N_CLIENTS = 6


def _run_with_policy(policy_name, seed=0):
    ds = make_synthetic_cifar(n_per_class=40, seed=seed)
    train, test = ds.split(0.25, np.random.default_rng(seed + 1))
    shards = shard_dirichlet(train, N_CLIENTS, alpha=0.7,
                             rng=np.random.default_rng(seed + 2))
    fleet = make_fleet(N_CLIENTS, rng=np.random.default_rng(seed + 3))
    clients = [FLClient(i, s, p, rng=np.random.default_rng(seed + 10 + i))
               for i, (s, p) in enumerate(zip(shards, fleet))]
    mode = "halo" if policy_name == "halo" else "fedavg"
    server = FLServer(clients, test, hidden=32, mode=mode,
                      rng=np.random.default_rng(seed + 4))
    if policy_name.startswith("uniform"):
        bits = int(policy_name.split("_")[1])
        cfg = PrecisionConfig(bits, bits, max(bits, 8))

        def plan(client, _cfg=cfg):
            return server.hidden, _cfg

        server._client_plan = plan  # fixed-precision override
    server.run(ROUNDS)
    return server.totals()


def run_ablation(seed: int = 0) -> dict:
    results = {}
    for bits in UNIFORM_BITS:
        results[f"uniform_{bits}"] = _run_with_policy(f"uniform_{bits}",
                                                      seed=seed)
    results["halo"] = _run_with_policy("halo", seed=seed)
    return results


def test_ablation_halo_precision(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation — uniform precision vs HaLo's hardware-aware selector",
        ["Policy", "Accuracy", "Energy (mJ)", "Latency (ms)"],
        [[name, f"{t['final_accuracy']:.3f}", f"{t['energy_mj']:.4f}",
          f"{t['latency_ms']:.1f}"]
         for name, t in result.items()])
    save_result("ablation_halo_precision", result)

    acc32 = result["uniform_32"]["final_accuracy"]
    # 4-bit uniform training collapses (why naive aggressive quantization
    # is unsafe) ...
    assert result["uniform_4"]["final_accuracy"] < acc32 - 0.15
    # ... while the selector lands at 8-bit-class efficiency without the
    # collapse: near-fp32 accuracy at a fraction of the energy.
    halo = result["halo"]
    assert halo["final_accuracy"] > acc32 - 0.08
    assert halo["energy_mj"] < result["uniform_32"]["energy_mj"] / 3
    assert halo["energy_mj"] <= result["uniform_8"]["energy_mj"] * 1.1
