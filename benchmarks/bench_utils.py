"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
the same rows/series the paper reports, and writes them to
``benchmarks/results/`` so runs leave an auditable record.  Absolute
numbers come from our simulated substrates; the *shape* (who wins, by
roughly what factor, where crossovers fall) is what each bench asserts.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, payload: dict) -> str:
    """Persist a benchmark's structured output as JSON."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, default=str)
    return path


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Render an aligned text table to stdout (shows under ``pytest -s``
    and in the saved text mirror)."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "tables.txt"), "a") as f:
        f.write(text + "\n")
