"""Control-adaptation benchmark — adaptive policy vs static configs.

Thin wrapper around :func:`repro.control.driver.run_control_adaptation`:
a corruption x load sweep of the same analytic sensing-to-action
workload under four static operating points and under the declarative
:class:`repro.control.Controller`.  The committed JSON witnesses the
control plane's claim — the adaptive policy matches the best static
config's accuracy at strictly lower energy and Pareto-dominates every
individual static config — and ``check_regressions.py`` gates on it.

The sweep is fully analytic (no RNG, no clock reads), so unlike the
timing benches the payload is bit-reproducible on any host; there are
no wall-clock fields to jitter.
"""

from repro.control.driver import run_control_adaptation

from bench_utils import print_table, save_result


def _print_frontier_table(result: dict) -> None:
    rows = []
    for point in result["points"]:
        for name, r in point["configs"].items():
            rows.append([
                f"{point['severity']:.2f}", f"{point['load_rps']:.0f}",
                name, f"{r['accuracy']:.3f}",
                f"{r['energy_per_cycle_mj']:.3f}",
                str(len(r.get("decisions", []))) if name == "adaptive"
                else "-"])
    print_table(
        "Control adaptation — energy/accuracy frontier per sweep point "
        "(adaptive vs static; post-warmup cycles)",
        ["Severity", "Load rps", "Config", "Accuracy", "mJ/cycle",
         "Decisions"],
        rows)

    agg = result["aggregate"]
    print_table(
        "Aggregate over the sweep (accuracy mean, energy total)",
        ["Config", "Accuracy", "Energy mJ", "Dominated by adaptive"],
        [[name, f"{a['accuracy']:.4f}", f"{a['energy_mj']:.2f}",
          ("yes" if name in result["statics_dominated"]
           else "-" if name == "adaptive" else "no")]
         for name, a in agg.items()])


def test_control_adaptation(benchmark):
    result = benchmark.pedantic(run_control_adaptation,
                                rounds=1, iterations=1)
    _print_frontier_table(result)
    save_result("bench_control_adaptation", result)

    # The blocking claims the committed JSON must keep witnessing.
    assert result["adaptive_matches_best_accuracy"], result["aggregate"]
    assert result["adaptive_energy_leq_best_static"], result["aggregate"]
    assert result["n_statics_dominated"] == result["n_statics"], \
        result["statics_dominated"]
    # The policy actually reconfigured — the win is not a vacuous tie.
    assert result["adaptive_decisions"] > 0
