"""Kernel hot-path micro-benchmarks — reference vs vectorized wall clock.

Times each ``repro.kernels`` pair (sparse 3-D conv, SNN surrogate-BPTT,
likelihood regret, BEV matching) on scenario-sized seeded inputs under
both backends, and records the speedup alongside the numerical gap
between them.  The committed JSON is the before/after evidence for the
vectorization PR; ``check_regressions.py`` re-runs this bench and gates
on the speedups holding and the backends staying equivalent.

The reference backend *is* the pre-vectorization implementation (moved
verbatim into ``repro.kernels``), so ``reference_s`` here is a faithful
"before" measurement, not a reconstruction.
"""

import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.detect.ap import Detection
from repro.kernels import BACKENDS, get_kernel, kernel_backend
from repro.neuromorphic.snn import SpikingConv2d
from repro.nn.sparse3d import (SparseConv3d, SparseGrad, SparseReLU,
                               SparseSequential, SparseVoxelTensor)
from repro.nn.vae import VAE

from bench_utils import print_table, save_result

# Median-of-REPS wall times; first rep warms per-tensor index caches,
# which is the steady-state the pipelines actually run in.
REPS = 5


def _median_wall_s(fn: Callable[[], object], reps: int = REPS) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


# ------------------------------------------------------- workload builders
def _sparse_conv_setup() -> Tuple[SparseSequential, SparseVoxelTensor]:
    """Two-layer submanifold conv stack on a scenario-sized BEV grid."""
    rng = np.random.default_rng(7)
    grid = (16, 16, 2)
    flat = rng.choice(grid[0] * grid[1] * grid[2], size=220, replace=False)
    coords = np.stack(np.unravel_index(np.sort(flat), grid), axis=1)
    features = {tuple(int(v) for v in c): rng.standard_normal(4)
                for c in coords}
    x = SparseVoxelTensor(features, channels=4, grid_shape=grid)
    model = SparseSequential(
        SparseConv3d(4, 16, rng=np.random.default_rng(1)),
        SparseReLU(),
        SparseConv3d(16, 24, rng=np.random.default_rng(2)))
    return model, x


def _sparse_conv_run(backend: str, model: SparseSequential,
                     x: SparseVoxelTensor) -> np.ndarray:
    with kernel_backend(backend):
        out = model.forward(x)
        oc, om = out.packed()
        model.backward(SparseGrad(oc, np.ones_like(om)))
    return out.dense()


def _snn_setup() -> Tuple[SpikingConv2d, np.ndarray]:
    """Spike-FlowNet-sized spiking conv: T=8 timesteps on 16x16 events."""
    layer = SpikingConv2d(2, 6, rng=np.random.default_rng(3),
                          learnable_dynamics=True)
    x = np.random.default_rng(4).standard_normal((8, 2, 2, 16, 16))
    return layer, x


def _snn_run(backend: str, layer: SpikingConv2d,
             x: np.ndarray) -> np.ndarray:
    with kernel_backend(backend):
        out = layer.forward(x)
        return layer.backward(np.ones_like(out))


def _regret_setup() -> Tuple[VAE, np.ndarray]:
    """STARNet-sized monitor: feature_dim=33 VAE, a 12-scan batch."""
    vae = VAE(33, rng=np.random.default_rng(5))
    X = np.random.default_rng(6).standard_normal((12, 33))
    return vae, X


def _regret_run(backend: str, vae: VAE, X: np.ndarray) -> np.ndarray:
    # Fresh generator per run: both backends consume the identical seed
    # stream, so the scores are directly comparable.
    return get_kernel("likelihood_regret", backend=backend).score_rows(
        vae, X, "spsa", 25, np.random.default_rng(11))


def _bev_setup() -> List[Tuple[List[Detection], np.ndarray]]:
    """40 detection scenes at Table-I density (~30 preds, 12 GTs)."""
    rng = np.random.default_rng(8)
    scenes = []
    for _ in range(40):
        preds = [Detection("Car", float(x), float(y), float(s))
                 for x, y, s in rng.uniform(0, 40, size=(30, 3))]
        gts = rng.uniform(0, 40, size=(12, 2))
        scenes.append((preds, gts))
    return scenes


def _bev_run(backend: str,
             scenes: List[Tuple[List[Detection], np.ndarray]]) -> list:
    kernel = get_kernel("bev_match", backend=backend)
    out = []
    for preds, gts in scenes:
        out.extend(kernel.match_scene(preds, gts, 4.0))
    return out


# --------------------------------------------------------------- the bench
def run_kernel_hotpaths() -> dict:
    results: Dict[str, dict] = {}

    model, x = _sparse_conv_setup()
    outs = {b: _sparse_conv_run(b, *_sparse_conv_setup()) for b in BACKENDS}
    walls = {b: _median_wall_s(lambda b=b: _sparse_conv_run(b, model, x))
             for b in BACKENDS}
    results["sparse_conv3d"] = {
        "workload": "2-layer submanifold conv fwd+bwd, 220 sites, "
                    "16x16x2 grid, 4->16->24 ch",
        "max_abs_diff": float(np.max(np.abs(
            outs["reference"] - outs["vectorized"]))),
        **_timing(walls),
    }

    layer, xt = _snn_setup()
    grads = {}
    for b in BACKENDS:
        lyr, xi = _snn_setup()
        grads[b] = _snn_run(b, lyr, xi)
    walls = {b: _median_wall_s(lambda b=b: _snn_run(b, layer, xt))
             for b in BACKENDS}
    results["snn_bptt"] = {
        "workload": "SpikingConv2d fwd+BPTT, T=8, N=2, 2->6 ch, 16x16, "
                    "learnable dynamics",
        "max_abs_diff": float(np.max(np.abs(
            grads["reference"] - grads["vectorized"]))),
        **_timing(walls),
    }

    vae, X = _regret_setup()
    scores = {b: _regret_run(b, vae, X) for b in BACKENDS}
    walls = {b: _median_wall_s(lambda b=b: _regret_run(b, vae, X))
             for b in BACKENDS}
    results["likelihood_regret"] = {
        "workload": "SPSA regret, batch of 12 rows, feature_dim=33, "
                    "25 steps",
        "max_abs_diff": float(np.max(np.abs(
            scores["reference"] - scores["vectorized"]))),
        **_timing(walls),
    }

    scenes = _bev_setup()
    matches = {b: _bev_run(b, scenes) for b in BACKENDS}
    walls = {b: _median_wall_s(lambda b=b: _bev_run(b, scenes))
             for b in BACKENDS}
    results["bev_match"] = {
        "workload": "greedy BEV matching, 40 scenes, 30 preds / 12 GTs",
        "max_abs_diff": 0.0 if matches["reference"] == matches["vectorized"]
        else float("nan"),
        **_timing(walls),
    }

    return {"reps": REPS, "kernels": results}


def _timing(walls: Dict[str, float]) -> dict:
    return {
        "reference_s": round(walls["reference"], 6),
        "vectorized_s": round(walls["vectorized"], 6),
        "speedup": round(walls["reference"] / walls["vectorized"], 2),
    }


def test_kernel_hotpaths(benchmark):
    result = benchmark.pedantic(run_kernel_hotpaths, rounds=1, iterations=1)
    rows = [[name, f"{r['reference_s'] * 1e3:.2f}ms",
             f"{r['vectorized_s'] * 1e3:.2f}ms", f"{r['speedup']:.2f}x",
             f"{r['max_abs_diff']:.2e}"]
            for name, r in result["kernels"].items()]
    print_table(
        "Kernel hot paths — reference vs vectorized "
        "(median wall clock, scenario-sized inputs)",
        ["Kernel", "Reference", "Vectorized", "Speedup", "Max |diff|"],
        rows)
    save_result("bench_kernel_hotpaths", result)

    for name, r in result["kernels"].items():
        assert r["max_abs_diff"] < 1e-6, name
    # The vectorization must stay a clear win somewhere; individual
    # kernels may jitter on loaded CI hosts, the best one must not.
    assert max(r["speedup"] for r in result["kernels"].values()) >= 1.5
