"""Runtime scaling — wall-clock speedup of parallel federated rounds.

Starts the BENCH trajectory on *wall time*, not just shapes: one
federated round dispatched through ``repro.runtime.WorkerPool`` at 1, 2,
and 4 workers, with the hard constraint that every worker count yields
**bit-identical** global weights.

Wall-clock realism: in deployment a round's server-side latency is
bounded by its slowest clients (device compute + uplink), not by the
simulator's Python arithmetic.  Each :class:`FLClient` therefore carries
``emulated_round_s`` — the wall time its :class:`HardwareProfile`
predicts for the round (MACs at the device's throughput plus the model
payload over a tier-grade uplink) — and ``local_train`` blocks until
that much real time has elapsed.  Serial dispatch pays the *sum* of
client walls; a pool pays roughly the *max* per wave of workers.  The
recorded speedup is real measured wall clock on any host, including
single-core CI runners, and the numerical results are untouched by the
emulation.
"""

import os
import time

import numpy as np

from repro.federated import FLClient, FLServer, make_fleet, model_macs_per_sample
from repro.runtime import WorkerPool
from repro.sim import make_synthetic_cifar, shard_dirichlet

from bench_utils import print_table, save_result

N_CLIENTS = 12
ROUNDS = 2
HIDDEN = 32
WORKER_COUNTS = (1, 2, 4)

# Uplink grade by device tier (MB/s): small devices sit on slow links.
UPLINK_MB_S = {"server": 100.0, "workstation": 40.0, "jetson": 8.0,
               "phone": 4.0, "mcu": 1.0}


def _emulated_round_s(profile, n_samples: int, input_dim: int,
                      n_classes: int, epochs: int = 1) -> float:
    """Device compute + payload transfer wall time for one round."""
    macs = 3 * model_macs_per_sample(input_dim, HIDDEN, n_classes) \
        * n_samples * epochs
    compute_s = profile.inference_latency_ms(macs) / 1e3
    n_params = (input_dim * HIDDEN + HIDDEN
                + HIDDEN * n_classes + n_classes)
    transfer_s = 2 * n_params * 4 / (UPLINK_MB_S[profile.name] * 1e6)
    # Clamp so one straggler cannot make the bench minutes long, with a
    # floor covering per-round protocol overhead (connection + handshake)
    # that even the fastest tier pays.
    return float(np.clip(compute_s + transfer_s, 0.03, 0.12))


def _make_server(seed: int = 0) -> FLServer:
    ds = make_synthetic_cifar(n_per_class=30, seed=seed)
    train, test = ds.split(0.25, np.random.default_rng(seed + 1))
    shards = shard_dirichlet(train, N_CLIENTS, alpha=0.7,
                             rng=np.random.default_rng(seed + 2))
    fleet = make_fleet(N_CLIENTS, rng=np.random.default_rng(seed + 3))
    clients = [
        FLClient(i, shard, profile,
                 rng=np.random.default_rng(seed + 100 + i),
                 emulated_round_s=_emulated_round_s(
                     profile, len(shard), train.dim, train.n_classes))
        for i, (shard, profile) in enumerate(zip(shards, fleet))]
    return FLServer(clients, test, hidden=HIDDEN, mode="dcnas+halo",
                    rng=np.random.default_rng(seed + 4))


def run_scaling(seed: int = 0) -> dict:
    runs = {}
    for workers in WORKER_COUNTS:
        server = _make_server(seed)
        t0 = time.perf_counter()
        with WorkerPool(workers) as pool:
            server.run(ROUNDS, pool=pool)
        wall_s = time.perf_counter() - t0
        runs[workers] = {
            "wall_s": round(wall_s, 4),
            "weights": server.global_weights,
            "accuracy": server.history[-1].test_accuracy,
        }
    serial_wall = runs[1]["wall_s"]
    emulated = [c.emulated_round_s for c in _make_server(seed).clients]
    return {
        "n_clients": N_CLIENTS,
        "rounds": ROUNDS,
        "mode": "dcnas+halo",
        "host_cpus": os.cpu_count(),
        "emulated_client_wall_s": {
            "min": round(min(emulated), 4),
            "max": round(max(emulated), 4),
            "sum_per_round": round(sum(emulated), 4),
        },
        "by_workers": {
            str(w): {
                "wall_s": runs[w]["wall_s"],
                "speedup": round(serial_wall / runs[w]["wall_s"], 2),
                "accuracy": round(runs[w]["accuracy"], 4),
                "bit_identical_to_serial": bool(all(
                    np.array_equal(a, b)
                    for a, b in zip(runs[1]["weights"], runs[w]["weights"]))),
            }
            for w in WORKER_COUNTS
        },
    }


def test_runtime_scaling(benchmark):
    result = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    rows = [[w, f"{r['wall_s']:.2f}s", f"{r['speedup']:.2f}x",
             f"{r['accuracy']:.3f}", r["bit_identical_to_serial"]]
            for w, r in result["by_workers"].items()]
    print_table(
        "Runtime scaling — parallel federated round "
        "(WorkerPool overlaps per-client device+uplink wall time; "
        "results must not change)",
        ["Workers", "Wall", "Speedup", "Accuracy", "Bit-identical"],
        rows)
    save_result("bench_runtime_scaling", result)

    for r in result["by_workers"].values():
        assert r["bit_identical_to_serial"]
    assert result["by_workers"]["4"]["speedup"] >= 1.5
    assert result["by_workers"]["2"]["speedup"] >= 1.1
