"""Sec. V — LoRA on-device adaptation of the STARNet VAE.

"Low-Rank Adaptation (LoRA) enables efficient on-device fine-tuning by
constraining updates to a low-dimensional subspace while preserving core
model weights for fast adaptation."

Scenario: the nominal feature distribution drifts (a new operating
regime — weather season, sensor aging).  An unadapted monitor starts
flagging the *new normal* as anomalous (false positives); LoRA adapts the
VAE to the drifted distribution updating only a small fraction of the
weights, restoring the false-positive rate while true anomalies stay
detectable.
"""

import numpy as np

from repro.nn import VAE, train_vae
from repro.starnet import LoRAFineTuner
from repro.starnet.likelihood_regret import reconstruction_error_score

from bench_utils import print_table, save_result


def _score_quantile_threshold(vae, data, q=0.95):
    scores = [reconstruction_error_score(vae, x) for x in data]
    return float(np.quantile(scores, q))


def _fpr(vae, data, threshold):
    scores = [reconstruction_error_score(vae, x) for x in data]
    return float(np.mean(np.asarray(scores) > threshold))


def run_lora(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    dim = 12
    base = rng.normal(size=(400, dim)) * 0.5
    vae = VAE(input_dim=dim, latent_dim=4, rng=np.random.default_rng(seed + 1))
    train_vae(vae, base[:300], epochs=35, rng=np.random.default_rng(seed + 2))
    threshold = _score_quantile_threshold(vae, base[300:])

    # A regime shift: the nominal distribution translates and rescales.
    shift = rng.normal(size=dim) * 1.2
    drifted = base * 0.8 + shift
    anomalies = drifted + rng.normal(size=drifted.shape) * 4.0

    fpr_before = _fpr(vae, drifted[300:], threshold)
    tpr_before = _fpr(vae, anomalies[300:], threshold)

    tuner = LoRAFineTuner(vae, rank=4, rng=np.random.default_rng(seed + 3))
    tuner.adapt(drifted[:300], steps=200,
                rng=np.random.default_rng(seed + 4))
    # Recalibrate the operating threshold on (a slice of) the new normal.
    threshold_after = _score_quantile_threshold(vae, drifted[:300])
    fpr_after = _fpr(vae, drifted[300:], threshold_after)
    tpr_after = _fpr(vae, anomalies[300:], threshold_after)

    return {
        "trainable_fraction": tuner.trainable_fraction,
        "before": {"fpr_on_new_normal": fpr_before,
                   "tpr_on_anomalies": tpr_before},
        "after": {"fpr_on_new_normal": fpr_after,
                  "tpr_on_anomalies": tpr_after},
    }


def test_lora_adaptation(benchmark):
    result = benchmark.pedantic(run_lora, rounds=1, iterations=1)
    b, a = result["before"], result["after"]
    print_table(
        "LoRA on-device adaptation after distribution drift "
        f"(rank-4 factors = {100 * result['trainable_fraction']:.1f}% of "
        "weights updated)",
        ["Monitor", "FPR on new normal", "TPR on true anomalies"],
        [["unadapted", f"{b['fpr_on_new_normal']:.2f}",
          f"{b['tpr_on_anomalies']:.2f}"],
         ["LoRA-adapted", f"{a['fpr_on_new_normal']:.2f}",
          f"{a['tpr_on_anomalies']:.2f}"]])
    save_result("lora_adaptation", result)

    # Drift makes the unadapted monitor useless (everything anomalous).
    assert b["fpr_on_new_normal"] > 0.5
    # LoRA restores a sane operating point ...
    assert a["fpr_on_new_normal"] < 0.2
    # ... while true anomalies remain detectable.
    assert a["tpr_on_anomalies"] > 0.6
    # And only a fraction of the parameters moved.
    assert result["trainable_fraction"] < 0.8
