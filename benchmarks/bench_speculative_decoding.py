"""Sec. VII — edge-cloud speculative decoding speedup.

"Speculative decoding accelerates autoregressive tasks ... the edge
handles low-latency predictions, while the cloud refines" — a small
draft model proposes blocks of tokens, the large target model verifies
them in one call.  The benchmark sweeps the draft block size k and
reports acceptance rate and wall-clock-dominant speedup (tokens per
target-model call), with output-distribution correctness guaranteed by
the residual-resampling rule.
"""

import numpy as np

from repro.federated import NGramLM, speculative_decode

from bench_utils import print_table, save_result

KS = (1, 2, 4, 8)


def _corpus(n=6000, vocab=12, seed=0):
    rng = np.random.default_rng(seed)
    tokens = [0]
    for _ in range(n - 1):
        if rng.random() < 0.8:
            tokens.append((tokens[-1] + 1) % vocab)
        else:
            tokens.append(int(rng.integers(vocab)))
    return tokens


def run_speculative(seed: int = 0) -> dict:
    tokens = _corpus(seed=seed)
    target = NGramLM(12, order=3).fit(tokens)
    draft = NGramLM(12, order=1).fit(tokens)
    results = {}
    for k in KS:
        stats = speculative_decode(target, draft, tokens[:3], 300, k=k,
                                   rng=np.random.default_rng(seed + k))
        results[k] = {
            "acceptance_rate": stats.acceptance_rate,
            "tokens_per_target_call": stats.tokens_per_target_call,
            "speedup": stats.speedup_vs_autoregressive(),
        }
    return results


def test_speculative_decoding(benchmark):
    result = benchmark.pedantic(run_speculative, rounds=1, iterations=1)
    print_table(
        "Edge-cloud speculative decoding — speedup vs draft block size k "
        "(baseline: 1 target call per token)",
        ["k", "Acceptance", "Tokens / target call", "Speedup"],
        [[k, f"{e['acceptance_rate']:.2f}",
          f"{e['tokens_per_target_call']:.2f}", f"{e['speedup']:.2f}x"]
         for k, e in result.items()])
    save_result("speculative_decoding", result)

    # k = 1 degenerates toward autoregressive; larger blocks amortize the
    # expensive model (until acceptance limits returns).
    assert result[4]["speedup"] > 1.5
    assert result[4]["speedup"] > result[1]["speedup"]
    for entry in result.values():
        assert 0.0 < entry["acceptance_rate"] <= 1.0
