"""Fig. 9 — optical-flow AEE and energy across neuromorphic families.

Left panel (paper): AEE of EvFlowNet (EvF), Spike-FlowNet (SpF), and
Fusion-FlowNet (FF) on MVSEC; SpF outperforms EvF with 1.21x lower
energy; FF achieves 40% lower error with ~half the parameters and 1.87x
lower energy.  Right panel: Adaptive-SpikeNet vs full-ANN AEE as model
size shrinks — the SNN with learnable dynamics degrades far less (and
the paper quotes 48x fewer params / 10x less energy at iso-accuracy).

On our simulated DVS substrate the strongly reproducible part is the
energy story (spike sparsity is measured, op costs are analytic); AEE
orderings are reported and asserted loosely (every model must beat the
zero-flow baseline; spiking families must deliver large energy savings).
"""

import numpy as np

from repro.neuromorphic import FLOW_MODEL_FAMILIES, build_flow_model, evaluate_aee, train_flow_model
from repro.sim import make_flow_dataset
from repro.sim.events import EventCameraConfig

from bench_utils import print_table, save_result

CFG = EventCameraConfig(n_substeps=6, noise_events_per_pixel=0.02)
CHANNEL_SWEEP = (3, 8)


def run_fig9(seed: int = 0) -> dict:
    train = make_flow_dataset(50, seed=seed, config=CFG,
                              max_displacement=2.5)
    test = make_flow_dataset(14, seed=seed + 1, config=CFG,
                             max_displacement=2.5)
    zero_aee = float(np.mean([
        np.sqrt((s.flow ** 2).sum(axis=0))[s.has_event_mask].mean()
        for s in test]))

    left = {}
    for name in sorted(FLOW_MODEL_FAMILIES):
        model = build_flow_model(name, channels=8,
                                 rng=np.random.default_rng(seed + 2))
        train_flow_model(model, train, epochs=40,
                         rng=np.random.default_rng(seed + 3))
        left[name] = {
            "aee": evaluate_aee(model, test),
            "params": model.num_parameters(),
            "energy_nj": float(np.mean(
                [model.inference_energy_pj(s) for s in test])) / 1e3,
        }

    right = {}
    for name in ("evflownet", "adaptive_spikenet"):
        right[name] = {}
        for ch in CHANNEL_SWEEP:
            model = build_flow_model(name, channels=ch,
                                     rng=np.random.default_rng(seed + 4))
            train_flow_model(model, train, epochs=40,
                             rng=np.random.default_rng(seed + 5))
            right[name][ch] = {
                "aee": evaluate_aee(model, test),
                "params": model.num_parameters(),
            }
    return {"zero_aee": zero_aee, "left": left, "right": right}


def test_fig9_optical_flow(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    left = result["left"]
    print_table(
        f"Fig. 9 (left) — AEE / params / energy per family "
        f"(zero-flow baseline AEE = {result['zero_aee']:.2f}; paper: "
        "hybrids cut energy 1.2-1.9x, full SNN ~10x)",
        ["Model", "AEE", "Params", "Energy (nJ)",
         "Energy vs ANN"],
        [[name, f"{e['aee']:.3f}", e["params"], f"{e['energy_nj']:.1f}",
          f"{left['evflownet']['energy_nj'] / e['energy_nj']:.2f}x"]
         for name, e in left.items()])
    rows = []
    for name, sweep in result["right"].items():
        for ch, entry in sweep.items():
            rows.append([name, ch, entry["params"], f"{entry['aee']:.3f}"])
    print_table(
        "Fig. 9 (right) — AEE vs model size, Adaptive-SpikeNet vs ANN",
        ["Model", "Channels", "Params", "AEE"], rows)
    save_result("fig9_optical_flow", result)

    zero = result["zero_aee"]
    for name, entry in left.items():
        assert entry["aee"] < zero, (name, entry["aee"], zero)
    # Energy story: hybrid cheaper than ANN, full SNN much cheaper.
    e_ann = left["evflownet"]["energy_nj"]
    assert left["spikeflownet"]["energy_nj"] < e_ann / 1.2
    assert left["adaptive_spikenet"]["energy_nj"] < e_ann / 10
    # Adaptive-SpikeNet: fewer (or equal) params than the ANN at the
    # same width, and it degrades gracefully when shrunk.
    asn = result["right"]["adaptive_spikenet"]
    small, big = asn[CHANNEL_SWEEP[0]], asn[CHANNEL_SWEEP[-1]]
    assert small["aee"] < zero
    assert small["params"] < big["params"]
