"""Thesis benchmark — end-to-end co-design vs modular optimization.

The paper's core argument: "end-to-end approaches can leverage
cross-layer interdependencies, unlocking unprecedented gains in
throughput, precision, and resource allocation" over "modular
optimizations that only address individual components in isolation."

This bench sweeps the power budget and compares the jointly-optimized
loop design (coverage x model x precision x rate) against per-knob
optimization, reporting the utility gap and the cross-layer trades the
joint optimum makes.
"""

import numpy as np

from repro.core import LoopPlant, end_to_end_codesign, modular_codesign, pareto_front

from bench_utils import print_table, save_result

BUDGETS_MW = (2000, 4000, 8000, 15000, 30000)


def run_codesign() -> dict:
    plant = LoopPlant()
    sweep = {}
    for budget in BUDGETS_MW:
        e2e_design, e2e_u = end_to_end_codesign(plant, budget)
        mod_design, mod_u = modular_codesign(plant, budget)
        sweep[budget] = {
            "e2e_utility": e2e_u,
            "modular_utility": mod_u,
            "e2e_design": (f"{e2e_design.coverage}/{e2e_design.model}/"
                           f"{e2e_design.precision_bits}b/"
                           f"{e2e_design.rate_hz}Hz"
                           if e2e_design else "infeasible"),
            "gain_pct": (100 * (e2e_u / mod_u - 1.0) if mod_u > 0
                         else float("inf")),
        }
    front = pareto_front(plant)
    return {"sweep": sweep, "pareto_points": len(front)}


def test_codesign_thesis(benchmark):
    result = benchmark.pedantic(run_codesign, rounds=1, iterations=1)
    sweep = result["sweep"]
    print_table(
        "Thesis — end-to-end co-design vs modular optimization "
        "(loop utility under a power budget)",
        ["Budget (mW)", "E2E utility", "Modular utility", "Gain",
         "E2E design (cov/model/bits/rate)"],
        [[b, f"{e['e2e_utility']:.3f}", f"{e['modular_utility']:.3f}",
          (f"{e['gain_pct']:.0f}%" if np.isfinite(e["gain_pct"]) else "inf"),
          e["e2e_design"]]
         for b, e in sweep.items()])
    save_result("codesign_thesis", result)

    # Joint search dominates everywhere and strictly wins when
    # constrained; with a loose budget both find the corner design.
    for entry in sweep.values():
        assert entry["e2e_utility"] >= entry["modular_utility"] - 1e-12
    constrained_gains = [e["gain_pct"] for b, e in sweep.items()
                         if b <= 8000 and np.isfinite(e["gain_pct"])]
    assert max(constrained_gains) > 8.0
    assert result["pareto_points"] >= 3
