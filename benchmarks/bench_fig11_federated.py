"""Fig. 11 — DC-NAS and HaLo-FL resource reductions on CIFAR-10(-like).

The paper's bar chart shows relative reductions in energy, latency, and
area from adaptive model optimization while maintaining accuracy.  We run
four federated configurations over an identical heterogeneous fleet and
non-IID shards: static FedAvg (baseline), DC-NAS (per-client channel
pruning), HaLo-FL (per-client precision selection), and their
composition.
"""

import numpy as np

from repro.federated import MODES, FLClient, FLServer, make_fleet
from repro.sim import make_synthetic_cifar, shard_dirichlet

from bench_utils import print_table, save_result

N_CLIENTS = 8
ROUNDS = 10


def run_fig11(seed: int = 0) -> dict:
    ds = make_synthetic_cifar(n_per_class=50, seed=seed)
    train, test = ds.split(0.25, np.random.default_rng(seed + 1))
    shards = shard_dirichlet(train, N_CLIENTS, alpha=0.7,
                             rng=np.random.default_rng(seed + 2))
    fleet = make_fleet(N_CLIENTS, rng=np.random.default_rng(seed + 3))

    results = {}
    for mode in MODES:
        clients = [FLClient(i, s, p,
                            rng=np.random.default_rng(seed + 100 + i))
                   for i, (s, p) in enumerate(zip(shards, fleet))]
        server = FLServer(clients, test, hidden=32, mode=mode,
                          rng=np.random.default_rng(seed + 4))
        server.run(ROUNDS)
        results[mode] = server.totals()
    return results


def test_fig11_federated(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    base = result["fedavg"]
    rows = []
    for mode in MODES:
        t = result[mode]
        rows.append([
            mode, f"{t['final_accuracy']:.3f}",
            f"{base['energy_mj'] / t['energy_mj']:.2f}x",
            f"{base['latency_ms'] / t['latency_ms']:.2f}x",
            f"{base['area_um2'] / t['area_um2']:.2f}x",
        ])
    print_table(
        "Fig. 11 — relative reductions vs static FedAvg "
        "(paper: adaptive optimization cuts energy/latency/area while "
        "maintaining accuracy)",
        ["Mode", "Accuracy", "Energy red.", "Latency red.", "Area red."],
        rows)
    save_result("fig11_federated", result)

    for mode in ("dcnas", "halo", "dcnas+halo"):
        t = result[mode]
        # Accuracy maintained within a few points of the baseline.
        assert t["final_accuracy"] > base["final_accuracy"] - 0.1, mode
    # Each adaptation cuts at least one resource; the composition cuts
    # every resource.
    assert result["dcnas"]["energy_mj"] < base["energy_mj"]
    assert result["dcnas"]["latency_ms"] < base["latency_ms"]
    assert result["halo"]["energy_mj"] < base["energy_mj"] / 3
    assert result["halo"]["area_um2"] < base["area_um2"] / 3
    combo = result["dcnas+halo"]
    assert combo["energy_mj"] <= result["halo"]["energy_mj"] + 1e-9
    assert combo["latency_ms"] < base["latency_ms"]
    assert combo["area_um2"] < base["area_um2"]
