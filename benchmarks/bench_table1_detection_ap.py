"""Table I — Average Precision of R-MAE vs pretraining baselines.

Paper (KITTI val, moderate): R-MAE improves over scratch training and the
OccMAE / ALSO pretraining baselines, with the largest gains on Pedestrian
and Cyclist (e.g. +2.41 / +3.26 AP over SECOND) and parity-or-better on
Car.  We regenerate the protocol — self-supervised pretraining on
unlabeled scans, fine-tuning on a *scarce* labeled set, AP evaluation per
class — for both backbone analogues, averaged over seeds.

Absolute APs are far below KITTI numbers (a compact numpy detector on
procedural scenes); the assertion is the paper's qualitative shape:
R-MAE pretraining is parity-or-better vs training from scratch, and
pretraining as a family helps.
"""

import numpy as np

from repro.detect import DetectionExperimentConfig, make_detection_data, run_detection_experiment
from repro.sim.scenes import CLASS_NAMES

from bench_utils import print_table, save_result

METHODS = ("scratch", "occmae", "also", "rmae")
BACKBONES = ("second_lite", "pvrcnn_lite")
SEEDS = (0, 1, 2)


def run_table1() -> dict:
    results = {bb: {m: {c: [] for c in CLASS_NAMES} for m in METHODS}
               for bb in BACKBONES}
    for seed in SEEDS:
        cfg = DetectionExperimentConfig(
            n_pretrain_scenes=24, n_train_scenes=5, n_eval_scenes=16,
            pretrain_epochs=8, finetune_epochs=15, seed=seed)
        data = make_detection_data(cfg)
        for backbone in BACKBONES:
            for method in METHODS:
                ap = run_detection_experiment(method, backbone=backbone,
                                              config=cfg, data=data)
                for cls, value in ap.items():
                    results[backbone][method][cls].append(value)
    # Mean over seeds.
    return {
        bb: {m: {c: float(np.mean(v)) for c, v in per_cls.items()}
             for m, per_cls in per_method.items()}
        for bb, per_method in results.items()
    }


def _mean_ap(per_cls: dict) -> float:
    return float(np.mean(list(per_cls.values())))


def test_table1_detection_ap(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = []
    for backbone in BACKBONES:
        for method in METHODS:
            per_cls = result[backbone][method]
            rows.append([backbone, method,
                         *(f"{per_cls[c]:.1f}" for c in CLASS_NAMES),
                         f"{_mean_ap(per_cls):.2f}"])
    print_table(
        "Table I — AP (%) by pretraining method, mean over "
        f"{len(SEEDS)} seeds (paper: R-MAE parity-or-better on Car, "
        "largest gains on Pedestrian/Cyclist)",
        ["Backbone", "Method", *CLASS_NAMES, "Mean"], rows)
    save_result("table1_detection_ap", result)

    for backbone in BACKBONES:
        scratch = _mean_ap(result[backbone]["scratch"])
        rmae = _mean_ap(result[backbone]["rmae"])
        best_pretrained = max(
            _mean_ap(result[backbone][m]) for m in ("occmae", "also", "rmae"))
        # R-MAE is parity-or-better vs scratch (within seed noise).
        assert rmae >= scratch - 2.5, (backbone, rmae, scratch)
        # Self-supervised pretraining as a family helps this backbone.
        assert best_pretrained >= scratch - 0.5, (backbone, best_pretrained,
                                                  scratch)
    # Across everything, R-MAE is the best or near-best method on mean AP.
    overall = {m: float(np.mean([_mean_ap(result[bb][m])
                                 for bb in BACKBONES])) for m in METHODS}
    assert overall["rmae"] >= max(overall.values()) - 2.0
