"""Ablation — OOD scoring rule inside STARNet (Sec. V).

Compares the SPSA-approximated likelihood regret against exact-gradient
regret (the fidelity reference) and plain reconstruction error (the
cheap baseline), on the same monitor / corruption protocol, reporting
AUC and the per-score compute (objective evaluations).
"""

import numpy as np

from repro.starnet import AUCExperimentConfig, run_auc_experiment

from bench_utils import print_table, save_result

METHODS = ("spsa", "exact", "recon")
CORRUPTIONS = ("snow", "fog", "beam_missing", "crosstalk", "cross_sensor")
SPSA_STEPS = 25


def run_ablation(seed: int = 0) -> dict:
    results = {}
    for method in METHODS:
        config = AUCExperimentConfig(
            n_fit_scans=24, n_test_scans=12, severity=0.45,
            corruptions=CORRUPTIONS, score_method=method,
            spsa_steps=SPSA_STEPS, vae_epochs=35, seed=seed)
        results[method] = run_auc_experiment(config)
    return results


def _cost(method: str) -> str:
    """Decoder evaluations per score (the edge-compute axis)."""
    if method == "spsa":
        return f"{3 * SPSA_STEPS + 1} fwd"     # 3 evals/step + base
    if method == "exact":
        return "50 fwd + 50 bwd"
    return "1 fwd"


def test_ablation_starnet_scores(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for method in METHODS:
        aucs = result[method]
        rows.append([method,
                     *(f"{aucs[c]:.3f}" for c in CORRUPTIONS),
                     f"{np.mean(list(aucs.values())):.3f}",
                     _cost(method)])
    print_table(
        "Ablation — STARNet OOD score: SPSA regret vs exact regret vs "
        "reconstruction error",
        ["Score", *CORRUPTIONS, "Mean AUC", "Compute/score"], rows)
    save_result("ablation_starnet_scores", result)

    mean = {m: float(np.mean(list(result[m].values()))) for m in METHODS}
    # SPSA approximates the exact regret closely (the paper's point:
    # gradient-free costs little accuracy) ...
    assert mean["spsa"] >= mean["exact"] - 0.05
    # ... and every method clears the detectability bar on this suite.
    assert min(mean.values()) > 0.8
