"""Conclusion claim — multi-agent loops "achieve a threefold reduction in
energy consumption" through distributed collaboration.

Identical event-coverage worlds are patrolled by an uncoordinated swarm
(every agent senses at solo-coverage radius) and a coordinated one
(partitioned responsibility, minimal radii).  Compared at matched
detection rates.
"""

import numpy as np

from repro.multiagent import compare_swarm_strategies
from repro.sim import GridWorldConfig

from bench_utils import print_table, save_result

SEEDS = (0, 1, 2, 3)


def run_swarm() -> dict:
    per_seed = []
    for seed in SEEDS:
        res = compare_swarm_strategies(
            GridWorldConfig(size=12, n_agents=4), steps=50, seed=seed)
        per_seed.append(res)
    def agg(strategy, attr):
        return float(np.mean([getattr(r[strategy], attr)
                              for r in per_seed]))
    return {
        strategy: {
            "detection_rate": agg(strategy, "detection_rate"),
            "energy_mj": agg(strategy, "total_energy_mj"),
            "redundancy": agg(strategy, "mean_redundancy"),
        }
        for strategy in ("uncoordinated", "coordinated")
    }


def test_claim_multiagent_energy(benchmark):
    result = benchmark.pedantic(run_swarm, rounds=1, iterations=1)
    un, co = result["uncoordinated"], result["coordinated"]
    ratio = un["energy_mj"] / co["energy_mj"]
    print_table(
        "Conclusion claim — swarm sensing energy, coordinated vs not "
        "(paper: ~3x reduction)",
        ["Strategy", "Detection rate", "Energy (mJ)", "Redundancy"],
        [["uncoordinated", f"{un['detection_rate']:.2f}",
          f"{un['energy_mj']:.0f}", f"{un['redundancy']:.2f}"],
         ["coordinated", f"{co['detection_rate']:.2f}",
          f"{co['energy_mj']:.0f}", f"{co['redundancy']:.2f}"],
         ["ratio", "-", f"{ratio:.2f}x", "-"]])
    save_result("claim_multiagent_energy", result)

    # Matched task performance, ~3x cheaper sensing.
    assert abs(un["detection_rate"] - co["detection_rate"]) < 0.15
    assert ratio > 2.5
    assert co["redundancy"] < un["redundancy"]
