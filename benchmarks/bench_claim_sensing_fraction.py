"""Conclusion claim — "only 8% of the environment needs to be actively
sensed, significantly reducing sensing overhead."

Sweep the sensed fraction (via the radial mask's segment keep fraction)
and measure reconstruction quality of the *unsensed* scene.  The claim's
shape: reconstruction IoU saturates well before full coverage, so a
sub-15% sensed fraction retains most of the achievable fidelity.
"""

import numpy as np

from repro.generative import RMAE, pretrain_rmae, reconstruction_iou
from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.voxel import RadialMaskConfig, VoxelGridConfig, radial_mask, voxelize

from bench_utils import print_table, save_result

GRID = VoxelGridConfig(nx=16, ny=16, nz=2)
LIDAR = LidarConfig(n_azimuth=48, n_elevation=8)
KEEP_FRACTIONS = (0.10, 0.25, 0.5, 1.0)


def run_sweep(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    scanner = LidarScanner(LIDAR, rng=rng)
    clouds = []
    for _ in range(14):
        scan = scanner.scan(sample_scene(rng))
        clouds.append(voxelize(scan.points, scan.labels, GRID))
    train, test = clouds[:10], clouds[10:]

    model = RMAE(GRID, rng=np.random.default_rng(seed + 1))
    pretrain_rmae(model, train, RadialMaskConfig(), epochs=12,
                  rng=np.random.default_rng(seed + 2))

    results = {}
    for keep_fraction in KEEP_FRACTIONS:
        cfg = RadialMaskConfig(segment_keep_fraction=keep_fraction,
                               reference_range_m=1e6)  # angular-only sweep
        fracs, ious = [], []
        for cloud in test:
            for mask_seed in range(4):
                keep, _ = radial_mask(cloud, cfg,
                                      np.random.default_rng(mask_seed))
                masked = cloud.masked(keep)
                if masked.num_occupied == 0:
                    continue
                fracs.append(masked.num_occupied / cloud.num_occupied)
                recon = model.reconstruct_occupancy(masked)
                ious.append(reconstruction_iou(recon,
                                               cloud.occupancy_dense()))
        results[keep_fraction] = {
            "sensed_fraction": float(np.mean(fracs)),
            "reconstruction_iou": float(np.mean(ious)),
        }
    return results


def test_claim_sensing_fraction(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    full_iou = result[1.0]["reconstruction_iou"]
    print_table(
        "Conclusion claim — reconstruction fidelity vs sensed fraction "
        "(paper: ~8% active sensing suffices)",
        ["Segment keep", "Sensed fraction", "Recon IoU", "% of full-scan IoU"],
        [[f, f"{e['sensed_fraction']:.2f}",
          f"{e['reconstruction_iou']:.3f}",
          f"{100 * e['reconstruction_iou'] / full_iou:.0f}%"]
         for f, e in result.items()])
    save_result("claim_sensing_fraction", result)

    # IoU is monotone-ish in coverage but the low-coverage point already
    # retains the majority of full-scan fidelity.
    low = result[KEEP_FRACTIONS[0]]
    assert low["sensed_fraction"] < 0.2
    assert low["reconstruction_iou"] > 0.5 * full_iou
    assert result[0.25]["reconstruction_iou"] > 0.65 * full_iou
