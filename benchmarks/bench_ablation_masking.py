"""Ablation — masking strategy for generative sensing (Sec. III).

Compares the R-MAE two-stage radial mask against its ablated variants at
a matched sensed fraction: angular-only (stage 1 without range
thinning), and uniform random voxel dropout (the OccMAE-style mask).
Two questions: which pretext yields the best reconstructions, and —
separately — which *deployment* mask costs the least sensing energy,
since only the range-aware mask avoids the R^4-expensive far pulses.
"""

import numpy as np

from repro.generative import RMAE, pretrain_rmae, reconstruction_iou
from repro.hardware import LidarPowerModel
from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.voxel import (
    RadialMaskConfig,
    VoxelGridConfig,
    angular_only_mask,
    radial_mask,
    uniform_mask,
    voxelize,
)

from bench_utils import print_table, save_result

GRID = VoxelGridConfig(nx=16, ny=16, nz=2)
LIDAR = LidarConfig(n_azimuth=48, n_elevation=8)


def run_ablation(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    scanner = LidarScanner(LIDAR, rng=rng)
    clouds, scans = [], []
    for _ in range(14):
        scan = scanner.scan(sample_scene(rng))
        scans.append(scan)
        clouds.append(voxelize(scan.points, scan.labels, GRID))
    train, test = clouds[:10], clouds[10:]

    model = RMAE(GRID, rng=np.random.default_rng(seed + 1))
    pretrain_rmae(model, train, RadialMaskConfig(), epochs=12,
                  rng=np.random.default_rng(seed + 2))

    radial_cfg = RadialMaskConfig()
    # Calibrate a matched uniform fraction from the radial mask itself.
    probe_keep, _ = radial_mask(test[0], radial_cfg,
                                np.random.default_rng(seed + 3))
    matched_fraction = float(np.mean(list(probe_keep.values())))
    angular_cfg = RadialMaskConfig(
        segment_keep_fraction=matched_fraction)

    def masker(name):
        def apply(cloud, mask_rng):
            if name == "radial":
                keep, _ = radial_mask(cloud, radial_cfg, mask_rng)
            elif name == "angular_only":
                keep = angular_only_mask(cloud, angular_cfg, mask_rng)
            else:
                keep = uniform_mask(cloud, matched_fraction, mask_rng)
            return keep
        return apply

    power = LidarPowerModel()
    results = {}
    for name in ("radial", "angular_only", "uniform"):
        apply = masker(name)
        ious, fractions, energies = [], [], []
        for ci, cloud in enumerate(test):
            scan = scans[10 + ci]
            for mask_seed in range(4):
                keep = apply(cloud,
                             np.random.default_rng(100 * mask_seed + ci))
                masked = cloud.masked(keep)
                if masked.num_occupied == 0:
                    continue
                fractions.append(masked.num_occupied / cloud.num_occupied)
                recon = model.reconstruct_occupancy(masked)
                ious.append(reconstruction_iou(recon,
                                               cloud.occupancy_dense()))
                # Energy of the pulses the mask retains: kept voxels'
                # mean ranges priced by the R^4 budget.
                kept_ranges = [cloud.config.voxel_range(c)
                               for c, k in keep.items() if k]
                energies.append(power.scan_energy_mj(
                    np.asarray(kept_ranges), adaptive=True))
        results[name] = {
            "sensed_fraction": float(np.mean(fractions)),
            "reconstruction_iou": float(np.mean(ious)),
            "sensing_energy_mj": float(np.mean(energies)),
        }
    return results


def test_ablation_masking(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation — masking strategy at matched sensed fraction",
        ["Mask", "Sensed fraction", "Recon IoU", "Sensing energy (mJ)"],
        [[name, f"{e['sensed_fraction']:.2f}",
          f"{e['reconstruction_iou']:.3f}",
          f"{e['sensing_energy_mj']:.3f}"]
         for name, e in result.items()])
    save_result("ablation_masking", result)

    # Fractions actually matched (within slack).
    fracs = [e["sensed_fraction"] for e in result.values()]
    assert max(fracs) - min(fracs) < 0.25
    # The range-aware mask spends the least sensing energy: it
    # preferentially drops the R^4-expensive far pulses.
    assert (result["radial"]["sensing_energy_mj"]
            <= result["angular_only"]["sensing_energy_mj"] + 1e-9)
    assert (result["radial"]["sensing_energy_mj"]
            < result["uniform"]["sensing_energy_mj"])
    # All masks leave enough signal for reconstruction well above the
    # masked-input floor.
    for e in result.values():
        assert e["reconstruction_iou"] > 0.2
