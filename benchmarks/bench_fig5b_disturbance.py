"""Fig. 5b — closed-loop performance under external disturbances.

Cart-pole with F ~ Uniform(a_min, a_max) applied with probability p
during evaluation.  The paper's claim: the (spectral Koopman) model
"maintained high performance even with a disturbance probability of
0.25, demonstrating superior resilience compared to other methods."
"""

import numpy as np

from repro.koopman import (
    build_model,
    collect_transitions,
    evaluate_controller,
    fit_dynamics_model,
    make_controller,
)

from bench_utils import print_table, save_result

MODELS = ("mlp", "dense_koopman", "recurrent", "spectral_koopman")
PS = (0.0, 0.1, 0.25)
FIT_EPOCHS = {"mlp": 25, "dense_koopman": 1, "recurrent": 25,
              "spectral_koopman": 90}


def run_fig5b(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    transitions = collect_transitions(n_episodes=15, rng=rng)
    results = {}
    for name in MODELS:
        model = build_model(name, 4, 1, rng=np.random.default_rng(seed + 1))
        fit_dynamics_model(model, transitions, epochs=FIT_EPOCHS[name],
                           rng=np.random.default_rng(seed + 2))
        controller = make_controller(model, np.random.default_rng(seed + 3))
        results[name] = {
            p: evaluate_controller(controller, p, n_episodes=6, steps=150,
                                   seed=seed + 4, a_min=5.0, a_max=20.0)
            for p in PS
        }
    return results


def test_fig5b_disturbance_robustness(benchmark):
    result = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    print_table(
        "Fig. 5b — mean episode reward vs disturbance probability "
        "(paper: Koopman models retain performance at p = 0.25)",
        ["Model", *(f"p={p}" for p in PS), "Retention @0.25"],
        [[name,
          *(f"{result[name][p]:.1f}" for p in PS),
          f"{result[name][0.25] / max(result[name][0.0], 1e-9):.2f}"]
         for name in MODELS])
    save_result("fig5b_disturbance", result)

    spectral = result["spectral_koopman"]
    # The spectral Koopman controller balances well and keeps most of its
    # performance at p = 0.25.
    assert spectral[0.0] > 100
    assert spectral[0.25] > 0.8 * spectral[0.0]
    # Under the strongest disturbance the Koopman controllers (LQR on a
    # learned linear latent) end up at-or-above every sampled-MPC
    # nonlinear family in absolute reward.  (Retention *ratios* are not
    # meaningful for weak baselines: a controller that barely balances
    # can be "helped" by random kicks.)
    koopman_best = max(result["spectral_koopman"][0.25],
                       result["dense_koopman"][0.25])
    nonlinear_best = max(result["mlp"][0.25], result["recurrent"][0.25])
    assert koopman_best >= nonlinear_best - 5.0
