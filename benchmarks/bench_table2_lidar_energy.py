"""Table II — Conventional LiDAR vs the R-MAE framework.

Paper's column values: coverage 100% vs <10%, pulse energy 50 uJ vs
5.5 uJ, 830 K params / 335 M FLOPs for the model, sensing 72 mJ vs
792 uJ, reconstruction 7.1 mJ, combined ratio 9.11x.  We regenerate every
row from the physical models: the 1440-beam grid, R^4 pulse scaling over
the actually-sensed ranges, and FLOPs-priced reconstruction.
"""

import numpy as np
import pytest

from repro.generative import RMAE, compare_energy, energy_ratio
from repro.sim import LidarConfig, LidarScanner, sample_scene
from repro.voxel import (
    RadialMaskConfig,
    VoxelGridConfig,
    beam_mask_from_segments,
    radial_mask,
    voxelize,
)

from bench_utils import print_table, save_result

# The paper's implied geometry: 1440 pulses x 50 uJ = 72 mJ per scan.
LIDAR = LidarConfig(n_azimuth=72, n_elevation=20)
GRID = VoxelGridConfig(nx=24, ny=24, nz=2)
# Paper-scale model constants (Table II): our compact simulator model is
# smaller, so the paper's reported size is also priced for reference.
PAPER_PARAMS = 830_000
PAPER_FLOPS = 335_000_000


def run_table2(seed: int = 0, n_scenes: int = 5) -> dict:
    rng = np.random.default_rng(seed)
    scanner = LidarScanner(LIDAR, rng=rng)
    mask_cfg = RadialMaskConfig(n_segments=24, segment_keep_fraction=0.25,
                                reference_range_m=10.0)
    model = RMAE(GRID, rng=np.random.default_rng(seed + 1))

    conv_rows, rmae_rows, ratios = [], [], []
    for i in range(n_scenes):
        scene = sample_scene(np.random.default_rng(seed + 10 + i))
        full = scanner.scan(scene)
        cloud = voxelize(full.points, full.labels, GRID)
        _, segments = radial_mask(cloud, mask_cfg,
                                  np.random.default_rng(seed + 20 + i))
        # Stage-2 expected ranges: previous scan's per-beam ranges
        # (max-range for beams with no prior return).
        expected = np.full(LIDAR.n_beams, LIDAR.max_range_m)
        expected[full.beam_ids] = full.ranges
        beam_mask = beam_mask_from_segments(
            segments, LIDAR, mask_cfg, expected_ranges=expected,
            rng=np.random.default_rng(seed + 30 + i))
        masked = scanner.scan(scene, beam_mask)
        reports = compare_energy(full, masked, PAPER_PARAMS, PAPER_FLOPS)
        conv_rows.append(reports["conventional"])
        rmae_rows.append(reports["rmae"])
        ratios.append(energy_ratio(reports))

    def mean(attr, rows):
        return float(np.mean([getattr(r, attr) for r in rows]))

    return {
        "conventional": {
            "coverage_pct": 100 * mean("coverage_fraction", conv_rows),
            "pulse_uj": mean("mean_pulse_energy_uj", conv_rows),
            "sensing_mj": mean("sensing_energy_mj", conv_rows),
            "reconstruction_mj": 0.0,
        },
        "rmae": {
            "coverage_pct": 100 * mean("coverage_fraction", rmae_rows),
            "pulse_uj": mean("mean_pulse_energy_uj", rmae_rows),
            "sensing_mj": mean("sensing_energy_mj", rmae_rows),
            "reconstruction_mj": mean("reconstruction_energy_mj",
                                      rmae_rows),
        },
        "model_parameters": PAPER_PARAMS,
        "model_flops": PAPER_FLOPS,
        "energy_ratio": float(np.mean(ratios)),
        "sim_model_parameters": model.num_parameters(),
        "sim_model_flops": 2 * model.reconstruction_macs(200),
    }


def test_table2_lidar_energy(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    c, r = result["conventional"], result["rmae"]
    print_table(
        "Table II — Conventional vs R-MAE LiDAR energy "
        "(paper: 100%/<10%, 50/5.5 uJ, 72 mJ/792 uJ + 7.1 mJ, 9.11x)",
        ["Metric", "Conventional", "R-MAE"],
        [
            ["Scene coverage (%)", f"{c['coverage_pct']:.0f}",
             f"{r['coverage_pct']:.1f}"],
            ["Energy per pulse (uJ)", f"{c['pulse_uj']:.1f}",
             f"{r['pulse_uj']:.2f}"],
            ["Model parameters", "n/a", result["model_parameters"]],
            ["FLOPs per scan", "n/a", f"{result['model_flops'] / 1e6:.0f}M"],
            ["Sensing energy (mJ)", f"{c['sensing_mj']:.1f}",
             f"{r['sensing_mj']:.3f}"],
            ["Reconstruction (mJ)", "n/a",
             f"{r['reconstruction_mj']:.2f}"],
            ["Combined ratio", "1.0x",
             f"{result['energy_ratio']:.2f}x lower"],
        ])
    save_result("table2_lidar_energy", result)

    # Shape assertions (the paper's qualitative claims).
    assert c["coverage_pct"] == pytest.approx(100.0)
    assert r["coverage_pct"] < 15.0                       # <10-15% active
    assert r["pulse_uj"] < c["pulse_uj"] / 4              # big pulse saving
    assert r["sensing_mj"] < c["sensing_mj"] / 20         # 72 mJ -> ~1 mJ
    assert result["energy_ratio"] > 5.0                   # ~9x combined
