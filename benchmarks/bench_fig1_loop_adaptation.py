"""Fig. 1 / Sec. II concepts — adaptive vs static sensing-to-action loops.

The paper's framing claims: (a) context-aware loops that modulate sensing
coverage by task risk spend far less energy at matched task quality than
always-full-fidelity loops; (b) event-driven (neuromorphic) execution
beats clock-driven execution whenever activity is sparse.  Both are
benchmarked on the loop abstraction directly.
"""

import numpy as np

from repro.core import (
    Action,
    Actuator,
    Environment,
    Percept,
    Perception,
    Policy,
    RiskCoverageAdaptation,
    SensingToActionLoop,
    Sensor,
    SensorReading,
)
from repro.neuromorphic import ann_energy_pj, snn_energy_pj

from bench_utils import print_table, save_result


class PatrolEnv(Environment):
    """A world with rare hazard episodes; risk spikes during them."""

    def __init__(self, seed=0, hazard_prob=0.08, hazard_len=5):
        self.rng = np.random.default_rng(seed)
        self.hazard_prob = hazard_prob
        self.hazard_len = hazard_len
        self.hazard_remaining = 0
        self.missed_hazards = 0
        self.caught_hazards = 0
        self._observed_this_cycle = False

    @property
    def in_hazard(self):
        return self.hazard_remaining > 0

    def observe_state(self):
        return self.in_hazard

    def advance(self, dt):
        if self.hazard_remaining > 0:
            self.hazard_remaining -= 1
            if self.hazard_remaining == 0:
                if self._observed_this_cycle:
                    self.caught_hazards += 1
                else:
                    self.missed_hazards += 1
                self._observed_this_cycle = False
        elif self.rng.random() < self.hazard_prob:
            self.hazard_remaining = self.hazard_len


class CoverageSensor(Sensor):
    """Energy scales with coverage; detection needs coverage >= 0.5 during
    a hazard (low-coverage scanning can miss it)."""

    FULL_ENERGY_MJ = 10.0

    def sense(self, env, directive, t):
        coverage = float(directive.get("coverage", 1.0))
        detected = env.in_hazard and coverage >= 0.5
        if detected:
            env._observed_this_cycle = True
        return SensorReading(data=detected, timestamp=t, coverage=coverage,
                             energy_mj=self.FULL_ENERGY_MJ * coverage)


class HazardPerception(Perception):
    def perceive(self, reading):
        return Percept(features=np.array([float(reading.data)]),
                       estimate=bool(reading.data))


class AdaptivePolicy(Policy):
    """Duty-cycled sensing: cheap idle scans with periodic full-coverage
    probes; any detection pins coverage high until the hazard clears.

    This is the paper's "reduce sampling during stable periods, increase
    during sudden events" pattern made concrete.
    """

    PROBE_PERIOD = 4  # every 4th cycle is a full-fidelity probe

    def __init__(self):
        self.adapt = RiskCoverageAdaptation(min_coverage=0.1, hysteresis=0.0)
        self.cycle = 0
        self.alert = 0

    def act(self, percept, t):
        self.cycle += 1
        if percept.estimate:
            self.alert = 3  # stay attentive for a few cycles
        elif self.alert > 0:
            self.alert -= 1
        probing = (self.cycle % self.PROBE_PERIOD == 0) or self.alert > 0
        risk = 1.0 if probing else 0.0
        return Action(command=None,
                      sensing_directive=self.adapt.directive(risk))


class StaticPolicy(Policy):
    def act(self, percept, t):
        return Action(command=None, sensing_directive={"coverage": 1.0})


class NoopActuator(Actuator):
    def actuate(self, env, action, t):
        return 0.0


def run_loop(policy_cls, seed=0, cycles=300):
    # Hazards are rare (the common case for patrol/monitoring loops) —
    # exactly the regime where always-full-fidelity sensing wastes most.
    env = PatrolEnv(seed=seed, hazard_prob=0.03)
    loop = SensingToActionLoop(CoverageSensor(), HazardPerception(),
                               policy_cls(), NoopActuator())
    metrics = loop.run(env, cycles)
    total_hazards = env.caught_hazards + env.missed_hazards
    return {
        "energy_mj": metrics.energy.sensing_mj,
        "mean_coverage": metrics.mean_coverage,
        "hazard_recall": (env.caught_hazards / total_hazards
                          if total_hazards else 1.0),
    }


def run_fig1() -> dict:
    static = run_loop(StaticPolicy, seed=0)
    adaptive = run_loop(AdaptivePolicy, seed=0)
    # Event-driven vs clock-driven compute at the loop's actual activity.
    macs = 1_000_000
    activity = 0.1
    clocked_pj = ann_energy_pj(macs)
    event_pj = snn_energy_pj(macs, timesteps=1, mean_spike_rate=activity)
    return {"static": static, "adaptive": adaptive,
            "clocked_pj": clocked_pj, "event_pj": event_pj}


def test_fig1_loop_adaptation(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    s, a = result["static"], result["adaptive"]
    print_table(
        "Fig. 1 concept — static vs risk-adaptive sensing loop "
        "(300 cycles, rare hazards)",
        ["Loop", "Sensing energy (mJ)", "Mean coverage", "Hazard recall"],
        [["static full-fidelity", f"{s['energy_mj']:.0f}",
          f"{s['mean_coverage']:.2f}", f"{s['hazard_recall']:.2f}"],
         ["risk-adaptive", f"{a['energy_mj']:.0f}",
          f"{a['mean_coverage']:.2f}", f"{a['hazard_recall']:.2f}"],
         ["energy ratio", f"{s['energy_mj'] / a['energy_mj']:.2f}x", "-",
          "-"]])
    print_table(
        "Fig. 2 concept — clock-driven vs event-driven compute energy "
        "(1M synaptic ops, 10% activity)",
        ["Execution", "Energy (uJ)"],
        [["clock-driven (MAC)", f"{result['clocked_pj'] / 1e6:.2f}"],
         ["event-driven (AC x rate)", f"{result['event_pj'] / 1e6:.3f}"],
         ["ratio", f"{result['clocked_pj'] / result['event_pj']:.0f}x"]])
    save_result("fig1_loop_adaptation", result)

    # Adaptive loop: large energy saving at near-matched hazard recall.
    assert a["energy_mj"] < 0.6 * s["energy_mj"]
    assert a["hazard_recall"] > s["hazard_recall"] - 0.25
    # Event-driven execution wins by ~ 1 / (rate * E_AC / E_MAC).
    assert result["event_pj"] < result["clocked_pj"] / 10
