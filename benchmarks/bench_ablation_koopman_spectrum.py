"""Ablation — spectral parameterization of the Koopman operator (Sec. IV).

Two axes the design section calls out:

* **eigenpair count K** — capacity vs cost of the block-diagonal
  spectrum (prediction error and closed-loop reward vs K);
* **stability enforcement** — parameterizing mu = -softplus(raw)
  guarantees a stable operator but cannot represent open-loop-unstable
  plants; fitted on raw cart-pole transitions the constrained model must
  show higher prediction error (exactly why the encoder, not raw system
  ID, is where the constraint belongs).
"""

import numpy as np

from repro.koopman import (
    SpectralKoopmanDynamics,
    collect_transitions,
    evaluate_controller,
    fit_dynamics_model,
    make_controller,
)

from bench_utils import print_table, save_result

PAIR_COUNTS = (2, 4, 8)


def run_ablation(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    transitions = collect_transitions(n_episodes=15, rng=rng)
    z, u, z_next = transitions
    hold = slice(0, 100)

    sweep = {}
    for n_pairs in PAIR_COUNTS:
        model = SpectralKoopmanDynamics(4, 1, n_pairs=n_pairs,
                                        rng=np.random.default_rng(seed + 1))
        fit_dynamics_model(model, transitions, epochs=90,
                           rng=np.random.default_rng(seed + 2))
        pred = model.predict(z[hold], u[hold])
        err = float(np.mean((pred - z_next[hold]) ** 2))
        reward = evaluate_controller(
            make_controller(model), 0.0, n_episodes=4, steps=150,
            seed=seed + 3)
        sweep[n_pairs] = {"prediction_mse": err, "reward": reward,
                          "prediction_macs": model.prediction_macs()}

    stability = {}
    for enforce in (False, True):
        model = SpectralKoopmanDynamics(
            4, 1, n_pairs=4, enforce_stability=enforce,
            rng=np.random.default_rng(seed + 4))
        fit_dynamics_model(model, transitions, epochs=90,
                           rng=np.random.default_rng(seed + 5))
        pred = model.predict(z[hold], u[hold])
        stability[enforce] = {
            "prediction_mse": float(np.mean((pred - z_next[hold]) ** 2)),
            "stable_spectrum": bool(model.op.is_stable()),
        }
    return {"pairs": sweep, "stability": stability}


def test_ablation_koopman_spectrum(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation — eigenpair count K (spectral Koopman on cart-pole)",
        ["K", "Prediction MSE", "Closed-loop reward", "Prediction MACs"],
        [[k, f"{e['prediction_mse']:.5f}", f"{e['reward']:.1f}",
          e["prediction_macs"]]
         for k, e in result["pairs"].items()])
    print_table(
        "Ablation — stability enforcement (mu = -softplus) on raw "
        "system identification",
        ["Enforced", "Prediction MSE", "Spectrum stable"],
        [[str(k), f"{e['prediction_mse']:.5f}", e["stable_spectrum"]]
         for k, e in result["stability"].items()])
    save_result("ablation_koopman_spectrum", result)

    sweep = result["pairs"]
    # Cost grows with K; some K achieves good control.
    macs = [sweep[k]["prediction_macs"] for k in PAIR_COUNTS]
    assert macs == sorted(macs)
    assert max(e["reward"] for e in sweep.values()) > 100
    # Constrained-stable fit cannot match the unconstrained one on an
    # open-loop-unstable plant.
    stab = result["stability"]
    assert stab[True]["stable_spectrum"] is True
    assert stab[True]["prediction_mse"] >= stab[False]["prediction_mse"]
