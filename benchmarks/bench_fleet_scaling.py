"""Fleet scaling benchmark — sharded multi-process serving vs one
:class:`BatchedService`.

Runs the :mod:`repro.fleet` driver: N closed-loop clients served by a
single-process batched service and by 1/2/4-replica serving fleets over
identical request streams, plus an open-loop tail-latency-vs-load sweep
with a finite staleness budget.  Replica batch runners pad each batch
to an emulated device-latency floor (same single-CPU methodology as
``bench_runtime_scaling.py``), so the throughput curve measures real
scheduling concurrency.  The committed JSON is the scaling evidence;
``check_regressions.py`` gates on per-request equivalence and zero
sheds below saturation (blocking) and on the >=2x throughput multiple
at 4 replicas (non-blocking — wall-clock ratios jitter on loaded
hosts).
"""

from repro.fleet import FleetBenchConfig, run_fleet_benchmark
from repro.fleet.driver import SPEEDUP_TARGET

from bench_utils import print_table, save_result


def run_fleet_scaling() -> dict:
    return run_fleet_benchmark(FleetBenchConfig())


def test_fleet_scaling(benchmark):
    result = benchmark.pedantic(run_fleet_scaling, rounds=1, iterations=1)
    cfg = result["config"]
    single = result["single_process"]
    rows = [["single-process", cfg["requests"],
             f"{single['throughput_rps']:.0f} rps", "1.00x",
             f"{single['p95_ms']:.1f}ms", single["shed"]]]
    for replicas in cfg["replica_counts"]:
        fr = result["fleet"][str(replicas)]
        rows.append([f"fleet x{replicas}", cfg["requests"],
                     f"{fr['throughput_rps']:.0f} rps",
                     f"{fr['speedup']:.2f}x", f"{fr['p95_ms']:.1f}ms",
                     fr["shed"]])
    print_table(
        f"Fleet scaling — {cfg['clients']} clients, batch "
        f"{cfg['max_batch_size']}, device floor "
        f"{cfg['per_batch_ms']:.0f}+{cfg['per_item_ms']:.0f}ms/item",
        ["Mode", "Requests", "Throughput", "Speedup", "p95", "Shed"],
        rows)
    sweep = result["load_sweep"]
    print_table(
        f"Staleness sweep — {sweep['replicas']} replicas, budget "
        f"{cfg['sweep_staleness_budget_ms']:.0f}ms",
        ["Load", "Offered", "Served", "Shed", "p95"],
        [[f"{p['fraction']:.2f}x", f"{p['offered_rps']:.0f} rps",
          f"{p['served_rps']:.0f} rps", p["shed"], f"{p['p95_ms']:.1f}ms"]
         for p in sweep["points"]])
    print(f"speedup@max: {result['speedup_at_max_replicas']:.2f}x  "
          f"equivalence max|diff|: "
          f"{result['equivalence_max_abs_diff']:.2e}  "
          f"sheds below saturation: "
          f"{result['closed_loop_sheds'] + result['sub_saturation_sweep_sheds']}")
    save_result("bench_fleet_scaling", result)

    # Correctness claims are blocking everywhere; the throughput
    # multiple is asserted here (dedicated hosts) and only warned about
    # by the regression gate.
    assert result["equivalence_ok"], result["equivalence_max_abs_diff"]
    assert result["zero_sheds_below_saturation"]
    assert result["overload_sheds_engaged"]
    assert result["speedup_at_max_replicas"] >= SPEEDUP_TARGET, \
        result["speedup_at_max_replicas"]
