"""``repro.hardware`` — analytic energy / latency / area / link-budget models."""

from .energy import (
    DRAM_ENERGY_PJ_PER_BYTE,
    MAC_ENERGY_PJ,
    MEMORY_ENERGY_PJ_PER_BYTE,
    EnergyLedger,
    mac_energy_pj,
    memory_energy_pj,
    model_inference_energy_mj,
)
from .imc import CrossbarModel, compare_architectures, digital_mvm_energy_pj
from .latency import MAC_AREA_UM2, MAC_LATENCY_NS, HardwareProfile, mac_area_um2, mac_latency_ns
from .lidar_power import LidarPowerModel, diffraction_limited_resolution

__all__ = [
    "MAC_ENERGY_PJ", "MEMORY_ENERGY_PJ_PER_BYTE", "DRAM_ENERGY_PJ_PER_BYTE",
    "mac_energy_pj", "memory_energy_pj", "model_inference_energy_mj",
    "EnergyLedger", "MAC_LATENCY_NS", "MAC_AREA_UM2", "mac_latency_ns",
    "mac_area_um2", "HardwareProfile", "LidarPowerModel",
    "diffraction_limited_resolution",
    "CrossbarModel", "digital_mvm_energy_pj", "compare_architectures",
]
