"""Analytic energy models for compute, memory, and sensing.

Table II of the paper is analytic accounting (pulse energy x pulse count,
FLOPs x energy/FLOP), as is Fig. 11's energy axis (MAC energy scaled by
precision).  This module centralizes those models so every subsystem uses
the same constants.

Energy constants follow the widely used 45 nm estimates (Horowitz, ISSCC
2014): a 32-bit float MAC costs ~4.6 pJ, and multiplier energy scales
roughly quadratically with operand width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "MAC_ENERGY_PJ",
    "MEMORY_ENERGY_PJ_PER_BYTE",
    "mac_energy_pj",
    "memory_energy_pj",
    "model_inference_energy_mj",
    "EnergyLedger",
]

# Energy per multiply-accumulate at each operand precision, picojoules.
# 32-bit entry = float32 FMA (3.7 pJ mult + 0.9 pJ add); narrower entries
# follow integer-multiplier scaling (~quadratic in width) plus add energy.
MAC_ENERGY_PJ: Dict[int, float] = {
    32: 4.6,
    16: 1.7,
    8: 0.45,
    4: 0.13,
    2: 0.05,
}

# SRAM access energy per byte (on-chip buffer, 45 nm class).
MEMORY_ENERGY_PJ_PER_BYTE = 2.5
# Off-chip DRAM access energy per byte — ~60x SRAM; used by the data-
# movement accounting of in-memory-computing comparisons.
DRAM_ENERGY_PJ_PER_BYTE = 160.0


def mac_energy_pj(bits: int = 32) -> float:
    """Energy of one MAC at the given operand precision, in pJ."""
    if bits not in MAC_ENERGY_PJ:
        raise ValueError(f"no energy model for {bits}-bit MACs")
    return MAC_ENERGY_PJ[bits]


def memory_energy_pj(num_bytes: float, dram: bool = False) -> float:
    """Energy to move ``num_bytes`` through SRAM (or DRAM), in pJ."""
    per_byte = DRAM_ENERGY_PJ_PER_BYTE if dram else MEMORY_ENERGY_PJ_PER_BYTE
    return num_bytes * per_byte


def model_inference_energy_mj(macs: int, bits: int = 32,
                              params: int = 0,
                              weight_bits: int | None = None) -> float:
    """Total inference energy in millijoules: compute + weight traffic.

    ``macs`` at ``bits`` precision, plus one read of every parameter at
    ``weight_bits`` (defaults to ``bits``) through SRAM.
    """
    wb = bits if weight_bits is None else weight_bits
    compute_pj = macs * mac_energy_pj(bits)
    traffic_pj = memory_energy_pj(params * wb / 8.0)
    return (compute_pj + traffic_pj) * 1e-9


@dataclass
class EnergyLedger:
    """Additive energy bookkeeping for a sensing-to-action loop.

    Every component charges its consumption to one of the named meters;
    benchmark harnesses read the totals.  All values in millijoules.
    """

    sensing_mj: float = 0.0
    compute_mj: float = 0.0
    communication_mj: float = 0.0
    actuation_mj: float = 0.0

    def charge_sensing(self, mj: float) -> None:
        self._check(mj)
        self.sensing_mj += mj

    def charge_compute(self, mj: float) -> None:
        self._check(mj)
        self.compute_mj += mj

    def charge_communication(self, mj: float) -> None:
        self._check(mj)
        self.communication_mj += mj

    def charge_actuation(self, mj: float) -> None:
        self._check(mj)
        self.actuation_mj += mj

    @staticmethod
    def _check(mj: float) -> None:
        if mj < 0:
            raise ValueError("energy charges must be non-negative")

    @property
    def total_mj(self) -> float:
        return (self.sensing_mj + self.compute_mj
                + self.communication_mj + self.actuation_mj)

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        return EnergyLedger(
            self.sensing_mj + other.sensing_mj,
            self.compute_mj + other.compute_mj,
            self.communication_mj + other.communication_mj,
            self.actuation_mj + other.actuation_mj,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "sensing_mj": self.sensing_mj,
            "compute_mj": self.compute_mj,
            "communication_mj": self.communication_mj,
            "actuation_mj": self.actuation_mj,
            "total_mj": self.total_mj,
        }

    # -------------------------------------------------- windowed readings
    def snapshot(self) -> Dict[str, float]:
        """Point-in-time copy of every meter (including the total).

        Pair with :meth:`delta` for windowed readings: take a snapshot
        at the window start and ask the ledger for the delta later.
        """
        return self.as_dict()

    def delta(self, since: Dict[str, float]) -> Dict[str, float]:
        """Per-meter consumption since a :meth:`snapshot`.

        Meters absent from ``since`` are treated as starting at zero, so
        a snapshot taken from an older/foreign ledger still yields a
        well-formed delta over this ledger's meters.
        """
        now = self.as_dict()
        return {key: value - float(since.get(key, 0.0))
                for key, value in now.items()}
