"""Latency and silicon-area models per precision (HaLo-FL substrate).

Fig. 11 reports relative latency and area reductions from precision
selection; both follow standard digital-arithmetic scaling:

* multiplier **area** grows ~quadratically with operand width;
* MAC **latency** (at fixed clocking) grows ~linearly with width once the
  datapath is width-serialized, and throughput per unit area follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["MAC_LATENCY_NS", "MAC_AREA_UM2", "mac_latency_ns", "mac_area_um2",
           "HardwareProfile"]

# Latency of one MAC by operand width (ns, single lane at 1 GHz-class edge
# accelerator; narrower operands allow higher SIMD packing so effective
# per-MAC latency drops).
MAC_LATENCY_NS: Dict[int, float] = {
    32: 1.00,
    16: 0.50,
    8: 0.25,
    4: 0.14,
    2: 0.08,
}

# Area of one MAC unit by operand width (um^2, 45 nm class; ~quadratic).
MAC_AREA_UM2: Dict[int, float] = {
    32: 2000.0,
    16: 560.0,
    8: 160.0,
    4: 48.0,
    2: 16.0,
}


def mac_latency_ns(bits: int = 32) -> float:
    if bits not in MAC_LATENCY_NS:
        raise ValueError(f"no latency model for {bits}-bit MACs")
    return MAC_LATENCY_NS[bits]


def mac_area_um2(bits: int = 32) -> float:
    if bits not in MAC_AREA_UM2:
        raise ValueError(f"no area model for {bits}-bit MACs")
    return MAC_AREA_UM2[bits]


@dataclass(frozen=True)
class HardwareProfile:
    """Capability description of one edge client (Fig. 10).

    Used by the federated frameworks to model heterogeneity: DC-NAS prunes
    model topology to fit ``compute_gmacs_s`` and ``memory_mb``; HaLo-FL
    picks precisions to fit ``energy_budget_mj`` per round.
    """

    name: str
    compute_gmacs_s: float  # peak throughput, giga-MACs per second (fp32)
    memory_mb: float        # usable parameter+activation memory
    energy_budget_mj: float  # per-round energy budget
    parallel_lanes: int = 1  # MAC lanes (scales throughput)

    def __post_init__(self):
        if self.compute_gmacs_s <= 0 or self.memory_mb <= 0:
            raise ValueError("compute and memory must be positive")
        if self.energy_budget_mj <= 0 or self.parallel_lanes < 1:
            raise ValueError("invalid energy budget or lane count")

    def inference_latency_ms(self, macs: int, bits: int = 32) -> float:
        """Latency of ``macs`` at ``bits`` on this device, in ms."""
        per_mac_ns = mac_latency_ns(bits) / self.parallel_lanes
        # Throughput calibrated at fp32; narrower ops speed up by the
        # latency ratio.
        base_s = macs / (self.compute_gmacs_s * 1e9)
        speedup = mac_latency_ns(32) / mac_latency_ns(bits)
        return float(base_s / speedup * 1e3 + per_mac_ns * 1e-6)

    def fits_model(self, params: int, weight_bits: int = 32) -> bool:
        """Whether a model's weights fit in this client's memory."""
        model_mb = params * weight_bits / 8.0 / 1e6
        return model_mb <= self.memory_mb
