"""In-memory / near-memory computing models (Sec. VI, Fig. 2).

The paper: neuromorphic algorithms "benefit from hardware acceleration
via in-memory (IMC) and near-memory (NMC) computing by efficiently
implementing synaptic functionality", working "alongside CPU/GPU
architectures".  The decisive physics: a von-Neumann MAC pays weight
*movement* (SRAM/DRAM reads) on top of arithmetic, while a crossbar IMC
array keeps weights stationary and computes the dot product in place —
at the price of DAC/ADC conversion per activation/output.

:class:`CrossbarModel` prices a matrix-vector product on a crossbar;
:func:`compare_architectures` reproduces the standard IMC-vs-digital
crossover: IMC wins once weight-reuse is low (inference, batch 1) and
matrices are large enough to amortize the converters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .energy import MEMORY_ENERGY_PJ_PER_BYTE, mac_energy_pj

__all__ = ["CrossbarModel", "digital_mvm_energy_pj", "compare_architectures"]


def digital_mvm_energy_pj(rows: int, cols: int, bits: int = 8,
                          batch: int = 1,
                          weights_cached: bool = False) -> float:
    """Energy of a (rows x cols) matrix-vector product on a digital unit.

    Compute (MACs) + weight traffic: without caching, every weight is
    read from SRAM once per batch element; with caching, once total.
    """
    if rows <= 0 or cols <= 0 or batch <= 0:
        raise ValueError("dimensions and batch must be positive")
    macs = rows * cols * batch
    compute = macs * mac_energy_pj(bits)
    weight_bytes = rows * cols * bits / 8.0
    reads = 1 if weights_cached else batch
    traffic = weight_bytes * reads * MEMORY_ENERGY_PJ_PER_BYTE
    return compute + traffic


@dataclass(frozen=True)
class CrossbarModel:
    """Analytic energy model of a resistive/SRAM crossbar MVM.

    Per input activation: one DAC conversion and one wordline drive; the
    analog dot product itself is nearly free (Ohm's law + Kirchhoff sums
    across the stationary conductances); per output column: one ADC
    conversion.  Constants follow published 45-65 nm IMC macros.
    """

    dac_pj: float = 0.3        # per input conversion
    adc_pj: float = 5.0        # per output conversion (dominant cost)
    wordline_pj: float = 0.05  # per row activation
    array_mac_fj: float = 1.0  # in-array analog MAC, femtojoules
    max_rows: int = 256        # physical array tile bound
    max_cols: int = 256
    # Partial sums from every row-tile must each be converted and added
    # digitally, so ADC cost scales with the row-tile count.

    def tiles(self, rows: int, cols: int) -> int:
        """Number of array tiles a (rows x cols) matrix occupies."""
        if rows <= 0 or cols <= 0:
            raise ValueError("dimensions must be positive")
        r = -(-rows // self.max_rows)
        c = -(-cols // self.max_cols)
        return r * c

    def mvm_energy_pj(self, rows: int, cols: int, batch: int = 1,
                      input_activity: float = 1.0) -> float:
        """Energy of ``batch`` MVMs; ``input_activity`` is the fraction
        of nonzero inputs (spiking inputs drive only active rows)."""
        if not 0.0 <= input_activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        tiles_c = -(-cols // self.max_cols)
        tiles_r = -(-rows // self.max_rows)
        per_vec = (rows * input_activity * (self.dac_pj + self.wordline_pj)
                   * tiles_c
                   + cols * self.adc_pj * tiles_r
                   + rows * cols * input_activity * self.array_mac_fj * 1e-3)
        return per_vec * batch

    def write_energy_pj(self, rows: int, cols: int,
                        write_pj_per_cell: float = 10.0) -> float:
        """One-time cost of programming the weights into the array."""
        return rows * cols * write_pj_per_cell


def compare_architectures(rows: int, cols: int, batch: int = 1,
                          bits: int = 8, input_activity: float = 1.0,
                          crossbar: CrossbarModel | None = None
                          ) -> Dict[str, float]:
    """Energy of one workload on digital vs IMC, plus the ratio.

    Returns ``{"digital_pj", "imc_pj", "imc_advantage"}`` where the
    advantage is digital / IMC (>1 means IMC wins).
    """
    crossbar = crossbar or CrossbarModel()
    digital = digital_mvm_energy_pj(rows, cols, bits=bits, batch=batch)
    imc = crossbar.mvm_energy_pj(rows, cols, batch=batch,
                                 input_activity=input_activity)
    return {"digital_pj": digital, "imc_pj": imc,
            "imc_advantage": digital / imc if imc > 0 else float("inf")}
