"""LiDAR link-budget and pulse-energy physics (Sec. III).

The paper's radial masking is motivated by two physical facts it cites:

* **R^4 energy scaling** — the received echo power of a diffuse target
  falls as 1/R^2 for illumination and 1/R^2 again for collection, so the
  transmit pulse energy needed to hold SNR at range ``R`` grows as R^4.
* **Diffraction-limited angular precision** — improving angular resolution
  Δθ requires a larger aperture ``D`` or shorter wavelength ``λ``
  (Δθ ≈ 1.22 λ / D), both constrained by form factor and eye safety.

R-MAE attacks the energy side without touching the optics: mask distant
voxels more aggressively because they are the expensive ones to sense.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LidarPowerModel", "diffraction_limited_resolution"]


def diffraction_limited_resolution(wavelength_nm: float,
                                   aperture_mm: float) -> float:
    """Angular resolution Δθ (radians) of a diffraction-limited aperture."""
    if wavelength_nm <= 0 or aperture_mm <= 0:
        raise ValueError("wavelength and aperture must be positive")
    return 1.22 * (wavelength_nm * 1e-9) / (aperture_mm * 1e-3)


@dataclass
class LidarPowerModel:
    """Pulse-energy model with R^4 range scaling.

    Parameters
    ----------
    reference_pulse_uj:
        Pulse energy needed to reach ``reference_range_m`` at the target
        SNR.  Conventional automotive LiDAR fires every pulse at the
        energy for maximum range: 50 µJ in Table II.
    reference_range_m:
        Range achieved by the reference pulse.
    min_pulse_uj:
        Floor below which pulses cannot be throttled (laser driver limit).
    """

    reference_pulse_uj: float = 50.0
    reference_range_m: float = 120.0
    min_pulse_uj: float = 0.5

    def pulse_energy_uj(self, target_range_m: float) -> float:
        """Pulse energy required to hold SNR at ``target_range_m`` (R^4)."""
        if target_range_m <= 0:
            raise ValueError("range must be positive")
        scaled = self.reference_pulse_uj * (
            target_range_m / self.reference_range_m) ** 4
        return float(max(self.min_pulse_uj,
                         min(scaled, self.reference_pulse_uj)))

    def scan_energy_mj(self, ranges_m: np.ndarray,
                       adaptive: bool = True) -> float:
        """Total sensing energy for one scan over the fired ranges.

        ``adaptive=False`` models a conventional scanner that fires every
        pulse at full (max-range) energy; ``adaptive=True`` models a
        range-aware transmitter that throttles each pulse to the distance
        it actually needs to cover (what the radial masking enables, since
        masked-far pulses are simply not fired).
        """
        ranges_m = np.asarray(ranges_m, dtype=np.float64)
        if ranges_m.size == 0:
            return 0.0
        if not adaptive:
            return float(ranges_m.size * self.reference_pulse_uj * 1e-3)
        energies = np.array([self.pulse_energy_uj(r) for r in ranges_m])
        return float(energies.sum() * 1e-3)

    def mean_pulse_energy_uj(self, ranges_m: np.ndarray) -> float:
        """Average adaptive per-pulse energy over the fired ranges."""
        ranges_m = np.asarray(ranges_m, dtype=np.float64)
        if ranges_m.size == 0:
            return 0.0
        return float(np.mean([self.pulse_energy_uj(r) for r in ranges_m]))
