"""Leaky integrate-and-fire neuron dynamics (Sec. VI).

The LIF membrane update over discrete timesteps:

    v[t] = leak * v[t-1] + I[t]         (integrate)
    s[t] = 1 if v[t] > threshold        (fire)
    v[t] = v[t] - threshold * s[t]      (soft reset)

Spikes are non-differentiable; training uses the standard triangular
*surrogate gradient* (Neftci et al.): dS/dv ~ max(0, 1 - |v - thr| / w).

Adaptive-SpikeNet's contribution is making ``leak`` and ``threshold``
*learnable per layer*: the dynamics adapt to the data's timescales, which
is where its accuracy-at-tiny-size advantage comes from (Fig. 9 right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["lif_step", "surrogate_gradient", "LIFParameters"]


@dataclass
class LIFParameters:
    """Per-layer neuronal dynamics.

    ``leak`` in (0, 1); ``threshold`` > 0; ``surrogate_width`` controls
    the triangular surrogate's support.
    """

    leak: float = 0.9
    threshold: float = 1.0
    surrogate_width: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.leak <= 1.0:
            raise ValueError("leak must be in (0, 1]")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.surrogate_width <= 0:
            raise ValueError("surrogate width must be positive")


def lif_step(v: np.ndarray, current: np.ndarray, leak: float,
             threshold: float) -> Tuple[np.ndarray, np.ndarray]:
    """One LIF update; returns (new membrane potential, spikes)."""
    v_new = leak * v + current
    spikes = (v_new > threshold).astype(np.float64)
    v_new = v_new - threshold * spikes  # soft reset preserves residue
    return v_new, spikes


def surrogate_gradient(v_pre_reset: np.ndarray, threshold: float,
                       width: float = 1.0) -> np.ndarray:
    """Triangular surrogate dS/dv around the firing threshold."""
    return np.maximum(0.0, 1.0 - np.abs(v_pre_reset - threshold) / width) / width
