"""ANN-to-SNN conversion (Sec. VI).

One of the three training routes the paper lists for deep SNNs (besides
learnable dynamics and surrogate gradients): train an ANN with ReLU, then
map it to a rate-coded SNN by normalizing each layer's weights to its
maximum activation so LIF firing rates approximate the ReLU activations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..nn.layers import Dense
from ..nn.sequential import Sequential
from .neurons import lif_step

__all__ = ["activation_maxima", "convert_ann_to_snn", "RateCodedSNN"]


def activation_maxima(net: Sequential, calibration: np.ndarray
                      ) -> List[float]:
    """Per-Dense-layer maximum post-activation over a calibration batch."""
    maxima: List[float] = []
    x = calibration
    for layer in net.layers:
        x = layer.forward(x)
        if isinstance(layer, Dense):
            maxima.append(float(np.max(np.abs(x))) or 1.0)
    return maxima


class RateCodedSNN:
    """Rate-coded spiking execution of a converted ReLU MLP."""

    def __init__(self, weights: Sequence[np.ndarray],
                 biases: Sequence[np.ndarray], timesteps: int = 32,
                 threshold: float = 1.0):
        if len(weights) != len(biases):
            raise ValueError("weights/biases length mismatch")
        if timesteps < 1:
            raise ValueError("need at least one timestep")
        self.weights = [np.asarray(w) for w in weights]
        self.biases = [np.asarray(b) for b in biases]
        self.timesteps = timesteps
        self.threshold = threshold

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Rate-decode the output layer over the simulation window.

        Inputs are presented as constant currents; hidden layers spike;
        the final layer integrates without firing (potential readout).
        """
        x = np.atleast_2d(x)
        n = x.shape[0]
        n_layers = len(self.weights)
        potentials = [np.zeros((n, w.shape[1])) for w in self.weights]
        spike_counts = np.zeros((n, self.weights[-1].shape[1]))
        total_spikes = 0
        inputs = x
        for _ in range(self.timesteps):
            layer_in = inputs
            for li in range(n_layers):
                current = layer_in @ self.weights[li] + self.biases[li] \
                    / self.timesteps
                if li < n_layers - 1:
                    potentials[li], spikes = lif_step(
                        potentials[li], current, 1.0, self.threshold)
                    total_spikes += float(spikes.sum())
                    layer_in = spikes
                else:
                    potentials[li] = potentials[li] + current
            spike_counts += potentials[-1] / self.timesteps
        self.total_spikes = total_spikes
        return potentials[-1] / self.timesteps

    def mean_spike_rate(self, x: np.ndarray) -> float:
        """Average hidden spiking activity for the given batch."""
        self.forward(x)
        hidden_neurons = sum(w.shape[1] for w in self.weights[:-1])
        denom = x.shape[0] * hidden_neurons * self.timesteps
        return self.total_spikes / max(denom, 1)


def convert_ann_to_snn(net: Sequential, calibration: np.ndarray,
                       timesteps: int = 32) -> RateCodedSNN:
    """Weight-normalized conversion of a Dense/ReLU Sequential to an SNN.

    Each Dense layer's weights are scaled by the ratio of consecutive
    layers' maximum activations, the standard data-based normalization
    that preserves rate-coded equivalence.
    """
    dense_layers = [l for l in net.layers if isinstance(l, Dense)]
    if not dense_layers:
        raise ValueError("network has no Dense layers to convert")
    maxima = activation_maxima(net, calibration)
    weights, biases = [], []
    prev_max = 1.0
    for layer, act_max in zip(dense_layers, maxima):
        scale_in = prev_max
        scale_out = act_max
        weights.append(layer.weight.data * (scale_in / scale_out))
        bias = layer.bias.data if layer.bias is not None else \
            np.zeros(layer.out_features)
        biases.append(bias / scale_out)
        prev_max = act_max
    return RateCodedSNN(weights, biases, timesteps=timesteps)
