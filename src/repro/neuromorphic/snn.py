"""Spiking layers with surrogate-gradient BPTT (Sec. VI).

:class:`SpikingConv2d` runs a shared convolution at every timestep and
integrates the result through LIF dynamics.  Backward-through-time uses
the triangular surrogate for the spike nonlinearity and propagates both
the spatial (conv) and temporal (membrane) gradient paths.

With ``learnable_dynamics=True`` the leak and threshold become trainable
parameters (Adaptive-SpikeNet); otherwise they are fixed constants
(Spike-FlowNet-style encoders).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import get_kernel, kernel_timer
from ..nn.layers import Conv2d, Module
from ..nn.tensor import Parameter
from ..obs.registry import get_registry

__all__ = ["SpikingConv2d", "spike_rate"]


def spike_rate(spike_train: np.ndarray) -> float:
    """Mean firing rate of a (T, ...) spike train — the sparsity factor
    in the SNN energy model."""
    spike_train = np.asarray(spike_train)
    if spike_train.size == 0:
        return 0.0
    return float(spike_train.mean())


class SpikingConv2d(Module):
    """Conv2d + LIF dynamics unrolled over T timesteps.

    Input: (T, N, C_in, H, W) spike/current tensors.
    Output: (T, N, C_out, H', W') spike tensors, plus the final membrane
    potential via :attr:`last_membrane` (used by readout layers that
    decode rates/potentials instead of spikes).
    """

    def __init__(self, in_ch: int, out_ch: int, kernel: int = 3,
                 stride: int = 1, pad: int = 1, leak: float = 0.9,
                 threshold: float = 1.0, surrogate_width: float = 1.0,
                 learnable_dynamics: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "sconv"):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv = Conv2d(in_ch, out_ch, kernel=kernel, stride=stride,
                           pad=pad, rng=rng, name=f"{name}.conv")
        self.learnable_dynamics = learnable_dynamics
        self.surrogate_width = surrogate_width
        if learnable_dynamics:
            # Parameterize leak through a sigmoid and threshold through
            # softplus so gradient steps cannot leave the valid ranges.
            self.leak_raw = Parameter(
                np.array([np.log(leak / (1 - leak))]), name=f"{name}.leak")
            self.thr_raw = Parameter(
                np.array([np.log(np.expm1(threshold))]), name=f"{name}.thr")
        else:
            self._leak_const = leak
            self._thr_const = threshold
        self._cache = None
        self.last_membrane: Optional[np.ndarray] = None

    # ------------------------------------------------------------ dynamics
    def leak(self) -> float:
        if self.learnable_dynamics:
            return float(1.0 / (1.0 + np.exp(-self.leak_raw.data[0])))
        return self._leak_const

    def threshold(self) -> float:
        if self.learnable_dynamics:
            return float(np.logaddexp(0.0, self.thr_raw.data[0]))
        return self._thr_const

    # ------------------------------------------------------------- forward
    def forward(self, x: np.ndarray) -> np.ndarray:
        """LIF unroll, dispatched through the ``snn_bptt`` kernel pair
        (per-timestep reference loop vs one batched-time conv)."""
        if x.ndim != 5:
            raise ValueError("spiking input must be (T, N, C, H, W)")
        with kernel_timer("snn_bptt", "forward"):
            out = get_kernel("snn_bptt").forward(self, x)
        # Spike telemetry: counters feed the event-driven energy model
        # (repro.neuromorphic.energy.registry_snn_energy_pj).
        obs = get_registry()
        if obs.enabled:
            obs.counter("snn.spikes").inc(float(out.sum()))
            obs.counter("snn.neuron_steps").inc(float(out.size))
            obs.counter("snn.input_events").inc(
                float(np.count_nonzero(x)))
            obs.counter("snn.forward_passes").inc()
        return out

    def backward(self, grad: np.ndarray,
                 grad_membrane: Optional[np.ndarray] = None) -> np.ndarray:
        """BPTT: ``grad`` is (T, N, C', H', W') w.r.t. output spikes.

        ``grad_membrane`` optionally adds a gradient on the *final*
        membrane potential (for potential-readout heads).
        """
        # The forward tagged its cache with the backend that produced
        # it; the raw dynamics grads come back from the kernel and the
        # reparameterization chain rules are applied here.
        backend = self._cache[0]
        with kernel_timer("snn_bptt", "backward"):
            grad_in, d_leak, d_thr = get_kernel(
                "snn_bptt", backend=backend).backward(self, grad,
                                                      grad_membrane)
        if self.learnable_dynamics:
            sig = 1.0 / (1.0 + np.exp(-self.leak_raw.data[0]))
            self.leak_raw.grad += d_leak * sig * (1 - sig)
            thr_sig = 1.0 / (1.0 + np.exp(-self.thr_raw.data[0]))
            self.thr_raw.grad += d_thr * thr_sig
        return grad_in
