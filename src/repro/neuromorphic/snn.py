"""Spiking layers with surrogate-gradient BPTT (Sec. VI).

:class:`SpikingConv2d` runs a shared convolution at every timestep and
integrates the result through LIF dynamics.  Backward-through-time uses
the triangular surrogate for the spike nonlinearity and propagates both
the spatial (conv) and temporal (membrane) gradient paths.

With ``learnable_dynamics=True`` the leak and threshold become trainable
parameters (Adaptive-SpikeNet); otherwise they are fixed constants
(Spike-FlowNet-style encoders).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn.layers import Conv2d, Module
from ..nn.tensor import Parameter
from ..obs.registry import get_registry
from .neurons import surrogate_gradient

__all__ = ["SpikingConv2d", "spike_rate"]


def spike_rate(spike_train: np.ndarray) -> float:
    """Mean firing rate of a (T, ...) spike train — the sparsity factor
    in the SNN energy model."""
    spike_train = np.asarray(spike_train)
    if spike_train.size == 0:
        return 0.0
    return float(spike_train.mean())


class SpikingConv2d(Module):
    """Conv2d + LIF dynamics unrolled over T timesteps.

    Input: (T, N, C_in, H, W) spike/current tensors.
    Output: (T, N, C_out, H', W') spike tensors, plus the final membrane
    potential via :attr:`last_membrane` (used by readout layers that
    decode rates/potentials instead of spikes).
    """

    def __init__(self, in_ch: int, out_ch: int, kernel: int = 3,
                 stride: int = 1, pad: int = 1, leak: float = 0.9,
                 threshold: float = 1.0, surrogate_width: float = 1.0,
                 learnable_dynamics: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "sconv"):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv = Conv2d(in_ch, out_ch, kernel=kernel, stride=stride,
                           pad=pad, rng=rng, name=f"{name}.conv")
        self.learnable_dynamics = learnable_dynamics
        self.surrogate_width = surrogate_width
        if learnable_dynamics:
            # Parameterize leak through a sigmoid and threshold through
            # softplus so gradient steps cannot leave the valid ranges.
            self.leak_raw = Parameter(
                np.array([np.log(leak / (1 - leak))]), name=f"{name}.leak")
            self.thr_raw = Parameter(
                np.array([np.log(np.expm1(threshold))]), name=f"{name}.thr")
        else:
            self._leak_const = leak
            self._thr_const = threshold
        self._cache = None
        self.last_membrane: Optional[np.ndarray] = None

    # ------------------------------------------------------------ dynamics
    def leak(self) -> float:
        if self.learnable_dynamics:
            return float(1.0 / (1.0 + np.exp(-self.leak_raw.data[0])))
        return self._leak_const

    def threshold(self) -> float:
        if self.learnable_dynamics:
            return float(np.logaddexp(0.0, self.thr_raw.data[0]))
        return self._thr_const

    # ------------------------------------------------------------- forward
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5:
            raise ValueError("spiking input must be (T, N, C, H, W)")
        t_steps = x.shape[0]
        leak, thr = self.leak(), self.threshold()
        v = None
        spikes_out: List[np.ndarray] = []
        caches: List[tuple] = []
        for t in range(t_steps):
            current = self.conv.forward(x[t])
            conv_cache = self.conv._cache
            if v is None:
                v = np.zeros_like(current)
            v_pre = leak * v + current
            s = (v_pre > thr).astype(np.float64)
            v = v_pre - thr * s
            spikes_out.append(s)
            caches.append((conv_cache, v_pre, s))
        self.last_membrane = v
        self._cache = (x.shape, caches, leak, thr)
        out = np.stack(spikes_out)
        # Spike telemetry: counters feed the event-driven energy model
        # (repro.neuromorphic.energy.registry_snn_energy_pj).
        obs = get_registry()
        if obs.enabled:
            obs.counter("snn.spikes").inc(float(out.sum()))
            obs.counter("snn.neuron_steps").inc(float(out.size))
            obs.counter("snn.input_events").inc(
                float(np.count_nonzero(x)))
            obs.counter("snn.forward_passes").inc()
        return out

    def backward(self, grad: np.ndarray,
                 grad_membrane: Optional[np.ndarray] = None) -> np.ndarray:
        """BPTT: ``grad`` is (T, N, C', H', W') w.r.t. output spikes.

        ``grad_membrane`` optionally adds a gradient on the *final*
        membrane potential (for potential-readout heads).
        """
        x_shape, caches, leak, thr = self._cache
        t_steps = len(caches)
        grad_in = np.zeros(x_shape)
        gv_next = (np.zeros_like(caches[-1][1]) if grad_membrane is None
                   else grad_membrane.copy())
        for t in range(t_steps - 1, -1, -1):
            conv_cache, v_pre, s = caches[t]
            sg = surrogate_gradient(v_pre, thr, self.surrogate_width)
            gs = grad[t]
            # v[t] = v_pre - thr * s;  s = H(v_pre - thr)
            # dL/dv_pre = dL/dv[t] * (1 - thr * sg) + dL/ds * sg
            gv_pre = gv_next * (1.0 - thr * sg) + gs * sg
            # Route through the conv at this timestep.
            self.conv._cache = conv_cache
            grad_in[t] = self.conv.backward(gv_pre)
            # Temporal path to the previous membrane.
            gv_next = gv_pre * leak

        if self.learnable_dynamics:
            d_leak, d_thr = self._dynamics_grads(grad, grad_membrane)
            sig = 1.0 / (1.0 + np.exp(-self.leak_raw.data[0]))
            self.leak_raw.grad += d_leak * sig * (1 - sig)
            thr_sig = 1.0 / (1.0 + np.exp(-self.thr_raw.data[0]))
            self.thr_raw.grad += d_thr * thr_sig
        return grad_in

    def _dynamics_grads(self, grad: np.ndarray,
                        grad_membrane: Optional[np.ndarray]) -> Tuple[float, float]:
        """dL/dleak and dL/dthreshold by reverse accumulation.

        Reuses the cached per-step pre-reset potentials; membrane values
        v[t] are reconstructed as v_pre[t] - thr * s[t].
        """
        _, caches, leak, thr = self._cache
        t_steps = len(caches)
        gv_next = (np.zeros_like(caches[-1][1]) if grad_membrane is None
                   else grad_membrane.copy())
        d_leak = 0.0
        d_thr = 0.0
        for t in range(t_steps - 1, -1, -1):
            _, v_pre, s = caches[t]
            sg = surrogate_gradient(v_pre, thr, self.surrogate_width)
            gs = grad[t]
            # Explicit threshold dependence at this step: the reset term
            # v[t] = v_pre - thr * s and the firing condition
            # s = H(v_pre - thr) (whose surrogate derivative w.r.t. thr
            # is -sg).
            d_thr += float(np.sum(-gv_next * s) - np.sum(gs * sg)
                           + np.sum(gv_next * thr * sg))
            gv_pre = gv_next * (1.0 - thr * sg) + gs * sg
            if t > 0:
                _, v_pre_prev, s_prev = caches[t - 1]
                v_prev = v_pre_prev - thr * s_prev
                d_leak += float(np.sum(gv_pre * v_prev))
            gv_next = gv_pre * leak
        return d_leak, d_thr
