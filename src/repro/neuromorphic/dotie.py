"""DOTIE: object detection through temporal isolation of events (Sec. VI).

"For simpler tasks like object detection, full-SNN models excel — DOTIE,
a lightweight, single-layer SNN, filters events based on speed and
clusters them into bounding boxes."

Mechanism: a single spiking layer whose neurons integrate local event
activity with a leak.  Fast-moving objects produce temporally dense event
streams at the same pixels, so their neurons cross threshold; slow or
sparse background activity leaks away before accumulating.  Surviving
spikes are clustered by spatial connectivity into bounding boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .neurons import lif_step

__all__ = ["BoundingBox", "DOTIE"]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned pixel box with its spike mass."""

    x_min: int
    y_min: int
    x_max: int
    y_max: int
    mass: float

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x_min + self.x_max) / 2.0,
                (self.y_min + self.y_max) / 2.0)

    @property
    def area(self) -> int:
        return (self.x_max - self.x_min + 1) * (self.y_max - self.y_min + 1)

    def contains(self, x: float, y: float) -> bool:
        return (self.x_min <= x <= self.x_max
                and self.y_min <= y <= self.y_max)


class DOTIE:
    """Single-layer LIF speed filter + connected-component clustering.

    Parameters
    ----------
    leak:
        Membrane leak per timestep.  Lower leak -> only faster objects
        (denser event trains) accumulate to threshold.
    threshold:
        Firing threshold on accumulated event counts.
    min_cluster:
        Minimum spiking-pixel count for a cluster to become a box.
    """

    def __init__(self, leak: float = 0.6, threshold: float = 2.0,
                 min_cluster: int = 3):
        if not 0.0 < leak <= 1.0:
            raise ValueError("leak must be in (0, 1]")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.leak = leak
        self.threshold = threshold
        self.min_cluster = min_cluster

    def spike_map(self, event_frames: np.ndarray) -> np.ndarray:
        """Accumulated spike counts per pixel over the event train.

        ``event_frames``: (T, 2, H, W) polarity event counts.
        """
        if event_frames.ndim != 4:
            raise ValueError("event_frames must be (T, 2, H, W)")
        t_steps, _, h, w = event_frames.shape
        v = np.zeros((h, w))
        spikes = np.zeros((h, w))
        for t in range(t_steps):
            current = event_frames[t].sum(axis=0)
            v, s = lif_step(v, current, self.leak, self.threshold)
            spikes += s
        return spikes

    @staticmethod
    def _connected_components(mask: np.ndarray) -> List[List[Tuple[int, int]]]:
        """4-connected components of a boolean mask (iterative flood fill)."""
        h, w = mask.shape
        seen = np.zeros_like(mask, dtype=bool)
        components: List[List[Tuple[int, int]]] = []
        for i in range(h):
            for j in range(w):
                if not mask[i, j] or seen[i, j]:
                    continue
                stack = [(i, j)]
                seen[i, j] = True
                comp: List[Tuple[int, int]] = []
                while stack:
                    ci, cj = stack.pop()
                    comp.append((ci, cj))
                    for ni, nj in ((ci - 1, cj), (ci + 1, cj),
                                   (ci, cj - 1), (ci, cj + 1)):
                        if (0 <= ni < h and 0 <= nj < w and mask[ni, nj]
                                and not seen[ni, nj]):
                            seen[ni, nj] = True
                            stack.append((ni, nj))
                components.append(comp)
        return components

    def detect(self, event_frames: np.ndarray) -> List[BoundingBox]:
        """Filter by speed, cluster spiking pixels, emit bounding boxes."""
        spikes = self.spike_map(event_frames)
        mask = spikes > 0
        boxes: List[BoundingBox] = []
        for comp in self._connected_components(mask):
            if len(comp) < self.min_cluster:
                continue
            rows = [c[0] for c in comp]
            cols = [c[1] for c in comp]
            mass = float(sum(spikes[r, c] for r, c in comp))
            boxes.append(BoundingBox(min(cols), min(rows), max(cols),
                                     max(rows), mass))
        boxes.sort(key=lambda b: -b.mass)
        return boxes

    def synops(self, event_frames: np.ndarray) -> int:
        """Accumulate operations consumed (one per input event)."""
        return int(np.asarray(event_frames).sum())
