"""``repro.neuromorphic`` — spiking sensing-action loops (Sec. VI)."""

from .conversion import RateCodedSNN, activation_maxima, convert_ann_to_snn
from .dotie import DOTIE, BoundingBox
from .energy import (
    E_AC_PJ,
    E_MAC_PJ,
    ann_energy_pj,
    energy_ratio_ann_over_snn,
    registry_snn_energy_pj,
    snn_energy_pj,
    synop_energy_pj,
)
from .flow_models import (
    FLOW_MODEL_FAMILIES,
    AdaptiveSpikeNet,
    EvFlowNet,
    FlowModel,
    FusionFlowNet,
    SpikeFlowNet,
    build_flow_model,
    evaluate_aee,
    per_sample_aee,
    train_flow_model,
)
from .neurons import LIFParameters, lif_step, surrogate_gradient
from .snn import SpikingConv2d, spike_rate

__all__ = [
    "lif_step", "surrogate_gradient", "LIFParameters",
    "SpikingConv2d", "spike_rate",
    "E_MAC_PJ", "E_AC_PJ", "ann_energy_pj", "snn_energy_pj",
    "synop_energy_pj", "registry_snn_energy_pj",
    "energy_ratio_ann_over_snn",
    "FlowModel", "EvFlowNet", "SpikeFlowNet", "FusionFlowNet",
    "AdaptiveSpikeNet", "FLOW_MODEL_FAMILIES", "build_flow_model",
    "train_flow_model", "per_sample_aee", "evaluate_aee",
    "DOTIE", "BoundingBox",
    "RateCodedSNN", "activation_maxima", "convert_ann_to_snn",
]
