"""Energy accounting for ANN / SNN / hybrid inference (Sec. VI).

The standard neuromorphic energy model (Roy et al., Nature 2019): an ANN
pays a full multiply-accumulate per synaptic connection per inference;
an SNN pays an *accumulate-only* operation per synaptic connection *per
spike* — no multiply, because spikes are binary.  Energy per op (45 nm):

* E_MAC = 4.6 pJ (32-bit multiply-accumulate)
* E_AC  = 0.9 pJ (32-bit accumulate)

So ``E_SNN = SynOps * E_AC`` with ``SynOps = sum_t MACs * rate_t`` — the
input spike rate is the sparsity dividend event-driven processing earns.
"""

from __future__ import annotations

__all__ = ["E_MAC_PJ", "E_AC_PJ", "ann_energy_pj", "snn_energy_pj",
           "synop_energy_pj", "registry_snn_energy_pj",
           "energy_ratio_ann_over_snn"]

E_MAC_PJ = 4.6  # multiply-accumulate (float32, 45 nm)
E_AC_PJ = 0.9   # accumulate only (what a binary spike costs)


def ann_energy_pj(macs: int) -> float:
    """Energy of a clock-driven dense inference."""
    if macs < 0:
        raise ValueError("MAC count cannot be negative")
    return macs * E_MAC_PJ


def snn_energy_pj(macs_per_timestep: int, timesteps: int,
                  mean_spike_rate: float) -> float:
    """Energy of an event-driven spiking inference.

    ``mean_spike_rate`` is the average input activity in [0, 1]; only
    active synaptic events cost an accumulate.
    """
    if macs_per_timestep < 0 or timesteps < 0:
        raise ValueError("op counts cannot be negative")
    if not 0.0 <= mean_spike_rate:
        raise ValueError("spike rate cannot be negative")
    synops = macs_per_timestep * timesteps * mean_spike_rate
    return synops * E_AC_PJ


def synop_energy_pj(total_spikes: float, fanout_macs: float = 1.0) -> float:
    """Energy of ``total_spikes`` events each driving ``fanout_macs``
    accumulate-only synaptic operations."""
    if total_spikes < 0 or fanout_macs < 0:
        raise ValueError("op counts cannot be negative")
    return total_spikes * fanout_macs * E_AC_PJ


def registry_snn_energy_pj(registry=None, fanout_macs: float = 1.0) -> float:
    """Event-driven energy from observed spike counters.

    Reads the ``snn.spikes`` counter that :class:`repro.neuromorphic.snn.
    SpikingConv2d` maintains on the active (or given) metrics registry,
    so a profiled run prices exactly the spikes it actually emitted
    rather than an assumed mean rate.
    """
    if registry is None:
        from ..obs.registry import get_registry
        registry = get_registry()
    return synop_energy_pj(registry.counter("snn.spikes").value, fanout_macs)


def energy_ratio_ann_over_snn(macs: int, macs_per_timestep: int,
                              timesteps: int, mean_spike_rate: float
                              ) -> float:
    """How many times cheaper the spiking implementation runs."""
    snn = snn_energy_pj(macs_per_timestep, timesteps, mean_spike_rate)
    if snn <= 0:
        return float("inf")
    return ann_energy_pj(macs) / snn
