"""Optical-flow model families of Fig. 8 / Fig. 9 (Sec. VI).

Four architectures over the event-camera simulator, mirroring the paper's
lineup:

* **EvFlowNet** — full-ANN baseline on the accumulated event volume;
* **Spike-FlowNet** — hybrid: SNN encoder (fixed LIF dynamics) over the
  event spike train, ANN decoder;
* **Fusion-FlowNet** — events through an SNN encoder fused with frames
  through an ANN encoder (sensor fusion), joint decoder;
* **Adaptive-SpikeNet** — fully spiking with *learnable* neuronal
  dynamics; flow is decoded from the final layer's membrane potential.

All models share one protocol (predict / train_step / params / energy) so
the Fig. 9 harness treats them uniformly.  The architectural
simplification vs the originals (3 conv stages instead of U-Nets) is a
scale substitution: the AEE ordering and energy ratios come from the
encoder type and sparsity, which are preserved.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.counting import count_conv2d
from ..nn.layers import Conv2d, Module, ReLU
from ..nn.losses import mse_loss
from ..nn.optim import Adam
from ..nn.sequential import Sequential
from ..sim.events import FlowSample
from .energy import ann_energy_pj, snn_energy_pj
from .snn import SpikingConv2d, spike_rate

__all__ = ["FlowModel", "EvFlowNet", "SpikeFlowNet", "FusionFlowNet",
           "AdaptiveSpikeNet", "FLOW_MODEL_FAMILIES", "build_flow_model",
           "train_flow_model", "per_sample_aee", "evaluate_aee"]


class FlowModel(Module):
    """Protocol for flow estimators over :class:`FlowSample`."""

    name: str = "flow"

    def predict(self, sample: FlowSample) -> np.ndarray:
        raise NotImplementedError

    def predict_batch(self, samples: Sequence[FlowSample]) -> np.ndarray:
        """Batched flow inference, (B, 2, H, W).

        Row ``i`` matches :meth:`predict` on ``samples[i]`` within
        kernel drift tolerances, and training caches are restored on
        exit.  Samples must share the event-frame shape (equal T); the
        serving scheduler only coalesces homogeneous requests.
        """
        raise NotImplementedError

    def train_step(self, sample: FlowSample) -> float:
        raise NotImplementedError

    def inference_energy_pj(self, sample: FlowSample) -> float:
        raise NotImplementedError


def _conv_macs(conv: Conv2d, h: int, w: int) -> int:
    return count_conv2d(conv.in_ch, conv.out_ch, conv.kernel, h, w)


def _stack_event_frames(samples: Sequence[FlowSample]) -> np.ndarray:
    """Stack per-sample (T, 2, H, W) event frames along the SNN batch
    axis into (T, B, 2, H, W); rejects ragged timestep counts."""
    shapes = {s.event_frames.shape for s in samples}
    if len(shapes) > 1:
        raise ValueError(
            f"cannot batch ragged event-frame shapes: {sorted(shapes)}")
    return np.stack([s.event_frames for s in samples], axis=1)


class EvFlowNet(FlowModel):
    """Full-ANN flow from the temporally discretized event volume."""

    name = "evflownet"

    def __init__(self, channels: int = 8, image_size: int = 16,
                 rng: Optional[np.random.Generator] = None, lr: float = 2e-3):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.image_size = image_size
        self.net = Sequential(
            Conv2d(4, channels, rng=rng, name="evf.c1"), ReLU(),
            Conv2d(channels, channels, rng=rng, name="evf.c2"), ReLU(),
            Conv2d(channels, 2, rng=rng, name="evf.c3"),
        )
        self.opt = Adam(self.net.parameters(), lr=lr)

    def predict(self, sample: FlowSample) -> np.ndarray:
        return self.net.forward(sample.discretized_volume[None])[0]

    def predict_batch(self, samples: Sequence[FlowSample]) -> np.ndarray:
        if not samples:
            return np.zeros((0, 2, self.image_size, self.image_size))
        return self.net.forward_batch(
            np.stack([s.discretized_volume for s in samples]))

    def train_step(self, sample: FlowSample) -> float:
        pred = self.net.forward(sample.discretized_volume[None])
        loss, grad = mse_loss(pred, sample.flow[None])
        self.opt.zero_grad()
        self.net.backward(grad)
        self.opt.step()
        return loss

    def macs(self) -> int:
        h = w = self.image_size
        return sum(_conv_macs(l, h, w) for l in self.net.layers
                   if isinstance(l, Conv2d))

    def inference_energy_pj(self, sample: FlowSample) -> float:
        return ann_energy_pj(self.macs())


class SpikeFlowNet(FlowModel):
    """Hybrid: fixed-dynamics SNN encoder + ANN decoder."""

    name = "spikeflownet"

    def __init__(self, channels: int = 8, image_size: int = 16,
                 rng: Optional[np.random.Generator] = None, lr: float = 2e-3):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.image_size = image_size
        # Depth lives in the cheap spiking domain (two SNN stages); the
        # ANN decoder is a single thin conv — the Spike-FlowNet balance
        # that yields its energy advantage over a full ANN.
        self.encoder = SpikingConv2d(2, channels, rng=rng, threshold=0.75,
                                     name="spf.enc1")
        self.encoder2 = SpikingConv2d(channels, channels, rng=rng,
                                      threshold=0.75, name="spf.enc2")
        # Decoder consumes early/late rate codes: averaging the whole
        # spike train would discard motion direction.
        self.decoder = Sequential(
            Conv2d(2 * channels, 2, rng=rng, name="spf.d1"),
        )
        self.opt = Adam(self.encoder.parameters()
                        + self.encoder2.parameters()
                        + self.decoder.parameters(), lr=lr)

    def _forward(self, sample: FlowSample) -> np.ndarray:
        s1 = self.encoder.forward(sample.event_frames[:, None])
        spikes = self.encoder2.forward(s1)
        self._s1_rate = float(s1.mean())
        self._t_steps = spikes.shape[0]
        self._half = max(self._t_steps // 2, 1)
        early = spikes[: self._half].mean(axis=0)
        late = spikes[self._half:].mean(axis=0)
        self._spike_count = float(spikes.sum())
        return self.decoder.forward(np.concatenate([early, late], axis=1))

    def predict(self, sample: FlowSample) -> np.ndarray:
        return self._forward(sample)[0]

    def predict_batch(self, samples: Sequence[FlowSample]) -> np.ndarray:
        if not samples:
            return np.zeros((0, 2, self.image_size, self.image_size))
        # The SNN encoders share one batch axis across samples (LIF
        # dynamics are per-sample independent); their kernel caches are
        # saved and restored so an in-flight training step survives.
        x = _stack_event_frames(samples)
        saved = (self.encoder._cache, self.encoder.last_membrane,
                 self.encoder2._cache, self.encoder2.last_membrane)
        try:
            s1 = self.encoder.forward(x)
            spikes = self.encoder2.forward(s1)
            half = max(spikes.shape[0] // 2, 1)
            early = spikes[: half].mean(axis=0)
            late = spikes[half:].mean(axis=0)
            return self.decoder.forward_batch(
                np.concatenate([early, late], axis=1))
        finally:
            (self.encoder._cache, self.encoder.last_membrane,
             self.encoder2._cache, self.encoder2.last_membrane) = saved

    def train_step(self, sample: FlowSample) -> float:
        pred = self._forward(sample)
        loss, grad = mse_loss(pred, sample.flow[None])
        self.opt.zero_grad()
        g_rate = self.decoder.backward(grad)
        g_early = g_rate[:, : self.channels]
        g_late = g_rate[:, self.channels:]
        g_spikes = np.zeros((self._t_steps,) + g_early.shape)
        g_spikes[: self._half] = g_early / self._half
        n_late = max(self._t_steps - self._half, 1)
        g_spikes[self._half:] = g_late / n_late
        g_s1 = self.encoder2.backward(g_spikes)
        self.encoder.backward(g_s1)
        self.opt.step()
        return loss

    def encoder_macs_per_timestep(self) -> int:
        h = w = self.image_size
        return (_conv_macs(self.encoder.conv, h, w)
                + _conv_macs(self.encoder2.conv, h, w))

    def decoder_macs(self) -> int:
        h = w = self.image_size
        return sum(_conv_macs(l, h, w) for l in self.decoder.layers
                   if isinstance(l, Conv2d))

    def inference_energy_pj(self, sample: FlowSample) -> float:
        t = sample.event_frames.shape[0]
        in_rate = spike_rate(np.clip(sample.event_frames, 0, 1))
        enc = snn_energy_pj(self.encoder_macs_per_timestep(), t, in_rate)
        return enc + ann_energy_pj(self.decoder_macs())


class FusionFlowNet(FlowModel):
    """Events (SNN) + frames (ANN) fusion, joint decoder."""

    name = "fusionflownet"

    def __init__(self, channels: int = 8, image_size: int = 16,
                 rng: Optional[np.random.Generator] = None, lr: float = 2e-3):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.image_size = image_size
        half = max(channels // 2, 2)
        self.half = half
        self.event_encoder = SpikingConv2d(2, half, rng=rng, threshold=0.75,
                                           name="ff.ev")
        self.frame_encoder = Sequential(
            Conv2d(2, half, rng=rng, name="ff.fr"), ReLU())
        # Early/late event rates + frame features -> 3 * half channels.
        self.decoder = Sequential(
            Conv2d(3 * half, channels, rng=rng, name="ff.d1"), ReLU(),
            Conv2d(channels, 2, rng=rng, name="ff.d2"),
        )
        self.opt = Adam(self.event_encoder.parameters()
                        + self.frame_encoder.parameters()
                        + self.decoder.parameters(), lr=lr)

    def _forward(self, sample: FlowSample) -> np.ndarray:
        spikes = self.event_encoder.forward(sample.event_frames[:, None])
        self._t_steps = spikes.shape[0]
        self._half_t = max(self._t_steps // 2, 1)
        ev_early = spikes[: self._half_t].mean(axis=0)
        ev_late = spikes[self._half_t:].mean(axis=0)
        fr_feat = self.frame_encoder.forward(sample.frames[None])
        fused = np.concatenate([ev_early, ev_late, fr_feat], axis=1)
        return self.decoder.forward(fused)

    def predict(self, sample: FlowSample) -> np.ndarray:
        return self._forward(sample)[0]

    def predict_batch(self, samples: Sequence[FlowSample]) -> np.ndarray:
        if not samples:
            return np.zeros((0, 2, self.image_size, self.image_size))
        x = _stack_event_frames(samples)
        frames = np.stack([s.frames for s in samples])
        saved = (self.event_encoder._cache, self.event_encoder.last_membrane)
        try:
            spikes = self.event_encoder.forward(x)
            half_t = max(spikes.shape[0] // 2, 1)
            ev_early = spikes[: half_t].mean(axis=0)
            ev_late = spikes[half_t:].mean(axis=0)
            fr_feat = self.frame_encoder.forward_batch(frames)
            fused = np.concatenate([ev_early, ev_late, fr_feat], axis=1)
            return self.decoder.forward_batch(fused)
        finally:
            (self.event_encoder._cache,
             self.event_encoder.last_membrane) = saved

    def train_step(self, sample: FlowSample) -> float:
        pred = self._forward(sample)
        loss, grad = mse_loss(pred, sample.flow[None])
        self.opt.zero_grad()
        g_fused = self.decoder.backward(grad)
        g_early = g_fused[:, : self.half]
        g_late = g_fused[:, self.half: 2 * self.half]
        g_fr = g_fused[:, 2 * self.half:]
        self.frame_encoder.backward(g_fr)
        g_spikes = np.zeros((self._t_steps,) + g_early.shape)
        g_spikes[: self._half_t] = g_early / self._half_t
        n_late = max(self._t_steps - self._half_t, 1)
        g_spikes[self._half_t:] = g_late / n_late
        self.event_encoder.backward(g_spikes)
        self.opt.step()
        return loss

    def inference_energy_pj(self, sample: FlowSample) -> float:
        h = w = self.image_size
        t = sample.event_frames.shape[0]
        in_rate = spike_rate(np.clip(sample.event_frames, 0, 1))
        enc = snn_energy_pj(_conv_macs(self.event_encoder.conv, h, w), t,
                            in_rate)
        frame_macs = sum(_conv_macs(l, h, w) for l in self.frame_encoder.layers
                         if isinstance(l, Conv2d))
        dec_macs = sum(_conv_macs(l, h, w) for l in self.decoder.layers
                       if isinstance(l, Conv2d))
        return enc + ann_energy_pj(frame_macs + dec_macs)


class AdaptiveSpikeNet(FlowModel):
    """Fully spiking with learnable leak/threshold; membrane readout."""

    name = "adaptive_spikenet"

    def __init__(self, channels: int = 8, image_size: int = 16,
                 rng: Optional[np.random.Generator] = None, lr: float = 2e-3):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.image_size = image_size
        self.l1 = SpikingConv2d(2, channels, rng=rng, threshold=0.75,
                                learnable_dynamics=True, name="asn.l1")
        self.l2 = SpikingConv2d(channels, channels, rng=rng, threshold=0.75,
                                learnable_dynamics=True, name="asn.l2")
        # Readout layer: high threshold so it (almost) never fires; flow
        # is decoded from its integrated membrane potential.  Learnable
        # dynamics give the readout temporal weighting (leak < 1 weights
        # late spikes more), which is how a potential readout recovers
        # motion *direction* from the spike train.
        self.l3 = SpikingConv2d(channels, 2, rng=rng, threshold=25.0,
                                learnable_dynamics=True, leak=0.7,
                                name="asn.l3")
        self.opt = Adam(self.l1.parameters() + self.l2.parameters()
                        + self.l3.parameters(), lr=lr)

    def _forward(self, sample: FlowSample) -> np.ndarray:
        s1 = self.l1.forward(sample.event_frames[:, None])
        self._s1 = s1
        s2 = self.l2.forward(s1)
        self._s2 = s2
        self.l3.forward(s2)
        t = sample.event_frames.shape[0]
        return self.l3.last_membrane / t  # (1, 2, H, W)

    def predict(self, sample: FlowSample) -> np.ndarray:
        return self._forward(sample)[0]

    def predict_batch(self, samples: Sequence[FlowSample]) -> np.ndarray:
        if not samples:
            return np.zeros((0, 2, self.image_size, self.image_size))
        x = _stack_event_frames(samples)
        saved = (self.l1._cache, self.l1.last_membrane,
                 self.l2._cache, self.l2.last_membrane,
                 self.l3._cache, self.l3.last_membrane)
        try:
            s1 = self.l1.forward(x)
            s2 = self.l2.forward(s1)
            self.l3.forward(s2)
            return self.l3.last_membrane / x.shape[0]
        finally:
            (self.l1._cache, self.l1.last_membrane,
             self.l2._cache, self.l2.last_membrane,
             self.l3._cache, self.l3.last_membrane) = saved

    def train_step(self, sample: FlowSample) -> float:
        pred = self._forward(sample)
        loss, grad = mse_loss(pred[0], sample.flow)
        self.opt.zero_grad()
        t = sample.event_frames.shape[0]
        zero_spike_grad = np.zeros((t,) + pred.shape)
        g_s2 = self.l3.backward(zero_spike_grad,
                                grad_membrane=grad[None] / t)
        g_s1 = self.l2.backward(g_s2)
        self.l1.backward(g_s1)
        self.opt.step()
        return loss

    def inference_energy_pj(self, sample: FlowSample) -> float:
        h = w = self.image_size
        t = sample.event_frames.shape[0]
        in_rate = spike_rate(np.clip(sample.event_frames, 0, 1))
        e1 = snn_energy_pj(_conv_macs(self.l1.conv, h, w), t, in_rate)
        l1_rate = spike_rate(self._s1) if hasattr(self, "_s1") else 0.1
        e2 = snn_energy_pj(_conv_macs(self.l2.conv, h, w), t, l1_rate)
        l2_rate = spike_rate(self._s2) if hasattr(self, "_s2") else 0.1
        e3 = snn_energy_pj(_conv_macs(self.l3.conv, h, w), t, l2_rate)
        return e1 + e2 + e3


FLOW_MODEL_FAMILIES = {
    "evflownet": EvFlowNet,
    "spikeflownet": SpikeFlowNet,
    "fusionflownet": FusionFlowNet,
    "adaptive_spikenet": AdaptiveSpikeNet,
}


def build_flow_model(name: str, channels: int = 8, image_size: int = 16,
                     rng: Optional[np.random.Generator] = None) -> FlowModel:
    if name not in FLOW_MODEL_FAMILIES:
        raise KeyError(f"unknown flow model {name!r}")
    return FLOW_MODEL_FAMILIES[name](channels=channels,
                                     image_size=image_size, rng=rng)


def train_flow_model(model: FlowModel, samples: Sequence[FlowSample],
                     epochs: int = 8,
                     rng: Optional[np.random.Generator] = None
                     ) -> List[float]:
    """SGD over the sample list; returns per-epoch mean losses."""
    rng = rng if rng is not None else np.random.default_rng(0)
    idx = np.arange(len(samples))
    losses: List[float] = []
    for _ in range(epochs):
        rng.shuffle(idx)
        total = 0.0
        for i in idx:
            total += model.train_step(samples[i])
        losses.append(total / max(len(samples), 1))
    return losses


def per_sample_aee(model: FlowModel, samples: Sequence[FlowSample],
                   masked: bool = True) -> List[float]:
    """Endpoint error of every sample individually (trace-level view).

    :func:`evaluate_aee` reduces this to its mean; golden-trace
    verification records the full vector so a drift on one sample
    cannot hide behind the aggregate.
    """
    from ..metrics.flow import average_endpoint_error
    errors: List[float] = []
    for sample in samples:
        pred = model.predict(sample)
        mask = sample.has_event_mask if masked else None
        errors.append(average_endpoint_error(pred, sample.flow, mask=mask))
    return errors


def evaluate_aee(model: FlowModel, samples: Sequence[FlowSample],
                 masked: bool = True) -> float:
    """Mean AEE over the samples (events-mask restricted, MVSEC-style)."""
    errors = per_sample_aee(model, samples, masked=masked)
    return sum(errors) / max(len(errors), 1)
