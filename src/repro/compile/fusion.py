"""Fusion + planning: lower a captured graph into an executable program.

The planner walks the (straight-line) graph once and groups nodes into
stages:

* ``gemm``        -> :class:`GemmStage` (float) or :class:`Int8GemmStage`
  (``precision="int8"``), each absorbing the **longest following chain
  of elementwise nodes** — bias add, activations, inference-mode
  dropout/BatchNorm affines — which then execute *in place* on the GEMM
  output buffer instead of allocating one array per op.
* ``call_module`` -> :class:`CallModuleStage` (conv/pool/GRU/Norm2d run
  their own ``forward_batch``), likewise absorbing an elementwise tail
  applied in place on the module's output.
* ``layernorm``   -> :class:`LayerNormStage` (a row-wise reduction, so
  it anchors its own buffer and also absorbs an elementwise tail).
* ``flatten``     -> :class:`FlattenStage` (a reshape view; free).
* a leading / orphan run of elementwise nodes -> :class:`ElementwiseStage`
  (copies the input into an arena slot once, then applies the chain in
  place).

With ``fuse=False`` every node becomes its own stage — the compile
benchmark's ``traced`` arm, pricing capture alone.  Chain application is
pure in-place ufunc arithmetic (``np.maximum(out=)`` etc.; sigmoid via a
clip/negate/exp/reciprocal chain, leaky-ReLU via a scratch negative
part) so a fused program touches no allocator in steady state when
paired with the :class:`repro.compile.arena.BufferArena`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .qint8 import Int8Dense
from .tracer import ELEMENTWISE_OPS, Graph, Node

__all__ = ["Program", "build_program", "PRECISIONS"]

PRECISIONS = ("float64", "int8")

# One chain entry per fused elementwise node: (op, layer-or-None).
ChainOp = Tuple[str, object]


def _apply_chain(y: np.ndarray, chain: List[ChainOp], alloc, key: str) -> None:
    """Run an elementwise chain in place on ``y`` (no fresh allocations)."""
    for i, (op, layer) in enumerate(chain):
        if op == "bias_add":
            np.add(y, layer.bias.data, out=y)
        elif op == "relu":
            np.maximum(y, 0.0, out=y)
        elif op == "leaky_relu":
            neg = alloc.scratch(f"{key}.c{i}.neg", y.shape, y.dtype)
            np.minimum(y, 0.0, out=neg)
            neg *= layer.slope
            np.maximum(y, 0.0, out=y)
            y += neg
        elif op == "tanh":
            np.tanh(y, out=y)
        elif op == "sigmoid":
            # 1 / (1 + exp(-y)), clipped at +/-60 like the eager layer to
            # avoid overflow at extreme logits (bit-identical to it).
            np.clip(y, -60.0, 60.0, out=y)
            np.negative(y, out=y)
            np.exp(y, out=y)
            y += 1.0
            np.reciprocal(y, out=y)
        elif op == "softplus":
            np.logaddexp(0.0, y, out=y)
        elif op in ("identity", "dropout"):
            pass  # inference-mode no-ops
        elif op == "bn_affine":
            # y <- y * s + t with s = gamma/sqrt(var+eps), t = beta - mean*s.
            # Recomputed into per-stage scratch each call: cheap (O(dim))
            # and keeps the program reading the *live* running stats.
            bn = layer
            dim = bn.gamma.data.shape[0]
            s = alloc.scratch(f"{key}.c{i}.bns", (dim,), y.dtype)
            t = alloc.scratch(f"{key}.c{i}.bnt", (dim,), y.dtype)
            np.add(bn.running_var, bn.eps, out=s)
            np.sqrt(s, out=s)
            np.divide(bn.gamma.data, s, out=s)
            np.multiply(bn.running_mean, s, out=t)
            np.subtract(bn.beta.data, t, out=t)
            y *= s
            y += t
        else:  # pragma: no cover - planner only emits known ops
            raise ValueError(f"unknown elementwise op {op!r}")


def _chain_of(nodes: List[Node]) -> List[ChainOp]:
    return [(n.op, n.layer) for n in nodes]


class GemmStage:
    """Dense matmul with a fused elementwise tail, written into the arena."""

    kind = "gemm"

    def __init__(self, key: str, dense, chain: List[ChainOp]):
        self.key = key
        self.dense = dense
        self.chain = chain

    def run(self, x: np.ndarray, alloc) -> np.ndarray:
        w = self.dense.weight.data
        y = alloc.out(self.key, x.shape[:-1] + (w.shape[1],), x.dtype)
        np.matmul(x, w, out=y)
        _apply_chain(y, self.chain, alloc, self.key)
        return y

    def describe(self) -> str:
        tail = "+".join(op for op, _ in self.chain)
        return (f"{self.key}: gemm({self.dense.weight.name})"
                + (f"+{tail}" if tail else ""))


class Int8GemmStage:
    """Dense matmul through the true-int8 path (packed lazily).

    Packing happens on *first run*, after any pending in-place weight
    loads (the federated server streams global weights into the template
    right before evaluating) have landed.  A rebound weight array is
    detected and triggers an automatic repack.
    """

    kind = "int8_gemm"

    def __init__(self, key: str, dense, chain: List[ChainOp]):
        self.key = key
        self.dense = dense
        self.chain = chain
        self.packed: Optional[Int8Dense] = None

    def ensure_packed(self) -> Int8Dense:
        if self.packed is None or self.packed.stale():
            self.packed = Int8Dense(self.dense)
        return self.packed

    def run(self, x: np.ndarray, alloc) -> np.ndarray:
        y = self.ensure_packed().run(x, alloc, self.key)
        _apply_chain(y, self.chain, alloc, self.key)
        return y

    def describe(self) -> str:
        tail = "+".join(op for op, _ in self.chain)
        return (f"{self.key}: int8_gemm({self.dense.weight.name})"
                + (f"+{tail}" if tail else ""))


class CallModuleStage:
    """Opaque layer executed via its own forward_batch, tail fused in place."""

    kind = "call_module"

    def __init__(self, key: str, layer, chain: List[ChainOp]):
        self.key = key
        self.layer = layer
        self.chain = chain

    def run(self, x: np.ndarray, alloc) -> np.ndarray:
        y = self.layer.forward_batch(x)
        _apply_chain(y, self.chain, alloc, self.key)
        return y

    def describe(self) -> str:
        tail = "+".join(op for op, _ in self.chain)
        name = type(self.layer).__name__
        return f"{self.key}: call_module({name})" + (f"+{tail}" if tail else "")


class ElementwiseStage:
    """A chain with no producing GEMM: one copy into the arena, then in place."""

    kind = "elementwise"

    def __init__(self, key: str, chain: List[ChainOp]):
        self.key = key
        self.chain = chain

    def run(self, x: np.ndarray, alloc) -> np.ndarray:
        y = alloc.out(self.key, x.shape, x.dtype)
        np.copyto(y, x)
        _apply_chain(y, self.chain, alloc, self.key)
        return y

    def describe(self) -> str:
        return f"{self.key}: " + "+".join(op for op, _ in self.chain)


class LayerNormStage:
    """Row-wise layer norm into the arena, with a fused elementwise tail."""

    kind = "layernorm"

    def __init__(self, key: str, layer, chain: List[ChainOp]):
        self.key = key
        self.layer = layer
        self.chain = chain

    def run(self, x: np.ndarray, alloc) -> np.ndarray:
        ln = self.layer
        stat_shape = x.shape[:-1] + (1,)
        y = alloc.out(self.key, x.shape, x.dtype)
        sq = alloc.scratch(self.key + ".sq", x.shape, x.dtype)
        mu = alloc.scratch(self.key + ".mu", stat_shape, x.dtype)
        var = alloc.scratch(self.key + ".var", stat_shape, x.dtype)
        np.mean(x, axis=-1, keepdims=True, out=mu)
        np.subtract(x, mu, out=y)
        np.multiply(y, y, out=sq)
        np.mean(sq, axis=-1, keepdims=True, out=var)
        np.add(var, ln.eps, out=var)
        np.sqrt(var, out=var)
        y /= var
        y *= ln.gamma.data
        y += ln.beta.data
        _apply_chain(y, self.chain, alloc, self.key)
        return y

    def describe(self) -> str:
        return f"{self.key}: layernorm({self.layer.gamma.name})"


class FlattenStage:
    """Reshape view — no buffer, no arithmetic."""

    kind = "flatten"

    def __init__(self, key: str):
        self.key = key
        self.chain: List[ChainOp] = []

    def run(self, x: np.ndarray, alloc) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def describe(self) -> str:
        return f"{self.key}: flatten"


class Program:
    """An ordered list of stages; ``run`` threads one array through them."""

    def __init__(self, graph: Graph, stages: List[object], precision: str,
                 fused_elementwise: int):
        self.graph = graph
        self.stages = stages
        self.precision = precision
        self.fused_elementwise = fused_elementwise

    def run(self, x: np.ndarray, alloc) -> np.ndarray:
        for stage in self.stages:
            x = stage.run(x, alloc)
        return x

    def int8_stage_count(self) -> int:
        return sum(s.kind == "int8_gemm" for s in self.stages)

    def call_module_count(self) -> int:
        return sum(s.kind == "call_module" for s in self.stages)

    def describe(self) -> str:
        return "\n".join(s.describe() for s in self.stages)


def build_program(graph: Graph, fuse: bool = True,
                  precision: str = "float64") -> Program:
    """Lower ``graph`` into a :class:`Program`.

    ``fuse=True`` absorbs elementwise chains into their producing stage;
    ``fuse=False`` emits one stage per node (the unfused baseline).
    ``precision="int8"`` lowers every ``gemm`` to the true-int8 path.
    """
    if precision not in PRECISIONS:
        raise ValueError(f"unknown precision {precision!r}; choose from {PRECISIONS}")
    nodes = graph.nodes
    stages: List[object] = []
    fused = 0
    i = 1 if nodes and nodes[0].op == "input" else 0
    while i < len(nodes):
        node = nodes[i]
        key = f"s{len(stages)}.n{node.idx}"
        tail: List[Node] = []
        if node.op in ("gemm", "call_module", "layernorm") and fuse:
            j = i + 1
            while j < len(nodes) and nodes[j].op in ELEMENTWISE_OPS:
                tail.append(nodes[j])
                j += 1
        if node.op == "gemm":
            cls = Int8GemmStage if precision == "int8" else GemmStage
            stages.append(cls(key, node.layer, _chain_of(tail)))
            fused += len(tail)
            i += 1 + len(tail)
        elif node.op == "call_module":
            stages.append(CallModuleStage(key, node.layer, _chain_of(tail)))
            fused += len(tail)
            i += 1 + len(tail)
        elif node.op == "layernorm":
            stages.append(LayerNormStage(key, node.layer, _chain_of(tail)))
            fused += len(tail)
            i += 1 + len(tail)
        elif node.op == "flatten":
            stages.append(FlattenStage(key))
            i += 1
        elif node.op in ELEMENTWISE_OPS:
            run: List[Node] = [node]
            j = i + 1
            while fuse and j < len(nodes) and nodes[j].op in ELEMENTWISE_OPS:
                run.append(nodes[j])
                j += 1
            stages.append(ElementwiseStage(key, _chain_of(run)))
            fused += len(run) - 1
            i = j
        else:  # pragma: no cover - tracer only emits known ops
            raise ValueError(f"planner cannot lower op {node.op!r}")
    return Program(graph, stages, precision, fused)
