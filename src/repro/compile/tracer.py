"""Graph capture: trace a :class:`repro.nn.Module` into an explicit op graph.

Tracing is *value-driven*: a :class:`TraceValue` flows through the module
the same way an activation tensor would, and every layer it passes
appends one or more :class:`Node` records to the growing :class:`Graph`.
Per-layer trace rules are registered by class (subclasses inherit their
nearest ancestor's rule), mirroring how the kernel registry of PR 4 maps
names to backends:

* ``Dense``                    -> ``gemm`` (+ ``bias_add``)
* activations / ``Dropout``    -> elementwise nodes (dropout is an
  inference-mode no-op)
* ``BatchNorm``                -> ``bn_affine`` (running-stats affine,
  the :meth:`forward_batch` inference semantics)
* ``LayerNorm``                -> ``layernorm`` (row-wise reduction,
  its own stage)
* ``Flatten``                  -> ``flatten`` (a reshape view)
* conv / pool / GRU / Norm2d   -> opaque ``call_module`` nodes (their
  ``forward_batch`` already runs as one fused numpy expression; fusing
  *into* their im2col loops would buy nothing)
* ``Sequential``               -> recursion over its layers

Anything without a rule raises :class:`TraceError` **naming the
offending op**, so untraceable constructs fail loudly at capture time
instead of silently producing a wrong program.  Callers that prefer
eager execution over an error use
:func:`repro.compile.compile_module` with ``fallback="eager"``.

The captured graph encodes ``forward_batch`` (pure inference) semantics.
That matters for two stateful layers: ``BatchNorm`` in training mode
normalizes with *batch* statistics and mutates its running estimates,
and ``Dropout`` in training mode draws a random mask — neither is a pure
function of the input, so a compiled artifact can stand in for their
``forward`` only when the layers are in eval mode.
:meth:`Graph.forward_unsafe` reports exactly this condition and the
mode-routing layer checks it on every ``forward`` call (``training``
flags can flip after capture).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    ConvTranspose2d,
    Dense,
    Dropout,
    Flatten,
    GRUCell,
    Identity,
    LayerNorm,
    LeakyReLU,
    MaxPool2d,
    Module,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
)
from ..nn.sequential import Sequential

__all__ = ["TraceError", "Node", "Graph", "TraceValue", "trace",
           "register_trace_rule", "supported_layers", "ELEMENTWISE_OPS"]


class TraceError(RuntimeError):
    """A module contains a construct the tracer has no rule for."""


# Ops a later fusion pass may fold onto the producing GEMM/conv output
# (all row-wise, in-place-applicable transforms).
ELEMENTWISE_OPS = frozenset({
    "bias_add", "relu", "leaky_relu", "tanh", "sigmoid", "softplus",
    "identity", "dropout", "bn_affine",
})


class Node:
    """One op of a captured graph (a straight-line single-input chain)."""

    __slots__ = ("idx", "op", "layer", "inputs", "shape", "meta")

    def __init__(self, idx: int, op: str, layer: Optional[Module],
                 inputs: Tuple[int, ...], shape: Optional[tuple] = None,
                 meta: Optional[dict] = None):
        self.idx = idx
        self.op = op
        self.layer = layer
        self.inputs = inputs
        self.shape = shape
        self.meta = meta or {}

    def describe(self) -> str:
        name = type(self.layer).__name__ if self.layer is not None else "-"
        shape = "x".join(map(str, self.shape)) if self.shape else "?"
        return f"%{self.idx} = {self.op}[{name}] <- {self.inputs} ({shape})"


class Graph:
    """Captured op graph for one module (plus the module itself)."""

    def __init__(self, module: Module):
        self.module = module
        self.nodes: List[Node] = []
        self.output: int = 0

    def add(self, op: str, layer: Optional[Module],
            inputs: Tuple[int, ...], shape: Optional[tuple] = None,
            meta: Optional[dict] = None) -> int:
        node = Node(len(self.nodes), op, layer, inputs, shape, meta)
        self.nodes.append(node)
        return node.idx

    def __len__(self) -> int:
        return len(self.nodes)

    def ops(self) -> List[str]:
        return [n.op for n in self.nodes]

    def elementwise_count(self) -> int:
        return sum(n.op in ELEMENTWISE_OPS for n in self.nodes)

    def forward_unsafe(self) -> bool:
        """True while the artifact may NOT stand in for ``forward``.

        The graph encodes inference (``forward_batch``) semantics;
        training-mode ``BatchNorm`` (batch statistics + running-stat
        mutation) and training-mode ``Dropout`` with ``p > 0`` (random
        masking) make the per-sample ``forward`` a different function.
        Checked per call because ``train()``/``eval()`` can flip the
        flags after capture.
        """
        for node in self.nodes:
            layer = node.layer
            if isinstance(layer, BatchNorm) and layer.training:
                return True
            if isinstance(layer, Dropout) and layer.training and layer.p > 0.0:
                return True
        return False

    def render(self) -> str:
        return "\n".join(n.describe() for n in self.nodes)


class TraceValue:
    """The tracer's stand-in for an activation tensor.

    Carries the graph under construction, the node that produced this
    value, and (when the trace was seeded with an example input) the
    concrete example array — which is how node shapes get recorded.
    """

    __slots__ = ("graph", "node", "array")

    def __init__(self, graph: Graph, node: int,
                 array: Optional[np.ndarray] = None):
        self.graph = graph
        self.node = node
        self.array = array

    def emit(self, op: str, layer: Optional[Module] = None,
             meta: Optional[dict] = None,
             push: Optional[Callable[[np.ndarray], np.ndarray]] = None
             ) -> "TraceValue":
        """Append one node fed by this value and advance the example."""
        array = None
        if self.array is not None and push is not None:
            array = push(self.array)
        shape = tuple(array.shape) if array is not None else None
        node = self.graph.add(op, layer, (self.node,), shape, meta)
        return TraceValue(self.graph, node, array)


# ------------------------------------------------------------- trace rules
TraceRule = Callable[[Any, TraceValue], TraceValue]
_TRACE_RULES: Dict[type, TraceRule] = {}


def register_trace_rule(cls: type) -> Callable[[TraceRule], TraceRule]:
    """Register the trace rule for a layer class (and its subclasses)."""
    def deco(fn: TraceRule) -> TraceRule:
        _TRACE_RULES[cls] = fn
        return fn
    return deco


def supported_layers() -> List[str]:
    return sorted(cls.__name__ for cls in _TRACE_RULES)


def _dispatch(module: Any, value: TraceValue) -> TraceValue:
    for cls in type(module).__mro__:
        rule = _TRACE_RULES.get(cls)
        if rule is not None:
            return rule(module, value)
    raise TraceError(
        f"no trace rule for op '{type(module).__name__}' "
        f"(module {getattr(module, 'name', None) or type(module).__name__!s});"
        f" traceable layers: {', '.join(supported_layers())}. "
        "Run this module eagerly or wrap it with "
        "compile_module(..., fallback='eager').")


def trace(module: Module, example: Optional[np.ndarray] = None) -> Graph:
    """Capture ``module``'s inference forward into a :class:`Graph`.

    With ``example`` given, a concrete array rides along the
    :class:`TraceValue` and every node records its output shape; without
    one the graph is structural and shapes are resolved by the buffer
    planner on first execution.  Raises :class:`TraceError` (naming the
    offending op) for constructs without a trace rule.
    """
    graph = Graph(module)
    array = None if example is None else np.asarray(example)
    shape = tuple(array.shape) if array is not None else None
    root = TraceValue(graph, graph.add("input", None, (), shape), array)
    out = _dispatch(module, root)
    graph.output = out.node
    return graph


@register_trace_rule(Sequential)
def _trace_sequential(seq: Sequential, value: TraceValue) -> TraceValue:
    for layer in seq.layers:
        value = _dispatch(layer, value)
    return value


@register_trace_rule(Dense)
def _trace_dense(layer: Dense, value: TraceValue) -> TraceValue:
    value = value.emit("gemm", layer, push=lambda a: a @ layer.weight.data)
    if layer.bias is not None:
        value = value.emit("bias_add", layer,
                           push=lambda a: a + layer.bias.data)
    return value


def _elementwise_rule(op: str, cls: type) -> None:
    @register_trace_rule(cls)
    def rule(layer, value, _op=op):
        return value.emit(_op, layer, push=layer.forward_batch)


_elementwise_rule("relu", ReLU)
_elementwise_rule("leaky_relu", LeakyReLU)
_elementwise_rule("tanh", Tanh)
_elementwise_rule("sigmoid", Sigmoid)
_elementwise_rule("softplus", Softplus)
_elementwise_rule("identity", Identity)
# Inference-mode dropout is the identity (inverted dropout pre-scales).
_elementwise_rule("dropout", Dropout)
# Inference-mode BatchNorm is an affine transform of the running stats.
_elementwise_rule("bn_affine", BatchNorm)


@register_trace_rule(LayerNorm)
def _trace_layernorm(layer: LayerNorm, value: TraceValue) -> TraceValue:
    return value.emit("layernorm", layer, push=layer.forward_batch)


@register_trace_rule(Flatten)
def _trace_flatten(layer: Flatten, value: TraceValue) -> TraceValue:
    return value.emit("flatten", layer, push=layer.forward_batch)


def _call_module_rule(cls: type) -> None:
    @register_trace_rule(cls)
    def rule(layer, value):
        return value.emit("call_module", layer, push=layer.forward_batch)


# Opaque leaves: their forward_batch is already one fused numpy
# expression (im2col GEMMs, pooling reductions, the GRU's gate algebra,
# Norm2d's pure per-sample normalization); the planner treats each as a
# single stage and still fuses any elementwise tail onto its output.
for _cls in (Conv2d, ConvTranspose2d, MaxPool2d, AvgPool2d, GRUCell):
    _call_module_rule(_cls)

try:  # Norm2d lives with the R-MAE decoder; optional so a trimmed
    from ..generative.rmae import Norm2d  # install still traces MLPs.
except Exception:  # pragma: no cover - generative always ships
    Norm2d = None
if Norm2d is not None:
    _call_module_rule(Norm2d)
