"""repro.compile: trace-and-compile execution layer for the nn substrate.

The sensing-to-action argument (paper Sec. II-IV) is that edge wins come
from co-optimizing the loop down to the execution substrate.  This
package is that substrate for the numpy models: **capture** a module's
inference forward into an explicit op graph (:func:`trace`), **lower**
it through elementwise fusion and buffer planning
(:func:`~repro.compile.fusion.build_program`,
:class:`~repro.compile.arena.BufferArena`) so steady-state inference
does zero fresh allocations, and — for HaLo-selected int8 precision —
execute **true int8 GEMMs** (:mod:`repro.compile.qint8`) instead of
fake-quantized float.

Usage::

    from repro.compile import compile_module, compile_mode

    fast = compile_module(model)            # explicit artifact
    y = fast.forward_batch(x)

    with compile_mode("compiled"):          # or REPRO_COMPILE=compiled:
        model.forward_batch(x)              # Sequentials route through
                                            # cached compiled artifacts

Every compiled artifact is differentially tested against the eager
reference: ``repro verify`` gains a ``compiled`` check (all five golden
scenarios, int8 exercised for the federated round) and
``benchmarks/bench_compile.py`` prices each lever — capture, fusion,
arena, int8 — with the JSON gated in CI.
"""

from .arena import BufferArena, FreshAllocator
from .executor import (
    COMPILE_ENV,
    MODES,
    CompiledModule,
    CompileError,
    CompileFallbackWarning,
    CompileStats,
    active_mode,
    compile_mode,
    compile_module,
    compile_stats,
    force_mode,
    reset_compile_stats,
)
from .fusion import PRECISIONS, Program, build_program
from .qint8 import Int8Dense
from .tracer import (
    ELEMENTWISE_OPS,
    Graph,
    Node,
    TraceError,
    TraceValue,
    register_trace_rule,
    supported_layers,
    trace,
)

__all__ = [
    "trace", "Graph", "Node", "TraceValue", "TraceError",
    "register_trace_rule", "supported_layers", "ELEMENTWISE_OPS",
    "build_program", "Program", "PRECISIONS",
    "BufferArena", "FreshAllocator", "Int8Dense",
    "CompiledModule", "compile_module", "CompileError",
    "CompileFallbackWarning",
    "compile_mode", "force_mode", "active_mode", "MODES", "COMPILE_ENV",
    "CompileStats", "compile_stats", "reset_compile_stats",
]
