"""Pre-planned buffer arena: steady-state inference with zero fresh allocations.

Every stage of a compiled program writes its output into an arena slot
keyed by stage id, and borrows named scratch slots for intermediates
(leaky-ReLU negative parts, int8 quantization staging, layer-norm
moments, per-layer affine parameters).  Slots are allocated on first
use, sized by *capacity* along the leading axis, and handed back as
``buf[:batch]`` views on every subsequent call — so once the arena has
seen the largest batch, repeated inference performs **zero** numpy
allocations in the gemm/elementwise stages (opaque ``call_module``
stages still allocate inside their own ``forward_batch``; the planner
reports them so benchmarks can attribute the difference).

Capacity grows by doubling when a larger batch arrives, which amortizes
replanning for workloads whose batch size ramps up (the serve layer's
micro-batcher coalesces 1..max_batch_size requests).  A slot is keyed by
``(trailing shape, dtype)`` as well — if a stage's per-item shape ever
changes (e.g. after :meth:`CompiledModule.recompile` against mutated
weights), the slot is simply re-allocated rather than corrupted.

``FreshAllocator`` implements the same interface with a plain
``np.empty`` per request; the compile benchmark uses it to price
exactly what the arena buys (the ``fused`` vs ``fused_arena`` stages).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["BufferArena", "FreshAllocator"]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class BufferArena:
    """Keyed, capacity-growing buffer pool returning ``buf[:batch]`` views."""

    def __init__(self):
        self._slots: Dict[str, Tuple[np.ndarray, tuple, np.dtype]] = {}
        self.allocations = 0  # fresh backing allocations (not views)
        self.requests = 0

    def out(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """Return a writable buffer of ``shape`` backed by slot ``key``.

        The leading axis is treated as batch: the backing array keeps
        ``capacity >= shape[0]`` rows and the caller gets a
        ``backing[:shape[0]]`` view.  Contents are uninitialized — every
        stage fully overwrites its output.
        """
        self.requests += 1
        dtype = np.dtype(dtype)
        if len(shape) == 0:  # scalar output: no batch axis to grow
            batch, item = 1, ()
            want = (1,)
        else:
            batch, item = int(shape[0]), tuple(shape[1:])
            want = shape
        slot = self._slots.get(key)
        if slot is None or slot[1] != item or slot[2] != dtype \
                or slot[0].shape[0] < batch:
            capacity = _next_pow2(batch)
            backing = np.empty((capacity,) + item, dtype=dtype)
            self._slots[key] = (backing, item, dtype)
            self.allocations += 1
        backing = self._slots[key][0]
        view = backing[:batch]
        return view.reshape(want) if len(shape) == 0 else view

    # Scratch space shares the slot machinery; a separate namespace only
    # to keep stage-output keys readable in introspection/tests.
    def scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        return self.out("~" + key, shape, dtype)

    def nbytes(self) -> int:
        return sum(slot[0].nbytes for slot in self._slots.values())

    def slot_count(self) -> int:
        return len(self._slots)

    def reset(self) -> None:
        self._slots.clear()


class FreshAllocator:
    """Allocation-per-request stand-in (the un-planned baseline)."""

    def __init__(self):
        self.allocations = 0
        self.requests = 0

    def out(self, key: str, shape: tuple, dtype) -> np.ndarray:
        self.requests += 1
        self.allocations += 1
        return np.empty(shape, dtype=np.dtype(dtype))

    def scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        return self.out(key, shape, dtype)

    def nbytes(self) -> int:
        return 0

    def slot_count(self) -> int:
        return 0

    def reset(self) -> None:
        pass
