"""True int8 GEMM execution with scale/zero-point propagation.

This replaces the fake-quantized float path (quantize weights, keep
computing in float64) with genuine integer arithmetic for HaLo-selected
int8 precision:

* **Weights** are quantized once at pack time — per-output-channel
  symmetric int8 (``w_q[:, j] = round(w[:, j] / s_w[j])``,
  ``s_w[j] = max|w[:, j]| / 127``) — and stored as ``int8``.  All-zero
  channels get scale 1.0 (every entry quantizes to 0 exactly).
* **Activations** are quantized dynamically per call — per-tensor
  asymmetric uint8 over ``[min(x), max(x)]`` widened to include zero,
  with scale/zero-point from :func:`repro.nn.quantize.affine_qparams`
  (the PR's int8-boundary bugfix; the compile layer and the HaLo-FL
  simulation now share one grid definition).
* **Accumulation** is exact int32: with zero-point ``z``,
  ``y = (q_x - z) @ w_q * (s_x * s_w) = (q_x @ w_q - z * colsum(w_q)) * (s_x * s_w)``
  so the zero-point folds into a precomputed per-column weight sum and
  the inner GEMM is a single integer ``matmul``.

NumPy has no mixed s8/u8 -> s32 GEMM kernel, so the int8 tensors are
*stored* at 1 byte per weight (the memory/bandwidth win HaLo prices)
while the GEMM *operand* is a cached int32 copy of the same integers —
the arithmetic is bona-fide integer arithmetic with exact int32
accumulation, not fake-quantized float.  Overflow is impossible for any
practical width: ``|acc| <= 255 * 127 * in_features`` stays below
``2**31`` for ``in_features`` up to ~66k, checked at pack time.

Every packed layer also exposes :meth:`Int8Dense.drift_bound`, the
per-layer worst-case deviation from the float GEMM:

``|dy_j| <= s_x/2 * ||w_:j||_1  +  s_w[j]/2 * ||x||_1  +  n * s_x * s_w[j] / 4``

(activation rounding error through the true weights, weight rounding
error through the true activations, and the cross term) — the compile
benchmark and verify's ``compiled`` check assert observed drift stays
inside it.
"""

from __future__ import annotations

import numpy as np

from ..nn.quantize import affine_qparams

__all__ = ["Int8Dense"]

_INT32_SAFE_IN_FEATURES = (2 ** 31 - 1) // (255 * 127)


class Int8Dense:
    """A :class:`repro.nn.Dense` packed for true int8 inference."""

    def __init__(self, dense):
        w = np.asarray(dense.weight.data, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"Int8Dense expects a 2-D weight, got {w.shape}")
        in_features, out_features = w.shape
        if in_features > _INT32_SAFE_IN_FEATURES:
            raise ValueError(
                f"in_features={in_features} would overflow exact int32 "
                f"accumulation (limit {_INT32_SAFE_IN_FEATURES})")
        abs_max = np.abs(w).max(axis=0) if in_features else np.zeros(out_features)
        scale = abs_max / 127.0
        # All-zero (or subnormal-scale) channels: scale 1.0 maps every
        # entry to exactly 0 — the edge case the quantize() fix covers.
        degenerate = scale == 0.0
        scale = np.where(degenerate, 1.0, scale)
        q = np.round(w / scale)
        np.clip(q, -127, 127, out=q)
        self.dense = dense
        self.in_features = in_features
        self.out_features = out_features
        self.weight_q = q.astype(np.int8)       # canonical 1-byte storage
        self.weight_scale = scale               # per-output-channel s_w
        self._w_i32 = self.weight_q.astype(np.int32)  # GEMM operand cache
        self._col_sum = self._w_i32.sum(axis=0, dtype=np.int64)
        self._col_l1 = np.abs(w).sum(axis=0)    # for the drift bound
        self._weight_ref = dense.weight.data    # staleness witness

    def stale(self) -> bool:
        """True if the Dense weight array was rebound since packing.

        In-place writes (``p.data[...] = w``) are invisible here by
        design — repacking on every call would defeat the point of
        storing weights once.  Callers that mutate weights in place must
        :meth:`repro.compile.CompiledModule.recompile`.
        """
        return self.dense.weight.data is not self._weight_ref

    def run(self, x: np.ndarray, alloc, key: str) -> np.ndarray:
        """``x @ W`` through the int8 grid, float64 out, zero fresh allocs."""
        lo = float(x.min()) if x.size else 0.0
        hi = float(x.max()) if x.size else 0.0
        act_scale, zero_point = affine_qparams(lo, hi, 8)

        # Quantize activations: stage in float (in-place chain), then a
        # single unsafe cast into the int32 GEMM operand buffer.
        staging = alloc.scratch(key + ".qstage", x.shape, np.float64)
        np.divide(x, act_scale, out=staging)
        np.rint(staging, out=staging)
        staging += zero_point
        np.clip(staging, 0, 255, out=staging)
        q_x = alloc.scratch(key + ".qx", x.shape, np.int32)
        np.copyto(q_x, staging, casting="unsafe")

        out_shape = x.shape[:-1] + (self.out_features,)
        acc = alloc.scratch(key + ".acc", out_shape, np.int32)
        np.matmul(q_x, self._w_i32, out=acc)

        # y = (acc - z * colsum) * (s_x * s_w)
        y = alloc.out(key, out_shape, np.float64)
        if zero_point:
            corr = alloc.scratch(key + ".corr", (self.out_features,), np.int64)
            np.multiply(self._col_sum, zero_point, out=corr)
            np.subtract(acc, corr, out=y)
        else:
            np.copyto(y, acc, casting="same_kind")
        combined = alloc.scratch(key + ".scale", (self.out_features,), np.float64)
        np.multiply(self.weight_scale, act_scale, out=combined)
        np.multiply(y, combined, out=y)
        return y

    def drift_bound(self, x: np.ndarray) -> float:
        """Worst-case ``max |y_int8 - y_float|`` for this input batch."""
        x = np.asarray(x, dtype=np.float64)
        lo = float(x.min()) if x.size else 0.0
        hi = float(x.max()) if x.size else 0.0
        act_scale, _ = affine_qparams(lo, hi, 8)
        row_l1 = float(np.abs(x).sum(axis=-1).max()) if x.size else 0.0
        per_channel = (act_scale / 2.0 * self._col_l1
                       + self.weight_scale / 2.0 * row_l1
                       + self.in_features * act_scale * self.weight_scale / 4.0)
        return float(per_channel.max()) if per_channel.size else 0.0

    def report(self) -> dict:
        return {
            "in_features": self.in_features,
            "out_features": self.out_features,
            "weight_dtype": str(self.weight_q.dtype),
            "weight_bytes": int(self.weight_q.nbytes),
            "float_bytes": int(self.in_features * self.out_features * 8),
            "scale_min": float(self.weight_scale.min()) if self.out_features else 1.0,
            "scale_max": float(self.weight_scale.max()) if self.out_features else 1.0,
        }
