"""Compiled execution: artifacts, the eager/compiled mode switch, routing.

:class:`CompiledModule` ties the pieces together — trace at
construction (loud :class:`~repro.compile.tracer.TraceError` on
untraceable constructs), lower through the fusion planner, execute
against a pre-planned :class:`~repro.compile.arena.BufferArena`.  It is
deliberately **not** a :class:`repro.nn.Module`: wrapping must not
double-count parameters when a host model holds both the original and
the wrapper (``Module.parameters`` walks attributes), and a compiled
artifact is inference-only — ``backward`` raises
:class:`CompileError` instead of silently training against a stale
graph.  Unknown attributes delegate to the wrapped module so call sites
like the Koopman controller's ``model.proj.weight`` keep working.

Mode selection mirrors the kernel registry: ``REPRO_COMPILE=eager|compiled``
picks the process-wide default and :func:`compile_mode` scopes an
override.  Under ``compiled`` mode, :class:`repro.nn.Sequential`
forwards route here (see :func:`routed_forward`); artifacts are cached
per live Sequential in a :class:`weakref.WeakKeyDictionary`, untraceable
modules warn once (:class:`CompileFallbackWarning`) and fall back to
eager, and graphs whose training-mode BatchNorm/Dropout make batched
semantics diverge from the stateful per-sample ``forward`` bypass to
eager for ``forward`` only.

Counters live in a module-global :class:`CompileStats` (captures,
fallbacks, runs, fused ops, int8 GEMMs, ...) — *not* in ``repro.obs``
counters, which the golden traces snapshot; capture latency is recorded
as a ``compile.capture_s`` histogram, which goldens ignore by design.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..nn.layers import Module
from ..obs.registry import get_registry
from .arena import BufferArena, FreshAllocator
from .fusion import PRECISIONS, build_program
from .tracer import TraceError, trace

__all__ = [
    "MODES", "COMPILE_ENV", "CompileError", "CompileFallbackWarning",
    "active_mode", "compile_mode", "force_mode", "CompiledModule",
    "compile_module", "CompileStats", "compile_stats",
    "reset_compile_stats",
]

MODES = ("eager", "compiled")
COMPILE_ENV = "REPRO_COMPILE"

_forced: Optional[str] = None  # compile_mode() override; checked first


class CompileError(RuntimeError):
    """Invalid use of a compiled artifact (training, bad mode/precision)."""


class CompileFallbackWarning(RuntimeWarning):
    """An untraceable module fell back to eager execution (loud, once)."""


@dataclass
class CompileStats:
    """Process-wide compile telemetry (kept out of repro.obs counters so
    golden traces stay byte-identical whether or not compilation ran)."""

    captures: int = 0         # successful traces
    fallbacks: int = 0        # TraceError -> eager fallbacks
    eager_bypasses: int = 0   # forward() bypasses (training-mode BN/dropout)
    runs: int = 0             # compiled executions
    fused_elementwise: int = 0
    int8_gemms: int = 0       # int8 GEMM stage executions
    recompiles: int = 0

    def snapshot(self) -> dict:
        return dict(vars(self))

    def delta(self, before: dict) -> dict:
        return {k: v - before.get(k, 0) for k, v in vars(self).items()}


_STATS = CompileStats()


def compile_stats() -> CompileStats:
    return _STATS


def reset_compile_stats() -> None:
    global _STATS
    _STATS = CompileStats()


def active_mode() -> str:
    """Resolve the execution mode: forced override, then env, then eager."""
    if _forced is not None:
        return _forced
    raw = os.environ.get(COMPILE_ENV, "").strip().lower()
    if not raw:
        return "eager"
    if raw not in MODES:
        raise CompileError(
            f"invalid {COMPILE_ENV}={raw!r}; choose from {MODES}")
    return raw


def force_mode(mode: Optional[str]) -> Optional[str]:
    """Imperatively install (or with ``None`` clear) the scoped mode
    override; returns the previous override.

    The actuator-style twin of :func:`compile_mode` (mirroring
    ``repro.kernels.force_backend``): runtime reconfiguration flips the
    mode mid-run and restores the returned previous value itself.
    """
    global _forced
    if mode is not None and mode not in MODES:
        raise CompileError(f"unknown compile mode {mode!r}; choose from {MODES}")
    previous = _forced
    _forced = mode
    return previous


@contextmanager
def compile_mode(mode: str):
    """Scoped mode override, nestable; mirrors ``kernel_backend()``."""
    if mode not in MODES:
        raise CompileError(f"unknown compile mode {mode!r}; choose from {MODES}")
    global _forced
    previous = _forced
    _forced = mode
    try:
        yield
    finally:
        _forced = previous


class CompiledModule:
    """An inference-only compiled artifact standing in for a Module.

    Parameters
    ----------
    module:       the :class:`repro.nn.Module` to capture.
    precision:    ``"float64"`` (default) or ``"int8"`` (true int8 GEMMs).
    fuse:         absorb elementwise chains into producing stages.
    arena:        execute against a pre-planned buffer arena (zero
                  steady-state allocations); ``False`` allocates fresh
                  buffers per stage (the benchmark's ablation arm).
    copy_output:  return a private copy instead of an arena view.  Keep
                  ``True`` (default) whenever outputs outlive the next
                  call; the benchmark's steady-state arm turns it off.
    """

    def __init__(self, module: Module, precision: str = "float64",
                 fuse: bool = True, arena: bool = True,
                 copy_output: bool = True):
        if precision not in PRECISIONS:
            raise CompileError(
                f"unknown precision {precision!r}; choose from {PRECISIONS}")
        t0 = time.perf_counter()
        graph = trace(module)  # may raise TraceError — callers decide policy
        program = build_program(graph, fuse=fuse, precision=precision)
        self.__dict__["_wrapped"] = module
        self.__dict__["graph"] = graph
        self.__dict__["program"] = program
        self.__dict__["precision"] = precision
        self.__dict__["fuse"] = fuse
        self.__dict__["arena"] = BufferArena() if arena else FreshAllocator()
        self.__dict__["copy_output"] = copy_output
        _STATS.captures += 1
        _STATS.fused_elementwise += program.fused_elementwise
        get_registry().histogram("compile.capture_s").observe(
            time.perf_counter() - t0)

    # -- execution ----------------------------------------------------
    def _run(self, x: np.ndarray) -> np.ndarray:
        y = self.program.run(x, self.arena)
        _STATS.runs += 1
        _STATS.int8_gemms += self.program.int8_stage_count()
        return np.copy(y) if self.copy_output else y

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        return self._run(np.asarray(x))

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 1:  # per-sample call sites (Koopman encode) lift/squeeze
            return self._run(x[None, :])[0]
        return self._run(x)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, grad: np.ndarray):
        raise CompileError(
            "compiled artifacts are inference-only: backward would train "
            "against buffers the arena has already recycled. Keep the "
            "original module for training and exact likelihood-regret "
            "scoring, or recompile() after updating weights.")

    def recompile(self) -> "CompiledModule":
        """Re-trace and re-plan after the wrapped module's weights or
        structure changed in place (int8 packs are dropped and rebuilt)."""
        graph = trace(self._wrapped)
        self.__dict__["graph"] = graph
        self.__dict__["program"] = build_program(
            graph, fuse=self.fuse, precision=self.precision)
        self.arena.reset()
        _STATS.recompiles += 1
        return self

    # -- Module-facing surface ---------------------------------------
    def parameters(self):
        return self._wrapped.parameters()

    def modules(self):
        return self._wrapped.modules()

    def eval(self) -> "CompiledModule":
        self._wrapped.eval()
        return self

    def train(self):
        raise CompileError(
            "compiled artifacts cannot enter training mode; call train() "
            "on the original module and run it eagerly.")

    def __getattr__(self, name: str):
        wrapped = self.__dict__.get("_wrapped")
        if wrapped is None:
            raise AttributeError(name)
        return getattr(wrapped, name)

    def __repr__(self) -> str:
        return (f"CompiledModule({type(self._wrapped).__name__}, "
                f"precision={self.precision!r}, stages={len(self.program.stages)}, "
                f"fused={self.program.fused_elementwise})")


def compile_module(module: Module, precision: str = "float64",
                   fuse: bool = True, arena: bool = True,
                   copy_output: bool = True, fallback: str = "error"):
    """Compile ``module``; policy for untraceable constructs is explicit.

    ``fallback="error"`` (default) re-raises the :class:`TraceError`.
    ``fallback="eager"`` warns loudly (:class:`CompileFallbackWarning`),
    bumps the fallback counter, and returns the *original module*
    unchanged — callers keep a working model either way.
    """
    if fallback not in ("error", "eager"):
        raise CompileError(f"unknown fallback policy {fallback!r}")
    try:
        return CompiledModule(module, precision=precision, fuse=fuse,
                              arena=arena, copy_output=copy_output)
    except TraceError as exc:
        if fallback == "error":
            raise
        _STATS.fallbacks += 1
        warnings.warn(
            f"repro.compile: falling back to eager execution for "
            f"{type(module).__name__}: {exc}",
            CompileFallbackWarning, stacklevel=2)
        return module


# ---------------------------------------------------------------- routing
# Sequential.forward/forward_batch consult active_mode() and, under
# "compiled", land here.  One artifact per live Sequential; fallbacks
# are remembered so the warning fires once per module, not per call.
_ARTIFACTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_FALLBACK = object()  # sentinel: this Sequential is untraceable


def _artifact_for(seq) -> Optional[CompiledModule]:
    entry = _ARTIFACTS.get(seq)
    if entry is None:
        try:
            entry = CompiledModule(seq)
        except TraceError as exc:
            _STATS.fallbacks += 1
            warnings.warn(
                f"repro.compile: falling back to eager execution for "
                f"{type(seq).__name__}: {exc}",
                CompileFallbackWarning, stacklevel=4)
            entry = _FALLBACK
        _ARTIFACTS[seq] = entry
    return None if entry is _FALLBACK else entry


def routed_forward(seq, x: np.ndarray) -> np.ndarray:
    artifact = _artifact_for(seq)
    if artifact is None:
        return seq._eager_forward(x)
    if artifact.graph.forward_unsafe():
        # Training-mode BatchNorm/Dropout: the stateful per-sample
        # forward is a different function — run it eagerly.
        _STATS.eager_bypasses += 1
        return seq._eager_forward(x)
    seq.__dict__["_ran_compiled"] = True
    return artifact.forward(x)


def routed_forward_batch(seq, x: np.ndarray) -> np.ndarray:
    artifact = _artifact_for(seq)
    if artifact is None:
        return seq._eager_forward_batch(x)
    return artifact.forward_batch(x)
