"""``repro.metrics`` — shared evaluation metrics (AUC, optical flow)."""

from .auc import roc_auc, roc_curve
from .flow import average_endpoint_error, flow_outlier_fraction

__all__ = ["roc_auc", "roc_curve", "average_endpoint_error",
           "flow_outlier_fraction"]
