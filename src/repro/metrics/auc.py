"""ROC / AUC utilities for anomaly-detection evaluation (Sec. V)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["roc_curve", "roc_auc"]


def roc_curve(scores: Sequence[float], labels: Sequence[int]
              ) -> Tuple[np.ndarray, np.ndarray]:
    """False/true positive rates swept over all score thresholds.

    ``labels``: 1 = anomalous (positive), 0 = nominal.  Higher scores
    should indicate anomalies.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same shape")
    if not np.all(np.isin(labels, (0, 1))):
        raise ValueError("labels must be binary")
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    tps = np.cumsum(labels)
    fps = np.cumsum(1 - labels)
    n_pos = int(labels.sum())
    n_neg = int(len(labels) - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need both positive and negative samples")
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    return fpr, tpr


def roc_auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the ROC curve via the Mann-Whitney statistic.

    Exactly handles ties; 0.5 means the score cannot separate the
    classes, 1.0 means perfect separation.  Degenerate single-class
    input (all-positive or all-negative labels) carries no separation
    evidence, so it returns chance level 0.5 rather than the NaN a
    naive 0/0 normalization would produce — monitors evaluating a batch
    that happens to be all-nominal keep a well-defined reading.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same shape")
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    if pos.size == 0 or neg.size == 0:
        return 0.5
    # Rank-sum formulation with midranks for ties.
    combined = np.concatenate([pos, neg])
    order = np.argsort(combined, kind="stable")
    ranks = np.empty_like(combined)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    # midranks for ties
    sorted_scores = combined[order]
    i = 0
    while i < combined.size:
        j = i
        while j + 1 < combined.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            mid = (i + j + 2) / 2.0
            for k in range(i, j + 1):
                ranks[order[k]] = mid
        i = j + 1
    rank_sum = ranks[: pos.size].sum()
    u = rank_sum - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))
