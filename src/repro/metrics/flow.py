"""Optical-flow metrics (Sec. VI): average endpoint error."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["average_endpoint_error", "flow_outlier_fraction"]


def average_endpoint_error(pred: np.ndarray, target: np.ndarray,
                           mask: Optional[np.ndarray] = None) -> float:
    """Mean Euclidean distance between predicted and true flow vectors.

    ``pred`` and ``target`` are (2, H, W) (dx, dy) fields; ``mask``
    optionally restricts the average to valid pixels (events-only
    evaluation on MVSEC uses a mask of pixels with events).
    """
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape or pred.shape[0] != 2:
        raise ValueError("flow fields must both be (2, H, W)")
    err = np.sqrt(((pred - target) ** 2).sum(axis=0))
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != err.shape:
            raise ValueError("mask shape mismatch")
        if not mask.any():
            return 0.0
        return float(err[mask].mean())
    return float(err.mean())


def flow_outlier_fraction(pred: np.ndarray, target: np.ndarray,
                          threshold: float = 3.0) -> float:
    """Fraction of pixels whose endpoint error exceeds ``threshold`` px."""
    err = np.sqrt(((np.asarray(pred) - np.asarray(target)) ** 2).sum(axis=0))
    return float((err > threshold).mean())
