"""Fleet front-end scheduling: routing, SLO lanes, staleness admission.

The router's policy brain, split out of the process machinery exactly
the way :class:`repro.serve.MicroBatcher` is split out of
:class:`repro.serve.BatchedService`: :class:`FleetScheduler` is a pure,
clock-injected state machine, so every routing and shedding decision is
an exact function of recorded dispatches/completions and the injected
:class:`~repro.core.clock.Clock` — drive it with a
:class:`~repro.core.clock.VirtualClock` and the policy is unit-testable
without processes, threads, or sleeps.

Three policy layers, applied per request in this order:

1. **Placement** — consistent hashing over replica ids (SHA-256 ring
   with virtual nodes) keeps a client's requests on one replica so its
   micro-batches stay warm; when the primary's queue is ``spill_depth``
   deep the request spills to the least-loaded replica instead.
2. **Staleness admission** — the paper's Sec. II argument made
   operational: a stale observation served on time beats a fresh one
   served late, so a request that *cannot* be served inside its
   declared staleness budget is not queued at all.  The projected queue
   delay (per-replica EMA of service time x queue depth, plus the
   request's current age) is compared against the budget: over budget
   means **shed** (reject now, let the loop use its previous estimate)
   or — for lanes that allow it — **downgrade** (serve through a cheap
   fallback method instead, e.g. SPSA likelihood regret in place of
   exact).  Priority-0 lanes get one escape hatch: retry the projection
   on the least-loaded replica before giving up.
3. **Backpressure** — a hard per-replica in-flight cap
   (``max_queue_depth``, which also sizes the shared-memory ring) sheds
   with reason ``"overload"`` once every replica is full.

Everything is accounted twice: local counters/histograms on the
scheduler (exact, available with telemetry disabled) and ``fleet.*``
instruments on the active :mod:`repro.obs` registry.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.clock import Clock, SystemClock
from ..obs.registry import Histogram, get_registry

__all__ = ["SLOLane", "DEFAULT_LANES", "FleetConfig", "Decision",
           "ConsistentHashRing", "FleetScheduler"]


@dataclass(frozen=True)
class SLOLane:
    """One tenant class: its priority and latency/staleness contract.

    priority:
        0 is the most important.  Priority-0 requests whose primary
        replica cannot meet their budget are retried against the
        least-loaded replica before being shed.
    latency_budget_ms:
        The end-to-end target the tenant signed up for (reported, not
        enforced — enforcement is the staleness budget below).
    staleness_budget_ms:
        Default per-request staleness budget: the longest a request may
        wait in queue before its observation is too stale to act on.
        Individual requests may override it downward or upward.
    downgradable:
        Whether requests in this lane may be served by the registered
        fallback method when the budget cannot be met (downgrade
        instead of shed).
    """

    name: str
    priority: int = 1
    latency_budget_ms: float = 100.0
    staleness_budget_ms: float = 250.0
    downgradable: bool = False

    def __post_init__(self):
        if self.priority < 0:
            raise ValueError("priority must be >= 0 (0 = most important)")
        if self.staleness_budget_ms <= 0:
            raise ValueError("staleness_budget_ms must be positive")


#: Three lanes cover the paper's loop taxonomy: control-critical loops
#: (tight budget, never approximated silently), standard telemetry, and
#: best-effort analytics that prefer a degraded answer over none.
DEFAULT_LANES: Tuple[SLOLane, ...] = (
    SLOLane("interactive", priority=0, latency_budget_ms=50.0,
            staleness_budget_ms=100.0, downgradable=False),
    SLOLane("default", priority=1, latency_budget_ms=100.0,
            staleness_budget_ms=250.0, downgradable=False),
    SLOLane("besteffort", priority=2, latency_budget_ms=500.0,
            staleness_budget_ms=1000.0, downgradable=True),
)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-wide sizing and admission knobs.

    replicas:
        Number of :class:`BatchedService` shards.
    vnodes:
        Virtual nodes per replica on the consistent-hash ring.
    max_queue_depth:
        Hard per-replica in-flight cap; also the shared-memory ring's
        slot count, so admission control doubles as slot lifecycle.
    spill_depth:
        Queue depth at which a request abandons its hash-affine primary
        for the least-loaded replica.
    ema_alpha:
        Weight of the newest per-request service-time sample in the
        exponential moving average behind delay projection.
    initial_service_s:
        Per-request service-time prior used before a replica has
        reported any completions.
    slot_bytes:
        Payload slot size for the shared-memory ring.
    """

    replicas: int = 2
    vnodes: int = 32
    max_queue_depth: int = 64
    spill_depth: int = 8
    ema_alpha: float = 0.2
    initial_service_s: float = 0.005
    slot_bytes: int = 4096

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("need at least one replica")
        if self.vnodes < 1:
            raise ValueError("need at least one virtual node per replica")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")


@dataclass(frozen=True)
class Decision:
    """Outcome of one admission: where the request goes, or why not.

    action is ``"dispatch"`` (to ``replica``), ``"downgrade"`` (serve
    via the fallback method), or ``"shed"`` (reject).  ``reason`` is
    ``"stale"`` or ``"overload"`` for non-dispatch outcomes, and
    ``projected_wait_s`` is the queue-delay estimate the decision was
    based on.
    """

    action: str
    replica: Optional[int] = None
    reason: str = ""
    projected_wait_s: float = 0.0


class ConsistentHashRing:
    """SHA-256 consistent-hash ring over replica indices.

    ``vnodes`` virtual points per replica smooth the key distribution;
    routing is deterministic across processes and Python versions
    (``hashlib``, not the salted builtin ``hash``).
    """

    def __init__(self, replicas: int, vnodes: int = 32):
        if replicas < 1:
            raise ValueError("need at least one replica")
        points: List[Tuple[int, int]] = []
        for replica in range(replicas):
            for vnode in range(vnodes):
                points.append((self._digest(f"replica:{replica}:{vnode}"),
                               replica))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [r for _, r in points]
        self.replicas = replicas

    @staticmethod
    def _digest(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")

    def route(self, key: str) -> int:
        """The replica owning ``key``: first ring point at or after its
        hash, wrapping at the top."""
        h = self._digest(str(key))
        index = bisect.bisect_left(self._hashes, h)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]


class FleetScheduler:
    """Deterministic routing/admission core for a replica fleet."""

    def __init__(self, config: Optional[FleetConfig] = None,
                 lanes: Optional[Sequence[SLOLane]] = None,
                 clock: Optional[Clock] = None, name: str = "fleet",
                 controller=None):
        self.config = config or FleetConfig()
        self.clock = clock if clock is not None else SystemClock()
        self.name = name
        # Optional runtime-reconfiguration hook (duck-typed: anything
        # with ``on_completion(scheduler)``, normally a
        # repro.control.FleetControlBinding).  Invoked after each
        # completion — where depths and the service EMA just changed —
        # so spill/shed knobs can be retuned from observed load.
        self.controller = controller
        self.lanes: Dict[str, SLOLane] = {
            lane.name: lane for lane in (lanes or DEFAULT_LANES)}
        self.ring = ConsistentHashRing(self.config.replicas,
                                       self.config.vnodes)
        n = self.config.replicas
        self._depth = [0] * n
        self._ema_service_s = [self.config.initial_service_s] * n
        self.dispatched_per_replica = [0] * n
        # Local accounting mirrors the ``fleet.*`` obs instruments so
        # policy tests and benchmarks work with telemetry disabled.
        self.requests = 0
        self.dispatched = 0
        self.completed = 0
        self.spills = 0
        self.shed_stale = 0
        self.shed_overload = 0
        self.downgraded = 0
        self.request_latency = Histogram(f"{name}.request_latency_s")
        self.downgrade_latency = Histogram(f"{name}.downgrade_latency_s")
        self.service_time = Histogram(f"{name}.replica_service_s")

    # ----------------------------------------------------------- lookups
    @property
    def shed_total(self) -> int:
        return self.shed_stale + self.shed_overload

    def lane(self, name: str) -> SLOLane:
        try:
            return self.lanes[name]
        except KeyError:
            raise ValueError(
                f"unknown SLO lane {name!r}; configured lanes: "
                f"{', '.join(sorted(self.lanes))}") from None

    def depth(self, replica: int) -> int:
        """Requests currently in flight to ``replica``."""
        return self._depth[replica]

    def projected_wait_s(self, replica: int) -> float:
        """Queue-delay estimate: in-flight depth x per-request EMA."""
        return self._depth[replica] * self._ema_service_s[replica]

    def least_loaded(self) -> int:
        """Replica with the smallest projected wait (depth, then index,
        break ties deterministically)."""
        return min(range(self.config.replicas),
                   key=lambda r: (self.projected_wait_s(r),
                                  self._depth[r], r))

    # --------------------------------------------------------- admission
    def assign(self, key: str, lane: str = "default",
               staleness_budget_ms: Optional[float] = None,
               enqueue_t: Optional[float] = None,
               can_downgrade: bool = True) -> Decision:
        """Admit one request: place it, downgrade it, or shed it.

        ``enqueue_t`` is when the underlying observation was taken
        (defaults to now); its age counts against the staleness budget,
        so a request that arrives already stale is shed immediately.
        ``can_downgrade`` is false when no fallback method is
        registered, turning would-be downgrades into sheds.
        """
        obs = get_registry()
        self.requests += 1
        obs.counter(f"{self.name}.requests").inc()
        slo = self.lane(lane)
        budget_s = (slo.staleness_budget_ms if staleness_budget_ms is None
                    else float(staleness_budget_ms)) / 1e3
        now = self.clock.now()
        age_s = 0.0 if enqueue_t is None else max(0.0, now - enqueue_t)
        slack_s = budget_s - age_s

        primary = self.ring.route(key)
        target = primary
        if self._depth[primary] >= self.config.spill_depth:
            alt = self.least_loaded()
            if self.projected_wait_s(alt) < self.projected_wait_s(primary):
                target = alt
                self.spills += 1
                obs.counter(f"{self.name}.spills").inc()

        projected = self.projected_wait_s(target)
        if projected > slack_s:
            # Priority-0 lanes try the least-loaded replica before the
            # request is given up on.
            alt = self.least_loaded()
            if (slo.priority == 0 and alt != target
                    and self.projected_wait_s(alt) <= slack_s):
                target, projected = alt, self.projected_wait_s(alt)
                self.spills += 1
                obs.counter(f"{self.name}.spills").inc()
            elif slo.downgradable and can_downgrade:
                self.downgraded += 1
                obs.counter(f"{self.name}.downgraded").inc()
                return Decision("downgrade", None, "stale", projected)
            else:
                return self._shed("stale", projected, obs)

        if self._depth[target] >= self.config.max_queue_depth:
            alt = self.least_loaded()
            if self._depth[alt] >= self.config.max_queue_depth:
                return self._shed("overload", projected, obs)
            target = alt
            self.spills += 1
            obs.counter(f"{self.name}.spills").inc()
        return Decision("dispatch", target, "", projected)

    def _shed(self, reason: str, projected: float, obs) -> Decision:
        if reason == "stale":
            self.shed_stale += 1
        else:
            self.shed_overload += 1
        obs.counter(f"{self.name}.shed").inc()
        obs.counter(f"{self.name}.shed_{reason}").inc()
        return Decision("shed", None, reason, projected)

    # -------------------------------------------------------- accounting
    def record_dispatch(self, replica: int) -> None:
        """A request was handed to ``replica``'s queue."""
        self._depth[replica] += 1
        self.dispatched += 1
        self.dispatched_per_replica[replica] += 1
        obs = get_registry()
        obs.counter(f"{self.name}.dispatched").inc()
        obs.gauge(f"{self.name}.r{replica}.queue_depth").set(
            self._depth[replica])

    def record_completion(self, replica: int, service_s: float,
                          batch_size: int) -> None:
        """A batch of ``batch_size`` requests finished on ``replica`` in
        ``service_s`` wall seconds; updates depth and the service EMA."""
        if batch_size < 1:
            return
        self._depth[replica] = max(0, self._depth[replica] - batch_size)
        self.completed += batch_size
        per_request = service_s / batch_size
        alpha = self.config.ema_alpha
        self._ema_service_s[replica] = (
            alpha * per_request + (1.0 - alpha) * self._ema_service_s[replica])
        self.service_time.observe(service_s)
        obs = get_registry()
        obs.counter(f"{self.name}.completed").inc(batch_size)
        obs.gauge(f"{self.name}.r{replica}.queue_depth").set(
            self._depth[replica])
        obs.histogram(f"{self.name}.replica_service_s").observe(service_s)
        if self.controller is not None:
            self.controller.on_completion(self)

    def record_latency(self, seconds: float, downgraded: bool = False
                       ) -> None:
        """One request's end-to-end latency (cross-replica histogram)."""
        obs = get_registry()
        if downgraded:
            self.downgrade_latency.observe(seconds)
            obs.histogram(f"{self.name}.downgrade_latency_s").observe(seconds)
        else:
            self.request_latency.observe(seconds)
            obs.histogram(f"{self.name}.request_latency_s").observe(seconds)

    # ---------------------------------------------------------- reporting
    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p95/p99 end-to-end latency over dispatched requests."""
        return self.request_latency.quantiles()

    def snapshot(self) -> dict:
        """JSON-ready view of the scheduler's accounting."""
        return {
            "replicas": self.config.replicas,
            "requests": self.requests,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "spills": self.spills,
            "shed": self.shed_total,
            "shed_stale": self.shed_stale,
            "shed_overload": self.shed_overload,
            "downgraded": self.downgraded,
            "queue_depth": list(self._depth),
            "dispatched_per_replica": list(self.dispatched_per_replica),
            "ema_service_s": [round(s, 6) for s in self._ema_service_s],
            "latency_quantiles_s": self.latency_quantiles(),
        }
