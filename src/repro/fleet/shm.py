"""Shared-memory payload plane for the serving fleet.

Request and response payloads cross the router/replica process boundary
through a :class:`ShmSlab` — a fixed-slot ring carved out of one
``multiprocessing.shared_memory`` segment — instead of being pickled
through the control queue.  Control messages stay tiny (sequence
number, slot index, shape, dtype); the array bytes are written once by
the producer and read once by the consumer, which is what keeps the
per-request router overhead flat as feature payloads grow.

Slot lifecycle is owned entirely by the router: a slot is in use from
dispatch until its response has been consumed, and the scheduler's
per-replica in-flight cap equals the slot count, so a slot can never be
reused while a request is still in flight.  Replicas write the response
into the same slot the request arrived in (the request bytes are dead
the moment the batch runner has copied them out).

Environments without ``multiprocessing.shared_memory`` (or payloads
larger than a slot) degrade gracefully: the transport falls back to
inline descriptors, trading copies for compatibility.  Check
:data:`SHM_AVAILABLE` or call :func:`shm_available` before forcing the
``"shm"`` transport.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # gate the optional dependency: WASM-ish hosts lack shm entirely
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised only on exotic hosts
    _shared_memory = None

__all__ = ["SHM_AVAILABLE", "ShmSlab", "shm_available"]

SHM_AVAILABLE = _shared_memory is not None


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can back a slab."""
    return SHM_AVAILABLE


class ShmSlab:
    """Fixed-slot shared-memory ring: ``nslots`` slots of ``slot_bytes``.

    The creating side (the router) calls ``ShmSlab(nslots, slot_bytes)``
    and eventually :meth:`unlink`; replicas attach by name with
    ``ShmSlab.attach(name, nslots, slot_bytes)`` and only :meth:`close`.
    Payloads are raw array bytes — shape and dtype travel in the control
    message, so a slot needs no header.
    """

    def __init__(self, nslots: int, slot_bytes: int,
                 name: Optional[str] = None, _attach: bool = False):
        if _shared_memory is None:
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this "
                "host; use the inline ('pickle') fleet transport")
        if nslots < 1 or slot_bytes < 8:
            raise ValueError("need nslots >= 1 and slot_bytes >= 8")
        self.nslots = int(nslots)
        self.slot_bytes = int(slot_bytes)
        if _attach:
            # Replicas are children of the router, so they share its
            # resource-tracker process: attaching re-registers the same
            # name in the same tracker (a set, so a no-op) and the
            # router's unlink() clears it exactly once.  Unregistering
            # here would strip the shared cache entry out from under
            # the router's unlink.
            self._shm = _shared_memory.SharedMemory(name=name)
        else:
            self._shm = _shared_memory.SharedMemory(
                create=True, size=self.nslots * self.slot_bytes, name=name)
        self._unlinked = False

    @classmethod
    def attach(cls, name: str, nslots: int, slot_bytes: int) -> "ShmSlab":
        """Open an existing slab by name (replica side)."""
        return cls(nslots, slot_bytes, name=name, _attach=True)

    @property
    def name(self) -> str:
        return self._shm.name

    # --------------------------------------------------------------- I/O
    def fits(self, arr: np.ndarray) -> bool:
        """Whether ``arr``'s bytes fit in one slot."""
        return arr.nbytes <= self.slot_bytes

    def write(self, slot: int, arr: np.ndarray
              ) -> Tuple[Tuple[int, ...], str]:
        """Copy ``arr`` into ``slot``; returns the (shape, dtype)
        descriptor the reader needs."""
        arr = np.ascontiguousarray(arr)
        if not 0 <= slot < self.nslots:
            raise IndexError(f"slot {slot} out of range 0..{self.nslots - 1}")
        if arr.nbytes > self.slot_bytes:
            raise ValueError(
                f"payload of {arr.nbytes} bytes exceeds slot size "
                f"{self.slot_bytes}")
        offset = slot * self.slot_bytes
        self._shm.buf[offset:offset + arr.nbytes] = arr.tobytes()
        return tuple(arr.shape), arr.dtype.str

    def read(self, slot: int, shape: Tuple[int, ...], dtype: str
             ) -> np.ndarray:
        """Copy the array stored in ``slot`` back out (owning copy)."""
        if not 0 <= slot < self.nslots:
            raise IndexError(f"slot {slot} out of range 0..{self.nslots - 1}")
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        if nbytes > self.slot_bytes:
            raise ValueError("descriptor larger than a slot")
        offset = slot * self.slot_bytes
        flat = np.frombuffer(self._shm.buf, dtype=dt,
                             count=nbytes // dt.itemsize, offset=offset)
        return flat.reshape(shape).copy()

    # --------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Detach this process's mapping (safe to call twice)."""
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - double close on teardown
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; safe to call twice)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except Exception:  # pragma: no cover - already gone
            pass
