"""``repro.fleet`` — sharded multi-process serving fabric.

One :class:`~repro.serve.BatchedService` batches many loops in one
process; this package shards that service across a fleet of replica
processes behind a staleness-aware router, operationalizing the paper's
Sec. II argument that loop *latency and observation staleness* — not
just model error — bound closed-loop autonomy: a request that cannot be
served inside its staleness budget is shed (or downgraded to a cheap
fallback method) instead of served late.

Layers:

* :mod:`repro.fleet.scheduler` — :class:`FleetScheduler`, the pure,
  clock-injected routing/admission core (consistent hashing + SLO lanes
  + staleness admission + backpressure), unit-testable on a
  :class:`~repro.core.clock.VirtualClock`.
* :mod:`repro.fleet.shm` — :class:`ShmSlab`, the fixed-slot
  shared-memory ring that carries payloads so control messages stay
  tiny.
* :mod:`repro.fleet.replica` — the replica-side micro-batching service
  loop (process- and thread-runnable).
* :mod:`repro.fleet.fabric` — :class:`ServingFleet`, the process fabric
  tying router, replicas, transport, and telemetry merge together.
* :mod:`repro.fleet.driver` — the scaling benchmark behind
  ``repro fleet-bench`` and ``benchmarks/bench_fleet_scaling.py``.
"""

from .driver import (
    EmulatedServiceRunner,
    FleetBenchConfig,
    MonitorRunnerFactory,
    run_fleet_benchmark,
)
from .fabric import FleetReplicaError, RequestShed, ServingFleet
from .replica import ReplicaSpec, replica_loop, replica_main
from .scheduler import (
    DEFAULT_LANES,
    ConsistentHashRing,
    Decision,
    FleetConfig,
    FleetScheduler,
    SLOLane,
)
from .shm import SHM_AVAILABLE, ShmSlab, shm_available

__all__ = [
    "SLOLane", "DEFAULT_LANES", "FleetConfig", "Decision",
    "ConsistentHashRing", "FleetScheduler",
    "SHM_AVAILABLE", "ShmSlab", "shm_available",
    "ReplicaSpec", "replica_loop", "replica_main",
    "RequestShed", "FleetReplicaError", "ServingFleet",
    "FleetBenchConfig", "MonitorRunnerFactory", "EmulatedServiceRunner",
    "run_fleet_benchmark",
]
