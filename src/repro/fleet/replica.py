"""Replica side of the fleet: one sharded micro-batching service loop.

A replica is the fleet's unit of parallelism: a process (or, for
deterministic tests, a thread) that owns one model instance and batches
the requests the router sends it, with the same coalescing policy as
:class:`repro.serve.MicroBatcher` (flush on full batch or on the oldest
request's ``max_wait_ms`` deadline) re-expressed over a control queue.

The loop is transport-agnostic on purpose: it takes *queue-like*
objects (``get``/``get_nowait``/``put``) and an optional
:class:`~repro.fleet.shm.ShmSlab`, so the exact same code path runs

* in a child **process** with ``multiprocessing`` queues and payloads
  in shared memory (production shape), and
* in an in-process **thread** with ``queue.Queue`` and inline payloads
  (the deterministic integration-test shape).

Failure containment mirrors :meth:`MicroBatcher.run_batch`: a batch
runner exception resolves every request in the batch with the error —
including the replica-side formatted traceback, so a replica crash in
CI is diagnosable from the router's logs alone — instead of killing the
replica.  A non-batch fatal error (bad spec, slab attach failure) emits
a ``("fatal", ...)`` message with the traceback and exits.

Message protocol (control plane; payloads ride the slab when they fit):

====================================================  =================
router -> replica                                     meaning
====================================================  =================
``("req", seq, slot, shape, dtype, payload)``         one request
``("stop",)``                                         drain and exit
====================================================  =================

====================================================  =================
replica -> router                                     meaning
====================================================  =================
``("ready", index)``                                  model built
``("res", index, service_s, [(seq, slot, shape,``     one finished
``dtype, payload, error), ...])``                     batch
``("bye", index, stats, obs_delta)``                  clean shutdown
``("fatal", index, traceback_text)``                  replica died
====================================================  =================
"""

from __future__ import annotations

import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from ..obs.registry import MetricsRegistry, get_registry, use_registry
from ..serve.scheduler import BatcherConfig
from .shm import ShmSlab

__all__ = ["ReplicaSpec", "replica_loop", "replica_main"]

# (replica_index, replica_seed) -> batch runner
RunnerFactory = Callable[[int, int], Callable[[List[Any]], Any]]


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a replica process needs to build its service.

    ``runner_factory`` must be a picklable (module-level) callable so
    the spec can cross a process boundary on spawn-start platforms; it
    receives the replica index and a per-replica seed derived with
    :func:`repro.runtime.spawn_seeds`.  Replicas that must stay
    numerically interchangeable (the equivalence contract of the fleet
    bench) should key their weights off a seed carried *inside* the
    factory and ignore the per-replica one.
    """

    runner_factory: RunnerFactory
    batch: BatcherConfig = field(default_factory=BatcherConfig)
    seed: int = 0


def _decode(slab: Optional[ShmSlab], slot: int, shape, dtype,
            payload: Any) -> Any:
    """A request message's payload: ``payload is None`` means "read the
    slab at ``slot``" (the router only inlines non-None payloads)."""
    if payload is None and slab is not None and slot >= 0 \
            and shape is not None:
        return slab.read(slot, shape, dtype)
    return payload


def _encode(slab: Optional[ShmSlab], slot: int, result: Any) -> Tuple:
    """(slot, shape, dtype, payload) for one result row: ndarray results
    ride the shared-memory slot when they fit, everything else inlines."""
    if slab is not None and slot >= 0 and isinstance(result, np.ndarray):
        arr = np.ascontiguousarray(result)
        if slab.fits(arr):
            shape, dtype = slab.write(slot, arr)
            return slot, shape, dtype, None
    return -1, None, None, result


def replica_loop(index: int, spec: ReplicaSpec, seed: int,
                 request_q, response_q,
                 slab: Optional[ShmSlab] = None) -> dict:
    """Serve until a ``("stop",)`` sentinel arrives; returns stats.

    Raises nothing for batch-level failures (those are routed back per
    request with tracebacks); construction failures propagate to the
    caller (:func:`replica_main` turns them into ``("fatal", ...)``).
    """
    runner = spec.runner_factory(index, seed)
    cfg = spec.batch
    obs = get_registry()
    response_q.put(("ready", index))

    pending: List[Tuple[int, int, float, Any]] = []  # (seq, slot, t, item)
    requests = 0
    batches = 0
    errors = 0
    stopping = False

    def flush() -> None:
        nonlocal batches, errors
        if not pending:
            return
        batch = pending[:cfg.max_batch_size]
        del pending[:len(batch)]
        items = [item for _, _, _, item in batch]
        t0 = time.perf_counter()
        error_text: Optional[str] = None
        results: List[Any] = []
        try:
            results = list(runner(items))
            if len(results) != len(batch):
                raise RuntimeError(
                    f"replica {index}: runner returned {len(results)} "
                    f"results for a batch of {len(batch)}")
        except BaseException:
            error_text = (f"replica {index} batch runner failed:\n"
                          + traceback.format_exc())
            errors += len(batch)
        service_s = time.perf_counter() - t0
        rows = []
        for row, (seq, slot, t_enq, _) in enumerate(batch):
            if error_text is not None:
                rows.append((seq, -1, None, None, None, error_text))
            else:
                out_slot, shape, dtype, payload = _encode(
                    slab, slot, results[row])
                rows.append((seq, out_slot, shape, dtype, payload, None))
            obs.histogram(f"fleet.r{index}.queue_wait_s").observe(
                t0 - t_enq)
        batches += 1
        obs.counter(f"fleet.r{index}.batches").inc()
        obs.histogram(f"fleet.r{index}.batch_size").observe(len(batch))
        obs.histogram(f"fleet.r{index}.service_s").observe(service_s)
        response_q.put(("res", index, service_s, rows))

    while True:
        message = None
        if pending:
            deadline = pending[0][2] + cfg.max_wait_ms / 1e3
            timeout = deadline - time.perf_counter()
            if timeout > 0:
                try:
                    message = request_q.get(timeout=timeout)
                except queue_module.Empty:
                    message = None
        else:
            message = request_q.get()

        while message is not None:
            if message[0] == "stop":
                stopping = True
                break
            _, seq, slot, shape, dtype, payload = message
            pending.append((seq, slot, time.perf_counter(),
                            _decode(slab, slot, shape, dtype, payload)))
            requests += 1
            obs.counter(f"fleet.r{index}.requests").inc()
            if len(pending) >= cfg.max_batch_size:
                break
            try:  # greedy drain: fill the batch without waiting
                message = request_q.get_nowait()
            except queue_module.Empty:
                message = None

        if stopping:
            while pending:
                flush()
            return {"requests": requests, "batches": batches,
                    "errors": errors}

        if pending and (len(pending) >= cfg.max_batch_size
                        or time.perf_counter() - pending[0][2]
                        >= cfg.max_wait_ms / 1e3):
            flush()


def replica_main(index: int, spec: ReplicaSpec, seed: int,
                 request_q, response_q,
                 slab_name: Optional[str] = None, slab_nslots: int = 0,
                 slab_slot_bytes: int = 0, capture_obs: bool = False,
                 slab: Optional[ShmSlab] = None) -> None:
    """Process/thread entry point: attach transport, serve, report.

    ``capture_obs`` runs the loop under a private registry and ships
    the counter/gauge/histogram deltas back in the ``bye`` message for
    submission-order merge in the router — the same telemetry contract
    as :class:`repro.runtime.WorkerPool` workers.
    """
    attached = None
    try:
        if slab is None and slab_name is not None:
            attached = slab = ShmSlab.attach(slab_name, slab_nslots,
                                             slab_slot_bytes)
        if capture_obs:
            registry = MetricsRegistry()
            with use_registry(registry):
                stats = replica_loop(index, spec, seed, request_q,
                                     response_q, slab)
            delta = registry.worker_snapshot()
        else:
            stats = replica_loop(index, spec, seed, request_q,
                                 response_q, slab)
            delta = None
        response_q.put(("bye", index, stats, delta))
    except BaseException:
        response_q.put(("fatal", index, traceback.format_exc()))
    finally:
        if attached is not None:
            attached.close()
