"""Fleet scaling benchmark driver.

Serves the same deterministic multi-client STARNet trust workload three
ways and compares them request-for-request:

* **reference** — the parent process scores every client stream
  directly through :meth:`STARNet.assess_batch` (ground truth for the
  equivalence gate);
* **single-process** — all clients share one :class:`BatchedService`
  (the PR-5 serving baseline);
* **fleet** — the clients are sharded across a
  :class:`~repro.fleet.fabric.ServingFleet` of 1/2/4 replica
  processes.

Each replica's batch runner is wrapped in an
:class:`EmulatedServiceRunner` that pads every batch to a *device
latency floor* (``per_batch_ms + per_item_ms x batch_size``), the same
honest single-CPU methodology as ``bench_runtime_scaling.py``: the
floor models a fixed-latency accelerator/sensor round-trip that
overlaps across replicas but not within one, so the throughput ratio
measures real scheduling concurrency rather than Python compute
parallelism the host may not have.  The single-process baseline runs
the *identical* wrapped runner, so the comparison is apples-to-apples.

Equivalence holds because :class:`MonitorRunnerFactory` keys the model
weights off the seed carried inside the factory (ignoring the
per-replica seed): every replica and the parent reference build
bit-identical monitors, and ``assess_batch`` rows are independent, so
per-request trust values agree to kernel drift tolerance no matter how
requests are sharded or batched.

The load sweep drives a fresh 2-replica fleet open-loop at fractions of
its measured closed-loop capacity with a finite staleness budget:
sub-saturation points must shed nothing (blocking gate), the overload
point should shed (the admission control engaging is the feature).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.components import Percept
from ..serve.driver import EQUIVALENCE_TOL, FeatureEnv
from ..serve.scheduler import BatchedService, BatcherConfig
from ..starnet.monitor import STARNet
from .fabric import RequestShed, ServingFleet
from .replica import ReplicaSpec
from .scheduler import FleetConfig

__all__ = ["FleetBenchConfig", "MonitorRunnerFactory",
           "EmulatedServiceRunner", "run_fleet_benchmark"]

SPEEDUP_TARGET = 2.0  # fleet@max-replicas over single-process BatchedService


@dataclass(frozen=True)
class FleetBenchConfig:
    """Workload shape and fleet knobs for the scaling benchmark."""

    clients: int = 24
    cycles_per_client: int = 20
    feature_dim: int = 6
    replica_counts: Tuple[int, ...] = (1, 2, 4)
    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    max_queue_depth: int = 64
    spill_depth: int = 6
    fit_epochs: int = 15
    seed: int = 0
    # Emulated device latency floor per batch (see module docstring).
    per_batch_ms: float = 8.0
    per_item_ms: float = 5.0
    # Closed-loop requests declare a generous staleness budget: queueing
    # under benign load must never shed (the blocking gate).
    closed_loop_staleness_budget_ms: float = 1000.0
    # Open-loop tail-latency sweep: offered load as fractions of the
    # measured closed-loop capacity at ``sweep_replicas``.
    sweep_replicas: int = 2
    sweep_fractions: Tuple[float, ...] = (0.35, 0.7, 1.8)
    sweep_duration_s: float = 2.5
    sweep_staleness_budget_ms: float = 150.0
    inprocess: bool = False
    transport: str = "auto"
    # Run every replica's monitor through repro.compile (traced/fused/
    # arena artifacts).  Compiled replicas are forward-only, so the
    # scorer switches to the reconstruction method — for *both* the
    # replicas and the parent reference, keeping the equivalence gate a
    # compiled-vs-eager differential over identical models.
    compiled: bool = False

    @property
    def score_method(self) -> str:
        return "recon" if self.compiled else "exact"

    @classmethod
    def smoke(cls, replica_counts: Tuple[int, ...] = (1, 2),
              compiled: bool = False) -> "FleetBenchConfig":
        """CI-sized variant (seconds): fewer clients/cycles, tiny fit,
        shorter sweep — same gates, smaller evidence."""
        return cls(clients=6, cycles_per_client=5, replica_counts=replica_counts,
                   max_batch_size=4, fit_epochs=5, per_batch_ms=6.0,
                   per_item_ms=3.0, sweep_fractions=(0.3, 2.5),
                   sweep_duration_s=0.8, compiled=compiled)


class EmulatedServiceRunner:
    """Pad each batch to a fixed device-latency floor.

    The wrapped runner's real compute overlaps the floor (the sleep
    covers only the remainder), so the floor is a *minimum* batch
    latency — the emulated accelerator round-trip — not an additive
    cost.
    """

    def __init__(self, runner, per_batch_ms: float, per_item_ms: float):
        self.runner = runner
        self.per_batch_ms = per_batch_ms
        self.per_item_ms = per_item_ms

    def __call__(self, items: List[Any]) -> List[Any]:
        t0 = time.perf_counter()
        results = self.runner(items)
        floor_s = (self.per_batch_ms + self.per_item_ms * len(items)) / 1e3
        remaining = floor_s - (time.perf_counter() - t0)
        if remaining > 0:
            time.sleep(remaining)
        return results


class _FeatureBatchRunner:
    """Batch runner over raw feature vectors (shared-memory friendly:
    requests are plain arrays, results are plain floats).  With
    ``compiled=True`` every batch scores inside a
    ``compile_mode("compiled")`` scope, so the monitor's VAE Sequentials
    route through cached compiled artifacts — built lazily in the
    replica process on its first batch."""

    def __init__(self, monitor: STARNet, compiled: bool = False):
        self.monitor = monitor
        self.compiled = compiled

    def __call__(self, items: List[Any]) -> List[float]:
        percepts = [Percept(features=np.asarray(f)) for f in items]
        if self.compiled:
            from ..compile import compile_mode
            with compile_mode("compiled"):
                return [float(t) for t in
                        self.monitor.assess_batch(percepts)]
        return [float(t) for t in self.monitor.assess_batch(percepts)]


@dataclass(frozen=True)
class MonitorRunnerFactory:
    """Picklable replica runner factory (see :class:`ReplicaSpec`).

    Deliberately ignores the per-replica seed it is called with: every
    replica builds the *same* monitor from the factory's own seed, which
    is the numerical-interchangeability contract the equivalence gate
    checks.  ``compiled=True`` serves through :mod:`repro.compile`
    artifacts; that requires a forward-only scorer, so combining it with
    the gradient-based ``exact`` method is rejected at construction.
    """

    feature_dim: int = 6
    fit_epochs: int = 15
    seed: int = 0
    per_batch_ms: float = 12.0
    per_item_ms: float = 5.0
    score_method: str = "exact"
    compiled: bool = False

    def __post_init__(self):
        if self.compiled and self.score_method == "exact":
            raise ValueError(
                "compiled replicas cannot use score_method='exact' "
                "(likelihood regret needs decoder.backward, which is "
                "eager-only); use 'recon' or 'spsa'")

    def make_monitor(self) -> STARNet:
        rng = np.random.default_rng(self.seed)
        monitor = STARNet(self.feature_dim, score_method=self.score_method,
                          rng=np.random.default_rng(self.seed + 1))
        monitor.fit(rng.normal(size=(64, self.feature_dim)),
                    epochs=self.fit_epochs)
        return monitor

    def __call__(self, index: int, replica_seed: int):
        runner = _FeatureBatchRunner(self.make_monitor(),
                                     compiled=self.compiled)
        return EmulatedServiceRunner(runner, self.per_batch_ms,
                                     self.per_item_ms)


def _client_streams(config: FleetBenchConfig) -> List[List[np.ndarray]]:
    """Deterministic per-client feature streams (same seeding scheme as
    the serving benchmark's environments)."""
    streams = []
    for i in range(config.clients):
        env = FeatureEnv(config.feature_dim, config.seed + 100 + i)
        rows = []
        for _ in range(config.cycles_per_client):
            rows.append(env.observe_state())
            env.advance(0.05)
        streams.append(rows)
    return streams


def _reference_trust(factory: MonitorRunnerFactory,
                     streams: List[List[np.ndarray]]) -> List[List[float]]:
    monitor = factory.make_monitor()
    return [[float(t) for t in monitor.assess_batch(
        [Percept(features=row) for row in stream])] for stream in streams]


def _drive_clients(submit_one, streams: List[List[np.ndarray]]
                   ) -> Tuple[float, List[List[float]]]:
    """Closed-loop clients on threads; returns (wall_s, trust grid)."""
    results: List[List[Optional[float]]] = [
        [None] * len(stream) for stream in streams]
    errors: List[BaseException] = []

    def run_client(i: int) -> None:
        try:
            for c, payload in enumerate(streams[i]):
                results[i][c] = submit_one(i, payload)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(i,))
               for i in range(len(streams))]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall, results


def _batcher_config(config: FleetBenchConfig) -> BatcherConfig:
    return BatcherConfig(max_batch_size=config.max_batch_size,
                         max_wait_ms=config.max_wait_ms,
                         max_queue_depth=config.max_queue_depth)


def _run_single_process(factory: MonitorRunnerFactory,
                        config: FleetBenchConfig,
                        streams: List[List[np.ndarray]]) -> Dict[str, Any]:
    requests = config.clients * config.cycles_per_client
    with BatchedService(factory(0, 0), _batcher_config(config)) as service:
        wall, trust = _drive_clients(
            lambda i, payload: service.submit(payload, timeout=120.0),
            streams)
        batcher = service.batcher
        quantiles = batcher.latency_quantiles()
        stats = {
            "wall_s": wall,
            "throughput_rps": requests / wall,
            "p50_ms": 1e3 * quantiles["p50"],
            "p95_ms": 1e3 * quantiles["p95"],
            "p99_ms": 1e3 * quantiles["p99"],
            "mean_batch_size": batcher.batch_sizes.mean,
            "shed": batcher.shed_count,
        }
    stats["trust"] = trust
    return stats


def _fleet_config(config: FleetBenchConfig, replicas: int) -> FleetConfig:
    return FleetConfig(replicas=replicas,
                       max_queue_depth=config.max_queue_depth,
                       spill_depth=config.spill_depth)


def _make_fleet(factory: MonitorRunnerFactory, config: FleetBenchConfig,
                replicas: int) -> ServingFleet:
    spec = ReplicaSpec(runner_factory=factory,
                       batch=_batcher_config(config), seed=config.seed)
    return ServingFleet(spec, _fleet_config(config, replicas),
                        inprocess=config.inprocess,
                        transport=config.transport)


def _run_fleet(factory: MonitorRunnerFactory, config: FleetBenchConfig,
               streams: List[List[np.ndarray]], replicas: int
               ) -> Dict[str, Any]:
    requests = config.clients * config.cycles_per_client
    budget = config.closed_loop_staleness_budget_ms
    with _make_fleet(factory, config, replicas) as fleet:
        wall, trust = _drive_clients(
            lambda i, payload: fleet.submit(
                payload, key=f"client-{i}",
                staleness_budget_ms=budget, timeout=120.0),
            streams)
        snapshot = fleet.scheduler.snapshot()
        quantiles = snapshot["latency_quantiles_s"]
        stats = {
            "replicas": replicas,
            "transport": fleet.transport,
            "wall_s": wall,
            "throughput_rps": requests / wall,
            "p50_ms": 1e3 * quantiles["p50"],
            "p95_ms": 1e3 * quantiles["p95"],
            "p99_ms": 1e3 * quantiles["p99"],
            "shed": snapshot["shed"],
            "spills": snapshot["spills"],
            "downgraded": snapshot["downgraded"],
            "dispatched_per_replica": snapshot["dispatched_per_replica"],
        }
    stats["trust"] = trust
    return stats


def _run_sweep_point(factory: MonitorRunnerFactory,
                     config: FleetBenchConfig, fraction: float,
                     rate_rps: float) -> Dict[str, Any]:
    """One open-loop point: paced arrivals against a fresh fleet."""
    budget = config.sweep_staleness_budget_ms
    offered = 0
    shed_count = 0
    tickets = []
    with _make_fleet(factory, config, config.sweep_replicas) as fleet:
        pool = [FeatureEnv(config.feature_dim, config.seed + 500 + i)
                .observe_state() for i in range(64)]
        interarrival = 1.0 / max(rate_rps, 1e-9)
        t_start = time.perf_counter()
        next_t = t_start
        t_end = t_start + config.sweep_duration_s
        while time.perf_counter() < t_end:
            now = time.perf_counter()
            if now < next_t:
                time.sleep(min(next_t - now, 0.002))
                continue
            next_t += interarrival
            payload = pool[offered % len(pool)]
            key = f"sweep-{offered}"
            offered += 1
            try:
                tickets.append(fleet.submit_async(
                    payload, key=key, staleness_budget_ms=budget))
            except RequestShed:
                shed_count += 1
        served = 0
        for ticket in tickets:
            if ticket.event.wait(60.0):
                ticket.result()
                served += 1
        snapshot = fleet.scheduler.snapshot()
    quantiles = snapshot["latency_quantiles_s"]
    duration = max(time.perf_counter() - t_start, 1e-9)
    return {
        "fraction": fraction,
        "offered_rps": offered / config.sweep_duration_s,
        "served": served,
        "served_rps": served / duration,
        "shed": shed_count,
        "shed_stale": snapshot["shed_stale"],
        "shed_overload": snapshot["shed_overload"],
        "p50_ms": 1e3 * quantiles["p50"],
        "p95_ms": 1e3 * quantiles["p95"],
        "p99_ms": 1e3 * quantiles["p99"],
        "below_saturation": fraction < 1.0,
    }


def run_fleet_benchmark(config: FleetBenchConfig = FleetBenchConfig()
                        ) -> Dict[str, Any]:
    """Single-process vs fleet scaling comparison; returns the JSON
    payload the regression gate and EXPERIMENTS.md consume."""
    factory = MonitorRunnerFactory(
        feature_dim=config.feature_dim, fit_epochs=config.fit_epochs,
        seed=config.seed, per_batch_ms=config.per_batch_ms,
        per_item_ms=config.per_item_ms,
        score_method=config.score_method, compiled=config.compiled)
    streams = _client_streams(config)
    reference = np.array(_reference_trust(factory, streams))

    single = _run_single_process(factory, config, streams)
    single_trust = np.array(single.pop("trust"))
    diffs = [float(np.max(np.abs(single_trust - reference)))]
    single["max_abs_diff"] = diffs[0]

    fleet_results: Dict[str, Any] = {}
    closed_loop_sheds = 0
    for replicas in config.replica_counts:
        result = _run_fleet(factory, config, streams, replicas)
        trust = np.array(result.pop("trust"))
        result["max_abs_diff"] = float(np.max(np.abs(trust - reference)))
        diffs.append(result["max_abs_diff"])
        result["speedup"] = (result["throughput_rps"]
                             / single["throughput_rps"])
        closed_loop_sheds += result["shed"]
        fleet_results[str(replicas)] = result

    capacity_key = str(config.sweep_replicas)
    capacity_rps = fleet_results.get(
        capacity_key, {"throughput_rps": single["throughput_rps"]}
    )["throughput_rps"]
    sweep_points = [
        _run_sweep_point(factory, config, fraction,
                         fraction * capacity_rps)
        for fraction in config.sweep_fractions]
    sub_saturation_sheds = sum(
        p["shed"] for p in sweep_points if p["below_saturation"])

    max_replicas = max(config.replica_counts)
    equivalence = max(diffs)
    return {
        "config": {
            "clients": config.clients,
            "cycles_per_client": config.cycles_per_client,
            "requests": config.clients * config.cycles_per_client,
            "feature_dim": config.feature_dim,
            "replica_counts": list(config.replica_counts),
            "max_batch_size": config.max_batch_size,
            "max_wait_ms": config.max_wait_ms,
            "max_queue_depth": config.max_queue_depth,
            "spill_depth": config.spill_depth,
            "per_batch_ms": config.per_batch_ms,
            "per_item_ms": config.per_item_ms,
            "sweep_replicas": config.sweep_replicas,
            "sweep_staleness_budget_ms": config.sweep_staleness_budget_ms,
            "seed": config.seed,
            "compiled": config.compiled,
            "score_method": config.score_method,
        },
        "single_process": single,
        "fleet": fleet_results,
        "load_sweep": {
            "replicas": config.sweep_replicas,
            "capacity_rps": capacity_rps,
            "points": sweep_points,
        },
        "speedup_at_max_replicas": fleet_results[str(max_replicas)]["speedup"],
        "speedup_target": SPEEDUP_TARGET,
        "equivalence_max_abs_diff": equivalence,
        "equivalence_tol": EQUIVALENCE_TOL,
        "equivalence_ok": equivalence <= EQUIVALENCE_TOL,
        "closed_loop_sheds": closed_loop_sheds,
        "sub_saturation_sweep_sheds": sub_saturation_sheds,
        "zero_sheds_below_saturation": (closed_loop_sheds == 0
                                        and sub_saturation_sheds == 0),
        "overload_sheds_engaged": any(
            p["shed"] > 0 for p in sweep_points
            if not p["below_saturation"]),
    }
