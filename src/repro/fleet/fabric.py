"""The serving fleet: sharded :class:`BatchedService` replicas behind a
staleness-aware router.

:class:`ServingFleet` is the process fabric around the deterministic
:class:`~repro.fleet.scheduler.FleetScheduler` core: it spawns one
replica per shard (each a micro-batching service loop owning a private
model instance), moves payloads over per-replica shared-memory rings,
and runs a collector thread that routes finished batches back to the
blocked submitters while feeding completions into the scheduler's
delay model.

Request lifecycle::

    submit() -> scheduler.assign()      (route / downgrade / shed)
             -> slot write + control message to the replica queue
    replica  -> micro-batches, answers on the shared response queue
    collector-> frees the slot, records completion + latency,
                resolves the caller's ticket

Shedding surfaces as :class:`RequestShed` — a subclass of
:class:`repro.serve.ServiceOverloaded`, because it is the same
reject-over-queue contract one level up — with the reason
(``"stale"`` or ``"overload"``) attached.  Downgrades run the
registered ``fallback`` callable synchronously in the submitting
thread: the request is still answered, just by the cheap method, and
counted under ``fleet.downgraded``.

Two execution shapes share every line of routing and replica code:

* ``inprocess=False`` (default) — replicas are OS processes
  (``multiprocessing``), payloads ride :class:`ShmSlab` rings, and
  replica telemetry deltas are merged back in replica-index order on
  close, exactly like :class:`repro.runtime.WorkerPool` workers.
* ``inprocess=True`` — replicas are threads with plain queues, for
  deterministic tests and hosts without ``multiprocessing``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.registry import get_registry
from ..runtime.seeding import spawn_seeds
from ..serve.scheduler import ServeTicket, ServiceOverloaded
from .replica import ReplicaSpec, replica_main
from .scheduler import FleetConfig, FleetScheduler, SLOLane
from .shm import ShmSlab, shm_available

__all__ = ["RequestShed", "FleetReplicaError", "ServingFleet"]


class RequestShed(ServiceOverloaded):
    """The router refused to queue a request.

    ``reason`` is ``"stale"`` (projected queue delay would exceed the
    request's staleness budget — the observation would be too old to
    act on by the time it was served) or ``"overload"`` (every eligible
    replica is at its hard in-flight cap).
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason


class FleetReplicaError(RuntimeError):
    """A replica-side failure, carrying the replica's traceback text."""


class _ReplicaHandle:
    """Router-side bookkeeping for one replica."""

    __slots__ = ("index", "request_q", "slab", "free_slots", "worker",
                 "ready", "bye", "stats", "obs_delta", "inflight")

    def __init__(self, index: int, request_q, slab: Optional[ShmSlab]):
        self.index = index
        self.request_q = request_q
        self.slab = slab
        self.free_slots: List[int] = (
            list(range(slab.nslots - 1, -1, -1)) if slab is not None else [])
        self.worker = None
        self.ready = threading.Event()
        self.bye = threading.Event()
        self.stats: Optional[dict] = None
        self.obs_delta: Optional[dict] = None
        # seq -> (ticket, slot reserved at dispatch; -1 without a slab)
        self.inflight: Dict[int, Tuple[ServeTicket, int]] = {}


class ServingFleet:
    """Sharded multi-replica serving front-end (see module docstring).

    Parameters
    ----------
    spec:
        What each replica serves (:class:`ReplicaSpec`: picklable
        runner factory + :class:`BatcherConfig` + base seed).
    config:
        Fleet sizing/admission knobs (:class:`FleetConfig`).
    lanes:
        SLO lanes; defaults to
        :data:`repro.fleet.scheduler.DEFAULT_LANES`.
    fallback:
        ``payload -> result`` degraded-mode method for downgradable
        lanes.  ``None`` turns would-be downgrades into sheds.
    inprocess:
        Thread replicas + inline payloads instead of processes + shared
        memory (deterministic tests, restricted hosts).
    transport:
        ``"auto"`` (shared memory when available), ``"shm"`` (require
        it), or ``"inline"`` (descriptor-only control messages).
    controller:
        Optional runtime-reconfiguration hook passed through to the
        :class:`FleetScheduler` (normally a
        :class:`repro.control.FleetControlBinding`).
    """

    def __init__(self, spec: ReplicaSpec,
                 config: Optional[FleetConfig] = None,
                 lanes: Optional[Sequence[SLOLane]] = None,
                 fallback: Optional[Callable[[Any], Any]] = None,
                 inprocess: bool = False, transport: str = "auto",
                 name: str = "fleet", ready_timeout_s: float = 120.0,
                 controller=None):
        if transport not in ("auto", "shm", "inline"):
            raise ValueError(f"unknown transport {transport!r}")
        self.spec = spec
        self.config = config or FleetConfig()
        self.fallback = fallback
        self.inprocess = inprocess
        self.name = name
        use_shm = (not inprocess) and transport != "inline" and (
            shm_available() if transport == "auto" else True)
        if use_shm and not shm_available():
            raise RuntimeError("transport='shm' requested but "
                               "multiprocessing.shared_memory is missing")
        self.transport = "shm" if use_shm else "inline"
        self.scheduler = FleetScheduler(self.config, lanes, name=name,
                                        controller=controller)
        self._lock = threading.Lock()
        self._closed = False
        self._seq = 0
        self._capture_obs = bool(getattr(get_registry(), "enabled", False))
        self._fatal: Dict[int, str] = {}

        seeds = spawn_seeds(spec.seed, self.config.replicas)
        if inprocess:
            self._response_q = queue_module.Queue()
            make_request_q = queue_module.Queue
        else:
            self._mp = multiprocessing.get_context()
            self._response_q = self._mp.Queue()
            make_request_q = self._mp.Queue
        self._replicas: List[_ReplicaHandle] = []
        for index in range(self.config.replicas):
            slab = (ShmSlab(self.config.max_queue_depth,
                            self.config.slot_bytes)
                    if self.transport == "shm" else None)
            self._replicas.append(
                _ReplicaHandle(index, make_request_q(), slab))

        get_registry().gauge(f"{name}.replicas").set(self.config.replicas)
        self._collector = threading.Thread(
            target=self._collect, name=f"{name}-collector", daemon=True)
        self._collector.start()
        try:
            self._start_replicas(seeds)
            self._wait_ready(ready_timeout_s)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------ startup
    def _start_replicas(self, seeds: Sequence[int]) -> None:
        for handle, seed in zip(self._replicas, seeds):
            if self.inprocess:
                worker = threading.Thread(
                    target=replica_main,
                    args=(handle.index, self.spec, seed, handle.request_q,
                          self._response_q),
                    kwargs={"capture_obs": False, "slab": None},
                    name=f"{self.name}-r{handle.index}", daemon=True)
            else:
                slab = handle.slab
                worker = self._mp.Process(
                    target=replica_main,
                    args=(handle.index, self.spec, seed, handle.request_q,
                          self._response_q),
                    kwargs={
                        "slab_name": slab.name if slab else None,
                        "slab_nslots": slab.nslots if slab else 0,
                        "slab_slot_bytes": slab.slot_bytes if slab else 0,
                        "capture_obs": self._capture_obs,
                    },
                    name=f"{self.name}-r{handle.index}", daemon=True)
            handle.worker = worker
            worker.start()

    def _wait_ready(self, timeout_s: float) -> None:
        deadline = time.perf_counter() + timeout_s
        for handle in self._replicas:
            remaining = deadline - time.perf_counter()
            if not handle.ready.wait(max(0.1, remaining)):
                raise RuntimeError(
                    f"{self.name}: replica {handle.index} not ready within "
                    f"{timeout_s:.0f}s"
                    + (f"\n{self._fatal[handle.index]}"
                       if handle.index in self._fatal else ""))
            if handle.index in self._fatal:
                raise FleetReplicaError(self._fatal[handle.index])

    # ------------------------------------------------------------ clients
    def submit_async(self, payload: Any, key: Optional[str] = None,
                     lane: str = "default",
                     staleness_budget_ms: Optional[float] = None
                     ) -> ServeTicket:
        """Admit one request; returns a ticket (or raises
        :class:`RequestShed`).  Downgraded requests are resolved before
        this returns — by the fallback method, in the calling thread."""
        now = time.perf_counter()
        ticket = ServeTicket(payload, now)
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            decision = self.scheduler.assign(
                key if key is not None else "",
                lane=lane, staleness_budget_ms=staleness_budget_ms,
                enqueue_t=now, can_downgrade=self.fallback is not None)
            if decision.action == "shed":
                raise RequestShed(
                    f"{self.name}: shed ({decision.reason}; projected "
                    f"wait {decision.projected_wait_s * 1e3:.1f}ms)",
                    decision.reason)
            if decision.action == "dispatch":
                handle = self._replicas[decision.replica]
                if handle.index in self._fatal:
                    raise FleetReplicaError(self._fatal[handle.index])
                self._seq += 1
                seq = self._seq
                slot = handle.free_slots.pop() if handle.slab is not None \
                    else -1
                handle.inflight[seq] = (ticket, slot)
                self.scheduler.record_dispatch(handle.index)
                message = self._encode_request(handle, seq, slot, payload)
        if decision.action == "downgrade":
            self._run_fallback(ticket, payload)
            return ticket
        handle.request_q.put(message)
        return ticket

    def submit(self, payload: Any, key: Optional[str] = None,
               lane: str = "default",
               staleness_budget_ms: Optional[float] = None,
               timeout: Optional[float] = None) -> Any:
        """Blocking submit: route, wait for the batched result."""
        ticket = self.submit_async(payload, key=key, lane=lane,
                                   staleness_budget_ms=staleness_budget_ms)
        if not ticket.event.wait(timeout):
            raise TimeoutError(f"{self.name}: no result within {timeout}s")
        return ticket.result()

    def _encode_request(self, handle: _ReplicaHandle, seq: int, slot: int,
                        payload: Any):
        """Control message for one request.  ``payload is None`` in the
        message means "read the slab at ``slot``"; otherwise the payload
        rides inline (no slab, non-array, or oversized) and the slot is
        only reserved for the response."""
        if handle.slab is not None and isinstance(payload, np.ndarray):
            arr = np.ascontiguousarray(payload)
            if handle.slab.fits(arr):
                shape, dtype = handle.slab.write(slot, arr)
                return ("req", seq, slot, shape, dtype, None)
        return ("req", seq, slot, None, None, payload)

    def _run_fallback(self, ticket: ServeTicket, payload: Any) -> None:
        t0 = time.perf_counter()
        try:
            result = self.fallback(payload)
        except BaseException as exc:
            ticket._resolve(error=exc)
            return
        self.scheduler.record_latency(time.perf_counter() - t0,
                                      downgraded=True)
        ticket._resolve(result=result)

    # ---------------------------------------------------------- collector
    def _collect(self) -> None:
        while True:
            try:
                message = self._response_q.get(timeout=0.2)
            except queue_module.Empty:
                if self._closed and all(h.bye.is_set()
                                        for h in self._replicas):
                    return
                self._check_workers()
                continue
            kind = message[0]
            if kind == "ready":
                self._replicas[message[1]].ready.set()
            elif kind == "res":
                self._handle_batch(message[1], message[2], message[3])
            elif kind == "bye":
                _, index, stats, delta = message
                handle = self._replicas[index]
                handle.stats = stats
                handle.obs_delta = delta
                handle.bye.set()
            elif kind == "fatal":
                self._handle_fatal(message[1], message[2])

    def _handle_batch(self, index: int, service_s: float, rows) -> None:
        handle = self._replicas[index]
        now = time.perf_counter()
        with self._lock:
            self.scheduler.record_completion(index, service_s, len(rows))
            for seq, slot, shape, dtype, payload, error in rows:
                entry = handle.inflight.pop(seq, None)
                if entry is None:
                    continue
                ticket, request_slot = entry
                if error is not None:
                    ticket._resolve(error=FleetReplicaError(error))
                else:
                    if handle.slab is not None and slot >= 0:
                        result = handle.slab.read(slot, shape, dtype)
                    else:
                        result = payload
                    self.scheduler.record_latency(now - ticket.enqueue_t)
                    ticket._resolve(result=result)
                # The slot reserved at dispatch is free once its
                # response row has been consumed (whether or not the
                # response itself used the slab).
                if handle.slab is not None and request_slot >= 0:
                    handle.free_slots.append(request_slot)

    def _handle_fatal(self, index: int, tb_text: str) -> None:
        self._fatal[index] = tb_text
        handle = self._replicas[index]
        handle.ready.set()
        handle.bye.set()
        error = FleetReplicaError(
            f"{self.name}: replica {index} died:\n{tb_text}")
        with self._lock:
            for ticket, _slot in handle.inflight.values():
                ticket._resolve(error=error)
            handle.inflight.clear()
        get_registry().counter(f"{self.name}.replica_failures").inc()

    def _check_workers(self) -> None:
        if self.inprocess:
            return
        for handle in self._replicas:
            worker = handle.worker
            if (worker is not None and not handle.bye.is_set()
                    and not worker.is_alive() and handle.inflight):
                self._handle_fatal(
                    handle.index,
                    f"replica process exited with code {worker.exitcode} "
                    "without reporting")

    # ---------------------------------------------------------- reporting
    def stats(self) -> dict:
        """Router + replica accounting (replica stats complete after
        :meth:`close`)."""
        with self._lock:
            snapshot = self.scheduler.snapshot()
        return {
            "scheduler": snapshot,
            "transport": self.transport,
            "inprocess": self.inprocess,
            "replicas": {h.index: h.stats for h in self._replicas
                         if h.stats is not None},
        }

    # ---------------------------------------------------------- lifecycle
    def close(self, timeout_s: float = 30.0) -> None:
        """Stop accepting work, drain replicas, merge telemetry, tear
        down processes and shared memory.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for handle in self._replicas:
            try:
                handle.request_q.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.perf_counter() + timeout_s
        for handle in self._replicas:
            handle.bye.wait(max(0.1, deadline - time.perf_counter()))
        if self._collector.is_alive():
            self._collector.join(max(0.5, deadline - time.perf_counter()))
        # Telemetry deltas merge in replica-index order — deterministic,
        # like WorkerPool's submission-order merge.
        registry = get_registry()
        if getattr(registry, "enabled", False):
            for handle in self._replicas:
                if handle.obs_delta is not None:
                    registry.merge_worker_snapshot(handle.obs_delta)
        for handle in self._replicas:
            worker = handle.worker
            if worker is None:
                continue
            if self.inprocess:
                worker.join(1.0)
            else:
                worker.join(max(0.1, deadline - time.perf_counter()))
                if worker.is_alive():  # pragma: no cover - stuck replica
                    worker.terminate()
                    worker.join(1.0)
        for handle in self._replicas:
            if handle.slab is not None:
                handle.slab.close()
                handle.slab.unlink()

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
