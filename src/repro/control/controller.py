"""The deterministic reconfiguration controller.

A :class:`Controller` holds declarative :class:`Rule`\\ s.  Each rule
watches one context signal and drives one actuator between two
settings through a **hysteresis band**: at or above ``high`` the rule
wants ``high_value``, at or below ``low`` it wants ``low_value``, and in
between it wants *nothing* — the dead band that keeps actuators from
flapping when a signal hovers near a threshold.  A per-rule
``cooldown_s`` additionally rate-limits reconfigurations: once a rule
fires, it stays silent for that long even if the signal keeps crossing.

The controller is a pure function of the context snapshots it is
stepped with: no wall-clock reads, no randomness, no threads.  Time
only enters through ``ContextSnapshot.t`` (bindings sample it from an
injected :class:`~repro.core.Clock`), so the full decision trace is
exactly reproducible under a :class:`~repro.core.VirtualClock` — the
property the ``control_adaptation`` golden scenario and the Hypothesis
suite pin down.

Two guarantees worth stating precisely:

* **No oscillation under monotone context** — because ``low < high``
  and the band fires nothing, a monotone signal trajectory can change
  an actuator's value at most twice (once per threshold, each crossed
  at most once in one direction), and never revisits an abandoned
  setting (no A->B->A).
* **Bounded actuators** — every applied setting passes through the
  actuator's declared bounds/choices (:meth:`RuntimeActuator.coerce`),
  so no rule, however misdeclared, can push a knob outside its
  admissible set.

``REPRO_CONTROL=off`` disables every controller in the process (steps
return no decisions and touch nothing) — the kill switch for A/B-ing
adaptive against static runs without rebuilding loops.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..obs.registry import get_registry
from .actuators import ActuatorRegistry, ControlError
from .signals import ContextSnapshot

__all__ = ["CONTROL_ENV", "control_enabled", "Rule", "Decision",
           "Controller"]

CONTROL_ENV = "REPRO_CONTROL"


def control_enabled() -> bool:
    """Process-wide control-plane gate (``REPRO_CONTROL=off|on``)."""
    raw = os.environ.get(CONTROL_ENV, "on").strip().lower()
    if raw in ("on", "1", "true", "yes", ""):
        return True
    if raw in ("off", "0", "false", "no"):
        return False
    raise ControlError(
        f"invalid {CONTROL_ENV}={raw!r}; choose 'on' or 'off'")


@dataclass(frozen=True)
class Rule:
    """One declarative reconfiguration rule with a hysteresis band.

    signal:
        Context signal name the rule watches; snapshots missing it
        leave the rule dormant.
    actuator:
        Registered actuator name the rule drives.
    low, high:
        Band edges, ``low < high``.  Signal <= low requests
        ``low_value``; signal >= high requests ``high_value``; strictly
        between, the rule requests nothing.
    low_value, high_value:
        The two settings; they must differ, or the rule could never
        reconfigure anything.
    cooldown_s:
        Minimum time between two firings of this rule.
    """

    name: str
    signal: str
    actuator: str
    low: float
    high: float
    low_value: Any
    high_value: Any
    cooldown_s: float = 0.0

    def __post_init__(self):
        if not self.low < self.high:
            raise ControlError(
                f"rule {self.name!r}: need low < high for a hysteresis "
                f"band (got low={self.low}, high={self.high})")
        if self.low_value == self.high_value:
            raise ControlError(
                f"rule {self.name!r}: low_value and high_value are "
                "identical — the rule could never reconfigure anything")
        if self.cooldown_s < 0:
            raise ControlError(
                f"rule {self.name!r}: cooldown must be >= 0")

    def desired(self, value: float) -> Optional[Any]:
        """The setting this rule wants at ``value`` (None in the band)."""
        if value >= self.high:
            return self.high_value
        if value <= self.low:
            return self.low_value
        return None


@dataclass(frozen=True)
class Decision:
    """One applied reconfiguration: the full why and what.

    Everything needed to replay or audit the decision: which rule fired
    at what time on what signal value, which actuator moved from what
    to what, and the complete context snapshot it was based on.
    """

    t: float
    rule: str
    actuator: str
    signal: str
    signal_value: float
    old: Any
    new: Any
    context: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "t": self.t,
            "rule": self.rule,
            "actuator": self.actuator,
            "signal": self.signal,
            "signal_value": self.signal_value,
            "old": self.old,
            "new": self.new,
            "context": dict(self.context),
        }


class Controller:
    """Steps declarative rules against context snapshots.

    Rules are evaluated in declaration order every :meth:`step`; a rule
    fires only when its desired setting differs from the actuator's
    current value *and* its cooldown has elapsed.  Every applied
    reconfiguration is recorded as a :class:`Decision` (bounded by
    ``max_decisions``, oldest dropped first, never silently — the drop
    count is kept) and counted on the active :mod:`repro.obs` registry
    under ``control.*``.
    """

    def __init__(self, rules: Sequence[Rule], registry: ActuatorRegistry,
                 enabled: Optional[bool] = None, obs=None,
                 max_decisions: int = 10_000):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ControlError(f"duplicate rule name(s): {', '.join(dupes)}")
        for rule in rules:
            if rule.actuator not in registry:
                raise ControlError(
                    f"rule {rule.name!r} drives unregistered actuator "
                    f"{rule.actuator!r}")
            # Categorical actuators must be able to represent both
            # settings; surfacing this at construction beats a mid-run
            # ControlError on the first firing.
            act = registry.actuator(rule.actuator)
            if act.choices is not None:
                for value in (rule.low_value, rule.high_value):
                    if value not in act.choices:
                        raise ControlError(
                            f"rule {rule.name!r}: value {value!r} not in "
                            f"actuator {rule.actuator!r} choices "
                            f"{act.choices}")
        self.rules = tuple(rules)
        self.registry = registry
        self.enabled = control_enabled() if enabled is None else bool(enabled)
        self.obs = obs
        self.max_decisions = max_decisions
        self.decisions: List[Decision] = []
        self.dropped_decisions = 0
        self.steps = 0
        self.suppressed_cooldown = 0
        self._last_fired: Dict[str, float] = {}

    # ------------------------------------------------------------- stepping
    def _observe(self):
        return self.obs if self.obs is not None else get_registry()

    def step(self, context: ContextSnapshot) -> List[Decision]:
        """Evaluate every rule against one context snapshot.

        Returns the decisions applied this step (possibly empty).  With
        the control plane disabled, nothing is evaluated or applied.
        """
        if not self.enabled:
            return []
        obs = self._observe()
        self.steps += 1
        obs.counter("control.steps").inc()
        fired: List[Decision] = []
        for rule in self.rules:
            value = context.get(rule.signal)
            if value is None:
                continue
            target = rule.desired(value)
            if target is None:
                continue
            actuator = self.registry.actuator(rule.actuator)
            target = actuator.coerce(target)
            current = actuator.get()
            if target == current:
                continue
            last = self._last_fired.get(rule.name)
            if last is not None and context.t - last < rule.cooldown_s:
                self.suppressed_cooldown += 1
                obs.counter("control.cooldown_suppressed").inc()
                continue
            old = actuator.set(target)
            self._last_fired[rule.name] = context.t
            decision = Decision(
                t=context.t, rule=rule.name, actuator=rule.actuator,
                signal=rule.signal, signal_value=value, old=old,
                new=target, context=dict(context.signals))
            fired.append(decision)
            self.decisions.append(decision)
            if len(self.decisions) > self.max_decisions:
                del self.decisions[0]
                self.dropped_decisions += 1
            obs.counter("control.reconfigurations").inc()
            obs.counter(f"control.rule.{rule.name}").inc()
        return fired

    # ------------------------------------------------------------ reporting
    def decision_trace(self) -> List[dict]:
        """The retained decisions as JSON-ready dicts, oldest first."""
        return [d.as_dict() for d in self.decisions]

    def last_fired(self, rule_name: str) -> Optional[float]:
        """When the named rule last fired (None if it never has)."""
        return self._last_fired.get(rule_name)
