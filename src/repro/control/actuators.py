"""Runtime actuators: the repo's knobs, made settable mid-run.

An :class:`RuntimeActuator` wraps one knob behind a get/set pair plus a
*declared admissible set* — numeric ``bounds`` (values are clamped into
them, and integer bounds keep the knob integral) or categorical
``choices`` (values outside the set are rejected loudly).  The
:class:`ActuatorRegistry` names them, snapshots them, and — mirroring
the scoped ``kernel_backend()`` / ``compile_mode()`` context managers —
reverts every knob it touched when a :meth:`ActuatorRegistry.scope`
block exits, so a control experiment can never leak settings into the
rest of the process.

The factory helpers at the bottom wire the repo's actual knobs:
sensing fraction (R-MAE radial masking), STARNet's exact-vs-SPSA
likelihood-regret method, micro-batcher coalescing bounds, the kernel
backend, the compile mode, and HaLo-style precision bits.  Frozen
dataclass configs (``BatcherConfig``, ``RadialMaskConfig``,
``FleetConfig``) are actuated by *replacing* the config object via
``dataclasses.replace`` — the owners re-read ``self.config`` per
decision, so the swap takes effect on the next poll without mutating a
shared frozen value.

No wall-clock access anywhere in this package: time only ever arrives
through :class:`~repro.control.signals.ContextSnapshot`.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

__all__ = ["ControlError", "RuntimeActuator", "ActuatorRegistry",
           "attr_actuator", "config_field_actuator",
           "kernel_backend_actuator", "compile_mode_actuator",
           "score_method_actuator", "microbatcher_actuators",
           "fleet_spill_actuator", "precision_bits_actuator"]


class ControlError(RuntimeError):
    """Invalid actuator registration, value, or rule wiring."""


class RuntimeActuator:
    """One named runtime knob: get/set plus its admissible set.

    ``bounds=(lo, hi)`` clamps numeric settings into the declared range
    (int bounds keep values integral); ``choices`` restricts categorical
    settings to an explicit tuple.  Exactly one of the two must be
    declared — an unconstrained actuator would make the controller's
    safety envelope vacuous.
    """

    __slots__ = ("name", "_get", "_set", "bounds", "choices")

    def __init__(self, name: str, getter: Callable[[], Any],
                 setter: Callable[[Any], None],
                 bounds: Optional[Tuple[float, float]] = None,
                 choices: Optional[Sequence[Any]] = None):
        if (bounds is None) == (choices is None):
            raise ControlError(
                f"actuator {name!r} must declare exactly one of "
                "bounds= or choices=")
        if bounds is not None and not bounds[0] <= bounds[1]:
            raise ControlError(f"actuator {name!r} bounds are inverted")
        if choices is not None and len(choices) == 0:
            raise ControlError(f"actuator {name!r} has no choices")
        self.name = name
        self._get = getter
        self._set = setter
        self.bounds = bounds
        self.choices = tuple(choices) if choices is not None else None

    def get(self) -> Any:
        return self._get()

    def coerce(self, value: Any) -> Any:
        """Map a requested setting into the admissible set.

        Numeric bounds clamp; categorical choices reject unknowns with
        :class:`ControlError` (there is no meaningful nearest choice).
        """
        if self.choices is not None:
            if value not in self.choices:
                raise ControlError(
                    f"actuator {self.name!r}: {value!r} not in declared "
                    f"choices {self.choices}")
            return value
        lo, hi = self.bounds
        clamped = min(max(value, lo), hi)
        if isinstance(lo, int) and isinstance(hi, int):
            clamped = int(round(clamped))
        return clamped

    def set(self, value: Any) -> Any:
        """Apply ``value`` (coerced); returns the previous setting."""
        previous = self._get()
        self._set(self.coerce(value))
        return previous


class ActuatorRegistry:
    """Named actuators plus scoped apply/revert.

    Registration order is preserved and meaningful: snapshots restore in
    reverse registration order so dependent knobs (e.g. a batch size
    bounded by a queue depth) unwind cleanly.
    """

    def __init__(self):
        self._actuators: Dict[str, RuntimeActuator] = {}

    def register(self, name: str, getter: Callable[[], Any],
                 setter: Callable[[Any], None],
                 bounds: Optional[Tuple[float, float]] = None,
                 choices: Optional[Sequence[Any]] = None) -> RuntimeActuator:
        if name in self._actuators:
            raise ControlError(f"actuator {name!r} already registered")
        act = RuntimeActuator(name, getter, setter,
                              bounds=bounds, choices=choices)
        self._actuators[name] = act
        return act

    def names(self) -> Tuple[str, ...]:
        return tuple(self._actuators)

    def __contains__(self, name: str) -> bool:
        return name in self._actuators

    def actuator(self, name: str) -> RuntimeActuator:
        try:
            return self._actuators[name]
        except KeyError:
            raise ControlError(
                f"unknown actuator {name!r}; registered: "
                f"{', '.join(self._actuators) or '(none)'}") from None

    def get(self, name: str) -> Any:
        return self.actuator(name).get()

    def set(self, name: str, value: Any) -> Any:
        """Apply a (coerced) setting; returns the previous value."""
        return self.actuator(name).set(value)

    def snapshot(self) -> Dict[str, Any]:
        """Current value of every registered actuator."""
        return {name: act.get() for name, act in self._actuators.items()}

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Re-apply a snapshot (reverse registration order)."""
        for name in reversed(list(self._actuators)):
            if name in snapshot:
                self._actuators[name].set(snapshot[name])

    @contextmanager
    def scope(self):
        """Snapshot on entry, revert on exit — even on exceptions.

        The control-plane analogue of ``kernel_backend()`` /
        ``compile_mode()``: any reconfiguration applied inside the block
        (by a controller or by hand) is undone when it closes.
        """
        saved = self.snapshot()
        try:
            yield self
        finally:
            self.restore(saved)


# --------------------------------------------------------------- factories
def attr_actuator(registry: ActuatorRegistry, name: str, obj: Any,
                  attr: str, bounds=None, choices=None) -> RuntimeActuator:
    """Actuate a plain attribute on ``obj``."""
    if not hasattr(obj, attr):
        raise ControlError(f"{type(obj).__name__} has no attribute {attr!r}")
    return registry.register(
        name, lambda: getattr(obj, attr),
        lambda v: setattr(obj, attr, v), bounds=bounds, choices=choices)


def config_field_actuator(registry: ActuatorRegistry, name: str, owner: Any,
                          field: str, bounds=None, choices=None,
                          config_attr: str = "config") -> RuntimeActuator:
    """Actuate one field of a frozen dataclass config held by ``owner``.

    The setter replaces ``owner.<config_attr>`` with
    ``dataclasses.replace(config, field=value)``; owners that read their
    config per decision pick the new value up on the next poll.
    """
    cfg = getattr(owner, config_attr)
    if not dataclasses.is_dataclass(cfg):
        raise ControlError(
            f"{type(owner).__name__}.{config_attr} is not a dataclass")
    if field not in {f.name for f in dataclasses.fields(cfg)}:
        raise ControlError(
            f"{type(cfg).__name__} has no field {field!r}")

    def _get():
        return getattr(getattr(owner, config_attr), field)

    def _set(value):
        setattr(owner, config_attr,
                dataclasses.replace(getattr(owner, config_attr),
                                    **{field: value}))

    return registry.register(name, _get, _set, bounds=bounds, choices=choices)


def kernel_backend_actuator(registry: ActuatorRegistry,
                            name: str = "kernel_backend") -> RuntimeActuator:
    """Actuate the process-wide kernel backend override.

    Reads/writes the same scoped override ``kernel_backend()`` uses, via
    :func:`repro.kernels.force_backend`; the registry scope (or an
    explicit restore) puts the previous override back.
    """
    from ..kernels import BACKENDS, active_backend, force_backend
    return registry.register(
        name, active_backend, lambda v: force_backend(v), choices=BACKENDS)


def compile_mode_actuator(registry: ActuatorRegistry,
                          name: str = "compile_mode") -> RuntimeActuator:
    """Actuate the process-wide compile mode override (eager/compiled)."""
    from ..compile import MODES, active_mode, force_mode
    return registry.register(
        name, active_mode, lambda v: force_mode(v), choices=MODES)


def score_method_actuator(registry: ActuatorRegistry, monitor: Any,
                          name: str = "score_method") -> RuntimeActuator:
    """Actuate a STARNet monitor's exact-vs-SPSA-vs-recon regret method."""
    return registry.register(
        name, lambda: monitor.score_method,
        lambda v: monitor.set_score_method(v),
        choices=("spsa", "exact", "recon"))


def microbatcher_actuators(registry: ActuatorRegistry, batcher: Any,
                           prefix: str = "serve",
                           max_batch_bounds: Tuple[int, int] = (1, 64),
                           max_wait_bounds: Tuple[float, float] = (0.0, 1000.0),
                           ) -> Dict[str, RuntimeActuator]:
    """Actuate a :class:`~repro.serve.scheduler.MicroBatcher`'s knobs.

    Registers ``<prefix>.max_batch_size`` and ``<prefix>.max_wait_ms``.
    The batch-size upper bound is additionally capped by the batcher's
    ``max_queue_depth`` so the config invariant can never be violated.
    """
    depth = batcher.config.max_queue_depth
    hi = min(max_batch_bounds[1], depth)
    lo = min(max_batch_bounds[0], hi)
    return {
        "max_batch_size": config_field_actuator(
            registry, f"{prefix}.max_batch_size", batcher,
            "max_batch_size", bounds=(int(lo), int(hi))),
        "max_wait_ms": config_field_actuator(
            registry, f"{prefix}.max_wait_ms", batcher,
            "max_wait_ms", bounds=(float(max_wait_bounds[0]),
                                   float(max_wait_bounds[1]))),
    }


def fleet_spill_actuator(registry: ActuatorRegistry, scheduler: Any,
                         name: str = "fleet.spill_depth",
                         bounds: Optional[Tuple[int, int]] = None
                         ) -> RuntimeActuator:
    """Actuate a :class:`~repro.fleet.scheduler.FleetScheduler`'s
    least-loaded spill threshold (1 .. max_queue_depth)."""
    if bounds is None:
        bounds = (1, int(scheduler.config.max_queue_depth))
    return config_field_actuator(registry, name, scheduler, "spill_depth",
                                 bounds=(int(bounds[0]), int(bounds[1])))


def precision_bits_actuator(registry: ActuatorRegistry, obj: Any,
                            attr: str = "bits",
                            name: str = "precision_bits",
                            choices: Sequence[int] = (32, 16, 8, 4)
                            ) -> RuntimeActuator:
    """Actuate a HaLo-style precision selection (bit-width attribute)."""
    return attr_actuator(registry, name, obj, attr, choices=tuple(choices))
