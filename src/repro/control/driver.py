"""Control-adaptation benchmark driver: adaptive vs static frontiers.

Sweeps a corruption x load grid and runs the *same* analytic
sensing-to-action workload under four static configurations and under
the :class:`~repro.control.controller.Controller`, then compares them on
the energy-vs-accuracy plane.  The claim the committed JSON witnesses
(and ``benchmarks/check_regressions.py`` gates on): the adaptive policy
matches the best static configuration's accuracy at no more than its
energy, and Pareto-dominates every individual static config across the
sweep — context-aware reconfiguration beats any fixed operating point,
the paper's Sec. II/VIII argument made measurable.

The workload is deliberately analytic — the same modelling style as the
``control_adaptation`` golden scenario — so the benchmark is a pure
function of this file: no RNG, no wall clock, no kernel dispatch.  Each
cycle of an episode:

* detection succeeds iff ``snr = fraction * (1 - 0.85 * severity)``
  clears the active monitor method's threshold (``exact`` detects at
  lower snr than ``spsa``, at 3x the compute energy) **and** the
  micro-batching queue wait ``min(max_wait, (batch-1)/load)`` fits the
  staleness budget — so the batch knob buys communication energy at
  high load and costs accuracy at low load;
* energy = sensing (``fraction^2``) + monitor compute (per method) +
  communication (per-flush overhead amortized over the effective batch)
  + a full-coverage recovery re-scan charged for every miss — the
  operational cost of acting blind.

Static configs pay somewhere: lean configs miss under corruption (and
then pay recovery energy), robust configs burn sensing/compute on clean
input, batched configs go stale at low load.  The controller routes
around all three, which is exactly what the frontier table shows.

The first ``warmup_cycles`` of every episode are excluded from both
accuracy and energy accounting for *every* config — the standard
steady-state methodology, and the window in which the controller's
rules converge (hysteresis crossings settle within two cycles here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..hardware.energy import EnergyLedger
from .actuators import ActuatorRegistry, attr_actuator
from .controller import Controller, Rule
from .signals import ContextSnapshot, EnergyWindow

__all__ = ["ControlBenchConfig", "STATIC_CONFIGS", "LoopState",
           "run_control_adaptation"]

PERIOD_S = 0.05
#: snr = fraction * (1 - SNR_CORRUPTION_GAIN * severity)
SNR_CORRUPTION_GAIN = 0.85
#: Detection thresholds per monitor method: exact likelihood regret
#: detects at lower snr than the SPSA approximation, at higher energy.
DETECT_THRESHOLD = {"spsa": 0.22, "exact": 0.15}
MONITOR_COST_MJ = {"spsa": 0.02, "exact": 0.06}
#: sensing energy = SENSE_COST_MJ * fraction^2 per cycle
SENSE_COST_MJ = 0.5
#: communication: one flush overhead amortized over the effective batch
#: plus a fixed per-item cost
FLUSH_OVERHEAD_MJ = 0.30
PER_ITEM_COMM_MJ = 0.02
#: a missed detection forces a full-coverage recovery re-scan
MISS_RECOVERY_MJ = 0.5
#: queue wait beyond this and the observation is too stale to act on
STALENESS_BUDGET_S = 0.06
#: micro-batcher deadline: a partial batch flushes after this long
MAX_WAIT_S = 0.2


@dataclass(frozen=True)
class ControlBenchConfig:
    """Sweep grid and episode sizing."""

    severities: Tuple[float, ...] = (0.0, 0.25, 0.6, 0.9)
    loads_rps: Tuple[float, ...] = (5.0, 50.0, 200.0)
    cycles: int = 160
    warmup_cycles: int = 8
    smoke: bool = False

    @classmethod
    def smoke_config(cls) -> "ControlBenchConfig":
        """CI-sized grid (corners only, short episodes, same gates)."""
        return cls(severities=(0.0, 0.9), loads_rps=(5.0, 200.0),
                   cycles=48, smoke=True)


#: The static operating points the adaptive policy is judged against.
STATIC_CONFIGS: Dict[str, Tuple[float, str, int]] = {
    # (sensing fraction, monitor method, max batch size)
    "lean": (0.3, "spsa", 1),
    "lean_batched": (0.3, "spsa", 8),
    "robust": (0.9, "exact", 1),
    "robust_batched": (0.9, "exact", 8),
}


class LoopState:
    """The three actuated knobs of the analytic loop."""

    def __init__(self, fraction: float = 0.3, method: str = "spsa",
                 batch: int = 1):
        self.fraction = fraction
        self.method = method
        self.batch = batch


def _build_adaptive(state: LoopState) -> Controller:
    """The declarative policy: boost sensing + go exact under
    corruption, batch up under load, revert when context clears."""
    registry = ActuatorRegistry()
    attr_actuator(registry, "loop.fraction", state, "fraction",
                  bounds=(0.1, 1.0))
    attr_actuator(registry, "loop.method", state, "method",
                  choices=("spsa", "exact"))
    attr_actuator(registry, "loop.batch", state, "batch", bounds=(1, 16))
    return Controller([
        Rule("sensing_boost", signal="trust", actuator="loop.fraction",
             low=0.55, high=0.92, low_value=0.9, high_value=0.3,
             cooldown_s=0.1),
        Rule("regret_method", signal="coverage", actuator="loop.method",
             low=0.4, high=0.6, low_value="spsa", high_value="exact"),
        Rule("batching", signal="load", actuator="loop.batch",
             low=20.0, high=100.0, low_value=1, high_value=8),
    ], registry, enabled=True)


def _cycle(state: LoopState, severity: float, load: float,
           ledger: EnergyLedger) -> Tuple[bool, float]:
    """One analytic cycle: charge the ledger, return (detected, trust)."""
    snr = state.fraction * (1.0 - SNR_CORRUPTION_GAIN * severity)
    wait_s = 0.0 if state.batch <= 1 else min(MAX_WAIT_S,
                                              (state.batch - 1) / load)
    detected = (snr >= DETECT_THRESHOLD[state.method]
                and wait_s <= STALENESS_BUDGET_S)
    if (state.batch - 1) / load <= MAX_WAIT_S:
        effective_batch = state.batch
    else:
        # The deadline flushes a partial batch: only what arrived.
        effective_batch = max(1, int(load * MAX_WAIT_S) + 1)
    ledger.charge_sensing(SENSE_COST_MJ * state.fraction * state.fraction)
    ledger.charge_compute(MONITOR_COST_MJ[state.method])
    ledger.charge_communication(FLUSH_OVERHEAD_MJ / effective_batch
                                + PER_ITEM_COMM_MJ)
    if not detected:
        ledger.charge_sensing(MISS_RECOVERY_MJ)
    trust = min(1.0, max(0.0, 1.0 - severity * (1.05 - state.fraction)))
    return detected, trust


def _run_episode(state: LoopState, severity: float, load: float,
                 config: ControlBenchConfig,
                 controller: Optional[Controller] = None) -> Dict[str, Any]:
    """One sweep point for one config; measured past the warmup window."""
    ledger = EnergyLedger()
    window = EnergyWindow(ledger)
    measured_since: Dict[str, float] = {}
    detected_measured = 0
    for i in range(config.cycles):
        if i == config.warmup_cycles:
            measured_since = ledger.snapshot()
        detected, trust = _cycle(state, severity, load, ledger)
        if i >= config.warmup_cycles:
            detected_measured += int(detected)
        if controller is not None:
            controller.step(ContextSnapshot(
                t=i * PERIOD_S,
                signals={"trust": trust,
                         "coverage": state.fraction,
                         "load": load,
                         "energy_window_mj": window.read()["total_mj"]}))
    measured = ledger.delta(measured_since)
    cycles = config.cycles - config.warmup_cycles
    return {
        "accuracy": detected_measured / cycles,
        "energy_mj": measured["total_mj"],
        "energy_per_cycle_mj": measured["total_mj"] / cycles,
        "sensing_mj": measured["sensing_mj"],
        "compute_mj": measured["compute_mj"],
        "communication_mj": measured["communication_mj"],
        "detected": detected_measured,
        "cycles": cycles,
    }


def _dominates(a: Dict[str, float], b: Dict[str, float]) -> bool:
    """Pareto dominance on (accuracy up, energy down)."""
    return (a["accuracy"] >= b["accuracy"] and a["energy_mj"] <= b["energy_mj"]
            and (a["accuracy"] > b["accuracy"]
                 or a["energy_mj"] < b["energy_mj"]))


def run_control_adaptation(smoke: bool = False,
                           config: Optional[ControlBenchConfig] = None
                           ) -> Dict[str, Any]:
    """Run the sweep; returns the JSON payload the gate consumes.

    Deterministic to the bit: the model is analytic and the controller
    is pure, so committed results regenerate byte-identically.
    """
    cfg = config or (ControlBenchConfig.smoke_config() if smoke
                     else ControlBenchConfig())
    points: List[Dict[str, Any]] = []
    totals: Dict[str, Dict[str, float]] = {
        name: {"accuracy_sum": 0.0, "energy_mj": 0.0}
        for name in list(STATIC_CONFIGS) + ["adaptive"]}
    adaptive_decisions = 0
    adaptive_steps = 0

    for severity in cfg.severities:
        for load in cfg.loads_rps:
            row: Dict[str, Any] = {"severity": severity, "load_rps": load,
                                   "configs": {}}
            for name, (fraction, method, batch) in STATIC_CONFIGS.items():
                result = _run_episode(
                    LoopState(fraction, method, batch), severity, load, cfg)
                row["configs"][name] = result
                totals[name]["accuracy_sum"] += result["accuracy"]
                totals[name]["energy_mj"] += result["energy_mj"]
            state = LoopState()
            controller = _build_adaptive(state)
            result = _run_episode(state, severity, load, cfg, controller)
            result["decisions"] = [
                {"rule": d.rule, "old": d.old, "new": d.new, "t": d.t}
                for d in controller.decisions]
            row["configs"]["adaptive"] = result
            totals["adaptive"]["accuracy_sum"] += result["accuracy"]
            totals["adaptive"]["energy_mj"] += result["energy_mj"]
            adaptive_decisions += len(controller.decisions)
            adaptive_steps += controller.steps
            points.append(row)

    n_points = len(points)
    aggregate = {
        name: {"accuracy": t["accuracy_sum"] / n_points,
               "energy_mj": t["energy_mj"]}
        for name, t in totals.items()}
    adaptive = aggregate["adaptive"]
    statics = {n: aggregate[n] for n in STATIC_CONFIGS}
    best_static_name = max(
        statics, key=lambda n: (statics[n]["accuracy"],
                                -statics[n]["energy_mj"]))
    best_static = statics[best_static_name]
    dominated = sorted(n for n in statics
                       if _dominates(adaptive, statics[n]))

    return {
        "config": {
            "severities": list(cfg.severities),
            "loads_rps": list(cfg.loads_rps),
            "cycles": cfg.cycles,
            "warmup_cycles": cfg.warmup_cycles,
            "smoke": cfg.smoke,
            "static_configs": {
                n: {"fraction": f, "method": m, "batch": b}
                for n, (f, m, b) in STATIC_CONFIGS.items()},
        },
        "points": points,
        "aggregate": aggregate,
        "adaptive_decisions": adaptive_decisions,
        "adaptive_steps": adaptive_steps,
        "best_static": best_static_name,
        "adaptive_matches_best_accuracy":
            adaptive["accuracy"] >= best_static["accuracy"],
        "adaptive_energy_leq_best_static":
            adaptive["energy_mj"] <= best_static["energy_mj"],
        "statics_dominated": dominated,
        "n_statics_dominated": len(dominated),
        "n_statics": len(statics),
    }
