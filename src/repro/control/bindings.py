"""Bindings: where the controller meets the running system.

A binding adapts one host — a :class:`~repro.core.SensingToActionLoop`,
a :class:`~repro.serve.scheduler.MicroBatcher`/``BatchedService``, or a
:class:`~repro.fleet.scheduler.FleetScheduler` — into context snapshots
for a :class:`~repro.control.controller.Controller`.  Hosts accept a
``controller=`` argument and invoke the matching hook at their natural
cadence (cycle end / batch end / completion).  Snapshots are stamped
from the host's own timebase — the loop's simulated ``loop.t``, the
batcher's and scheduler's injected clocks — never from a clock the
binding opens itself, so virtual-time hosts stay fully deterministic.

Signals exposed per host:

=================  =====================================================
loop               ``trust``, ``coverage``, ``staleness_s``,
                   ``rejection_rate``, plus windowed energy deltas
                   ``energy_window_mj`` / ``energy_sensing_window_mj`` /
                   ``energy_compute_window_mj`` (via
                   ``EnergyLedger.snapshot()/delta()``)
service (batcher)  ``queue_depth``, ``batch_size``, ``shed_total``
fleet scheduler    ``queue_depth`` (max over replicas),
                   ``queue_depth_mean``, ``shed_total``,
                   ``ema_service_s`` (max over replicas)
=================  =====================================================

Extra signal callables can be registered on any binding; rules simply
name them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .controller import Controller, Decision
from .signals import ContextSnapshot, EnergyWindow, SignalSource

__all__ = ["LoopControlBinding", "ServiceControlBinding",
           "FleetControlBinding"]


class _Binding:
    """Shared plumbing: extra signals + decision-trace delegation."""

    def __init__(self, controller: Controller):
        self.controller = controller
        self.extra = SignalSource()

    def add_signal(self, name: str,
                   fn: Callable[[], Optional[float]]) -> None:
        """Expose one more named signal to every future snapshot."""
        self.extra.register(name, fn)

    def _extra_signals(self) -> Dict[str, float]:
        return self.extra.sample(0.0).signals

    def decision_trace(self) -> List[dict]:
        return self.controller.decision_trace()


class LoopControlBinding(_Binding):
    """Per-cycle reconfiguration of a sensing-to-action loop.

    Pass as ``SensingToActionLoop(..., controller=binding)``; the loop
    calls :meth:`on_cycle` after every completed cycle.  The energy
    window covers exactly the cycles since the previous controller
    step, so energy-driven rules see *rates*, not lifetime totals.

    Snapshots are stamped with ``loop.t`` — the loop's *simulated*
    timebase, which advances by ``period_s`` per cycle — not a clock
    read: rule cooldowns are contracts about loop time ("at most one
    reconfiguration per N cycles"), and loop time is identical across
    virtual- and wall-clock hosts, keeping the decision trace exactly
    reproducible.
    """

    def __init__(self, controller: Controller, interval_cycles: int = 1):
        super().__init__(controller)
        if interval_cycles < 1:
            raise ValueError("interval_cycles must be >= 1")
        self.interval_cycles = interval_cycles
        self._energy: Optional[EnergyWindow] = None
        self._cycles_seen = 0

    def on_cycle(self, loop) -> List[Decision]:
        self._cycles_seen += 1
        if self._energy is None:
            self._energy = EnergyWindow(loop.metrics.energy)
        if self._cycles_seen % self.interval_cycles:
            return []
        window = self._energy.read()
        record = loop.history[-1]
        signals = {
            "trust": record.trust,
            "coverage": record.reading.coverage,
            "staleness_s": record.staleness_s,
            "rejection_rate": loop.metrics.rejection_rate,
            "energy_window_mj": window["total_mj"],
            "energy_sensing_window_mj": window["sensing_mj"],
            "energy_compute_window_mj": window["compute_mj"],
        }
        signals.update(self._extra_signals())
        return self.controller.step(
            ContextSnapshot(t=loop.t, signals=signals))


class ServiceControlBinding(_Binding):
    """Per-batch reconfiguration of a micro-batching service.

    Pass as ``MicroBatcher(..., controller=binding)`` (or through
    ``BatchedService(..., controller=binding)``); the batcher calls
    :meth:`on_batch` after each batch it runs, under the same
    serialization as the batching policy itself, so actuating
    ``max_batch_size``/``max_wait_ms`` mid-stream is race-free.
    """

    def on_batch(self, batcher, batch_size: int) -> List[Decision]:
        signals = {
            "queue_depth": float(batcher.pending),
            "batch_size": float(batch_size),
            "shed_total": float(batcher.shed_count),
        }
        signals.update(self._extra_signals())
        return self.controller.step(
            ContextSnapshot(t=batcher.clock.now(), signals=signals))


class FleetControlBinding(_Binding):
    """Per-completion reconfiguration of a fleet scheduler.

    Pass as ``FleetScheduler(..., controller=binding)`` (or through
    ``ServingFleet(..., controller=binding)``); the scheduler calls
    :meth:`on_completion` after each replica batch completion — the
    point where queue depths and the service-time EMA have just
    changed, i.e. where spill/shed knobs are worth revisiting.
    """

    def on_completion(self, scheduler) -> List[Decision]:
        snap = scheduler.snapshot()
        depths = snap.get("queue_depth", []) or [0]
        emas = snap.get("ema_service_s", []) or [0.0]
        signals = {
            "queue_depth": float(max(depths)),
            "queue_depth_mean": float(sum(depths)) / len(depths),
            "shed_total": float(scheduler.shed_total),
            "ema_service_s": float(max(emas)),
        }
        signals.update(self._extra_signals())
        return self.controller.step(
            ContextSnapshot(t=scheduler.clock.now(), signals=signals))
