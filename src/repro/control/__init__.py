"""repro.control: context-aware runtime reconfiguration (Sec. II, VIII).

The paper's central argument is that sensing-to-action loops should
*adapt* sensing, compute, and communication effort to context instead
of running with static knobs — the CARMA/CoSense-LLM direction.  This
package closes that loop over the repo's existing machinery:

* **Actuators** (:mod:`repro.control.actuators`) wrap the knobs that
  already exist — R-MAE sensing fraction, STARNet's exact-vs-SPSA
  likelihood-regret method, micro-batcher ``max_batch_size`` /
  ``max_wait_ms``, the kernel backend, the compile mode, fleet spill
  depth, HaLo-style precision bits — behind declared bounds/choices
  with scoped apply/revert (:meth:`ActuatorRegistry.scope`).
* **Signals** (:mod:`repro.control.signals`) are what context looks
  like: trust scores, queue depths, windowed energy-ledger deltas.
* The **Controller** (:mod:`repro.control.controller`) maps signals to
  actuator settings through declarative hysteresis rules with
  cooldowns — pure, clock-free, and deterministic, so every decision
  trace replays exactly under a :class:`~repro.core.VirtualClock`.
* **Bindings** (:mod:`repro.control.bindings`) attach a controller to
  a :class:`~repro.core.SensingToActionLoop`, a
  :class:`~repro.serve.scheduler.BatchedService`, or a
  :class:`~repro.fleet.scheduler.FleetScheduler` via their
  ``controller=`` arguments.

``REPRO_CONTROL=off`` disables every controller in the process.
``benchmarks/bench_control_adaptation.py`` (via
:func:`repro.control.driver.run_control_adaptation`) shows the adaptive
policy riding the energy/accuracy Pareto front across a corruption-and-
load sweep; ``repro verify`` pins the decision semantics with the
``control_adaptation`` golden scenario.
"""

from .actuators import (
    ActuatorRegistry,
    ControlError,
    RuntimeActuator,
    attr_actuator,
    compile_mode_actuator,
    config_field_actuator,
    fleet_spill_actuator,
    kernel_backend_actuator,
    microbatcher_actuators,
    precision_bits_actuator,
    score_method_actuator,
)
from .bindings import (
    FleetControlBinding,
    LoopControlBinding,
    ServiceControlBinding,
)
from .controller import (
    CONTROL_ENV,
    Controller,
    Decision,
    Rule,
    control_enabled,
)
from .signals import ContextSnapshot, EnergyWindow, SignalSource

__all__ = [
    "ControlError", "RuntimeActuator", "ActuatorRegistry",
    "attr_actuator", "config_field_actuator", "kernel_backend_actuator",
    "compile_mode_actuator", "score_method_actuator",
    "microbatcher_actuators", "fleet_spill_actuator",
    "precision_bits_actuator",
    "ContextSnapshot", "EnergyWindow", "SignalSource",
    "CONTROL_ENV", "control_enabled", "Rule", "Decision", "Controller",
    "LoopControlBinding", "ServiceControlBinding", "FleetControlBinding",
]
