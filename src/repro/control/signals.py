"""Context signals: what the controller observes.

A :class:`ContextSnapshot` is one immutable observation of the world at
a controller step — a timestamp (from an *injected* clock, never the
wall) plus named float signals: STARNet trust, serving queue depth,
windowed energy-ledger deltas, corruption proxies, anything a binding
chooses to expose.  :class:`EnergyWindow` turns the cumulative
:class:`~repro.hardware.energy.EnergyLedger` meters into per-window
readings via the ledger's ``snapshot()``/``delta()`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["ContextSnapshot", "EnergyWindow", "SignalSource"]


@dataclass(frozen=True)
class ContextSnapshot:
    """One observation the controller steps on.

    ``t`` is seconds on whatever clock the binding injected
    (:class:`~repro.core.VirtualClock` in every test); ``signals`` maps
    signal names to floats.  Missing signals read as ``None`` so rules
    listening for them simply do not fire.
    """

    t: float
    signals: Dict[str, float] = field(default_factory=dict)

    def get(self, name: str) -> Optional[float]:
        value = self.signals.get(name)
        return None if value is None else float(value)

    def as_dict(self) -> Dict[str, float]:
        out = {"t": self.t}
        out.update({k: float(v) for k, v in sorted(self.signals.items())})
        return out


class EnergyWindow:
    """Windowed readings over a cumulative :class:`EnergyLedger`.

    ``read()`` returns per-meter consumption since the previous
    ``read()`` (or construction) and starts the next window — built on
    the ledger's ``snapshot()``/``delta()`` helpers, the same pair
    :mod:`repro.obs` spans use for per-stage energy deltas.
    """

    def __init__(self, ledger):
        self.ledger = ledger
        self._since = ledger.snapshot()

    def peek(self) -> Dict[str, float]:
        """The current window's consumption without closing the window."""
        return self.ledger.delta(self._since)

    def read(self) -> Dict[str, float]:
        """Close the window: consumption since last read, then reset."""
        delta = self.ledger.delta(self._since)
        self._since = self.ledger.snapshot()
        return delta


class SignalSource:
    """Named signal callables, sampled into a :class:`ContextSnapshot`.

    Bindings register zero-argument callables; :meth:`sample` invokes
    them all.  A source returning ``None`` is omitted from the snapshot
    (its rules stay dormant) rather than coerced to zero.
    """

    def __init__(self):
        self._sources: Dict[str, Callable[[], Optional[float]]] = {}

    def register(self, name: str,
                 fn: Callable[[], Optional[float]]) -> None:
        self._sources[name] = fn

    def names(self):
        return tuple(self._sources)

    def sample(self, t: float,
               extra: Optional[Dict[str, float]] = None) -> ContextSnapshot:
        signals: Dict[str, float] = {}
        for name, fn in self._sources.items():
            value = fn()
            if value is not None:
                signals[name] = float(value)
        if extra:
            signals.update({k: float(v) for k, v in extra.items()
                            if v is not None})
        return ContextSnapshot(t=t, signals=signals)
