"""Loop scheduling, deadlines, and staleness accounting (Sec. II).

Edge loops must fit sensing + fusion + compute + actuation into a period.
The scheduler models a cycle as a chain of stages with durations, checks
deadline feasibility, accounts for multi-modal synchronization delay
(streams arriving at different rates must wait for the slowest), and
reports per-stage slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Stage", "LoopSchedule", "synchronization_delay"]


def synchronization_delay(stream_periods_s: Sequence[float]) -> float:
    """Worst-case alignment wait when fusing streams of different rates.

    A fusion stage that needs one fresh sample from every stream waits,
    in the worst case, one full period of the slowest stream.  This is
    the "synchronization delays in multi-modal data fusion" cost the
    paper highlights.
    """
    periods = [float(p) for p in stream_periods_s]
    if not periods:
        return 0.0
    if any(p <= 0 for p in periods):
        raise ValueError("stream periods must be positive")
    return max(periods)


@dataclass(frozen=True)
class Stage:
    """One pipeline stage with a nominal duration and jitter bound."""

    name: str
    duration_s: float
    jitter_s: float = 0.0

    def __post_init__(self):
        if self.duration_s < 0 or self.jitter_s < 0:
            raise ValueError("durations and jitter must be non-negative")

    @property
    def worst_case_s(self) -> float:
        return self.duration_s + self.jitter_s


@dataclass
class LoopSchedule:
    """A loop period with an ordered chain of stages."""

    period_s: float
    stages: List[Stage] = field(default_factory=list)

    def __post_init__(self):
        if self.period_s <= 0:
            raise ValueError("period must be positive")

    def add_stage(self, name: str, duration_s: float,
                  jitter_s: float = 0.0) -> "LoopSchedule":
        self.stages.append(Stage(name, duration_s, jitter_s))
        return self

    @property
    def makespan_s(self) -> float:
        return sum(s.duration_s for s in self.stages)

    @property
    def worst_case_makespan_s(self) -> float:
        return sum(s.worst_case_s for s in self.stages)

    @property
    def slack_s(self) -> float:
        """Remaining time in the period after the worst-case chain."""
        return self.period_s - self.worst_case_makespan_s

    def feasible(self) -> bool:
        return self.slack_s >= 0.0

    def staleness_at_actuation_s(self) -> float:
        """Age of the sensed data when the actuator finally fires.

        Everything after the sensing stage contributes: the world moved
        on while fusion/compute ran.
        """
        if not self.stages:
            return 0.0
        return sum(s.duration_s for s in self.stages[1:])

    def utilization(self) -> float:
        """Fraction of the period consumed by nominal stage durations."""
        return self.makespan_s / self.period_s

    def critical_stage(self) -> Optional[Stage]:
        """The longest (nominal) stage — the first candidate to optimize."""
        if not self.stages:
            return None
        return max(self.stages, key=lambda s: s.duration_s)

    def max_rate_hz(self) -> float:
        """Highest loop rate this stage chain could sustain."""
        wc = self.worst_case_makespan_s
        return float("inf") if wc == 0 else 1.0 / wc

    def stage_budget_report(self) -> Dict[str, float]:
        """Per-stage share of the period (for co-design diagnostics)."""
        return {s.name: s.duration_s / self.period_s for s in self.stages}
