"""Hierarchical control: fast reflexes under a slow planner (Secs. I-II).

"These loops also support hierarchical control, where low-level actions —
such as adjusting sensor thresholds — complement higher-level planning
decisions, enabling efficient distribution of computational effort."

:class:`HierarchicalController` composes a cheap low-level controller that
runs every cycle with an expensive high-level planner that runs every
``plan_interval`` cycles and sets the low level's target.  The controller
tracks compute spent at each level so benches can show the effort split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["HierarchicalController"]


@dataclass
class HierarchicalController:
    """Two-level controller with interleaved execution rates.

    Parameters
    ----------
    low_level:
        ``f(observation, target) -> command``; runs every cycle.
    high_level:
        ``f(observation) -> target``; runs every ``plan_interval`` cycles.
    plan_interval:
        Cycles between planner invocations (>= 1).
    low_cost_macs, high_cost_macs:
        Analytic per-invocation compute of each level, for the effort
        accounting.
    """

    low_level: Callable[[Any, Any], Any]
    high_level: Callable[[Any], Any]
    plan_interval: int = 10
    low_cost_macs: int = 1_000
    high_cost_macs: int = 100_000
    _target: Any = field(default=None, repr=False)
    _cycle: int = field(default=0, repr=False)
    low_invocations: int = field(default=0, repr=False)
    high_invocations: int = field(default=0, repr=False)

    def __post_init__(self):
        if self.plan_interval < 1:
            raise ValueError("plan_interval must be >= 1")

    def step(self, observation: Any) -> Any:
        """One control cycle: maybe re-plan, always run the reflex."""
        if self._cycle % self.plan_interval == 0 or self._target is None:
            self._target = self.high_level(observation)
            self.high_invocations += 1
        command = self.low_level(observation, self._target)
        self.low_invocations += 1
        self._cycle += 1
        return command

    @property
    def current_target(self) -> Any:
        return self._target

    @property
    def total_macs(self) -> int:
        return (self.low_invocations * self.low_cost_macs
                + self.high_invocations * self.high_cost_macs)

    def flat_equivalent_macs(self) -> int:
        """Compute if the planner had run every cycle (the flat design)."""
        return self.low_invocations * (self.low_cost_macs + self.high_cost_macs)

    def compute_savings(self) -> float:
        """Fraction of compute saved vs running the planner every cycle."""
        flat = self.flat_equivalent_macs()
        if flat == 0:
            return 0.0
        return 1.0 - self.total_macs / flat
