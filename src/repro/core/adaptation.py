"""Adaptation policies for sensing parameters (Secs. I-II examples).

The paper motivates several concrete adaptation behaviours:

* "environmental monitoring sensors can reduce their sampling rates
  during stable periods and increase them during sudden events" —
  :class:`RateAdaptation`;
* "deprioritize redundant sensor streams during low-risk tasks while
  enhancing accuracy for high-stakes operations" —
  :class:`RiskCoverageAdaptation`;
* task-demand-driven resolution scaling — :class:`ResolutionAdaptation`.

Each policy is a small pure-state controller producing the
``sensing_directive`` dict the loop feeds back to its sensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["RateAdaptation", "RiskCoverageAdaptation", "ResolutionAdaptation"]


@dataclass
class RateAdaptation:
    """Sampling-rate controller driven by signal activity.

    Tracks an exponential moving average of the observed change magnitude
    and maps it into a rate between ``min_rate_hz`` and ``max_rate_hz``.
    During stable periods the rate decays toward the minimum; a sudden
    event (change above ``surge_threshold``) snaps it to the maximum.
    """

    min_rate_hz: float = 1.0
    max_rate_hz: float = 20.0
    surge_threshold: float = 0.5
    smoothing: float = 0.3
    _activity: float = field(default=0.0, repr=False)
    _last_value: Optional[float] = field(default=None, repr=False)

    def update(self, value: float) -> float:
        """Feed a new scalar observation, get the commanded rate in Hz."""
        if self._last_value is None:
            change = 0.0
        else:
            change = abs(value - self._last_value)
        self._last_value = value
        self._activity = ((1 - self.smoothing) * self._activity
                          + self.smoothing * change)
        if change >= self.surge_threshold:
            return self.max_rate_hz
        frac = min(self._activity / max(self.surge_threshold, 1e-9), 1.0)
        return self.min_rate_hz + frac * (self.max_rate_hz - self.min_rate_hz)

    def directive(self, value: float) -> Dict[str, Any]:
        return {"rate_hz": self.update(value)}


@dataclass
class RiskCoverageAdaptation:
    """Coverage controller driven by task risk.

    Maps a risk estimate in [0, 1] to a sensing-coverage fraction between
    ``min_coverage`` (frugal, low-stakes) and 1.0 (full fidelity,
    high-stakes), with hysteresis so coverage doesn't chatter.
    """

    min_coverage: float = 0.08
    hysteresis: float = 0.1
    _coverage: float = field(default=1.0, repr=False)

    def update(self, risk: float) -> float:
        risk = float(np.clip(risk, 0.0, 1.0))
        target = self.min_coverage + risk * (1.0 - self.min_coverage)
        if abs(target - self._coverage) > self.hysteresis:
            self._coverage = target
        return self._coverage

    def directive(self, risk: float) -> Dict[str, Any]:
        return {"coverage": self.update(risk)}


@dataclass
class ResolutionAdaptation:
    """Resolution ladder selection driven by required precision.

    Given the precision (e.g. minimum object size in metres) the current
    task needs and the resolutions each ladder rung provides, picks the
    cheapest rung that meets the requirement.
    """

    ladder: List[float] = field(default_factory=lambda: [4.0, 2.0, 1.0, 0.5])
    # ladder entries: coarsest-to-finest achievable precision per rung

    def __post_init__(self):
        if not self.ladder:
            raise ValueError("resolution ladder must be non-empty")
        if any(b <= 0 for b in self.ladder):
            raise ValueError("ladder precisions must be positive")
        if sorted(self.ladder, reverse=True) != list(self.ladder):
            raise ValueError("ladder must go coarse -> fine")

    def select(self, required_precision: float) -> int:
        """Index of the cheapest rung whose precision suffices."""
        for idx, precision in enumerate(self.ladder):
            if precision <= required_precision:
                return idx
        return len(self.ladder) - 1

    def directive(self, required_precision: float) -> Dict[str, Any]:
        rung = self.select(required_precision)
        return {"resolution_level": rung,
                "resolution_m": self.ladder[rung]}
