"""The sensing-to-action loop orchestrator (Sec. II).

Runs the sense -> perceive -> monitor -> act -> actuate cycle against an
environment, tracking per-stage latency, energy, data staleness, and
trust.  The loop exposes the two adaptation hooks the paper is about:

* **sensing-to-action**: the policy sees percept confidence and may act
  conservatively on stale or untrusted data;
* **action-to-sensing**: each action's ``sensing_directive`` is handed to
  the sensor on the next cycle, letting control retune acquisition.

Every stage runs inside a :mod:`repro.obs` trace span charged against
the loop's energy ledger, and cycle statistics stream into histograms —
so ``repro profile`` (or any enabled registry) sees per-stage wall time,
per-stage energy deltas, and p50/p95/p99 cycle latency without the loop
carrying ad-hoc aggregate fields.  With observability disabled (the
default) the instrumentation is a handful of no-op calls per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..hardware.energy import EnergyLedger
from ..obs.registry import Histogram, get_registry
from .clock import Clock, SystemClock
from .components import (
    Action,
    Actuator,
    Environment,
    Monitor,
    Percept,
    Perception,
    Policy,
    Sensor,
    SensorReading,
)

__all__ = ["CycleRecord", "LoopMetrics", "SensingToActionLoop"]


@dataclass
class CycleRecord:
    """Everything that happened in one loop cycle."""

    t: float
    reading: SensorReading
    percept: Percept
    action: Action
    trust: float
    trusted: bool
    staleness_s: float
    latency_s: float


@dataclass
class LoopMetrics:
    """Aggregates over a run of cycles.

    Latency and staleness are kept as streaming histograms; the scalar
    aggregates the benchmarks read (totals, means, maxima) are views
    over them, and quantiles come for free via
    :meth:`latency_quantiles`.
    """

    cycles: int = 0
    energy: EnergyLedger = field(default_factory=EnergyLedger)
    rejected_cycles: int = 0
    coverage_history: List[float] = field(default_factory=list)
    latency: Histogram = field(
        default_factory=lambda: Histogram("loop.latency_s"))
    staleness: Histogram = field(
        default_factory=lambda: Histogram("loop.staleness_s"))

    @property
    def total_latency_s(self) -> float:
        return self.latency.total

    @property
    def mean_latency_s(self) -> float:
        return self.latency.mean

    @property
    def max_staleness_s(self) -> float:
        return self.staleness.max if self.staleness.count else 0.0

    @property
    def mean_coverage(self) -> float:
        return float(np.mean(self.coverage_history)) if self.coverage_history else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected_cycles / self.cycles if self.cycles else 0.0

    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p95/p99 of per-cycle latency."""
        return self.latency.quantiles()


class SensingToActionLoop:
    """Closed-loop executor binding sensor, perception, policy, actuator.

    Parameters
    ----------
    sensor, perception, policy, actuator:
        The four mandatory stages.
    monitor:
        Optional trust monitor; when provided, cycles whose trust falls
        below ``trust_threshold`` are *rejected*: the policy receives the
        percept with confidence forced to 0 so it can fall back (and the
        next sensing directive is reset to full coverage).
    compute_latency_s:
        Fixed per-cycle processing latency.  The environment advances by
        this much between sensing and actuation, so slow perception acts
        on stale state — the cyclic-latency sensitivity the paper
        emphasizes over feed-forward pipelines.
    period_s:
        Loop period; the environment also advances by the remainder of
        the period after actuation.
    obs:
        Metrics registry receiving spans and instruments; defaults to
        the process-wide active registry (a no-op unless enabled).
    clock:
        Wall-clock source for the ``loop.cycle_wall_s`` timing; defaults
        to :class:`SystemClock`.  Inject a :class:`VirtualClock` for
        deterministic timing in tests and virtual-time serving runs.
    controller:
        Optional runtime-reconfiguration hook (duck-typed: anything
        with ``on_cycle(loop)``, normally a
        :class:`repro.control.LoopControlBinding`).  Called after every
        completed cycle so declarative policies can retune the loop's
        actuators — sensing fraction, monitor method, precision — from
        observed context (trust, windowed energy, staleness).
    """

    def __init__(self, sensor: Sensor, perception: Perception, policy: Policy,
                 actuator: Actuator, monitor: Optional[Monitor] = None,
                 trust_threshold: float = 0.5,
                 compute_latency_s: float = 0.0,
                 period_s: float = 0.05,
                 obs=None, clock: Optional[Clock] = None,
                 controller=None):
        if period_s <= 0:
            raise ValueError("loop period must be positive")
        if compute_latency_s < 0 or compute_latency_s > period_s:
            raise ValueError("compute latency must be within the loop period")
        self.sensor = sensor
        self.perception = perception
        self.policy = policy
        self.actuator = actuator
        self.monitor = monitor
        self.trust_threshold = trust_threshold
        self.compute_latency_s = compute_latency_s
        self.period_s = period_s
        self.obs = obs if obs is not None else get_registry()
        self.clock = clock if clock is not None else SystemClock()
        self.controller = controller
        self._next_directive: Dict[str, Any] = {}
        self.metrics = LoopMetrics()
        self.history: List[CycleRecord] = []
        self._t = 0.0

    @property
    def t(self) -> float:
        return self._t

    def run_cycle(self, env: Environment) -> CycleRecord:
        """Execute one full sense->act cycle against the environment."""
        t0 = self._t
        obs = self.obs
        ledger = self.metrics.energy
        wall0 = self.clock.now()
        with obs.trace_span("loop.cycle", ledger=ledger):
            with obs.trace_span("loop.sense", ledger=ledger):
                reading = self.sensor.sense(env, self._next_directive, t0)
                ledger.charge_sensing(reading.energy_mj)
            self.metrics.coverage_history.append(reading.coverage)

            # Environment keeps moving while we compute: the data the
            # policy finally acts on is compute_latency_s old.
            if self.compute_latency_s > 0:
                env.advance(self.compute_latency_s)
            with obs.trace_span("loop.perceive", ledger=ledger):
                percept = self.perception.perceive(reading)

            trust, trusted = 1.0, True
            if self.monitor is not None:
                with obs.trace_span("loop.monitor", ledger=ledger):
                    trust = float(self.monitor.assess(percept))
                trusted = trust >= self.trust_threshold
                if not trusted:
                    self.metrics.rejected_cycles += 1
                    obs.counter("loop.rejected_cycles").inc()
                    percept.confidence = 0.0
                obs.gauge("loop.trust").set(trust)

            with obs.trace_span("loop.act", ledger=ledger):
                action = self.policy.act(percept, t0)
                ledger.charge_compute(action.energy_mj)
            with obs.trace_span("loop.actuate", ledger=ledger):
                act_energy = self.actuator.actuate(env, action, t0)
                ledger.charge_actuation(max(act_energy, 0.0))

            if trusted:
                self._next_directive = dict(action.sensing_directive)
            else:
                # Untrusted cycle: revert to conservative full coverage.
                self._next_directive = {}

            remainder = self.period_s - self.compute_latency_s
            if remainder > 0:
                env.advance(remainder)
            self._t = t0 + self.period_s

        staleness = self.compute_latency_s
        record = CycleRecord(t=t0, reading=reading, percept=percept,
                             action=action, trust=trust, trusted=trusted,
                             staleness_s=staleness,
                             latency_s=self.compute_latency_s)
        self.history.append(record)
        self.metrics.cycles += 1
        self.metrics.latency.observe(self.compute_latency_s)
        self.metrics.staleness.observe(staleness)
        obs.counter("loop.cycles").inc()
        obs.histogram("loop.cycle_latency_s").observe(self.compute_latency_s)
        obs.histogram("loop.cycle_wall_s").observe(
            self.clock.now() - wall0)
        if self.controller is not None:
            # Context-aware reconfiguration: the binding samples this
            # cycle's trust/energy/staleness and may retune actuators
            # for the *next* cycle.  It sees the loop's own clock, so
            # virtual-time runs stay fully deterministic.
            self.controller.on_cycle(self)
        return record

    def run(self, env: Environment, n_cycles: int) -> LoopMetrics:
        """Run ``n_cycles`` cycles and return the aggregate metrics."""
        for _ in range(n_cycles):
            self.run_cycle(env)
        return self.metrics
