"""Cascading-error propagation model (Sec. II).

"The cyclical nature of the loop also amplifies sensitivity to outdated
or noisy data, as errors can propagate and compound, degrading downstream
decisions."  This module provides an analytic model of that compounding:
per-cycle error evolves as

    e[t+1] = gain * e[t] + injected[t]

where ``gain`` is the loop's error amplification factor (how strongly a
bad action skews the next sensing stage) and ``injected`` is fresh error
from noise/staleness.  ``gain < 1`` means the loop is self-correcting;
``gain >= 1`` means errors cascade — exactly the destabilization risk a
monitor (Sec. V) must catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["CascadeModel", "staleness_error", "closed_loop_gain_estimate"]


def staleness_error(rate_of_change: float, staleness_s: float) -> float:
    """Error introduced by acting on data ``staleness_s`` old.

    First-order model: a state changing at ``rate_of_change`` units/s
    drifts by ``rate * staleness`` between sensing and actuation.
    """
    if staleness_s < 0:
        raise ValueError("staleness cannot be negative")
    return abs(rate_of_change) * staleness_s


@dataclass
class CascadeModel:
    """Linear error-propagation model of a closed loop."""

    gain: float
    noise_std: float = 0.0

    def propagate(self, initial_error: float, n_cycles: int,
                  injected: Optional[np.ndarray] = None,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Error trajectory over ``n_cycles`` cycles (length n+1)."""
        if n_cycles < 0:
            raise ValueError("n_cycles must be non-negative")
        if injected is None:
            if self.noise_std > 0:
                rng = rng if rng is not None else np.random.default_rng(0)
                injected = np.abs(rng.normal(0, self.noise_std, size=n_cycles))
            else:
                injected = np.zeros(n_cycles)
        errors = np.empty(n_cycles + 1)
        errors[0] = initial_error
        for t in range(n_cycles):
            errors[t + 1] = self.gain * errors[t] + injected[t]
        return errors

    @property
    def stable(self) -> bool:
        """Whether errors decay in the absence of fresh injection."""
        return abs(self.gain) < 1.0

    def steady_state_error(self, mean_injection: float) -> float:
        """Fixed point of the recursion for a constant injection rate."""
        if not self.stable:
            return float("inf")
        return mean_injection / (1.0 - abs(self.gain))

    def cycles_to_threshold(self, initial_error: float,
                            threshold: float) -> Optional[int]:
        """Cycles until error exceeds ``threshold`` (None if it never does).

        Noise-free analysis: only the geometric term.
        """
        if initial_error <= 0:
            return None
        if initial_error > threshold:
            return 0
        if self.stable or self.gain == 0:
            return None
        n = np.log(threshold / initial_error) / np.log(abs(self.gain))
        return int(np.ceil(n))


def closed_loop_gain_estimate(errors: np.ndarray) -> float:
    """Estimate the cascade gain from an observed error trajectory.

    Least-squares fit of e[t+1] ~ g * e[t]; useful for runtime monitors
    that want to detect when a loop has become unstable.
    """
    errors = np.asarray(errors, dtype=np.float64)
    if errors.size < 2:
        raise ValueError("need at least two error samples")
    prev, nxt = errors[:-1], errors[1:]
    denom = float(prev @ prev)
    if denom == 0:
        return 0.0
    return float(prev @ nxt / denom)
