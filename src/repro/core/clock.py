"""Injectable wall-clock abstraction.

The loop orchestrator (and the serving scheduler built on top of it)
time their work through a :class:`Clock` instead of calling
``time.perf_counter()`` directly.  Production code uses
:class:`SystemClock`; tests and virtual-time serving simulations use
:class:`VirtualClock`, which only moves when explicitly advanced — so
latency histograms, batching deadlines, and staleness fields become
exact, deterministic quantities instead of host-dependent noise.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SystemClock", "VirtualClock"]


class Clock:
    """Monotonic time source: ``now()`` in seconds."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Real monotonic time (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Manually advanced time for deterministic tests and simulation.

    ``sleep`` advances the clock instead of blocking, so code written
    against :class:`Clock` runs unmodified — just instantly — under
    virtual time.
    """

    def __init__(self, start: float = 0.0):
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._t += seconds
        return self._t
