"""``repro.core`` — the sensing-to-action loop abstraction (Sec. II).

Component contracts, the closed-loop orchestrator with energy/latency/
staleness accounting, adaptation policies, cascading-error models,
deadline scheduling, and hierarchical control.
"""

from .components import (Action, Actuator, Environment, Monitor, Percept,
                         Perception, Policy, Sensor, SensorReading)
from .loop import CycleRecord, LoopMetrics, SensingToActionLoop
from .adaptation import (RateAdaptation, ResolutionAdaptation,
                         RiskCoverageAdaptation)
from .errors import CascadeModel, closed_loop_gain_estimate, staleness_error
from .scheduling import LoopSchedule, Stage, synchronization_delay
from .hierarchy import HierarchicalController
from .codesign import (DesignSpace, LoopDesign, LoopPlant,
                       end_to_end_codesign, modular_codesign, pareto_front)

__all__ = [
    "SensorReading", "Percept", "Action", "Sensor", "Perception", "Policy",
    "Actuator", "Monitor", "Environment",
    "CycleRecord", "LoopMetrics", "SensingToActionLoop",
    "RateAdaptation", "RiskCoverageAdaptation", "ResolutionAdaptation",
    "CascadeModel", "staleness_error", "closed_loop_gain_estimate",
    "LoopSchedule", "Stage", "synchronization_delay",
    "HierarchicalController",
    "LoopDesign", "LoopPlant", "DesignSpace", "end_to_end_codesign",
    "modular_codesign", "pareto_front",
]
