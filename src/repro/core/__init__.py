"""``repro.core`` — the sensing-to-action loop abstraction (Sec. II).

Component contracts, the closed-loop orchestrator with energy/latency/
staleness accounting, adaptation policies, cascading-error models,
deadline scheduling, and hierarchical control.
"""

from .adaptation import RateAdaptation, ResolutionAdaptation, RiskCoverageAdaptation
from .clock import Clock, SystemClock, VirtualClock
from .codesign import (
    DesignSpace,
    LoopDesign,
    LoopPlant,
    end_to_end_codesign,
    modular_codesign,
    pareto_front,
)
from .components import (
    Action,
    Actuator,
    Environment,
    Monitor,
    Percept,
    Perception,
    Policy,
    Sensor,
    SensorReading,
)
from .errors import CascadeModel, closed_loop_gain_estimate, staleness_error
from .hierarchy import HierarchicalController
from .loop import CycleRecord, LoopMetrics, SensingToActionLoop
from .scheduling import LoopSchedule, Stage, synchronization_delay

__all__ = [
    "SensorReading", "Percept", "Action", "Sensor", "Perception", "Policy",
    "Actuator", "Monitor", "Environment",
    "CycleRecord", "LoopMetrics", "SensingToActionLoop",
    "Clock", "SystemClock", "VirtualClock",
    "RateAdaptation", "RiskCoverageAdaptation", "ResolutionAdaptation",
    "CascadeModel", "staleness_error", "closed_loop_gain_estimate",
    "LoopSchedule", "Stage", "synchronization_delay",
    "HierarchicalController",
    "LoopDesign", "LoopPlant", "DesignSpace", "end_to_end_codesign",
    "modular_codesign", "pareto_front",
]
