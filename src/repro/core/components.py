"""Component interfaces of a sensing-to-action loop (Sec. II, Fig. 1).

The paper deconstructs edge loops into a sensing module, a learning
(perception/decision) module, and an actuation module, closed through the
environment, with two optional cross-cutting parts: a *monitor* that
guards loop fidelity (Sec. V) and an *adaptation policy* that retunes
sensing from actions (Sec. IV).  These abstract base classes define the
contracts; every subsystem in this repository implements one or more of
them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

__all__ = ["SensorReading", "Percept", "Action", "Sensor", "Perception",
           "Policy", "Actuator", "Monitor", "Environment"]


@dataclass
class SensorReading:
    """Raw sensor output plus acquisition metadata.

    ``coverage`` is the fraction of the nominal sensing budget used
    (beams fired / full grid, pixels read / full frame, ...); the energy
    ledger and adaptation policies both consume it.
    """

    data: Any
    timestamp: float
    coverage: float = 1.0
    energy_mj: float = 0.0
    modality: str = "generic"
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Percept:
    """Output of the perception stage: features and task estimates."""

    features: np.ndarray
    estimate: Any = None
    confidence: float = 1.0
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Action:
    """Control command plus optional sensing directives.

    ``sensing_directive`` is the action-to-sensing channel: a dict the
    sensor interprets next cycle (e.g. ``{"coverage": 0.1}`` or
    ``{"segments": mask}``).
    """

    command: Any
    sensing_directive: Dict[str, Any] = field(default_factory=dict)
    energy_mj: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)


class Sensor(abc.ABC):
    """Acquires a :class:`SensorReading` from the environment.

    ``directive`` carries the previous action's sensing directive
    (possibly empty) so implementations can modulate coverage, rate, or
    modality — the action-to-sensing pathway.
    """

    @abc.abstractmethod
    def sense(self, env: "Environment", directive: Dict[str, Any],
              t: float) -> SensorReading:
        ...


class Perception(abc.ABC):
    """Maps a sensor reading to a percept (features + estimate)."""

    @abc.abstractmethod
    def perceive(self, reading: SensorReading) -> Percept:
        ...


class Policy(abc.ABC):
    """Maps a percept to an action (including sensing directives)."""

    @abc.abstractmethod
    def act(self, percept: Percept, t: float) -> Action:
        ...


class Actuator(abc.ABC):
    """Applies an action to the environment, returning actuation cost."""

    @abc.abstractmethod
    def actuate(self, env: "Environment", action: Action, t: float) -> float:
        ...


class Monitor(abc.ABC):
    """Judges the trustworthiness of the current percept (Sec. V).

    Returns a score in [0, 1]; loops may gate aggressive adaptations on
    it, fall back to conservative sensing, or reject the cycle entirely.
    """

    @abc.abstractmethod
    def assess(self, percept: Percept) -> float:
        ...

    def is_trustworthy(self, percept: Percept,
                       threshold: float = 0.5) -> bool:
        return self.assess(percept) >= threshold


class Environment(abc.ABC):
    """A world the loop senses and acts upon."""

    @abc.abstractmethod
    def observe_state(self) -> Any:
        """Ground-truth state (for simulators / evaluation only)."""
        ...

    @abc.abstractmethod
    def advance(self, dt: float) -> None:
        """Evolve autonomous dynamics by ``dt`` seconds."""
        ...
