"""End-to-end co-design of a sensing-to-action loop (the paper's thesis).

"A central focus of the paper is to underscore the importance of
*end-to-end co-design strategies* that align algorithmic models with
hardware constraints and environmental dynamics ... Unlike modular
optimizations that only address individual components in isolation,
end-to-end approaches can leverage cross-layer interdependencies,
unlocking unprecedented gains in throughput, precision, and resource
allocation."

This module makes that claim executable.  A loop design point is a
tuple (sensing coverage, model size, compute precision, loop rate); the
analytic plant model below prices its energy and predicts its task
utility, with the *cross-layer couplings* that make modular optimization
suboptimal:

* coverage improves observability but costs sensing energy;
* a bigger model at higher precision is more accurate per frame but
  slower, and a slow loop acts on stale state (accuracy decays with
  staleness x environment speed);
* a lower precision frees energy that can buy more coverage or a faster
  loop — the interdependency a per-knob optimizer never sees.

:func:`end_to_end_codesign` searches the joint space under an energy
budget; :func:`modular_codesign` optimizes one knob at a time holding the
others at defaults (the strawman the paper argues against); the benchmark
shows the measured gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.energy import mac_energy_pj

__all__ = ["LoopDesign", "LoopPlant", "DesignSpace", "end_to_end_codesign",
           "modular_codesign", "pareto_front"]

MODEL_SIZES: Dict[str, Dict[str, float]] = {
    # name: MACs per inference, base accuracy ceiling.
    "small": {"macs": 2e6, "base_accuracy": 0.80},
    "medium": {"macs": 2e7, "base_accuracy": 0.90},
    "large": {"macs": 2e8, "base_accuracy": 0.96},
}


@dataclass(frozen=True)
class LoopDesign:
    """One point in the joint design space."""

    coverage: float          # sensing coverage fraction in (0, 1]
    model: str               # key into MODEL_SIZES
    precision_bits: int      # compute precision
    rate_hz: float           # loop rate

    def __post_init__(self):
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if self.model not in MODEL_SIZES:
            raise ValueError(f"unknown model size {self.model!r}")
        if self.rate_hz <= 0:
            raise ValueError("rate must be positive")


@dataclass(frozen=True)
class LoopPlant:
    """Analytic task/plant model a design is evaluated against.

    Parameters
    ----------
    sensor_power_mw:
        Full-coverage sensing power; scales linearly with coverage.
    compute_gmacs_s:
        Platform throughput at 32-bit (narrower ops speed up by the
        precision ratio).
    environment_speed:
        How fast the world changes (units of "state per second"); sets
        the staleness penalty: acting on data that is ``dt`` seconds old
        costs accuracy ~ exp(-speed * dt).
    coverage_half_point:
        Coverage at which observability reaches half its ceiling
        (saturating returns — sensing 100% is rarely necessary, the
        paper's frugal-sensing premise).
    """

    sensor_power_mw: float = 25_000.0      # a 25 W LiDAR, in mW (paper)
    compute_gmacs_s: float = 100.0
    environment_speed: float = 2.0
    coverage_half_point: float = 0.12
    # System-level energy per MAC is far above the bare arithmetic
    # (memory hierarchy, control, leakage): the standard ~50x overhead
    # for an edge SoC. Without it compute is spuriously free next to a
    # 25 W sensor and precision never trades against coverage.
    compute_overhead: float = 50.0

    # ------------------------------------------------------------- pieces
    def observability(self, coverage: float) -> float:
        """Saturating sensing quality in [0, 1]."""
        return coverage / (coverage + self.coverage_half_point)

    def precision_factor(self, bits: int) -> float:
        """Accuracy retention by precision (quantization noise)."""
        return {32: 1.0, 16: 0.998, 8: 0.985, 4: 0.80}.get(bits, 0.5)

    def inference_latency_s(self, design: LoopDesign) -> float:
        macs = MODEL_SIZES[design.model]["macs"]
        speedup = 32.0 / design.precision_bits
        return macs / (self.compute_gmacs_s * 1e9 * speedup)

    def staleness_s(self, design: LoopDesign) -> float:
        """Age of acted-on data: compute latency + half a period."""
        return self.inference_latency_s(design) + 0.5 / design.rate_hz

    def deadline_feasible(self, design: LoopDesign) -> bool:
        return self.inference_latency_s(design) <= 1.0 / design.rate_hz

    # ------------------------------------------------------------ totals
    def utility(self, design: LoopDesign) -> float:
        """Predicted task accuracy of the closed loop in [0, 1]."""
        if not self.deadline_feasible(design):
            return 0.0
        base = MODEL_SIZES[design.model]["base_accuracy"]
        stale = float(np.exp(-self.environment_speed
                             * self.staleness_s(design)))
        return (base * self.observability(design.coverage)
                * self.precision_factor(design.precision_bits) * stale)

    def power_mw(self, design: LoopDesign) -> float:
        """Average electrical power of the running loop."""
        sensing = self.sensor_power_mw * design.coverage
        macs_per_s = MODEL_SIZES[design.model]["macs"] * design.rate_hz
        compute = (macs_per_s * mac_energy_pj(design.precision_bits)
                   * self.compute_overhead * 1e-9)
        return sensing + compute


@dataclass
class DesignSpace:
    """Discrete joint design space."""

    coverages: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.7, 1.0)
    models: Sequence[str] = ("small", "medium", "large")
    precisions: Sequence[int] = (4, 8, 16, 32)
    rates_hz: Sequence[float] = (5.0, 10.0, 20.0, 50.0)

    def designs(self) -> List[LoopDesign]:
        return [LoopDesign(c, m, p, r)
                for c, m, p, r in product(self.coverages, self.models,
                                          self.precisions, self.rates_hz)]


def end_to_end_codesign(plant: LoopPlant, power_budget_mw: float,
                        space: Optional[DesignSpace] = None
                        ) -> Tuple[Optional[LoopDesign], float]:
    """Joint search: best-utility feasible design under the budget."""
    space = space or DesignSpace()
    best, best_utility = None, 0.0
    for design in space.designs():
        if plant.power_mw(design) > power_budget_mw:
            continue
        u = plant.utility(design)
        if u > best_utility:
            best, best_utility = design, u
    return best, best_utility


def modular_codesign(plant: LoopPlant, power_budget_mw: float,
                     space: Optional[DesignSpace] = None,
                     defaults: Optional[LoopDesign] = None
                     ) -> Tuple[Optional[LoopDesign], float]:
    """Per-knob optimization (the paper's modular strawman).

    Each knob is tuned in isolation with the other knobs held at their
    defaults, sharing the budget *proportionally to the default design's
    spending* — no knob ever sees another knob's savings.  The combined
    design is then checked against the full budget (and scored 0 if the
    pieces don't compose feasibly — the classic failure of modular
    optimization).
    """
    space = space or DesignSpace()
    defaults = defaults or LoopDesign(coverage=0.4, model="medium",
                                      precision_bits=32, rate_hz=10.0)

    def tune(knob: str):
        candidates = {
            "coverage": [LoopDesign(c, defaults.model,
                                    defaults.precision_bits,
                                    defaults.rate_hz)
                         for c in space.coverages],
            "model": [LoopDesign(defaults.coverage, m,
                                 defaults.precision_bits, defaults.rate_hz)
                      for m in space.models],
            "precision": [LoopDesign(defaults.coverage, defaults.model, p,
                                     defaults.rate_hz)
                          for p in space.precisions],
            "rate": [LoopDesign(defaults.coverage, defaults.model,
                                defaults.precision_bits, r)
                     for r in space.rates_hz],
        }[knob]
        best, best_u = None, -1.0
        for d in candidates:
            if plant.power_mw(d) > power_budget_mw:
                continue
            u = plant.utility(d)
            if u > best_u:
                best, best_u = d, u
        return best if best is not None else defaults

    combined = LoopDesign(
        coverage=tune("coverage").coverage,
        model=tune("model").model,
        precision_bits=tune("precision").precision_bits,
        rate_hz=tune("rate").rate_hz,
    )
    if plant.power_mw(combined) > power_budget_mw:
        return combined, 0.0  # the pieces do not compose
    return combined, plant.utility(combined)


def pareto_front(plant: LoopPlant, space: Optional[DesignSpace] = None
                 ) -> List[Tuple[LoopDesign, float, float]]:
    """Non-dominated (power, utility) designs, sorted by power."""
    space = space or DesignSpace()
    points = [(d, plant.power_mw(d), plant.utility(d))
              for d in space.designs()]
    points.sort(key=lambda t: (t[1], -t[2]))
    front: List[Tuple[LoopDesign, float, float]] = []
    best_u = -1.0
    for design, power, utility in points:
        if utility > best_u:
            front.append((design, power, utility))
            best_u = utility
    return front
