"""Dict-tensor BEV scatter kernels (R-MAE mean pooling to the BEV map).

Reference: the original per-voxel Python loop from
``repro.generative.rmae.RMAE.bev_scatter`` (and its backward), moved
here verbatim — dict iteration order, accumulation order, and the
count-normalized division are untouched, so the reference backend stays
bit-identical to the committed golden traces.

Vectorized: the coordinate dict is flattened once into index arrays;
``np.add.at`` performs the same additions in the same (dict) order —
unbuffered, element-sequential — and ``np.bincount`` reproduces the
integer cell counts, so this backend is *also* bit-identical, not just
tolerance-close.  The win is moving the per-voxel work out of the
interpreter.

Both backends return ``(bev, counts, cache)`` where ``cache`` is an
opaque backend-specific object; callers must hand it back to the *same*
backend's ``scatter_backward`` (tag it with the producing backend, as
the SNN kernels do).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from . import register_kernel


class ReferenceBEVScatterDict:
    """Original per-voxel accumulation loop (seed op order)."""

    def scatter(self, features: Dict[Tuple[int, int, int], np.ndarray],
                ds: int, h: int, w: int, c: int):
        bev = np.zeros((c, h, w))
        counts = np.zeros((h, w))
        cells: Dict[Tuple[int, int], List] = {}
        for (i, j, k), f in features.items():
            cell = (i // ds, j // ds)
            bev[:, cell[0], cell[1]] += f
            counts[cell] += 1
            cells.setdefault(cell, []).append((i, j, k))
        nz = counts > 0
        bev[:, nz] /= counts[nz]
        return bev, counts, cells

    def scatter_backward(self, g: np.ndarray, cache, counts: np.ndarray
                         ) -> Dict[Tuple[int, int, int], np.ndarray]:
        cells = cache
        grad: Dict[Tuple[int, int, int], np.ndarray] = {}
        for cell, coords in cells.items():
            share = g[:, cell[0], cell[1]] / counts[cell]
            for coord in coords:
                grad[coord] = share.copy()
        return grad


class VectorizedBEVScatterDict:
    """Index-array scatter: ``np.add.at`` + ``np.bincount``."""

    def scatter(self, features: Dict[Tuple[int, int, int], np.ndarray],
                ds: int, h: int, w: int, c: int):
        coords = np.array(list(features.keys()),
                          dtype=np.int64).reshape(-1, 3)
        counts_flat = np.zeros(h * w)
        if coords.shape[0] == 0:
            cache = (coords, np.zeros(0, dtype=np.int64), counts_flat)
            return np.zeros((c, h, w)), np.zeros((h, w)), cache
        feats = np.stack(list(features.values()))
        cell_id = (coords[:, 0] // ds) * w + coords[:, 1] // ds
        acc = np.zeros((h * w, c))
        # np.add.at is unbuffered and applies updates in index order, so
        # the per-cell float accumulation matches the reference loop
        # bit-for-bit (dict order == row order here).
        np.add.at(acc, cell_id, feats)
        counts_flat = np.bincount(cell_id, minlength=h * w).astype(float)
        nz = counts_flat > 0
        acc[nz] /= counts_flat[nz][:, None]
        bev = acc.T.reshape(c, h, w)
        return bev, counts_flat.reshape(h, w), (coords, cell_id, counts_flat)

    def scatter_backward(self, g: np.ndarray, cache, counts: np.ndarray
                         ) -> Dict[Tuple[int, int, int], np.ndarray]:
        coords, cell_id, counts_flat = cache
        c = g.shape[0]
        rows = g.reshape(c, -1).T[cell_id] / counts_flat[cell_id][:, None]
        return {(int(i), int(j), int(k)): rows[n]
                for n, (i, j, k) in enumerate(coords)}


register_kernel("bev_scatter", "reference", ReferenceBEVScatterDict())
register_kernel("bev_scatter", "vectorized", VectorizedBEVScatterDict())
