"""Micro-kernel dispatch: vectorized vs reference numerical hot paths.

The paper's sensing-to-action argument (Sec. II) only holds if the loop
runs as fast as the substrate allows, yet the repo's three hottest
numerical paths were interpreter-bound: the submanifold sparse 3-D
convolution walked Python dicts of ``(i, j, k)`` tuples per layer, SNN
surrogate-BPTT re-ran one small convolution per timestep, and STARNet's
likelihood regret optimized one sample at a time.  This package hosts
**two complete implementations** of each path:

* ``reference``  — the original implementations, moved here verbatim.
  Their op order is untouched, so a run under ``REPRO_KERNELS=reference``
  stays bit-for-bit identical to the committed golden traces.
* ``vectorized`` — gather/scatter index arrays, batched-time conv calls,
  and whole-batch SPSA.  BLAS re-association means results may differ
  from the reference in the last ulps; ``repro verify`` bounds that
  drift with per-scenario tolerance specs (and still compares the
  reference backend exactly).

Selection: the ``REPRO_KERNELS`` environment variable picks the
process-wide backend (default ``vectorized``); :func:`kernel_backend`
overrides it within a scope (used by the differential tests and the
micro-benchmarks).  Worker processes inherit the environment, so pooled
runs use the same backend as their parent — the scoped override is
process-local by design.

Every kernel invocation that goes through :func:`kernel_timer` records a
``kernels.<name>.<op>_s`` histogram on the active :mod:`repro.obs`
registry, so ``repro profile`` shows where the vectorized backends win.
Histograms are deliberately used instead of counters: golden traces
record deterministic counters only, and kernel timings must never leak
into them.

Adding a kernel: write a module with one class per backend, instantiate
and :func:`register_kernel` both under the same name, and import the
module at the bottom of this file.  Callers fetch the active
implementation with ``get_kernel(name)`` at call time (never at import
time), so the env switch and scoped overrides always take effect.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from ..obs.registry import get_registry

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "KERNELS_ENV", "KernelError",
           "active_backend", "kernel_backend", "force_backend",
           "register_kernel", "get_kernel", "available_kernels",
           "kernel_timer"]

BACKENDS = ("vectorized", "reference")
DEFAULT_BACKEND = "vectorized"
KERNELS_ENV = "REPRO_KERNELS"


class KernelError(LookupError):
    """Unknown kernel name or backend selection."""


# Scoped override installed by kernel_backend(); checked before the env.
_forced: Optional[str] = None

_REGISTRY: Dict[str, Dict[str, Any]] = {}


def active_backend() -> str:
    """The backend every ``get_kernel`` call resolves to right now."""
    if _forced is not None:
        return _forced
    raw = os.environ.get(KERNELS_ENV, "").strip().lower()
    if not raw:
        return DEFAULT_BACKEND
    if raw not in BACKENDS:
        raise KernelError(
            f"invalid {KERNELS_ENV}={raw!r}; choose from "
            f"{', '.join(BACKENDS)}")
    return raw


def force_backend(name: Optional[str]) -> Optional[str]:
    """Imperatively install (or with ``None`` clear) the scoped backend
    override; returns the previous override.

    This is the actuator-style twin of :func:`kernel_backend`: runtime
    reconfiguration (``repro.control``) flips the backend mid-run and
    restores the returned previous value itself instead of holding a
    ``with`` block open across cycles.
    """
    global _forced
    if name is not None and name not in BACKENDS:
        raise KernelError(f"unknown kernel backend {name!r}; choose from "
                          f"{', '.join(BACKENDS)}")
    previous = _forced
    _forced = name
    return previous


@contextmanager
def kernel_backend(name: str):
    """Force one backend within a ``with`` block (this process only)."""
    global _forced
    if name not in BACKENDS:
        raise KernelError(f"unknown kernel backend {name!r}; choose from "
                          f"{', '.join(BACKENDS)}")
    saved = _forced
    _forced = name
    try:
        yield
    finally:
        _forced = saved


def register_kernel(name: str, backend: str, impl: Any) -> None:
    """Register one backend implementation of one kernel."""
    if backend not in BACKENDS:
        raise KernelError(f"unknown kernel backend {backend!r}; choose "
                          f"from {', '.join(BACKENDS)}")
    _REGISTRY.setdefault(name, {})[backend] = impl


def get_kernel(name: str, backend: Optional[str] = None) -> Any:
    """The implementation of ``name`` under the active (or given) backend."""
    impls = _REGISTRY.get(name)
    if impls is None:
        raise KernelError(
            f"unknown kernel {name!r}; registered kernels: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}")
    b = backend if backend is not None else active_backend()
    if b not in BACKENDS:
        raise KernelError(f"unknown kernel backend {b!r}; choose from "
                          f"{', '.join(BACKENDS)}")
    if b not in impls:
        raise KernelError(f"kernel {name!r} has no {b!r} backend")
    return impls[b]


def available_kernels() -> List[str]:
    return sorted(_REGISTRY)


@contextmanager
def kernel_timer(name: str, op: str):
    """Record one kernel call's wall time as a ``repro.obs`` histogram.

    A no-op when observability is disabled, so the reference backend's
    hot loops pay nothing but two clock reads.
    """
    obs = get_registry()
    if not obs.enabled:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        obs.histogram(f"kernels.{name}.{op}_s").observe(
            time.perf_counter() - t0)


# Kernel modules register themselves on import; keep these at the bottom
# so the registry helpers above exist when they run.
from . import bev_scatter  # noqa: E402,F401
from . import corruption_stack  # noqa: E402,F401
from . import matching  # noqa: E402,F401
from . import regret  # noqa: E402,F401
from . import snn_bptt  # noqa: E402,F401
from . import sparse_conv  # noqa: E402,F401
