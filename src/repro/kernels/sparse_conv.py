"""Submanifold sparse 3-D convolution kernels.

The reference backend is the original dict-walking implementation from
``repro.nn.sparse3d`` moved here verbatim (same op order → bit-identical
to the committed goldens).  The vectorized backend is the SECOND/spconv
move: build a sorted-coordinate neighbor index once per point set, then
run the whole layer as dense gathers, one GEMM per kernel offset, and
unique-index scatters.

The index is cached on the input tensor keyed by ``(kernel, stride)``
and shared with stride-1 outputs, so a stack of submanifold layers (the
R-MAE encoder, the detect neck) builds it once.

Both backends speak through duck-typed ``layer`` objects (weight/bias
Parameters, offsets, stride) and :class:`~repro.nn.sparse3d.SparseVoxelTensor`
inputs; imports of ``repro.nn`` stay function-local to keep this package
import-cycle-free.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from . import register_kernel

Coord = Tuple[int, int, int]


class ReferenceSparseConv3d:
    """Original per-voxel dict implementation (seed op order preserved)."""

    def forward(self, layer, x):
        from ..nn.sparse3d import SparseVoxelTensor

        feats = x.features
        out_sites: Dict[Coord, np.ndarray] = {}
        # (output coord) -> list of (offset index, input coord) contributions
        gather: Dict[Coord, List[Tuple[int, Coord]]] = {}
        s = layer.stride
        for (i, j, k) in feats:
            oc = (i // s, j // s, k // s) if s > 1 else (i, j, k)
            if oc not in gather:
                gather[oc] = []
        for oc, contribs in gather.items():
            ci, cj, ck = (oc[0] * s, oc[1] * s, oc[2] * s)
            for oi, (dx, dy, dz) in enumerate(layer.offsets):
                nb = (ci + dx, cj + dy, ck + dz)
                if nb in feats:
                    contribs.append((oi, nb))
        for oc, contribs in gather.items():
            acc = layer.bias.data.copy()
            for oi, nb in contribs:
                acc = acc + feats[nb] @ layer.weight.data[oi]
            out_sites[oc] = acc
        shape = x.grid_shape if s == 1 else tuple(
            max(1, d // s) for d in x.grid_shape)
        layer._cache = ("reference", x, gather)
        return SparseVoxelTensor(out_sites, layer.out_ch, shape)

    def backward(self, layer, grad):
        _, x, gather = layer._cache
        din: Dict[Coord, np.ndarray] = {
            c: np.zeros(layer.in_ch) for c in x.features}
        for oc, g in grad.items():
            if oc not in gather:
                continue
            layer.bias.grad += g
            for oi, nb in gather[oc]:
                layer.weight.grad[oi] += np.outer(x.features[nb], g)
                din[nb] += layer.weight.data[oi] @ g
        return din


def build_neighbor_index(coords: np.ndarray, offsets: np.ndarray,
                         stride: int):
    """Gather/scatter index for one (kernel footprint, stride) pair.

    ``coords`` must be lexicographically sorted (n, 3) int64 — the order
    :meth:`SparseVoxelTensor.packed` guarantees.  Returns
    ``(out_coords, pairs)`` where ``out_coords`` is the sorted (m, 3)
    output coordinate set and ``pairs[oi] = (in_idx, out_idx)`` lists,
    for kernel offset ``oi``, which input rows feed which output rows.

    Submanifold structure makes the scatter side trivially parallel:
    for a fixed offset every output site queries exactly one neighbor
    coordinate, so ``out_idx`` (and symmetrically ``in_idx``) contain no
    duplicates and plain fancy-index ``+=`` is exact.
    """
    n = coords.shape[0]
    empty = np.zeros(0, dtype=np.int64)
    if n == 0:
        return coords.reshape(0, 3), [(empty, empty)] * len(offsets)
    if stride > 1:
        out_coords = np.unique(coords // stride, axis=0)
    else:
        out_coords = coords
    # Shift-to-nonnegative row-major ravel: scalar keys that ascend with
    # the lexicographic coordinate order, so searchsorted resolves
    # neighbor lookups against the sorted input set.
    lo = coords.min(axis=0)
    dims = coords.max(axis=0) - lo + 1

    def encode(c: np.ndarray) -> np.ndarray:
        q = c - lo
        return (q[:, 0] * dims[1] + q[:, 1]) * dims[2] + q[:, 2]

    keys = encode(coords)
    base = out_coords * stride
    pairs = []
    for off in offsets:
        q = base + off
        valid = np.all((q >= lo) & (q < lo + dims), axis=1)
        if not valid.any():
            pairs.append((empty, empty))
            continue
        qk = encode(q[valid])
        pos = np.minimum(np.searchsorted(keys, qk), n - 1)
        found = keys[pos] == qk
        in_idx = pos[found]
        out_idx = np.nonzero(valid)[0][found]
        pairs.append((in_idx, out_idx))
    return out_coords, pairs


class VectorizedSparseConv3d:
    """Sorted-key neighbor index + one GEMM per kernel offset."""

    def forward(self, layer, x):
        from ..nn.sparse3d import SparseVoxelTensor

        coords, X = x.packed()
        s = layer.stride
        key = (layer.kernel, s)
        index = x._index_cache.get(key)
        if index is None:
            offsets = np.asarray(layer.offsets, dtype=np.int64)
            index = build_neighbor_index(coords, offsets, s)
            x._index_cache[key] = index
        out_coords, pairs = index
        W = layer.weight.data
        out = np.tile(layer.bias.data, (out_coords.shape[0], 1))
        for oi, (in_idx, out_idx) in enumerate(pairs):
            if in_idx.size:
                out[out_idx] += X[in_idx] @ W[oi]
        shape = x.grid_shape if s == 1 else tuple(
            max(1, d // s) for d in x.grid_shape)
        layer._cache = ("vectorized", coords, X, out_coords, pairs)
        # Stride-1 outputs keep the input's active set, so downstream
        # submanifold layers can reuse the cached neighbor index.
        cache = x._index_cache if s == 1 else {}
        return SparseVoxelTensor(None, layer.out_ch, shape,
                                 coords=out_coords, matrix=out,
                                 index_cache=cache)

    def backward(self, layer, grad):
        from ..nn.sparse3d import SparseGrad

        _, coords, X, out_coords, pairs = layer._cache
        n_out = out_coords.shape[0]
        if isinstance(grad, SparseGrad) and grad.matrix.shape[0] == n_out \
                and np.array_equal(grad.coords_arr, out_coords):
            G = grad.matrix
        else:
            # Dict-shaped grads (tests, pool backward): scatter known
            # coords into rows; unknown coords contribute nothing, like
            # the reference's `oc not in gather` skip.
            G = np.zeros((n_out, layer.out_ch))
            lookup = {(int(c[0]), int(c[1]), int(c[2])): i
                      for i, c in enumerate(out_coords)}
            for oc, g in grad.items():
                row = lookup.get(tuple(int(v) for v in oc))
                if row is not None:
                    G[row] = g
        layer.bias.grad += G.sum(axis=0)
        W = layer.weight.data
        din = np.zeros_like(X)
        for oi, (in_idx, out_idx) in enumerate(pairs):
            if in_idx.size:
                layer.weight.grad[oi] += X[in_idx].T @ G[out_idx]
                din[in_idx] += G[out_idx] @ W[oi].T
        return SparseGrad(coords, din)


register_kernel("sparse_conv3d", "reference", ReferenceSparseConv3d())
register_kernel("sparse_conv3d", "vectorized", VectorizedSparseConv3d())
