"""BEV detection matching kernels (greedy centre-distance assignment).

Reference: the original O(P*G) Python scan from ``repro.detect.ap``.

Vectorized: one broadcast ``np.hypot`` builds the full prediction/GT
distance matrix, then the greedy claim loop runs on boolean masks.
``np.hypot`` is an elementwise ufunc, so every matrix entry is
bit-identical to the reference's scalar call — including the tie-break
(the reference's running ``dist <= best_dist`` scan means the LAST
ground truth among equal minima wins, reproduced here with the final
index of the argmin set).  This kernel is therefore verified EXACTLY,
not under tolerance.

Predictions are duck-typed (``.x``/``.y``/``.score``), so this module
needs no import of ``repro.detect``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from . import register_kernel


class ReferenceBEVMatch:
    """Original per-prediction, per-GT scan (seed op order)."""

    def match_scene(self, preds, gts: np.ndarray,
                    max_dist: float) -> List[Tuple[float, bool]]:
        order = sorted(preds, key=lambda d: -d.score)
        claimed = np.zeros(len(gts), dtype=bool)
        results: List[Tuple[float, bool]] = []
        for det in order:
            best_idx, best_dist = -1, max_dist
            for gi in range(len(gts)):
                if claimed[gi]:
                    continue
                dist = float(np.hypot(det.x - gts[gi, 0],
                                      det.y - gts[gi, 1]))
                if dist <= best_dist:
                    best_idx, best_dist = gi, dist
            if best_idx >= 0:
                claimed[best_idx] = True
                results.append((det.score, True))
            else:
                results.append((det.score, False))
        return results


class VectorizedBEVMatch:
    """Broadcast distance matrix + masked greedy claim loop."""

    def match_scene(self, preds, gts: np.ndarray,
                    max_dist: float) -> List[Tuple[float, bool]]:
        order = sorted(preds, key=lambda d: -d.score)
        n_gt = len(gts)
        if not order:
            return []
        if n_gt == 0:
            return [(det.score, False) for det in order]
        px = np.array([det.x for det in order], dtype=np.float64)
        py = np.array([det.y for det in order], dtype=np.float64)
        dmat = np.hypot(px[:, None] - gts[None, :, 0],
                        py[:, None] - gts[None, :, 1])
        claimed = np.zeros(n_gt, dtype=bool)
        results: List[Tuple[float, bool]] = []
        for i, det in enumerate(order):
            d = dmat[i]
            elig = ~claimed & (d <= max_dist)
            if elig.any():
                dmin = d[elig].min()
                # Reference tie-break: last index among equal minima.
                gi = int(np.nonzero(elig & (d == dmin))[0][-1])
                claimed[gi] = True
                results.append((det.score, True))
            else:
                results.append((det.score, False))
        return results


register_kernel("bev_match", "reference", ReferenceBEVMatch())
register_kernel("bev_match", "vectorized", VectorizedBEVMatch())
