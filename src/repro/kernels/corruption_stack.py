"""Fused corruption-stack kernels (scenario sweep hot path).

Reference: the per-stage composition — each stage calls the original
corruption function from :mod:`repro.sim.corruptions`, which rebuilds a
full ``LidarScan`` (fired_mask copy, dataclass construction, defensive
array copies) between stages.

Vectorized: one traversal over the scan.  The stack is applied to a set
of working arrays (points / labels / beam_ids / ranges) that flow
through all stages without intermediate scan materialization; arrays are
copied exactly once on first mutation and mutated in place afterwards.
Every RNG draw happens with the same generator, the same distribution,
the same size and the same order as the reference (including size-0
draws and the ``if pts.size`` / ``num_points == 0`` draw guards), and
every floating-point op is the same ufunc on the same values — so the
fused output is **bit-identical** to the sequential composition, not
merely close.  ``repro verify`` and the property suite hold it to exact
equality.

Both backends require severity > 0 for every stage and one private
generator per stage; :func:`repro.sim.apply_corruption_stack` enforces
that contract (severity-0 stages are exact identities and are filtered,
with their generators, before dispatch).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from . import register_kernel

Stage = Tuple[str, float]


class ReferenceCorruptionStack:
    """Sequential per-stage composition (the differential baseline)."""

    def apply(self, scan, stages: Sequence[Stage],
              rngs: Sequence[np.random.Generator]):
        from ..sim.corruptions import CORRUPTIONS
        out = scan
        for (name, severity), rng in zip(stages, rngs):
            out = CORRUPTIONS[name](out, severity=severity, rng=rng)
        return out


class _Arrays:
    """Working arrays with copy-on-first-write ownership tracking.

    Arrays start as views of the input scan; any stage output produced
    by fancy indexing or concatenation is fresh (owned) and may be
    mutated in place.  ``own_*`` copies lazily before the first in-place
    mutation of a still-borrowed array.
    """

    __slots__ = ("pts", "lbl", "beam", "rngs",
                 "pts_owned", "lbl_owned", "beam_owned", "rngs_owned")

    def __init__(self, scan):
        self.pts = scan.points
        self.lbl = scan.labels
        self.beam = scan.beam_ids
        self.rngs = scan.ranges
        self.pts_owned = False
        self.lbl_owned = False
        self.beam_owned = False
        self.rngs_owned = False

    @property
    def n(self) -> int:
        return self.pts.shape[0]

    def drop(self, keep: np.ndarray) -> None:
        self.pts = self.pts[keep]
        self.lbl = self.lbl[keep]
        self.beam = self.beam[keep]
        self.rngs = self.rngs[keep]
        self.pts_owned = self.lbl_owned = True
        self.beam_owned = self.rngs_owned = True

    def own_pts(self) -> np.ndarray:
        if not self.pts_owned:
            self.pts = self.pts.copy()
            self.pts_owned = True
        return self.pts

    def own_lbl(self) -> np.ndarray:
        if not self.lbl_owned:
            self.lbl = self.lbl.copy()
            self.lbl_owned = True
        return self.lbl

    def own_rngs(self) -> np.ndarray:
        if not self.rngs_owned:
            self.rngs = self.rngs.copy()
            self.rngs_owned = True
        return self.rngs

    def add_spurious(self, new_pts: np.ndarray, new_ranges: np.ndarray,
                     rng: np.random.Generator) -> None:
        # Mirrors corruptions._add_spurious exactly, including the
        # size-0 integers draw and the conditional points concat.
        n_new = new_pts.shape[0]
        lbl = np.full(n_new, -2, dtype=np.int64)
        beam = rng.integers(0, max(len(self.beam), 1) + 1, size=n_new)
        if n_new:
            self.pts = np.concatenate([self.pts, new_pts])
            self.pts_owned = True
        self.lbl = np.concatenate([self.lbl, lbl])
        self.beam = np.concatenate([self.beam, beam.astype(np.int64)])
        self.rngs = np.concatenate([self.rngs, new_ranges])
        self.lbl_owned = self.beam_owned = self.rngs_owned = True


class FusedCorruptionStack:
    """Single-traversal stack applicator, bit-identical to the reference."""

    def apply(self, scan, stages: Sequence[Stage],
              rngs: Sequence[np.random.Generator]):
        from ..sim.lidar import LidarScan
        a = _Arrays(scan)
        config = scan.config
        for (name, severity), rng in zip(stages, rngs):
            getattr(self, "_" + name)(a, config, severity, rng)
        return LidarScan(
            points=a.pts if a.pts_owned else a.pts.copy(),
            labels=a.lbl if a.lbl_owned else a.lbl.copy(),
            beam_ids=a.beam if a.beam_owned else a.beam.copy(),
            ranges=a.rngs if a.rngs_owned else a.rngs.copy(),
            fired_mask=scan.fired_mask.copy(), config=config)

    # Each stage replicates its corruption's draw order exactly; ``n``
    # is sampled before the drop wherever the reference uses the
    # stage-input count for spurious-return sizing.

    def _snow(self, a: _Arrays, config, severity: float,
              rng: np.random.Generator) -> None:
        n = a.n
        keep = rng.random(n) > 0.35 * severity
        a.drop(keep)
        n_flakes = int(severity * max(n, 40) * 0.8)
        r = rng.exponential(3.0, size=n_flakes) + 0.5
        az = rng.uniform(-np.pi, np.pi, size=n_flakes)
        el = rng.uniform(-0.3, 0.3, size=n_flakes)
        flakes = np.stack([r * np.cos(az) * np.cos(el),
                           r * np.sin(az) * np.cos(el),
                           r * np.sin(el) + config.sensor_height_m,
                           rng.uniform(0.6, 1.0, size=n_flakes)], axis=1)
        a.add_spurious(flakes, r, rng)

    def _rain(self, a: _Arrays, config, severity: float,
              rng: np.random.Generator) -> None:
        n = a.n
        keep = rng.random(n) > 0.2 * severity
        a.drop(keep)
        if a.pts.size:
            a.pts[:, 3] *= (1.0 - 0.5 * severity)
        n_drops = int(severity * max(n, 40) * 0.3)
        r = rng.exponential(5.0, size=n_drops) + 0.5
        az = rng.uniform(-np.pi, np.pi, size=n_drops)
        drops = np.stack([r * np.cos(az), r * np.sin(az),
                          rng.uniform(0.0, 3.0, size=n_drops),
                          rng.uniform(0.2, 0.5, size=n_drops)], axis=1)
        a.add_spurious(drops, r, rng)

    def _fog(self, a: _Arrays, config, severity: float,
             rng: np.random.Generator) -> None:
        n = a.n
        if n == 0:
            return
        sigma = 0.03 * severity
        survival = np.exp(-2.0 * sigma * a.rngs)
        keep = rng.random(n) < survival
        a.drop(keep)
        if a.pts.size:
            noise = rng.normal(0.0, 0.1 * severity,
                               size=(a.pts.shape[0], 3))
            a.pts[:, :3] += noise
            a.pts[:, 3] *= (1.0 - 0.4 * severity)

    def _beam_missing(self, a: _Arrays, config, severity: float,
                      rng: np.random.Generator) -> None:
        n_el = config.n_elevation
        n_dead = int(round(severity * n_el * 0.6))
        dead_rows = set(rng.choice(n_el, size=min(n_dead, n_el),
                                   replace=False).tolist())
        rows = a.beam % n_el
        keep = ~np.isin(rows, list(dead_rows))
        a.drop(keep)

    def _motion_blur(self, a: _Arrays, config, severity: float,
                     rng: np.random.Generator) -> None:
        if a.pts.size:
            pts = a.own_pts()
            az = np.arctan2(pts[:, 1], pts[:, 0])
            jitter = rng.normal(0.0, 0.02 * severity, size=pts.shape[0])
            tangent = np.stack([-np.sin(az), np.cos(az)], axis=1)
            pts[:, :2] += tangent * (jitter * a.rngs)[:, None]

    def _crosstalk(self, a: _Arrays, config, severity: float,
                   rng: np.random.Generator) -> None:
        if a.pts.size:
            n = a.n
            hit = rng.random(n) < 0.5 * severity
            if hit.any():
                pts = a.own_pts()
                norm = np.linalg.norm(pts[hit, :3], axis=1)
                norm = np.where(norm < 1e-9, 1.0, norm)
                fake_r = rng.uniform(2.0, config.max_range_m * 0.8,
                                     size=int(hit.sum()))
                pts[hit, :3] *= (fake_r / norm)[:, None]
                a.own_rngs()[hit] = fake_r
                a.own_lbl()[hit] = -2

    def _cross_sensor(self, a: _Arrays, config, severity: float,
                      rng: np.random.Generator) -> None:
        n_ghost = int(severity * 120)
        phase = rng.uniform(0, 2 * np.pi)
        az = phase + np.linspace(0, np.pi, max(n_ghost, 1))
        r = 8.0 + 4.0 * np.sin(6.0 * az) + rng.normal(0, 0.3, size=az.shape)
        r = np.clip(r, 1.0, None)
        ghosts = np.stack([r * np.cos(az), r * np.sin(az),
                           np.full_like(az, config.sensor_height_m),
                           np.full_like(az, 0.9)], axis=1)
        a.add_spurious(ghosts, r, rng)


register_kernel("corruption_stack", "reference", ReferenceCorruptionStack())
register_kernel("corruption_stack", "vectorized", FusedCorruptionStack())
