"""SNN surrogate-BPTT kernels (LIF dynamics over T timesteps).

Reference: the original per-timestep implementation from
``repro.neuromorphic.snn`` — one small convolution forward (and one
backward) per step, a second reverse pass for the learnable-dynamics
grads.  Moved verbatim; bit-identical to the goldens.

Vectorized: the Spike-FlowNet-style batched-time trick.  ``Conv2d`` is
batch-generic, so the T per-step convolutions collapse into ONE call on
a ``(T*N, C, H, W)`` fold — one im2col and one GEMM instead of T.  The
LIF scan itself stays a loop over T (the reset makes it sequential) but
its body is pure fused array ops, and the backward conv is likewise a
single batched call on the stacked pre-activation grads.  The
learnable-dynamics sums fold into the main reverse sweep instead of a
second pass.  GEMM re-association means last-ulp drift vs the
reference; covered by the verify tolerance specs.

Both backends set ``layer.last_membrane`` / ``layer._cache`` and return
``(spikes, d_leak, d_thr)`` from backward with the *raw* dynamics grads;
the sigmoid/softplus chain rules stay in ``SpikingConv2d``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import register_kernel


class ReferenceSNNBPTT:
    """Original per-timestep conv + second dynamics pass (seed op order)."""

    def forward(self, layer, x: np.ndarray) -> np.ndarray:
        t_steps = x.shape[0]
        leak, thr = layer.leak(), layer.threshold()
        v = None
        spikes_out: List[np.ndarray] = []
        caches: List[tuple] = []
        for t in range(t_steps):
            current = layer.conv.forward(x[t])
            conv_cache = layer.conv._cache
            if v is None:
                v = np.zeros_like(current)
            v_pre = leak * v + current
            s = (v_pre > thr).astype(np.float64)
            v = v_pre - thr * s
            spikes_out.append(s)
            caches.append((conv_cache, v_pre, s))
        layer.last_membrane = v
        layer._cache = ("reference", x.shape, caches, leak, thr)
        return np.stack(spikes_out)

    def backward(self, layer, grad: np.ndarray,
                 grad_membrane: Optional[np.ndarray]):
        from ..neuromorphic.neurons import surrogate_gradient

        _, x_shape, caches, leak, thr = layer._cache
        t_steps = len(caches)
        grad_in = np.zeros(x_shape)
        gv_next = (np.zeros_like(caches[-1][1]) if grad_membrane is None
                   else grad_membrane.copy())
        for t in range(t_steps - 1, -1, -1):
            conv_cache, v_pre, s = caches[t]
            sg = surrogate_gradient(v_pre, thr, layer.surrogate_width)
            gs = grad[t]
            # v[t] = v_pre - thr * s;  s = H(v_pre - thr)
            # dL/dv_pre = dL/dv[t] * (1 - thr * sg) + dL/ds * sg
            gv_pre = gv_next * (1.0 - thr * sg) + gs * sg
            # Route through the conv at this timestep.
            layer.conv._cache = conv_cache
            grad_in[t] = layer.conv.backward(gv_pre)
            # Temporal path to the previous membrane.
            gv_next = gv_pre * leak

        d_leak, d_thr = 0.0, 0.0
        if layer.learnable_dynamics:
            d_leak, d_thr = self._dynamics_grads(layer, grad, grad_membrane)
        return grad_in, d_leak, d_thr

    def _dynamics_grads(self, layer, grad: np.ndarray,
                        grad_membrane: Optional[np.ndarray]):
        """dL/dleak and dL/dthreshold by reverse accumulation.

        Reuses the cached per-step pre-reset potentials; membrane values
        v[t] are reconstructed as v_pre[t] - thr * s[t].
        """
        from ..neuromorphic.neurons import surrogate_gradient

        _, _, caches, leak, thr = layer._cache
        t_steps = len(caches)
        gv_next = (np.zeros_like(caches[-1][1]) if grad_membrane is None
                   else grad_membrane.copy())
        d_leak = 0.0
        d_thr = 0.0
        for t in range(t_steps - 1, -1, -1):
            _, v_pre, s = caches[t]
            sg = surrogate_gradient(v_pre, thr, layer.surrogate_width)
            gs = grad[t]
            # Explicit threshold dependence at this step: the reset term
            # v[t] = v_pre - thr * s and the firing condition
            # s = H(v_pre - thr) (whose surrogate derivative w.r.t. thr
            # is -sg).
            d_thr += float(np.sum(-gv_next * s) - np.sum(gs * sg)
                           + np.sum(gv_next * thr * sg))
            gv_pre = gv_next * (1.0 - thr * sg) + gs * sg
            if t > 0:
                _, v_pre_prev, s_prev = caches[t - 1]
                v_prev = v_pre_prev - thr * s_prev
                d_leak += float(np.sum(gv_pre * v_prev))
            gv_next = gv_pre * leak
        return d_leak, d_thr


class VectorizedSNNBPTT:
    """One batched conv over the (T*N) fold + fused LIF scan."""

    def forward(self, layer, x: np.ndarray) -> np.ndarray:
        t_steps, n = x.shape[0], x.shape[1]
        leak, thr = layer.leak(), layer.threshold()
        flat = layer.conv.forward(
            x.reshape((t_steps * n,) + x.shape[2:]))
        conv_cache = layer.conv._cache
        cur = flat.reshape((t_steps, n) + flat.shape[1:])
        v_pre_all = np.empty_like(cur)
        spikes = np.empty_like(cur)
        v = np.zeros_like(cur[0])
        for t in range(t_steps):
            v_pre = leak * v + cur[t]
            s = (v_pre > thr).astype(np.float64)
            v = v_pre - thr * s
            v_pre_all[t] = v_pre
            spikes[t] = s
        layer.last_membrane = v
        layer._cache = ("vectorized", x.shape, conv_cache, v_pre_all,
                        spikes, leak, thr)
        return spikes.copy()

    def backward(self, layer, grad: np.ndarray,
                 grad_membrane: Optional[np.ndarray]):
        from ..neuromorphic.neurons import surrogate_gradient

        (_, x_shape, conv_cache, v_pre_all, spikes, leak,
         thr) = layer._cache
        t_steps, n = x_shape[0], x_shape[1]
        sg = surrogate_gradient(v_pre_all, thr, layer.surrogate_width)
        gv_next = (np.zeros_like(v_pre_all[-1]) if grad_membrane is None
                   else grad_membrane.copy())
        gv_pre_all = np.empty_like(v_pre_all)
        d_thr = 0.0
        for t in range(t_steps - 1, -1, -1):
            gs = grad[t]
            if layer.learnable_dynamics:
                d_thr += float(np.sum(-gv_next * spikes[t])
                               - np.sum(gs * sg[t])
                               + np.sum(gv_next * thr * sg[t]))
            gv_pre = gv_next * (1.0 - thr * sg[t]) + gs * sg[t]
            gv_pre_all[t] = gv_pre
            gv_next = gv_pre * leak
        d_leak = 0.0
        if layer.learnable_dynamics and t_steps > 1:
            # Sum over t >= 1 of gv_pre[t] * v[t-1], with the membrane
            # reconstructed as v_pre - thr * s.
            d_leak = float(np.sum(
                gv_pre_all[1:] * (v_pre_all[:-1] - thr * spikes[:-1])))
        layer.conv._cache = conv_cache
        flat = layer.conv.backward(
            gv_pre_all.reshape((t_steps * n,) + gv_pre_all.shape[2:]))
        return flat.reshape(x_shape), d_leak, d_thr


register_kernel("snn_bptt", "reference", ReferenceSNNBPTT())
register_kernel("snn_bptt", "vectorized", VectorizedSNNBPTT())
