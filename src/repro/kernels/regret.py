"""STARNet likelihood-regret scoring kernels.

Reference: one row at a time through the original functions in
``repro.starnet.likelihood_regret``, consuming the monitor RNG in row
order — exactly the stream the committed goldens saw.

Vectorized: the whole evaluation batch at once.  The deterministic
per-row ELBO is a batched encode/decode plus row-wise reductions; the
SPSA inner optimization runs all rows in lock-step (each row keeps its
own delta generator so the perturbation streams match the reference
draw-for-draw: seeds are pulled from the shared RNG in the same row
order the reference pulls them).  One decoder GEMM per evaluation
replaces B GEMVs, so drift vs the reference is BLAS re-association
only.

Kernel API: ``score_rows(vae, X, method, spsa_steps, rng) -> (B,)``.
"""

from __future__ import annotations

import numpy as np

from . import register_kernel

# SPSA hyper-parameters pinned by likelihood_regret_spsa (must track
# repro.nn.optim.SPSA defaults for alpha/gamma/a_stability).
_SPSA_A = 1.0
_SPSA_C = 0.1
_SPSA_ALPHA = 0.602
_SPSA_GAMMA = 0.101
_SPSA_STABILITY = 10.0
_EXACT_STEPS = 50
_EXACT_LR = 0.05


class ReferenceLikelihoodRegret:
    """Row-at-a-time scoring through the original single-sample code."""

    def score_rows(self, vae, X, method, spsa_steps, rng) -> np.ndarray:
        from ..starnet.likelihood_regret import (
            likelihood_regret_exact, likelihood_regret_spsa,
            reconstruction_error_score)

        out = []
        for row in X:
            if method == "spsa":
                out.append(likelihood_regret_spsa(
                    vae, row, steps=spsa_steps, rng=rng))
            elif method == "exact":
                out.append(likelihood_regret_exact(vae, row, rng=rng))
            else:
                out.append(reconstruction_error_score(vae, row, rng=rng))
        return np.asarray(out, dtype=np.float64)


def elbo_rows(vae, X: np.ndarray, mu: np.ndarray,
              logvar: np.ndarray) -> np.ndarray:
    """Deterministic per-row ELBO at z = mu (batched per_sample_elbo)."""
    logvar = np.clip(logvar, -10.0, 10.0)
    recon = vae.decode(mu)
    recon_term = -np.sum((recon - X) ** 2, axis=1)
    kl = 0.5 * np.sum(np.exp(logvar) + mu ** 2 - 1.0 - logvar, axis=1)
    return recon_term - kl


class VectorizedLikelihoodRegret:
    """Whole-batch regret: lock-step SPSA / batched gradient ascent."""

    def score_rows(self, vae, X, method, spsa_steps, rng) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[0] == 0:
            return np.zeros(0)
        if method == "spsa":
            return self._spsa(vae, X, spsa_steps, rng)
        if method == "exact":
            return self._exact(vae, X)
        mu, _ = vae.encode(X)
        recon = vae.decode(mu)
        return np.sum((recon - X) ** 2, axis=1)

    def _spsa(self, vae, X, steps, rng) -> np.ndarray:
        latent = vae.latent_dim
        mu0, logvar0 = vae.encode(X)
        base = elbo_rows(vae, X, mu0, logvar0)
        theta = np.concatenate([mu0, logvar0], axis=1)
        # One generator per row, seeded in row order from the shared RNG
        # — the exact draws the reference makes inside its per-row loop.
        gens = [np.random.default_rng(rng.integers(2 ** 31))
                for _ in range(X.shape[0])]

        def neg_elbo(th: np.ndarray) -> np.ndarray:
            return -elbo_rows(vae, X, th[:, :latent], th[:, latent:])

        f_best = neg_elbo(theta)
        for k in range(steps):
            ak = _SPSA_A / (k + 1 + _SPSA_STABILITY) ** _SPSA_ALPHA
            ck = _SPSA_C / (k + 1) ** _SPSA_GAMMA
            delta = np.stack([g.choice([-1.0, 1.0], size=theta.shape[1])
                              for g in gens])
            f_plus = neg_elbo(theta + ck * delta)
            f_minus = neg_elbo(theta - ck * delta)
            ghat = ((f_plus - f_minus) / (2.0 * ck))[:, None] * delta
            # Normalized-gradient SPSA, per row.
            norms = np.linalg.norm(ghat, axis=1)
            scale = np.where(norms > 0, norms, 1.0)
            theta = theta - ak * (ghat / scale[:, None])
            f_best = np.minimum(f_best, neg_elbo(theta))
        return np.maximum(-f_best - base, 0.0)

    def _exact(self, vae, X) -> np.ndarray:
        mu, logvar = vae.encode(X)
        base = elbo_rows(vae, X, mu, logvar)
        mu_opt = mu.copy()
        best = base.copy()
        for _ in range(_EXACT_STEPS):
            recon = vae.decode(mu_opt)
            grad_recon = -2.0 * (recon - X)
            dz = vae.decoder.backward(grad_recon)
            mu_opt = mu_opt + _EXACT_LR * (dz - mu_opt)
            best = np.maximum(best, elbo_rows(vae, X, mu_opt, logvar))
        return np.maximum(best - base, 0.0)


register_kernel("likelihood_regret", "reference",
                ReferenceLikelihoodRegret())
register_kernel("likelihood_regret", "vectorized",
                VectorizedLikelihoodRegret())
