"""Structured trace spans with wall-time and energy-ledger deltas.

A :class:`Span` is one timed region; spans opened while another is live
become its children, so a profiled run produces a tree mirroring the
call structure (cycle -> sense/perceive/monitor/act/actuate).  When a
span is given an energy ledger (anything with an ``as_dict()`` of float
meters, i.e. :class:`repro.hardware.energy.EnergyLedger`), it snapshots
the meters on entry and records the per-meter delta on exit — the
paper's "energy per loop stage" accounting for free.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


class Span:
    """One timed (and optionally energy-metered) region of execution."""

    __slots__ = ("name", "attrs", "children", "start_s", "end_s",
                 "energy_mj", "_tracer", "_ledger", "_energy_before")

    def __init__(self, name: str, tracer: "Tracer", ledger=None,
                 attrs: Optional[dict] = None):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List[Span] = []
        self.start_s = 0.0
        self.end_s = 0.0
        self.energy_mj: Optional[Dict[str, float]] = None
        self._tracer = tracer
        self._ledger = ledger
        self._energy_before: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------ protocol
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        if self._ledger is not None:
            snapshot = getattr(self._ledger, "snapshot", None)
            self._energy_before = (dict(snapshot()) if snapshot is not None
                                   else dict(self._ledger.as_dict()))
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        if self._ledger is not None:
            # EnergyLedger-style objects provide windowed readings via
            # snapshot()/delta(); anything else with as_dict() gets the
            # same subtraction done here.
            before = self._energy_before
            delta = getattr(self._ledger, "delta", None)
            if delta is not None:
                self.energy_mj = dict(delta(before))
            else:
                after = self._ledger.as_dict()
                self.energy_mj = {k: after[k] - before.get(k, 0.0)
                                  for k in after}
        self._tracer._pop(self)
        return False

    # ----------------------------------------------------------- interface
    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    def annotate(self, **attrs) -> "Span":
        """Attach key/value metadata to the span."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.energy_mj is not None:
            out["energy_mj"] = dict(self.energy_mj)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {1e3 * self.duration_s:.3f} ms, "
                f"{len(self.children)} children)")


class _NoopSpan:
    """Shared do-nothing span for the disabled path (no allocations)."""

    __slots__ = ()
    name = "noop"
    children: List[Span] = []
    attrs: Dict[str, object] = {}
    duration_s = 0.0
    energy_mj = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> "_NoopSpan":
        return self

    def as_dict(self) -> dict:
        return {"name": self.name, "start_s": 0.0, "duration_s": 0.0}


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Maintains the live span stack and the forest of finished roots.

    ``max_spans`` bounds retention: beyond it, spans are still timed
    (callers may read their durations) but no longer attached to the
    tree; ``dropped`` counts them so truncation is never silent.
    """

    def __init__(self, max_spans: int = 20_000):
        self.roots: List[Span] = []
        self.dropped = 0
        self.max_spans = max_spans
        self._stack: List[Span] = []
        self._retained = 0

    def span(self, name: str, ledger=None,
             attrs: Optional[dict] = None) -> Span:
        return Span(name, self, ledger=ledger, attrs=attrs)

    # ------------------------------------------------------------ plumbing
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exception-driven unwinding: pop back to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._retained >= self.max_spans:
            self.dropped += 1
            return
        self._retained += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
