"""``repro.obs`` — loop-wide telemetry and profiling.

The paper's thesis is that sensing-to-action loops must be *measured*
end to end — per-stage latency, energy, staleness, trust — before they
can be co-designed (Sec. II, Fig. 1).  This package is that measurement
layer, dependency-free and near-zero-cost when disabled:

* :class:`MetricsRegistry` — named counters, gauges, and streaming
  histograms (p50/p95/p99 via reservoir sampling);
* :func:`trace_span` — nestable context managers building structured
  span trees with wall time and per-meter energy-ledger deltas;
* :func:`~repro.obs.export.export_jsonl` /
  :func:`~repro.obs.export.render_report` — JSONL export and a text
  flamegraph-ish summary.

By default the *active registry* is a shared no-op (:data:`NOOP_REGISTRY`)
whose instruments allocate nothing, so the instrumentation woven through
``repro.core.loop``, ``repro.starnet``, ``repro.generative``,
``repro.neuromorphic``, and ``repro.federated`` costs a few method calls
per cycle until :func:`enable` (or ``repro profile ...``) turns it on.
"""

from .export import (
    aggregate_spans,
    deterministic_counters,
    export_jsonl,
    read_jsonl,
    registry_payload,
    render_metrics,
    render_report,
    render_span_tree,
)
from .registry import (
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    trace_span,
    use_registry,
)
from .spans import NOOP_SPAN, Span, Tracer


def __getattr__(name):
    # Lazy: scenario builds on repro.core, which itself imports
    # repro.obs.registry — a top-level import here would be circular.
    if name == "run_profile_scenario":
        from .scenario import run_profile_scenario
        return run_profile_scenario
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NoopRegistry",
    "NOOP_REGISTRY", "Span", "Tracer", "NOOP_SPAN",
    "get_registry", "set_registry", "enable", "disable", "use_registry",
    "trace_span",
    "export_jsonl", "read_jsonl", "registry_payload", "aggregate_spans",
    "deterministic_counters",
    "render_span_tree", "render_metrics", "render_report",
    "run_profile_scenario",
]
