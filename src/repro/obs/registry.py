"""Metrics instruments and the registry that owns them.

Three instrument kinds cover the paper's loop-accounting needs
(Sec. II: per-stage latency, energy, staleness, trust):

* :class:`Counter` — monotonically increasing totals (cycles, spikes,
  communication bytes, SPSA iterations);
* :class:`Gauge` — last-value-wins readings (current trust, coverage);
* :class:`Histogram` — streaming distributions with p50/p95/p99 via
  bounded reservoir sampling (cycle latency, stage timings).

A :class:`MetricsRegistry` holds instruments by name and owns a span
:class:`~repro.obs.spans.Tracer`.  The module-level *active registry*
defaults to a no-op implementation whose instruments are shared
singletons doing literally nothing, so instrumented hot paths cost a few
method calls and **zero allocations** per cycle when observability is
disabled — benchmarks stay honest.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import NOOP_SPAN, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NoopRegistry",
    "NOOP_REGISTRY", "get_registry", "set_registry", "enable", "disable",
    "use_registry", "trace_span",
]

DEFAULT_QUANTILES: Tuple[float, float, float] = (0.5, 0.95, 0.99)


class Counter:
    """A float total that only goes up."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n

    def as_dict(self) -> dict:
        return {"kind": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-value-wins reading."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def as_dict(self) -> dict:
        return {"kind": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Streaming distribution: exact count/sum/min/max plus quantile
    estimates from a bounded reservoir (Vitter's algorithm R).

    For streams no longer than ``reservoir_size`` the quantiles are
    exact; beyond that each seen value has had an equal chance of being
    retained, so sorted-reservoir interpolation is an unbiased estimate.
    A tiny deterministic LCG replaces ``random`` so identical runs give
    identical summaries.
    """

    __slots__ = ("name", "reservoir_size", "count", "total", "min", "max",
                 "_reservoir", "_sorted", "_dirty", "_lcg")

    def __init__(self, name: str, reservoir_size: int = 1024):
        if reservoir_size < 2:
            raise ValueError("reservoir needs at least 2 slots")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False
        self._lcg = 0x9E3779B97F4A7C15

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(v)
        else:
            self._lcg = (self._lcg * 6364136223846793005
                         + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
            j = (self._lcg >> 33) % self.count
            if j < self.reservoir_size:
                self._reservoir[j] = v
        self._dirty = True

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _ensure_sorted(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._reservoir)
            self._dirty = False
        return self._sorted

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the retained sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        data = self._ensure_sorted()
        if not data:
            return 0.0
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        # Clamp: the convex combination can overshoot data[hi] (or
        # undershoot data[lo]) by an ulp when both endpoints are tiny.
        return min(max(data[lo] * (1.0 - frac) + data[hi] * frac,
                       data[lo]), data[hi])

    def quantiles(self, qs: Sequence[float] = DEFAULT_QUANTILES
                  ) -> Dict[str, float]:
        return {f"p{q * 100:g}": self.quantile(q) for q in qs}

    def raw(self) -> List[float]:
        """The retained sample, in observation order.

        Exact for streams no longer than the reservoir; beyond that it is
        the uniformly retained subset (used to replay worker histograms
        into a parent registry).
        """
        return list(self._reservoir)

    def cdf(self, v: float) -> float:
        """Empirical P(X <= v) over the retained sample."""
        data = self._ensure_sorted()
        if not data:
            return 0.0
        return bisect.bisect_right(data, v) / len(data)

    def as_dict(self) -> dict:
        out = {
            "kind": "histogram",
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        out.update(self.quantiles())
        return out


# ------------------------------------------------------------- no-op path
class _NoopCounter:
    __slots__ = ()
    name = "noop"
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass

    def as_dict(self) -> dict:
        return {"kind": "counter", "name": self.name, "value": 0.0}


class _NoopGauge:
    __slots__ = ()
    name = "noop"
    value = 0.0

    def set(self, v: float) -> None:
        pass

    def as_dict(self) -> dict:
        return {"kind": "gauge", "name": self.name, "value": 0.0}


class _NoopHistogram:
    __slots__ = ()
    name = "noop"
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def observe(self, v: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs: Sequence[float] = DEFAULT_QUANTILES
                  ) -> Dict[str, float]:
        return {f"p{q * 100:g}": 0.0 for q in qs}

    def as_dict(self) -> dict:
        return {"kind": "histogram", "name": self.name, "count": 0}


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()


class NoopRegistry:
    """Disabled observability: every accessor returns a shared singleton
    whose mutators do nothing, so the instrumented path allocates
    nothing.  ``trace_span`` yields the shared no-op span."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NoopCounter:
        return _NOOP_COUNTER

    def gauge(self, name: str) -> _NoopGauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, reservoir_size: int = 1024
                  ) -> _NoopHistogram:
        return _NOOP_HISTOGRAM

    def trace_span(self, name: str, ledger=None, attrs=None):
        return NOOP_SPAN

    @property
    def spans(self) -> List[Span]:
        return []

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_REGISTRY = NoopRegistry()


# ------------------------------------------------------------ live registry
class MetricsRegistry:
    """Named instruments plus a span tracer — one observability session.

    Instruments are get-or-create by name; asking twice for the same
    name returns the same object, so modules can fetch instruments in
    hot loops without caching them.
    """

    enabled = True

    def __init__(self, max_spans: int = 20_000):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.tracer = Tracer(max_spans=max_spans)

    # ----------------------------------------------------------- accessors
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, reservoir_size: int = 1024) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, reservoir_size)
        return h

    def trace_span(self, name: str, ledger=None,
                   attrs: Optional[dict] = None) -> Span:
        """Open a nestable span; use as a context manager."""
        return self.tracer.span(name, ledger=ledger, attrs=attrs)

    # ----------------------------------------------------------- reporting
    @property
    def spans(self) -> List[Span]:
        """Finished root spans, in completion order."""
        return self.tracer.roots

    def instruments(self) -> Iterable[object]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def snapshot(self) -> dict:
        """All instrument states as one JSON-ready mapping."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    # ------------------------------------------------- worker aggregation
    def worker_snapshot(self) -> dict:
        """Mergeable delta of this registry (for pool workers).

        Counters/gauges ship their values; histograms ship their retained
        raw samples so the parent can replay observations (exact up to
        the reservoir size).
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.raw() for n, h in self._histograms.items()},
        }

    def merge_worker_snapshot(self, delta: dict) -> None:
        """Fold a worker's :meth:`worker_snapshot` into this registry.

        Deterministic when applied in task submission order: counters
        add, gauges take the delta's value (last submission wins, as in
        a serial run), histogram samples are replayed.
        """
        for name, value in sorted(delta.get("counters", {}).items()):
            self.counter(name).inc(value)
        for name, value in sorted(delta.get("gauges", {}).items()):
            self.gauge(name).set(value)
        for name, values in sorted(delta.get("histograms", {}).items()):
            h = self.histogram(name)
            for v in values:
                h.observe(v)


# -------------------------------------------------------- active registry
_ACTIVE: object = NOOP_REGISTRY


def get_registry():
    """The process-wide active registry (no-op unless enabled)."""
    return _ACTIVE


def set_registry(registry) -> None:
    global _ACTIVE
    _ACTIVE = registry


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a live registry as the active one."""
    reg = registry if registry is not None else MetricsRegistry()
    set_registry(reg)
    return reg


def disable() -> None:
    """Restore the zero-cost no-op registry."""
    set_registry(NOOP_REGISTRY)


@contextmanager
def use_registry(registry):
    """Temporarily install ``registry`` as the active one."""
    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def trace_span(name: str, ledger=None, attrs: Optional[dict] = None):
    """Open a span on whatever registry is currently active."""
    return _ACTIVE.trace_span(name, ledger=ledger, attrs=attrs)
