"""The built-in ``repro profile demo`` scenario.

A compact monitored sensing-to-action loop that exercises all five loop
stages (sense / perceive / monitor / act / actuate) with nontrivial
energy on each, so one profiling run yields a representative span tree
and cycle-latency distribution without pulling in the heavyweight
pillar experiments.

The world is a drifting scalar plant; sensing energy scales with
coverage; the policy is a proportional regulator that narrows coverage
when the estimate is confidently near the setpoint (the paper's
action-to-sensing channel); a z-score monitor rejects out-of-
distribution readings injected as rare glitches.
"""

from __future__ import annotations

import numpy as np

from ..core.components import (
    Action,
    Actuator,
    Environment,
    Monitor,
    Percept,
    Perception,
    Policy,
    Sensor,
    SensorReading,
)
from ..core.loop import LoopMetrics, SensingToActionLoop

__all__ = ["run_profile_scenario"]


class _DriftEnv(Environment):
    def __init__(self, rng: np.random.Generator, glitch_prob: float = 0.05):
        self.rng = rng
        self.state = 0.0
        self.drift = 1.5
        self.glitch_prob = glitch_prob
        self.glitched = False

    def observe_state(self) -> float:
        return self.state

    def advance(self, dt: float) -> None:
        self.state += self.drift * dt + 0.05 * self.rng.standard_normal()
        self.glitched = self.rng.random() < self.glitch_prob


class _CoverageSensor(Sensor):
    FULL_ENERGY_MJ = 8.0

    def sense(self, env: _DriftEnv, directive, t: float) -> SensorReading:
        coverage = float(directive.get("coverage", 1.0))
        noise = 0.02 / max(coverage, 0.05)
        value = env.state + noise * env.rng.standard_normal()
        if env.glitched:
            value += 40.0  # transient fault the monitor should catch
        return SensorReading(data=value, timestamp=t, coverage=coverage,
                             energy_mj=self.FULL_ENERGY_MJ * coverage)


class _ScalarPerception(Perception):
    def perceive(self, reading: SensorReading) -> Percept:
        value = float(reading.data)
        confidence = float(np.clip(reading.coverage, 0.1, 1.0))
        return Percept(features=np.array([value]), estimate=value,
                       confidence=confidence)


class _ZScoreMonitor(Monitor):
    """Running-statistics outlier detector over the percept feature."""

    def __init__(self, window: int = 20):
        self.window = window
        self.values = []

    def assess(self, percept: Percept) -> float:
        v = float(percept.features[0])
        if len(self.values) >= 5:
            mean = float(np.mean(self.values))
            std = float(np.std(self.values)) + 1e-3
            z = abs(v - mean) / std
            trust = float(1.0 / (1.0 + np.exp(np.clip(z - 4.0, -30, 30))))
        else:
            trust = 1.0
        if trust >= 0.5:
            self.values.append(v)
            if len(self.values) > self.window:
                self.values.pop(0)
        return trust


class _RegulatorPolicy(Policy):
    COMPUTE_ENERGY_MJ = 0.6

    def act(self, percept: Percept, t: float) -> Action:
        err = float(percept.estimate) if percept.confidence > 0 else 0.0
        command = -0.8 * err
        # Action-to-sensing: near the setpoint, sense cheaply; when the
        # error (or distrust) grows, pay for full coverage again.
        settled = percept.confidence > 0 and abs(err) < 0.5
        coverage = 0.2 if settled else 1.0
        return Action(command=command,
                      sensing_directive={"coverage": coverage},
                      energy_mj=self.COMPUTE_ENERGY_MJ)


class _ServoActuator(Actuator):
    def actuate(self, env: _DriftEnv, action: Action, t: float) -> float:
        command = float(action.command)
        env.state += command
        return 0.15 * abs(command)


def run_profile_scenario(cycles: int = 120,
                         seed: int = 0,
                         obs=None) -> LoopMetrics:
    """Run the demo loop for ``cycles`` cycles; returns its metrics.

    Instrumentation flows to ``obs`` (or the active registry), so run
    this under :func:`repro.obs.use_registry` to capture the span tree.
    """
    rng = np.random.default_rng(seed)
    env = _DriftEnv(rng)
    loop = SensingToActionLoop(
        _CoverageSensor(), _ScalarPerception(), _RegulatorPolicy(),
        _ServoActuator(), monitor=_ZScoreMonitor(),
        trust_threshold=0.5, compute_latency_s=0.01, period_s=0.05,
        obs=obs)
    loop.run(env, cycles)
    return loop.metrics
