"""Serialization and text rendering for observability data.

Two output forms:

* **JSONL** — one JSON object per line (``counter`` / ``gauge`` /
  ``histogram`` / ``span`` records), the machine-readable artifact the
  CI benchmark gate and external dashboards consume;
* **text** — an aligned metrics table plus a "flamegraph-ish" span-tree
  summary where sibling spans with the same name are merged and each
  line carries a bar proportional to its share of root wall time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .spans import Span

__all__ = ["export_jsonl", "read_jsonl", "registry_payload",
           "deterministic_counters", "aggregate_spans", "render_span_tree",
           "render_metrics", "render_report"]

# Counter namespaces whose values depend on the execution *strategy*
# (cache hits vs fresh computes, pool bookkeeping) rather than on the
# computation itself.  Golden-trace verification excludes them so the
# same scenario yields the same counters whether it ran serially,
# pooled, cached, or cold.
NONDETERMINISTIC_COUNTER_PREFIXES = ("runtime.",)


# ----------------------------------------------------------------- JSONL
def registry_payload(registry) -> dict:
    """One JSON-ready object with every metric and root span tree."""
    return {
        "metrics": registry.snapshot(),
        "spans": [s.as_dict() for s in registry.spans],
        "dropped_spans": getattr(getattr(registry, "tracer", None),
                                 "dropped", 0),
    }


def deterministic_counters(
        registry,
        exclude_prefixes: Sequence[str] = NONDETERMINISTIC_COUNTER_PREFIXES,
) -> Dict[str, float]:
    """Sorted counter snapshot with strategy-dependent namespaces removed.

    Histograms and gauges observe wall-clock quantities and pool sizes,
    so only counters — pure event counts driven by the seeded
    computation — are reproducible across runs; this is the slice of
    telemetry :mod:`repro.testkit` records into golden traces.
    """
    counters = registry.snapshot()["counters"]
    return {name: float(value) for name, value in sorted(counters.items())
            if not any(name.startswith(p) for p in exclude_prefixes)}


def export_jsonl(registry, path: str) -> int:
    """Write every instrument and span tree as JSON lines.

    Returns the number of lines written.
    """
    lines = []
    for inst in registry.instruments():
        lines.append(json.dumps(inst.as_dict(), sort_keys=True))
    for root in registry.spans:
        lines.append(json.dumps({"kind": "span", "tree": root.as_dict()},
                                sort_keys=True))
    with open(path, "w") as f:
        for line in lines:
            f.write(line + "\n")
    return len(lines)


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSONL export back into a list of records."""
    records = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------- span aggregation
class AggregatedSpan:
    """Same-named siblings merged: totals over every occurrence."""

    __slots__ = ("name", "count", "total_s", "energy_mj", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.energy_mj: Dict[str, float] = {}
        self.children: Dict[str, "AggregatedSpan"] = {}

    def add(self, span: Span) -> None:
        self.count += 1
        self.total_s += span.duration_s
        if span.energy_mj:
            for k, v in span.energy_mj.items():
                self.energy_mj[k] = self.energy_mj.get(k, 0.0) + v
        for child in span.children:
            agg = self.children.get(child.name)
            if agg is None:
                agg = self.children[child.name] = AggregatedSpan(child.name)
            agg.add(child)

    @property
    def total_energy_mj(self) -> float:
        return self.energy_mj.get("total_mj",
                                  sum(self.energy_mj.values()))


def aggregate_spans(roots: Sequence[Span]) -> List[AggregatedSpan]:
    """Merge a span forest by name at every level of the tree."""
    merged: Dict[str, AggregatedSpan] = {}
    for root in roots:
        agg = merged.get(root.name)
        if agg is None:
            agg = merged[root.name] = AggregatedSpan(root.name)
        agg.add(root)
    return list(merged.values())


# --------------------------------------------------------------- render
def _render_agg(agg: AggregatedSpan, root_total: float, depth: int,
                lines: List[str], bar_width: int) -> None:
    share = agg.total_s / root_total if root_total > 0 else 0.0
    bar = "#" * max(1, round(share * bar_width)) if agg.total_s else ""
    energy = (f"  {agg.total_energy_mj:10.3f} mJ" if agg.energy_mj else
              " " * 14)
    lines.append(f"{'  ' * depth}{agg.name:<28.28}"
                 f"{1e3 * agg.total_s:9.2f} ms  x{agg.count:<5d}"
                 f"{100 * share:6.1f}%{energy}  {bar}")
    for child in sorted(agg.children.values(), key=lambda c: -c.total_s):
        _render_agg(child, root_total, depth + 1, lines, bar_width)


def render_span_tree(roots: Sequence[Span], bar_width: int = 24) -> str:
    """Flamegraph-ish text summary of a span forest.

    Same-named spans are merged per tree level; the bar shows each
    node's share of total root wall time.
    """
    aggs = aggregate_spans(roots)
    if not aggs:
        return "(no spans recorded)"
    root_total = sum(a.total_s for a in aggs)
    lines = [f"{'span':<28}{'total':>9}      {'calls':<5}{'share':>7}"
             f"{'energy':>17}"]
    for agg in sorted(aggs, key=lambda a: -a.total_s):
        _render_agg(agg, root_total, 0, lines, bar_width)
    return "\n".join(lines)


def render_metrics(registry) -> str:
    """Aligned text table of every counter, gauge, and histogram."""
    snap = registry.snapshot()
    lines: List[str] = []
    if snap["counters"]:
        lines.append("counters:")
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<36}{value:>16.6g}")
    if snap["gauges"]:
        lines.append("gauges:")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<36}{value:>16.6g}")
    if snap["histograms"]:
        lines.append("histograms:"
                     f"  {'count':>8}{'mean':>12}{'p50':>12}"
                     f"{'p95':>12}{'p99':>12}")
        for name, h in snap["histograms"].items():
            lines.append(f"  {name:<36}{h['count']:>8d}{h['mean']:>12.4g}"
                         f"{h['p50']:>12.4g}{h['p95']:>12.4g}"
                         f"{h['p99']:>12.4g}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_report(registry, title: Optional[str] = None) -> str:
    """Full text report: span tree then metrics."""
    parts = []
    if title:
        parts.append(f"=== {title} ===")
    parts.append(render_span_tree(registry.spans))
    parts.append("")
    parts.append(render_metrics(registry))
    dropped = getattr(getattr(registry, "tracer", None), "dropped", 0)
    if dropped:
        parts.append(f"(note: {dropped} spans beyond the retention cap "
                     "were timed but not retained)")
    return "\n".join(parts)
