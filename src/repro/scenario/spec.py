"""Declarative scenario specs: corruption stacks × platforms × traffic.

A :class:`Scenario` is a *value*, not a computation: a corruption stack
(ordered ``(name, severity)`` stages), a platform (LiDAR geometry in the
RoboSense "adapt across platforms" sense), a traffic regime (scene
density), a base seed, and the name of a registered evaluator.  Being a
plain frozen value gives the sweep engine everything it needs:

* **content addressing** — :meth:`Scenario.fingerprint` hashes the full
  input closure through :func:`repro.runtime.fingerprint`, so the replay
  store recognises a scenario across grid reorderings, plan extensions
  and unrelated spec additions;
* **deterministic randomness** — every RNG stream used to execute the
  scenario is spawned from :meth:`Scenario.content_seed` (derived from
  the fingerprint), so results never depend on the scenario's position
  in a sweep, the worker count, or which other scenarios run alongside;
* **cheap expansion** — :class:`SweepPlan` is a grid over stacks ×
  platforms × traffic × seeds that expands to thousands of scenarios
  without touching the simulator.

``PLATFORMS`` use deliberately small beam grids: the raycast scanner is
a per-beam Python loop, and sweep throughput comes from scenario count,
not per-scan resolution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..runtime.cache import fingerprint
from ..runtime.seeding import spawn_rngs
from ..sim.corruptions import normalize_stack
from ..sim.lidar import LidarConfig

__all__ = ["CorruptionStage", "Scenario", "SweepPlan", "stack_grid",
           "PLATFORMS", "TRAFFIC"]


# Platform regimes: LiDAR geometry per deployment target.  Small beam
# grids keep one scenario in the low-millisecond range so 10^4-scenario
# sweeps stay tractable; relative geometry differences are preserved.
PLATFORMS: Dict[str, Dict[str, float]] = {
    "vehicle": dict(n_azimuth=24, n_elevation=6, max_range_m=120.0,
                    sensor_height_m=1.8),
    "drone": dict(n_azimuth=16, n_elevation=4, max_range_m=60.0,
                  sensor_height_m=12.0),
    "quadruped": dict(n_azimuth=12, n_elevation=5, max_range_m=40.0,
                      sensor_height_m=0.5),
}

# Traffic regimes: scene composition densities for sample_scene.
TRAFFIC: Dict[str, Dict[str, int]] = {
    "sparse": dict(n_cars=1, n_pedestrians=1, n_cyclists=0, n_buildings=1),
    "urban": dict(n_cars=3, n_pedestrians=2, n_cyclists=1, n_buildings=2),
    "dense": dict(n_cars=5, n_pedestrians=4, n_cyclists=2, n_buildings=3),
}


@dataclass(frozen=True)
class CorruptionStage:
    """One stage of a corruption stack: a corruption name + severity."""

    name: str
    severity: float

    def as_tuple(self) -> Tuple[str, float]:
        return (self.name, float(self.severity))


def _as_stages(stack: Sequence) -> Tuple[CorruptionStage, ...]:
    return tuple(CorruptionStage(name, severity)
                 for name, severity in normalize_stack(stack))


@dataclass(frozen=True)
class Scenario:
    """A fully-specified evaluation point (a pure value, see module doc)."""

    stack: Tuple[CorruptionStage, ...]
    platform: str = "vehicle"
    traffic: str = "urban"
    seed: int = 0
    evaluator: str = "scan_stats"

    def __post_init__(self):
        object.__setattr__(self, "stack", _as_stages(self.stack))
        if self.platform not in PLATFORMS:
            raise ValueError(
                f"unknown platform {self.platform!r}; valid platforms: "
                f"{', '.join(sorted(PLATFORMS))}")
        if self.traffic not in TRAFFIC:
            raise ValueError(
                f"unknown traffic regime {self.traffic!r}; valid "
                f"regimes: {', '.join(sorted(TRAFFIC))}")

    # ------------------------------------------------------------ identity
    def as_dict(self) -> dict:
        return {
            "stack": [[s.name, float(s.severity)] for s in self.stack],
            "platform": self.platform,
            "traffic": self.traffic,
            "seed": int(self.seed),
            "evaluator": self.evaluator,
        }

    def fingerprint(self) -> str:
        """Content address of the full input closure.

        Covers the stack (names, severities, order), platform and
        traffic *parameters* (not just their names — retuning a platform
        invalidates its cached results), seed and evaluator name.  The
        kernel backend is deliberately excluded: the fused corruption
        stack is bit-identical to the reference, so replayed results are
        valid under either backend.
        """
        return fingerprint("scenario", self.as_dict(),
                           PLATFORMS[self.platform], TRAFFIC[self.traffic])

    def content_seed(self) -> int:
        """Base seed for every RNG stream, derived from the fingerprint
        so randomness is a function of scenario *content* alone."""
        return int(self.fingerprint(), 16)

    # ----------------------------------------------------------- execution
    def lidar_config(self) -> LidarConfig:
        return LidarConfig(**PLATFORMS[self.platform])

    def rng_streams(self):
        """``(scene_rng, scanner_rng, evaluator_rng, stage_rngs)`` —
        independent private streams, one per stochastic consumer."""
        rngs = spawn_rngs(self.content_seed(), 3 + len(self.stack))
        return rngs[0], rngs[1], rngs[2], rngs[3:]


def stack_grid(names: Sequence[str], severities: Sequence[float],
               depth: int = 2) -> List[Tuple[Tuple[str, float], ...]]:
    """Every ordered corruption stack up to ``depth`` distinct stages.

    Order matters (snow-then-crosstalk corrupts the flakes too;
    crosstalk-then-snow does not), so permutations are enumerated, not
    combinations: 7 corruptions × 4 severities at depth 2 gives
    28 singles + 672 ordered pairs = 700 stacks.
    """
    if depth < 1:
        raise ValueError("need depth >= 1")
    stacks: List[Tuple[Tuple[str, float], ...]] = []
    for d in range(1, depth + 1):
        for combo in itertools.permutations(names, d):
            for sevs in itertools.product(severities, repeat=d):
                stacks.append(tuple(zip(combo, sevs)))
    return stacks


@dataclass(frozen=True)
class SweepPlan:
    """A grid of scenarios: stacks × platforms × traffic × seeds."""

    stacks: Tuple[Tuple[Tuple[str, float], ...], ...]
    platforms: Tuple[str, ...] = ("vehicle",)
    traffics: Tuple[str, ...] = ("urban",)
    seeds: Tuple[int, ...] = (0,)
    evaluator: str = "scan_stats"

    def __post_init__(self):
        object.__setattr__(self, "stacks",
                           tuple(tuple(normalize_stack(s))
                                 for s in self.stacks))
        object.__setattr__(self, "platforms", tuple(self.platforms))
        object.__setattr__(self, "traffics", tuple(self.traffics))
        object.__setattr__(self, "seeds",
                           tuple(int(s) for s in self.seeds))

    @property
    def count(self) -> int:
        return (len(self.stacks) * len(self.platforms)
                * len(self.traffics) * len(self.seeds))

    def scenarios(self) -> List[Scenario]:
        """Expand the grid in deterministic nested order (stack-major)."""
        return [Scenario(stack=stack, platform=platform, traffic=traffic,
                         seed=seed, evaluator=self.evaluator)
                for stack in self.stacks
                for platform in self.platforms
                for traffic in self.traffics
                for seed in self.seeds]
