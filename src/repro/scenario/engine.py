"""Sweep execution: replay-aware, sharded, deterministically merged.

:func:`run_sweep` takes a plan (or explicit scenario list) and produces
one result row per scenario, in plan order, through three layers:

1. **replay** — every scenario's fingerprint is looked up in the
   :class:`~repro.scenario.store.ReplayStore` in one batch; only novel
   scenarios execute.  Duplicate scenarios within one sweep execute
   once and replay internally.
2. **sharding** — novel scenarios fan out over
   :class:`repro.runtime.WorkerPool` in contiguous chunks.  Each
   scenario derives every RNG stream from its own content seed, so
   results are independent of chunking and worker count; the pool's
   submission-order merge then makes the sweep payload **byte-identical
   at 1/2/4 workers** (asserted by the bench gate, not just promised).
3. **fused corruption** — stacks apply through the two-backend
   ``corruption_stack`` kernel (single-traversal fused path by default,
   bit-identical to the per-stage reference).

Engine bookkeeping (executed/replayed counts, store traffic) stays on
``runtime.*`` counters so sweeps inside golden-trace scenarios record
clean deterministic telemetry.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.registry import get_registry
from ..runtime.pool import WorkerPool, resolve_workers
from ..sim.corruptions import apply_corruption_stack
from ..sim.lidar import LidarScanner
from ..sim.scenes import sample_scene
from .evaluators import get_evaluator
from .spec import TRAFFIC, Scenario, SweepPlan
from .store import ReplayStore

__all__ = ["evaluate_scenario", "run_sweep", "SweepResult"]


def evaluate_scenario(scenario: Scenario) -> Dict[str, float]:
    """Execute one scenario: scene -> scan -> corruption stack -> metrics.

    Pure given the scenario value: every stream (scene sampling, scanner
    noise, per-stage corruption, evaluator probes) is spawned from the
    scenario's content seed.
    """
    scene_rng, scanner_rng, eval_rng, stage_rngs = scenario.rng_streams()
    scene = sample_scene(scene_rng, **TRAFFIC[scenario.traffic])
    scanner = LidarScanner(scenario.lidar_config(), rng=scanner_rng)
    clean = scanner.scan(scene)
    stack = [stage.as_tuple() for stage in scenario.stack]
    if stack:
        corrupted = apply_corruption_stack(clean, stack, rngs=stage_rngs)
    else:
        corrupted = clean
    return get_evaluator(scenario.evaluator)(clean, corrupted, eval_rng)


def _evaluate_chunk(chunk: Sequence[Scenario]
                    ) -> List[Tuple[str, Dict[str, float]]]:
    """Worker task: evaluate a contiguous slice of novel scenarios."""
    return [(s.fingerprint(), evaluate_scenario(s)) for s in chunk]


def _chunks(items: List, n_chunks: int) -> List[List]:
    """Split into at most ``n_chunks`` contiguous, near-even slices."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    out, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


@dataclass
class SweepResult:
    """Per-scenario metric rows in plan order, plus execution accounting."""

    keys: List[str]
    metrics: List[Dict[str, float]]
    executed: int
    replayed: int
    workers: int
    duration_s: float

    @property
    def count(self) -> int:
        return len(self.keys)

    def rows(self) -> List[Dict[str, object]]:
        return [{"key": key, "metrics": dict(sorted(m.items()))}
                for key, m in zip(self.keys, self.metrics)]

    def payload_bytes(self) -> bytes:
        """Canonical serialization of the full result payload.

        Sorted metric keys + exact shortest-repr floats: two sweeps
        produce equal bytes iff every metric value is bit-identical —
        the object the worker-identity gate hashes.
        """
        return json.dumps(self.rows(), sort_keys=True,
                          separators=(",", ":")).encode()

    def payload_sha(self) -> str:
        return hashlib.sha256(self.payload_bytes()).hexdigest()


def run_sweep(plan: Union[SweepPlan, Sequence[Scenario]],
              workers: Optional[int] = None,
              store: Union[ReplayStore, None, bool] = None,
              pool: Optional[WorkerPool] = None) -> SweepResult:
    """Run every scenario of ``plan``; replay what the store already has.

    ``store``: a :class:`ReplayStore` to replay from and insert novel
    results into, ``True`` for the default (env-located) store, or
    ``None``/``False`` to execute everything.  ``pool`` reuses an open
    pool across sweeps (workers taken from it); otherwise a pool with
    ``workers`` processes is created for the call.
    """
    t0 = time.perf_counter()
    scenarios = list(plan.scenarios()) if isinstance(plan, SweepPlan) \
        else list(plan)
    if store is True:
        store = ReplayStore()
    elif store is False:
        store = None
    keys = [s.fingerprint() for s in scenarios]

    replayed: Dict[str, Dict[str, float]] = (
        store.lookup(set(keys)) if store is not None else {})
    novel: List[Scenario] = []
    novel_keys = set()
    for scenario, key in zip(scenarios, keys):
        if key not in replayed and key not in novel_keys:
            novel.append(scenario)
            novel_keys.add(key)

    computed: Dict[str, Dict[str, float]] = {}
    if novel:
        own_pool = pool is None
        active = pool if pool is not None else WorkerPool(workers)
        try:
            chunked = _chunks(novel, active.workers * 8)
            for chunk_result in active.map(_evaluate_chunk, chunked,
                                           label="scenario_chunk"):
                computed.update(chunk_result)
        finally:
            if own_pool:
                active.close()
        if store is not None:
            store.insert(computed)
        pool_workers = active.workers
    else:
        pool_workers = pool.workers if pool is not None \
            else resolve_workers(workers)

    metrics = [replayed[key] if key in replayed else computed[key]
               for key in keys]
    obs = get_registry()
    obs.counter("runtime.scenario_executed").inc(len(novel))
    obs.counter("runtime.scenario_replayed").inc(len(keys) - len(novel))
    obs.counter("runtime.scenario_sweeps").inc()
    return SweepResult(keys=keys, metrics=metrics, executed=len(novel),
                       replayed=len(keys) - len(novel),
                       workers=pool_workers,
                       duration_s=time.perf_counter() - t0)
