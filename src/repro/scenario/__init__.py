"""``repro.scenario`` — declarative high-throughput scenario sweeps.

The paper's robustness argument (Sec. V) needs the sensing-to-action
loop scored across *many* corruption regimes, not a handful of
single-corruption severities.  This package turns that into a
throughput problem and solves it three ways:

* **specs** (:mod:`.spec`) — a :class:`Scenario` is a pure value
  (corruption stack × platform × traffic × seed × evaluator) with a
  content-address fingerprint and content-derived RNG streams; a
  :class:`SweepPlan` expands grids into 10^4+ scenarios;
* **replay** (:mod:`.store`) — a bucketed, content-addressed
  :class:`ReplayStore` makes overlapping re-sweeps near-free: only
  novel scenarios execute;
* **sharding + fusion** (:mod:`.engine`) — novel scenarios fan out
  over :class:`repro.runtime.WorkerPool` with submission-order merge
  (byte-identical payloads at any worker count), and corruption stacks
  apply through the fused single-pass ``corruption_stack`` kernel.

``repro scenario-bench`` drives the benchmark
(:mod:`.driver`); ``repro verify`` holds a golden sweep trace.
"""

from .engine import SweepResult, evaluate_scenario, run_sweep
from .evaluators import (
    EVALUATORS,
    evaluator_names,
    get_evaluator,
    register_evaluator,
    scan_stats,
)
from .driver import (
    POOL_SCALING_TARGET,
    WARM_SPEEDUP_TARGET,
    ScenarioBenchConfig,
    run_scenario_sweep_benchmark,
)
from .spec import PLATFORMS, TRAFFIC, CorruptionStage, Scenario, SweepPlan, stack_grid
from .store import STORE_DIR_ENV, STORE_LAYOUT_VERSION, ReplayStore

__all__ = [
    "CorruptionStage", "Scenario", "SweepPlan", "stack_grid",
    "PLATFORMS", "TRAFFIC",
    "ReplayStore", "STORE_DIR_ENV", "STORE_LAYOUT_VERSION",
    "SweepResult", "evaluate_scenario", "run_sweep",
    "EVALUATORS", "register_evaluator", "get_evaluator",
    "evaluator_names", "scan_stats",
    "ScenarioBenchConfig", "run_scenario_sweep_benchmark",
    "WARM_SPEEDUP_TARGET", "POOL_SCALING_TARGET",
]
