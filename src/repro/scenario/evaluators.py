"""Scenario evaluators: seeded closures scoring one corrupted scan.

An evaluator is a named, registered function
``(clean_scan, corrupted_scan, rng) -> {metric: float}``.  Scenarios
reference evaluators *by name* so a :class:`~repro.scenario.Scenario`
stays a picklable, fingerprintable value — the replay store keys on the
evaluator name, which means a renamed evaluator naturally invalidates
its cached results while an unrelated evaluator's entries survive.

Evaluators must be deterministic given their inputs and draw randomness
only from the passed ``rng`` (their private stream spawned from the
scenario's content seed), and must return plain finite floats — the
sweep payload is serialized canonically for cross-worker byte-identity
checks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

__all__ = ["register_evaluator", "get_evaluator", "evaluator_names",
           "scan_stats"]

EVALUATORS: Dict[str, Callable] = {}


def register_evaluator(name: str):
    """Decorator: register an evaluator under ``name``."""
    def deco(fn: Callable) -> Callable:
        EVALUATORS[name] = fn
        return fn
    return deco


def get_evaluator(name: str) -> Callable:
    if name not in EVALUATORS:
        raise ValueError(
            f"unknown evaluator {name!r}; valid evaluators: "
            f"{', '.join(sorted(EVALUATORS))}")
    return EVALUATORS[name]


def evaluator_names() -> List[str]:
    return sorted(EVALUATORS)


@register_evaluator("scan_stats")
def scan_stats(clean, corrupted, rng: np.random.Generator
               ) -> Dict[str, float]:
    """Cheap corruption-impact statistics on the raw scans.

    Measures what the corruption did to the point cloud — retention,
    spurious clutter, range/intensity distortion, residual coverage and
    sensing energy — the raw material for robustness curves without
    dragging a full perception model into every scenario.
    """
    n_clean = clean.num_points
    n = corrupted.num_points
    spurious = (corrupted.labels == -2)
    genuine = ~spurious
    out = {
        "points_clean": float(n_clean),
        "points": float(n),
        "retention": float(n / n_clean) if n_clean else 0.0,
        "spurious_fraction": float(spurious.mean()) if n else 0.0,
        "coverage_fraction": float(corrupted.coverage_fraction),
        "energy_mj": float(corrupted.sensing_energy_mj()),
    }
    if n:
        out["range_mean"] = float(corrupted.ranges.mean())
        out["intensity_mean"] = float(corrupted.points[:, 3].mean())
    else:
        out["range_mean"] = 0.0
        out["intensity_mean"] = 0.0
    if n_clean:
        out["range_mean_clean"] = float(clean.ranges.mean())
        # Range-distribution shift, on a seeded probe subsample so the
        # cost stays flat as scans grow.
        probe = rng.choice(max(n_clean, 1), size=min(64, n_clean),
                           replace=False)
        probe_r = np.sort(clean.ranges[probe])
        if n:
            corr_sorted = np.sort(corrupted.ranges)
            idx = np.clip((np.arange(probe_r.size) * corr_sorted.size)
                          // max(probe_r.size, 1), 0, corr_sorted.size - 1)
            out["range_shift"] = float(
                np.abs(corr_sorted[idx] - probe_r).mean())
        else:
            out["range_shift"] = float(probe_r.mean())
    else:
        out["range_mean_clean"] = 0.0
        out["range_shift"] = 0.0
    return out
