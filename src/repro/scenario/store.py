"""Content-addressed replay store for scenario sweep results.

The sweep engine's warm path: results are keyed on each scenario's
input-closure fingerprint (:meth:`repro.scenario.Scenario.fingerprint`),
so a re-sweep — same grid, reordered grid, extended grid, overlapping
different grid — only executes scenarios whose results are genuinely
novel and replays the rest from disk.

This extends the :mod:`repro.runtime.cache` pattern to sweep scale.  An
:class:`~repro.runtime.cache.ArtifactCache`-style file-per-entry layout
would need 10^4 opens + unpickles to warm a full sweep; entries here are
instead grouped into **256 bucketed pack files** (``pack-<2-hex>.pkl``,
sharded on the key prefix), so a warm sweep costs at most 256 reads and
a batch insert rewrites each touched pack once.  The durability story is
the same as the artifact cache: atomic pack replacement (temp file +
``os.replace``), corrupt or stale-layout packs treated as misses and
evicted under an inode guard so a concurrent writer's fresh pack is
never deleted by a reader that tripped over the old one.

Entries embed :data:`repro.runtime.cache.CACHE_VERSION` in their keys
indirectly (fingerprints are version-prefixed), so bumping the cache
version invalidates replay entries together with every other
content-addressed artifact.

Environment: ``REPRO_SCENARIO_STORE`` relocates the default root
(default ``~/.cache/repro/scenarios``).  Traffic surfaces as
``runtime.scenario_store_*`` counters — ``runtime.``-prefixed, so store
bookkeeping never leaks into golden traces.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, Iterable, Optional

from ..obs.registry import get_registry

__all__ = ["ReplayStore", "STORE_DIR_ENV", "STORE_LAYOUT_VERSION"]

STORE_DIR_ENV = "REPRO_SCENARIO_STORE"

# Bump when the pack file layout changes; mismatched packs are evicted.
STORE_LAYOUT_VERSION = 1

_N_BUCKETS = 256


class ReplayStore:
    """Bucketed pack-file store of ``fingerprint -> result`` entries."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get(STORE_DIR_ENV, "").strip() or os.path.join(
                os.path.expanduser("~"), ".cache", "repro", "scenarios")
        self.root = root

    # ------------------------------------------------------------- layout
    def _bucket(self, key: str) -> str:
        return key[:2]

    def _pack_path(self, bucket: str) -> str:
        return os.path.join(self.root, f"pack-{bucket}.pkl")

    def _read_pack(self, bucket: str) -> Dict[str, Any]:
        """Load one pack; corrupt/stale packs are evicted and read as
        empty (inode-guarded, same rationale as ArtifactCache.load)."""
        obs = get_registry()
        path = self._pack_path(bucket)
        ino = None
        try:
            with open(path, "rb") as f:
                ino = os.fstat(f.fileno()).st_ino
                blob = pickle.load(f)
            if (not isinstance(blob, dict)
                    or blob.get("layout") != STORE_LAYOUT_VERSION
                    or not isinstance(blob.get("entries"), dict)):
                raise ValueError("stale pack layout")
        except FileNotFoundError:
            return {}
        except Exception:
            obs.counter("runtime.scenario_store_corrupt").inc()
            try:
                if ino is not None and os.stat(path).st_ino == ino:
                    os.unlink(path)
            except OSError:
                pass
            return {}
        return blob["entries"]

    def _write_pack(self, bucket: str, entries: Dict[str, Any]) -> None:
        os.makedirs(self.root, exist_ok=True)
        blob = pickle.dumps(
            {"layout": STORE_LAYOUT_VERSION, "entries": entries},
            protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, self._pack_path(bucket))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        obs = get_registry()
        obs.counter("runtime.scenario_store_pack_writes").inc()
        obs.counter("runtime.scenario_store_bytes_written").inc(
            float(len(blob)))

    # -------------------------------------------------------------- access
    def lookup(self, keys: Iterable[str]) -> Dict[str, Any]:
        """Batch fetch: ``{key: payload}`` for every key present.

        Touches each referenced pack once regardless of how many keys
        land in it — the warm-sweep fast path.
        """
        obs = get_registry()
        keys = list(keys)
        found: Dict[str, Any] = {}
        by_bucket: Dict[str, list] = {}
        for key in keys:
            by_bucket.setdefault(self._bucket(key), []).append(key)
        for bucket, bucket_keys in sorted(by_bucket.items()):
            entries = self._read_pack(bucket)
            for key in bucket_keys:
                if key in entries:
                    found[key] = entries[key]
        obs.counter("runtime.scenario_store_hits").inc(len(found))
        obs.counter("runtime.scenario_store_misses").inc(
            len(set(keys)) - len(found))
        return found

    def insert(self, entries: Dict[str, Any]) -> None:
        """Batch upsert; each touched pack is read-merged-replaced once.

        Last-writer-wins per pack under concurrency — acceptable because
        entries are content-addressed: two writers racing on one key are
        writing identical results, and a lost *sibling* entry merely
        costs a future recompute, never wrongness.
        """
        if not entries:
            return
        by_bucket: Dict[str, Dict[str, Any]] = {}
        for key, payload in entries.items():
            by_bucket.setdefault(self._bucket(key), {})[key] = payload
        for bucket, bucket_entries in sorted(by_bucket.items()):
            merged = self._read_pack(bucket)
            merged.update(bucket_entries)
            self._write_pack(bucket, merged)
        get_registry().counter("runtime.scenario_store_inserts").inc(
            len(entries))

    # -------------------------------------------------------------- admin
    def info(self) -> Dict[str, Any]:
        packs = 0
        entries = 0
        total_bytes = 0
        if os.path.isdir(self.root):
            for name in sorted(os.listdir(self.root)):
                if not (name.startswith("pack-") and name.endswith(".pkl")):
                    continue
                packs += 1
                path = os.path.join(self.root, name)
                try:
                    total_bytes += os.path.getsize(path)
                except OSError:
                    continue
                entries += len(self._read_pack(name[5:-4]))
        return {"root": self.root, "packs": packs, "entries": entries,
                "total_bytes": total_bytes}

    def clear(self) -> int:
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for name in os.listdir(self.root):
            if name.endswith((".pkl", ".tmp")):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed
