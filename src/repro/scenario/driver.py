"""Scenario sweep benchmark driver (the tenth regression gate's engine).

Runs one parameterized sweep four ways and distills the claims
``check_regressions.py`` gates on:

1. **worker curve** — the full sweep at each worker count (no store),
   hashing the canonical result payload each time.  *Blocking claim*:
   byte-identical payloads at 1/2/4 workers.  *Informational claim*:
   >= ``POOL_SCALING_TARGET`` x wall-clock scaling at the top worker
   count (reported non-blocking — wall ratios jitter on shared hosts).
2. **cold vs warm** — the sweep into an empty temp
   :class:`~repro.scenario.store.ReplayStore`, then again against the
   populated store, both at one worker so the ratio measures the replay
   path, not parallelism.  *Blocking claim*: warm >=
   ``WARM_SPEEDUP_TARGET`` x faster than cold.
3. **incremental extension** — the grid widened by one extra base seed,
   re-swept against the same store.  *Blocking claim*: exactly the
   novel scenarios execute; every overlapping scenario replays.
4. **fused vs reference** — the corruption-stack kernel timed both ways
   over a sample of stacks on a fixed scan.  *Blocking claim*: outputs
   exactly equal (array-for-array); the fused speedup is reported.

All claims except wall-clock scaling are deterministic; the payload
hashes additionally feed the committed-baseline drift check.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..kernels import kernel_backend
from ..runtime.pool import WorkerPool
from ..runtime.seeding import spawn_rngs
from ..sim.corruptions import CORRUPTIONS, apply_corruption_stack
from ..sim.lidar import LidarConfig, LidarScanner
from ..sim.scenes import sample_scene
from .engine import run_sweep
from .spec import SweepPlan, stack_grid
from .store import ReplayStore

__all__ = ["ScenarioBenchConfig", "run_scenario_sweep_benchmark",
           "WARM_SPEEDUP_TARGET", "POOL_SCALING_TARGET"]

WARM_SPEEDUP_TARGET = 10.0   # warm-cache re-sweep vs cold, blocking
POOL_SCALING_TARGET = 2.0    # wall scaling at 4 workers, informational


@dataclass(frozen=True)
class ScenarioBenchConfig:
    """Sweep grid shape and measurement knobs."""

    corruptions: Tuple[str, ...] = tuple(CORRUPTIONS)
    severities: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    depth: int = 2
    platforms: Tuple[str, ...] = ("vehicle", "drone", "quadruped")
    traffics: Tuple[str, ...] = ("sparse", "urban", "dense")
    seeds: Tuple[int, ...] = (0, 1)
    extension_seeds: Tuple[int, ...] = (2,)  # incremental re-sweep delta
    evaluator: str = "scan_stats"
    worker_counts: Tuple[int, ...] = (1, 2, 4)
    fused_sample: int = 64       # stacks timed in the kernel comparison
    max_scenarios: Optional[int] = None

    @classmethod
    def smoke(cls) -> "ScenarioBenchConfig":
        """CI-sized variant (seconds): ~100 scenarios, same gates minus
        the 10^4 scale claim."""
        return cls(corruptions=("snow", "fog", "crosstalk"),
                   severities=(0.5, 1.0), depth=2,
                   platforms=("vehicle",), traffics=("urban",),
                   seeds=(0,), extension_seeds=(1,),
                   worker_counts=(1, 2), fused_sample=12)

    def plan(self, seeds: Optional[Tuple[int, ...]] = None) -> SweepPlan:
        stacks = stack_grid(self.corruptions, self.severities, self.depth)
        return SweepPlan(stacks=tuple(stacks), platforms=self.platforms,
                         traffics=self.traffics,
                         seeds=self.seeds if seeds is None else seeds,
                         evaluator=self.evaluator)


def _scenarios(config: ScenarioBenchConfig,
               seeds: Optional[Tuple[int, ...]] = None):
    scenarios = config.plan(seeds).scenarios()
    if config.max_scenarios is not None:
        scenarios = scenarios[:config.max_scenarios]
    return scenarios


def _fused_comparison(config: ScenarioBenchConfig) -> Dict[str, Any]:
    """Time the corruption-stack kernel both ways; require exact equality."""
    rng = np.random.default_rng(1234)
    scan = LidarScanner(LidarConfig(n_azimuth=36, n_elevation=8),
                        rng=rng).scan(sample_scene(rng))
    stacks = stack_grid(config.corruptions, config.severities,
                        config.depth)[:config.fused_sample]
    timings = {}
    outputs = {}
    for backend in ("reference", "vectorized"):
        stage_rngs = [spawn_rngs(7000 + i, len(stack))
                      for i, stack in enumerate(stacks)]
        with kernel_backend(backend):
            t0 = time.perf_counter()
            outs = [apply_corruption_stack(scan, stack, rngs=rngs)
                    for stack, rngs in zip(stacks, stage_rngs)]
            timings[backend] = time.perf_counter() - t0
        outputs[backend] = outs
    equivalent = all(
        np.array_equal(a.points, b.points)
        and np.array_equal(a.labels, b.labels)
        and np.array_equal(a.beam_ids, b.beam_ids)
        and np.array_equal(a.ranges, b.ranges)
        and np.array_equal(a.fired_mask, b.fired_mask)
        for a, b in zip(outputs["reference"], outputs["vectorized"]))
    return {
        "stacks_compared": len(stacks),
        "reference_s": timings["reference"],
        "fused_s": timings["vectorized"],
        "fused_speedup": (timings["reference"] / timings["vectorized"]
                          if timings["vectorized"] > 0 else float("inf")),
        "fused_equivalent": bool(equivalent),
    }


def run_scenario_sweep_benchmark(config: Optional[ScenarioBenchConfig] = None
                                 ) -> Dict[str, Any]:
    """Execute all four phases; returns the full result payload."""
    config = config or ScenarioBenchConfig()
    scenarios = _scenarios(config)
    n = len(scenarios)

    # Phase 1: worker curve, storeless — measures raw sharded execution.
    worker_curve = []
    shas = []
    for workers in config.worker_counts:
        with WorkerPool(workers) as pool:
            result = run_sweep(scenarios, pool=pool)
        worker_curve.append({
            "workers": workers,
            "wall_s": result.duration_s,
            "scenarios_per_s": n / result.duration_s
            if result.duration_s > 0 else float("inf"),
            "payload_sha": result.payload_sha(),
        })
        shas.append(worker_curve[-1]["payload_sha"])
    identical_across_workers = len(set(shas)) == 1
    serial_wall = worker_curve[0]["wall_s"]
    top_wall = worker_curve[-1]["wall_s"]
    pool_scaling = serial_wall / top_wall if top_wall > 0 else float("inf")

    # Phase 2: cold vs warm against a fresh store, both serial.
    tmp_root = tempfile.mkdtemp(prefix="repro-scenario-bench-")
    try:
        store = ReplayStore(tmp_root)
        cold = run_sweep(scenarios, workers=1, store=store)
        warm = run_sweep(scenarios, workers=1, store=store)
        warm_speedup = (cold.duration_s / warm.duration_s
                        if warm.duration_s > 0 else float("inf"))

        # Phase 3: widen the grid by the extension seeds; only the new
        # scenarios may execute.  Under a max_scenarios cap the widened
        # prefix interleaves cached and novel specs, so the expectation
        # is the key-set difference, not a length difference.
        extended = _scenarios(
            config, seeds=config.seeds + config.extension_seeds)
        swept = {s.fingerprint() for s in scenarios}
        novel_expected = len(
            {s.fingerprint() for s in extended} - swept)
        replay_expected = len(extended) - novel_expected
        incremental = run_sweep(extended, workers=1, store=store)
        store_info = store.info()
    finally:
        shutil.rmtree(tmp_root, ignore_errors=True)

    # Phase 4: fused corruption kernel vs per-stage reference.
    fused = _fused_comparison(config)

    claims = {
        "identical_across_workers": bool(identical_across_workers),
        "warm_speedup_ok": bool(warm_speedup >= WARM_SPEEDUP_TARGET),
        "fused_equivalent": bool(fused["fused_equivalent"]),
        "incremental_only_novel": bool(
            incremental.executed == novel_expected
            and incremental.replayed == replay_expected),
        "sweep_scale_ok": bool(n >= 10_000),
        "pool_scaling_ok": bool(pool_scaling >= POOL_SCALING_TARGET),
    }
    return {
        "bench": "scenario_sweep",
        "config": {
            "corruptions": list(config.corruptions),
            "severities": list(config.severities),
            "depth": config.depth,
            "platforms": list(config.platforms),
            "traffics": list(config.traffics),
            "seeds": list(config.seeds),
            "extension_seeds": list(config.extension_seeds),
            "evaluator": config.evaluator,
            "worker_counts": list(config.worker_counts),
            "max_scenarios": config.max_scenarios,
        },
        "n_scenarios": n,
        "host_cpus": os.cpu_count(),
        "worker_curve": worker_curve,
        "identical_across_workers": bool(identical_across_workers),
        "pool_scaling": pool_scaling,
        "pool_scaling_target": POOL_SCALING_TARGET,
        "cold": {"wall_s": cold.duration_s, "executed": cold.executed,
                 "replayed": cold.replayed},
        "warm": {"wall_s": warm.duration_s, "executed": warm.executed,
                 "replayed": warm.replayed},
        "warm_speedup": warm_speedup,
        "warm_speedup_target": WARM_SPEEDUP_TARGET,
        "incremental": {
            "total": len(extended),
            "executed": incremental.executed,
            "replayed": incremental.replayed,
            "novel_expected": novel_expected,
        },
        "store": store_info,
        "fused": fused,
        "payload_sha": shas[0] if shas else "",
        "claims": claims,
    }
