"""Command-line interface: ``python -m repro <command>``.

Gives downstream users one entry point for the common flows without
writing any code:

* ``demo <name>``       — run one of the example scenarios inline;
* ``experiment <id>``   — regenerate one paper artifact (table2, fig5a,
  fig5b, auc, fig11, swarm, speculative, codesign); the full table and
  figure suite, including the heavier Table I / Fig. 7 / Fig. 9 runs,
  lives in ``benchmarks/``;
* ``profile <target>``  — run a scenario under a live metrics registry
  and emit the span tree + metrics (JSON via ``--out``, JSONL via
  ``--jsonl``, text summary to stdout); ``profile demo`` runs the
  built-in five-stage loop scenario;
* ``bench``             — run benchmark entry points (default: the fast
  shape-level subset) under a :class:`repro.runtime.WorkerPool`;
  ``--workers N`` fans them out over processes with results
  bit-identical to serial, ``--out`` keeps the aggregated JSON.
  Suite aliases select the timing-valued benches that are kept out of
  the default set: ``--micro`` appends the kernel micro-benchmarks
  (``MICRO_BENCHES``), ``--serving`` appends the serving-throughput
  benches (``SERVING_BENCHES``), and ``--fleet`` appends the
  fleet-scaling benches (``FLEET_BENCHES``), ``--compile`` appends
  the compile-stage benches (``COMPILE_BENCHES``), ``--control``
  appends the control-adaptation benches (``CONTROL_BENCHES``), and
  ``--federated`` appends the fleet-scale federated benches
  (``FEDERATED_BENCHES``), and ``--scenarios`` appends the scenario
  sweep benches (``SCENARIO_BENCHES``); ``--help-names`` lists every
  registered name with its ``[default]``/``[micro]``/``[serving]``/
  ``[fleet]``/``[compile]``/``[control]``/``[federated]``/
  ``[scenario]`` tag;
* ``serve-bench``       — run the micro-batched serving benchmark (N
  concurrent loops sharing one :class:`repro.serve.BatchedService`)
  and print the serial-vs-batched comparison; ``--smoke`` runs the
  seconds-scale CI variant.  Exit codes: 0 = equivalence, shedding,
  and p95 bounds all hold; 1 = a correctness/bound check failed
  (the throughput multiple is reported but never gates — wall-clock
  ratios jitter on shared hosts);
* ``fleet-bench``       — run the sharded multi-process serving
  benchmark (closed-loop clients over single-process vs 1/2/4-replica
  fleets plus a staleness-budget load sweep); ``--smoke`` runs the
  seconds-scale CI variant and ``--replicas`` overrides the replica
  curve.  Exit codes: 0 = per-request equivalence and
  zero-sheds-below-saturation hold; 1 = a correctness check failed
  (the throughput multiple never gates here either);
* ``compile-bench``     — run the compile-stage benchmark (eager vs
  traced vs fused vs fused+arena vs true-int8 over the same seeded
  models); ``--smoke`` runs the seconds-scale CI variant.  Exit codes:
  0 = float stages bit-match eager, the arena allocates nothing in
  steady state, int8 drift stays inside every layer's analytic bound,
  and fused+arena clears its speedup floor somewhere; 1 = a
  correctness/bound/speedup check failed;
* ``control-bench``     — run the control-adaptation sweep (the
  declarative :class:`repro.control.Controller` vs four static
  operating points over a corruption x load grid); fully analytic, so
  the payload is bit-reproducible.  Exit codes: 0 = the adaptive
  policy matches the best static config's accuracy at no more than
  its energy and actually reconfigured; 1 = a frontier check failed;
* ``fed-bench``         — run the fleet-scale asynchronous federated
  benchmark (sampled synchronous FedAvg vs buffered staleness-weighted
  aggregation over an identical 10^3-client heterogeneous fleet, plus
  a 1/2/4-worker determinism sweep); ``--smoke`` runs the
  seconds-scale 128-client CI variant and ``--clients`` overrides the
  fleet size.  Exit codes: 0 = async reaches the lockstep accuracy on
  the same update budget, needs >=2x less simulated fleet time, and
  produces byte-identical payloads under every worker count; 1 = an
  accuracy/speedup/determinism claim failed (the *wall-clock* sharding
  multiple is reported but never gates);
* ``scenario-bench``    — run the high-throughput scenario sweep
  benchmark (a corruption-stack x platform x traffic grid through the
  :mod:`repro.scenario` engine: 1/2/4-worker identity curve, cold vs
  warm replay store, incremental grid extension, fused-vs-reference
  corruption kernel); ``--smoke`` runs the seconds-scale CI variant,
  ``--scenarios`` caps the grid, ``--workers`` overrides the worker
  curve.  Exit codes: 0 = worker bit-identity, warm >= 10x cold,
  fused-equals-reference, and incremental-only-novel all hold (plus
  the 10^4 scale claim on uncapped full runs); 1 = a claim failed
  (pool wall-clock scaling is reported but never gates);
* ``cache``             — inspect (``info``) or empty (``clear``) the
  content-addressed artifact cache that memoizes generated datasets and
  pretrained R-MAE/VAE/Koopman weights;
* ``verify``            — golden-trace differential verification: replay
  the seven golden scenarios (five paper pillars plus the
  ``control_adaptation`` decision-trace episode and the
  ``scenario_sweep`` engine trace) serially, pooled,
  cached, quantized, under both kernel backends, and compiled
  (``repro.compile`` artifacts vs
  the eager float runs), diffing each against the committed goldens
  under ``tests/goldens/``
  (``--update-goldens`` re-records them).  Exit codes: 0 = all checks
  pass, 1 = mismatches, 2 = bad usage — the same contract the README
  documents, so CI can gate on it;
* ``list``              — enumerate available demos and experiments.

Every failure path (unknown demo/experiment/profile target, a demo
whose ``main`` reports failure) exits non-zero so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

import numpy as np

__all__ = ["main", "EXPERIMENTS"]


# --------------------------------------------------------------- commands
def _table2() -> dict:
    from repro.generative import compare_energy, energy_ratio
    from repro.sim import LidarConfig, LidarScanner, sample_scene
    from repro.voxel import (
        RadialMaskConfig,
        VoxelGridConfig,
        beam_mask_from_segments,
        radial_mask,
        voxelize,
    )
    lidar = LidarConfig(n_azimuth=72, n_elevation=20)
    grid = VoxelGridConfig(nx=24, ny=24, nz=2)
    rng = np.random.default_rng(0)
    scanner = LidarScanner(lidar, rng=rng)
    scene = sample_scene(rng)
    full = scanner.scan(scene)
    cloud = voxelize(full.points, full.labels, grid)
    cfg = RadialMaskConfig(n_segments=24, segment_keep_fraction=0.25,
                           reference_range_m=10.0)
    _, segments = radial_mask(cloud, cfg, np.random.default_rng(1))
    expected = np.full(lidar.n_beams, lidar.max_range_m)
    expected[full.beam_ids] = full.ranges
    mask = beam_mask_from_segments(segments, lidar, cfg, expected,
                                   np.random.default_rng(2))
    masked = scanner.scan(scene, mask)
    reports = compare_energy(full, masked, 830_000, 335_000_000)
    return {
        "conventional": reports["conventional"].as_row(),
        "rmae": reports["rmae"].as_row(),
        "energy_ratio": round(energy_ratio(reports), 2),
    }


def _fig5a() -> dict:
    from repro.koopman import fig5a_macs
    return fig5a_macs(16, 1)


def _fig5b() -> dict:
    from repro.koopman import (
        build_model,
        collect_transitions,
        evaluate_controller,
        fit_dynamics_model,
        make_controller,
    )
    transitions = collect_transitions(n_episodes=12,
                                      rng=np.random.default_rng(0))
    out = {}
    for name, epochs in (("dense_koopman", 1), ("spectral_koopman", 90),
                         ("mlp", 25)):
        model = build_model(name, 4, 1, rng=np.random.default_rng(1))
        fit_dynamics_model(model, transitions, epochs=epochs,
                           rng=np.random.default_rng(2))
        controller = make_controller(model, np.random.default_rng(3))
        out[name] = {
            f"p={p}": round(evaluate_controller(
                controller, p, n_episodes=4, steps=150, seed=4,
                a_min=5.0, a_max=20.0), 1)
            for p in (0.0, 0.1, 0.25)
        }
    return out


def _auc() -> dict:
    from repro.starnet import AUCExperimentConfig, run_auc_experiment
    cfg = AUCExperimentConfig(n_fit_scans=24, n_test_scans=12,
                              severity=0.45, spsa_steps=25, vae_epochs=35)
    return {k: round(v, 4) for k, v in run_auc_experiment(cfg).items()}


def _swarm() -> dict:
    from repro.multiagent import compare_swarm_strategies
    res = compare_swarm_strategies(steps=40, seed=0)
    return {
        name: {"detection_rate": round(r.detection_rate, 3),
               "energy_mj": round(r.total_energy_mj, 1),
               "redundancy": round(r.mean_redundancy, 2)}
        for name, r in res.items()
    }


def _speculative() -> dict:
    from repro.federated import NGramLM, speculative_decode
    rng = np.random.default_rng(0)
    tokens = [0]
    for _ in range(5000):
        tokens.append((tokens[-1] + 1) % 12 if rng.random() < 0.8
                      else int(rng.integers(12)))
    target = NGramLM(12, order=3).fit(tokens)
    draft = NGramLM(12, order=1).fit(tokens)
    out = {}
    for k in (1, 2, 4, 8):
        stats = speculative_decode(target, draft, tokens[:3], 200, k=k,
                                   rng=np.random.default_rng(k))
        out[f"k={k}"] = {"acceptance": round(stats.acceptance_rate, 3),
                         "speedup": round(
                             stats.speedup_vs_autoregressive(), 2)}
    return out


def _fig11() -> dict:
    from repro.federated import MODES, FLClient, FLServer, make_fleet
    from repro.sim import make_synthetic_cifar, shard_dirichlet
    ds = make_synthetic_cifar(n_per_class=40, seed=0)
    train, test = ds.split(0.25, np.random.default_rng(1))
    shards = shard_dirichlet(train, 6, alpha=0.7,
                             rng=np.random.default_rng(2))
    fleet = make_fleet(6, rng=np.random.default_rng(3))
    out = {}
    for mode in MODES:
        clients = [FLClient(i, s, p, rng=np.random.default_rng(10 + i))
                   for i, (s, p) in enumerate(zip(shards, fleet))]
        server = FLServer(clients, test, hidden=32, mode=mode,
                          rng=np.random.default_rng(4))
        server.run(8)
        out[mode] = {k: round(v, 5) for k, v in server.totals().items()}
    return out


def _codesign() -> dict:
    from repro.core import LoopPlant, end_to_end_codesign, modular_codesign
    plant = LoopPlant()
    out = {}
    for budget in (2000, 4000, 8000, 15000, 30000):
        e2e, ue = end_to_end_codesign(plant, budget)
        _, um = modular_codesign(plant, budget)
        out[f"{budget}mW"] = {
            "e2e_utility": round(ue, 3),
            "modular_utility": round(um, 3),
            "e2e_design": str(e2e),
        }
    return out


EXPERIMENTS: Dict[str, Callable[[], dict]] = {
    "table2": _table2,
    "codesign": _codesign,
    "fig5a": _fig5a,
    "fig5b": _fig5b,
    "auc": _auc,
    "fig11": _fig11,
    "swarm": _swarm,
    "speculative": _speculative,
}

DEMOS = ("quickstart", "generative_lidar_perception",
         "koopman_cartpole_control", "robust_monitored_autonomy",
         "neuromorphic_optical_flow", "federated_edge_fleet",
         "uncertainty_aware_sensing")


def _run_demo(name: str) -> int:
    if name not in DEMOS:
        print(f"unknown demo {name!r}; choose from {', '.join(DEMOS)}",
              file=sys.stderr)
        return 2
    import importlib.util
    import os
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "examples",
        f"{name}.py")
    if not os.path.exists(path):
        print(f"example script not found at {path}", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # Propagate the demo's own exit status instead of swallowing it:
    # a demo main() returning a nonzero code must fail the CLI (CI
    # gates on this).
    rc = module.main()
    return int(rc) if rc else 0


PROFILE_BUILTIN = "demo"


def _run_profile(target: str, out: str, jsonl: str, cycles: int) -> int:
    from repro import obs

    if (target != PROFILE_BUILTIN and target not in DEMOS
            and target not in EXPERIMENTS):
        choices = ", ".join([PROFILE_BUILTIN, *DEMOS, *sorted(EXPERIMENTS)])
        print(f"unknown profile target {target!r}; choose from {choices}",
              file=sys.stderr)
        return 2

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        if target == PROFILE_BUILTIN:
            obs.run_profile_scenario(cycles=cycles)
            rc = 0
        elif target in DEMOS:
            rc = _run_demo(target)
        else:
            EXPERIMENTS[target]()
            rc = 0
    if rc != 0:
        return rc

    payload = obs.registry_payload(registry)
    payload["target"] = target
    try:
        if out:
            with open(out, "w") as f:
                json.dump(payload, f, indent=2, default=str)
            print(f"wrote profile to {out}", file=sys.stderr)
        if jsonl:
            n = obs.export_jsonl(registry, jsonl)
            print(f"wrote {n} JSONL records to {jsonl}", file=sys.stderr)
    except OSError as exc:
        print(f"cannot write profile artifact: {exc}", file=sys.stderr)
        return 2
    print(obs.render_report(registry, title=f"repro profile {target}"))
    if not out and not jsonl:
        print("\n(pass --out trace.json or --jsonl trace.jsonl to keep "
              "the machine-readable artifact)", file=sys.stderr)
    return 0


def _run_bench(names, workers, out: str) -> int:
    from repro import obs
    from repro.runtime import run_suite

    registry = obs.MetricsRegistry()
    try:
        with obs.use_registry(registry):
            payload = run_suite(names or None, workers=workers)
    except KeyError as exc:
        print(str(exc.args[0]) if exc.args else repr(exc), file=sys.stderr)
        return 2
    payload["meta"]["obs"] = registry.snapshot()["counters"]
    if out:
        try:
            with open(out, "w") as f:
                json.dump(payload, f, indent=2, default=str)
        except OSError as exc:
            print(f"cannot write bench artifact: {exc}", file=sys.stderr)
            return 2
        print(f"wrote aggregated results to {out}", file=sys.stderr)
    meta = payload["meta"]
    print(json.dumps(payload["results"], indent=2, default=str))
    print(f"\n{len(payload['results'])} benches in {meta['wall_s']:.1f}s "
          f"with {meta['workers']} worker(s):", file=sys.stderr)
    for name, wall in sorted(meta["bench_wall_s"].items(),
                             key=lambda kv: -kv[1]):
        print(f"  {name:28s} {wall:7.2f}s", file=sys.stderr)
    return 0


def _run_serve_bench(smoke: bool, out: str, as_json: bool) -> int:
    from repro.serve import ServingBenchConfig, run_serving_benchmark

    config = ServingBenchConfig.smoke() if smoke else ServingBenchConfig()
    result = run_serving_benchmark(config)
    if out:
        try:
            with open(out, "w") as f:
                json.dump(result, f, indent=2, default=str)
        except OSError as exc:
            print(f"cannot write serving artifact: {exc}", file=sys.stderr)
            return 2
        print(f"wrote serving results to {out}", file=sys.stderr)
    if as_json:
        json.dump(result, sys.stdout, indent=2, default=str)
        print()
    else:
        cfg, serial, batched = (result["config"], result["serial"],
                                result["batched"])
        print(f"serving benchmark ({'smoke' if smoke else 'full'}): "
              f"{cfg['n_loops']} loops x {cfg['cycles_per_loop']} cycles, "
              f"batch {cfg['max_batch_size']}, "
              f"max_wait {cfg['max_wait_ms']:.0f}ms")
        print(f"  serial   {serial['throughput_rps']:8.0f} rps  "
              f"mean latency {serial['mean_latency_ms']:.2f}ms")
        print(f"  batched  {batched['throughput_rps']:8.0f} rps  "
              f"p50 {batched['p50_ms']:.2f}ms  p95 {batched['p95_ms']:.2f}ms "
              f" p99 {batched['p99_ms']:.2f}ms")
        print(f"  speedup {result['speedup']:.2f}x  "
              f"mean batch {batched['mean_batch_size']:.1f}  "
              f"shed {batched['shed']}  "
              f"equivalence max|diff| "
              f"{result['equivalence_max_abs_diff']:.2e}")
    # Correctness and scheduler-contract claims gate; the throughput
    # multiple is informational (wall clock jitters on shared hosts).
    ok = (result["equivalence_ok"] and result["batched"]["shed"] == 0
          and result["p95_within_max_wait"])
    if not ok:
        print("serve-bench FAILED: "
              f"equivalence_ok={result['equivalence_ok']} "
              f"shed={result['batched']['shed']} "
              f"p95_within_max_wait={result['p95_within_max_wait']}",
              file=sys.stderr)
    return 0 if ok else 1


def _run_fleet_bench(smoke: bool, replicas, out: str,
                     as_json: bool) -> int:
    from repro.fleet import FleetBenchConfig, run_fleet_benchmark

    if replicas and min(replicas) < 1:
        print(f"invalid --replicas {' '.join(map(str, replicas))}: "
              "counts must be >= 1", file=sys.stderr)
        return 2
    if smoke:
        config = (FleetBenchConfig.smoke(tuple(replicas)) if replicas
                  else FleetBenchConfig.smoke())
    elif replicas:
        config = FleetBenchConfig(replica_counts=tuple(replicas))
    else:
        config = FleetBenchConfig()
    result = run_fleet_benchmark(config)
    if out:
        try:
            with open(out, "w") as f:
                json.dump(result, f, indent=2, default=str)
        except OSError as exc:
            print(f"cannot write fleet artifact: {exc}", file=sys.stderr)
            return 2
        print(f"wrote fleet results to {out}", file=sys.stderr)
    if as_json:
        json.dump(result, sys.stdout, indent=2, default=str)
        print()
    else:
        cfg, single = result["config"], result["single_process"]
        print(f"fleet benchmark ({'smoke' if smoke else 'full'}): "
              f"{cfg['clients']} clients x {cfg['cycles_per_client']} "
              f"cycles, batch {cfg['max_batch_size']}, device floor "
              f"{cfg['per_batch_ms']:.0f}+{cfg['per_item_ms']:.0f}ms/item")
        print(f"  single-process {single['throughput_rps']:8.0f} rps  "
              f"p95 {single['p95_ms']:.1f}ms")
        for count in cfg["replica_counts"]:
            fr = result["fleet"][str(count)]
            print(f"  fleet x{count}       {fr['throughput_rps']:8.0f} rps  "
                  f"p95 {fr['p95_ms']:.1f}ms  speedup {fr['speedup']:.2f}x "
                  f" shed {fr['shed']}  spills {fr['spills']}")
        for point in result["load_sweep"]["points"]:
            print(f"  sweep {point['fraction']:.2f}x   "
                  f"offered {point['offered_rps']:6.0f} rps  served "
                  f"{point['served_rps']:6.0f} rps  shed {point['shed']}  "
                  f"p95 {point['p95_ms']:.1f}ms")
        print(f"  speedup@max {result['speedup_at_max_replicas']:.2f}x  "
              f"equivalence max|diff| "
              f"{result['equivalence_max_abs_diff']:.2e}  "
              f"sheds below saturation "
              f"{result['closed_loop_sheds'] + result['sub_saturation_sweep_sheds']}")
    # Same gating contract as serve-bench: correctness claims exit
    # non-zero, the wall-clock multiple is informational.
    ok = (result["equivalence_ok"]
          and result["zero_sheds_below_saturation"])
    if not ok:
        print("fleet-bench FAILED: "
              f"equivalence_ok={result['equivalence_ok']} "
              f"closed_loop_sheds={result['closed_loop_sheds']} "
              f"sub_saturation_sweep_sheds="
              f"{result['sub_saturation_sweep_sheds']}",
              file=sys.stderr)
    return 0 if ok else 1


def _run_compile_bench(smoke: bool, out: str, as_json: bool) -> int:
    import importlib.util
    import os

    from repro.runtime.bench import benchmarks_dir

    bench_dir = benchmarks_dir()
    path = os.path.join(bench_dir, "bench_compile.py")
    if not os.path.exists(path):
        print(f"bench module not found: {path}", file=sys.stderr)
        return 2
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)  # bench_compile imports bench_utils
    spec = importlib.util.spec_from_file_location("bench_compile", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    result = module.run_compile_stages(smoke=smoke)
    if out:
        try:
            with open(out, "w") as f:
                json.dump(result, f, indent=2, default=str)
        except OSError as exc:
            print(f"cannot write compile artifact: {exc}", file=sys.stderr)
            return 2
        print(f"wrote compile results to {out}", file=sys.stderr)
    if as_json:
        json.dump(result, sys.stdout, indent=2, default=str)
        print()
    else:
        print(f"compile benchmark ({'smoke' if smoke else 'full'}): "
              f"median of {result['reps']} reps x {result['inner']} "
              f"forwards")
        for name, m in result["models"].items():
            print(f"  {name}: {m['workload']}")
            for stage, r in m["stages"].items():
                extra = ""
                if "steady_state_allocations" in r:
                    extra = (f"  allocs {r['steady_state_allocations']}  "
                             f"arena {r['arena_bytes'] / 1e3:.0f}kB")
                diff = (f"  max|diff| {r['max_abs_diff']:.2e}"
                        if "max_abs_diff" in r else "")
                print(f"    {stage:12s} {r['wall_s'] * 1e6:9.1f}us  "
                      f"{r['speedup']:5.2f}x{diff}{extra}")
            for d in m["int8_layer_drift"]:
                print(f"    int8 {d['layer']:20s} drift "
                      f"{d['observed']:.2e} <= bound {d['bound']:.2e}  "
                      f"({d['weight_bytes']}B int8 vs "
                      f"{d['float_bytes']}B float)")
    # Correctness and the steady-state speedup floor gate; per-stage
    # wall-clock multiples are informational (host jitter).
    models = result["models"].values()
    float_ok = all(m["stages"][s]["max_abs_diff"]
                   < result["float_equiv_tol"]
                   for m in models
                   for s in ("traced", "fused", "fused_arena"))
    allocs_ok = all(m["stages"][s]["steady_state_allocations"] == 0
                    for m in models for s in ("fused_arena", "int8"))
    drift_ok = all(d["observed"] <= d["bound"]
                   for m in models for d in m["int8_layer_drift"])
    best = max(m["stages"]["fused_arena"]["speedup"] for m in models)
    speedup_ok = best >= result["speedup_target"]
    ok = float_ok and allocs_ok and drift_ok and speedup_ok
    if not ok:
        print("compile-bench FAILED: "
              f"float_equivalent={float_ok} zero_steady_allocs={allocs_ok} "
              f"int8_within_bound={drift_ok} "
              f"best_fused_arena={best:.2f}x "
              f"(target {result['speedup_target']:.1f}x)",
              file=sys.stderr)
    return 0 if ok else 1


def _run_control_bench(smoke: bool, out: str, as_json: bool) -> int:
    from repro.control.driver import run_control_adaptation

    result = run_control_adaptation(smoke=smoke)
    if out:
        try:
            with open(out, "w") as f:
                json.dump(result, f, indent=2, default=str)
        except OSError as exc:
            print(f"cannot write control artifact: {exc}", file=sys.stderr)
            return 2
        print(f"wrote control results to {out}", file=sys.stderr)
    if as_json:
        json.dump(result, sys.stdout, indent=2, default=str)
        print()
    else:
        cfg = result["config"]
        print(f"control adaptation ({'smoke' if smoke else 'full'}): "
              f"{len(cfg['severities'])}x{len(cfg['loads_rps'])} sweep, "
              f"{cfg['cycles']} cycles/episode "
              f"({cfg['warmup_cycles']} warmup excluded)")
        for name, agg in result["aggregate"].items():
            mark = ""
            if name in result["statics_dominated"]:
                mark = "  (dominated by adaptive)"
            elif name == result["best_static"]:
                mark = "  (best static)"
            print(f"  {name:16s} accuracy {agg['accuracy']:.4f}  "
                  f"energy {agg['energy_mj']:8.1f} mJ{mark}")
        print(f"  adaptive decisions: {result['adaptive_decisions']} over "
              f"{result['adaptive_steps']} controller steps")
    # The frontier claims gate; the dominated count is informational
    # (check_regressions.py reports it as a warning-level check).
    ok = (result["adaptive_matches_best_accuracy"]
          and result["adaptive_energy_leq_best_static"]
          and result["adaptive_decisions"] > 0)
    if not ok:
        print("control-bench FAILED: "
              f"matches_best_accuracy="
              f"{result['adaptive_matches_best_accuracy']} "
              f"energy_leq_best_static="
              f"{result['adaptive_energy_leq_best_static']} "
              f"decisions={result['adaptive_decisions']}",
              file=sys.stderr)
    return 0 if ok else 1


def _run_fed_bench(smoke: bool, clients, out: str, as_json: bool) -> int:
    from dataclasses import replace

    from repro.federated import (FederatedBenchConfig,
                                 run_federated_async_benchmark)

    config = (FederatedBenchConfig.smoke() if smoke
              else FederatedBenchConfig())
    if clients is not None:
        config = replace(config, n_clients=clients)
    result = run_federated_async_benchmark(config)
    if out:
        try:
            with open(out, "w") as f:
                json.dump(result, f, indent=2, default=str)
        except OSError as exc:
            print(f"cannot write federated artifact: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote federated results to {out}", file=sys.stderr)
    if as_json:
        json.dump(result, sys.stdout, indent=2, default=str)
        print()
    else:
        cfg = result["config"]
        lock, asy = result["lockstep"], result["async"]
        print(f"federated async ({'smoke' if smoke else 'full'}): "
              f"{cfg['n_clients']} clients, cohort {result['cohort']}, "
              f"budget {result['update_budget']} updates")
        print(f"  lockstep  acc {lock['final_accuracy']:.3f} in "
              f"{lock['virtual_s']:.1f}s virtual "
              f"({lock['updates']} updates)")
        print(f"  async     acc {asy['final_accuracy']:.3f} in "
              f"{asy['virtual_s']:.1f}s virtual "
              f"({asy['updates']} updates, staleness mean "
              f"{asy['staleness_mean']:.2f} max {asy['staleness_max']})")
        print(f"  simulated speedup {result['simulated_speedup']:.1f}x, "
              f"identical across workers "
              f"{sorted(result['async_by_workers'])}: "
              f"{result['claims']['identical_across_workers']}")
        print(f"  sharding wall speedup @{max(cfg['worker_counts'])} "
              f"workers: {result['sharding_speedup_at_max_workers']:.2f}x "
              "(informational)")
    claims = result["claims"]
    ok = (claims["reached_lockstep_accuracy"]
          and claims["simulated_speedup_ok"]
          and claims["identical_across_workers"])
    if not smoke and clients is None:
        ok = ok and claims["fleet_scale"]
    if not ok:
        print("fed-bench FAILED: "
              f"reached_lockstep_accuracy="
              f"{claims['reached_lockstep_accuracy']} "
              f"simulated_speedup={result['simulated_speedup']:.2f}x "
              f"identical_across_workers="
              f"{claims['identical_across_workers']}",
              file=sys.stderr)
    return 0 if ok else 1


def _run_scenario_bench(smoke: bool, scenarios_cap, workers, out: str,
                        as_json: bool) -> int:
    from dataclasses import replace

    from repro.scenario import (ScenarioBenchConfig,
                                run_scenario_sweep_benchmark)

    config = (ScenarioBenchConfig.smoke() if smoke
              else ScenarioBenchConfig())
    if scenarios_cap is not None:
        config = replace(config, max_scenarios=scenarios_cap)
    if workers is not None:
        config = replace(config, worker_counts=tuple(workers))
    result = run_scenario_sweep_benchmark(config)
    if out:
        try:
            with open(out, "w") as f:
                json.dump(result, f, indent=2, default=str)
        except OSError as exc:
            print(f"cannot write scenario artifact: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote scenario sweep results to {out}", file=sys.stderr)
    if as_json:
        json.dump(result, sys.stdout, indent=2, default=str)
        print()
    else:
        print(f"scenario sweep ({'smoke' if smoke else 'full'}): "
              f"{result['n_scenarios']} scenarios")
        for row in result["worker_curve"]:
            print(f"  workers {row['workers']}: {row['wall_s']:6.2f}s "
                  f"({row['scenarios_per_s']:6.0f} scen/s)  "
                  f"payload {row['payload_sha'][:16]}")
        print(f"  identical across workers: "
              f"{result['claims']['identical_across_workers']}  "
              f"pool scaling {result['pool_scaling']:.2f}x "
              "(informational)")
        print(f"  cold {result['cold']['wall_s']:.2f}s -> warm "
              f"{result['warm']['wall_s']:.2f}s: "
              f"{result['warm_speedup']:.1f}x (target "
              f"{result['warm_speedup_target']:.0f}x)")
        inc = result["incremental"]
        print(f"  incremental extension: executed {inc['executed']} "
              f"(expected {inc['novel_expected']}), replayed "
              f"{inc['replayed']}")
        fused = result["fused"]
        print(f"  fused corruption kernel: "
              f"{fused['fused_speedup']:.2f}x over reference, exactly "
              f"equal: {fused['fused_equivalent']}")
    claims = result["claims"]
    ok = (claims["identical_across_workers"]
          and claims["warm_speedup_ok"]
          and claims["fused_equivalent"]
          and claims["incremental_only_novel"])
    # The 10^4 scale claim only binds on uncapped full runs.
    if not smoke and scenarios_cap is None:
        ok = ok and claims["sweep_scale_ok"]
    if not ok:
        print("scenario-bench FAILED: "
              f"identical_across_workers="
              f"{claims['identical_across_workers']} "
              f"warm_speedup={result['warm_speedup']:.1f}x "
              f"fused_equivalent={claims['fused_equivalent']} "
              f"incremental_only_novel="
              f"{claims['incremental_only_novel']} "
              f"sweep_scale_ok={claims['sweep_scale_ok']}",
              file=sys.stderr)
    return 0 if ok else 1


def _run_cache(action: str, as_json: bool) -> int:
    from repro.runtime import cache_enabled, get_cache

    cache = get_cache()
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifact(s) from {cache.root}")
        return 0
    info = cache.info()
    info["enabled"] = cache_enabled()
    if as_json:
        json.dump(info, sys.stdout, indent=2)
        print()
        return 0
    print(f"artifact cache at {info['root']} "
          f"({'enabled' if info['enabled'] else 'DISABLED via REPRO_CACHE'})")
    print(f"  {info['entries']} entries, {info['total_bytes'] / 1e6:.2f} MB")
    for kind, count in sorted(info["by_kind"].items()):
        print(f"  {kind:20s} {count} artifact(s)")
    if not info["entries"]:
        print("  (empty — caches fill as examples/benchmarks pretrain "
              "models)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sensing-to-action loops for edge autonomy "
                    "(DATE 2025 reproduction)")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list demos and experiments")
    demo = sub.add_parser("demo", help="run an example scenario")
    demo.add_argument("name", choices=DEMOS)
    exp = sub.add_parser("experiment",
                         help="regenerate a paper artifact (JSON to stdout)")
    exp.add_argument("id", choices=sorted(EXPERIMENTS))
    prof = sub.add_parser(
        "profile",
        help="run a scenario under live telemetry and emit span tree "
             "+ metrics ('demo' = built-in five-stage loop)")
    prof.add_argument("target",
                      help="'demo', an example name, or an experiment id")
    prof.add_argument("--out", default="",
                      help="write span tree + metrics JSON here")
    prof.add_argument("--jsonl", default="",
                      help="write one-record-per-line JSONL export here")
    prof.add_argument("--cycles", type=int, default=120,
                      help="loop cycles for the built-in 'demo' target")
    bench = sub.add_parser(
        "bench",
        help="run benchmark entry points (optionally in parallel) and "
             "aggregate their JSON results")
    bench.add_argument("names", nargs="*",
                       help="bench names (default: the fast subset; see "
                            "'repro bench --help-names')")
    bench.add_argument("--workers", type=int, default=None,
                       help="process count (default: $REPRO_WORKERS or 1); "
                            "results are bit-identical for any value")
    bench.add_argument("--out", default="",
                       help="write aggregated results JSON here")
    bench.add_argument("--micro", action="store_true",
                       help="include the kernel micro-benchmark suite "
                            "(MICRO_BENCHES: alone when no names are "
                            "given, appended otherwise)")
    bench.add_argument("--serving", action="store_true",
                       help="include the serving-throughput suite "
                            "(SERVING_BENCHES: alone when no names are "
                            "given, appended otherwise)")
    bench.add_argument("--fleet", action="store_true",
                       help="include the fleet-scaling suite "
                            "(FLEET_BENCHES: alone when no names are "
                            "given, appended otherwise)")
    bench.add_argument("--compile", action="store_true",
                       dest="compile_suite",
                       help="include the compile-stage suite "
                            "(COMPILE_BENCHES: alone when no names are "
                            "given, appended otherwise)")
    bench.add_argument("--control", action="store_true",
                       dest="control_suite",
                       help="include the control-adaptation suite "
                            "(CONTROL_BENCHES: alone when no names are "
                            "given, appended otherwise)")
    bench.add_argument("--federated", action="store_true",
                       dest="federated_suite",
                       help="include the fleet-scale federated suite "
                            "(FEDERATED_BENCHES: alone when no names are "
                            "given, appended otherwise)")
    bench.add_argument("--scenarios", action="store_true",
                       dest="scenario_suite",
                       help="include the scenario sweep suite "
                            "(SCENARIO_BENCHES: alone when no names are "
                            "given, appended otherwise)")
    bench.add_argument("--help-names", action="store_true",
                       help="list registered bench names with their "
                            "[default]/[micro]/[serving]/[fleet]/"
                            "[compile]/[control]/[federated]/[scenario] "
                            "tags and exit")
    serve = sub.add_parser(
        "serve-bench",
        help="run the micro-batched serving benchmark (serial vs "
             "batched over identical request streams); exits 1 if the "
             "equivalence, shedding, or p95 bound fails")
    serve.add_argument("--smoke", action="store_true",
                       help="seconds-scale CI variant (fewer loops and "
                            "cycles, batch size matched to loop count)")
    serve.add_argument("--out", default="",
                       help="write the full results JSON here")
    serve.add_argument("--json", action="store_true",
                       help="emit the full results JSON on stdout")
    fleet = sub.add_parser(
        "fleet-bench",
        help="run the sharded multi-process serving benchmark "
             "(single-process vs replica fleets + staleness load "
             "sweep); exits 1 if equivalence or "
             "zero-sheds-below-saturation fails")
    fleet.add_argument("--smoke", action="store_true",
                       help="seconds-scale CI variant (fewer clients "
                            "and cycles, smaller device floor)")
    fleet.add_argument("--replicas", type=int, nargs="+", default=None,
                       help="replica counts for the scaling curve "
                            "(default: 1 2 for smoke, 1 2 4 for full)")
    fleet.add_argument("--out", default="",
                       help="write the full results JSON here")
    fleet.add_argument("--json", action="store_true",
                       help="emit the full results JSON on stdout")
    compile_p = sub.add_parser(
        "compile-bench",
        help="run the compile-stage benchmark (eager vs traced vs fused "
             "vs fused+arena vs int8); exits 1 if a float-equivalence, "
             "zero-allocation, drift-bound, or speedup check fails")
    compile_p.add_argument("--smoke", action="store_true",
                           help="seconds-scale CI variant (fewer reps "
                                "and inner iterations)")
    compile_p.add_argument("--out", default="",
                           help="write the full results JSON here")
    compile_p.add_argument("--json", action="store_true",
                           help="emit the full results JSON on stdout")
    control_p = sub.add_parser(
        "control-bench",
        help="run the control-adaptation sweep (adaptive Controller vs "
             "static configs on the energy/accuracy frontier); exits 1 "
             "if the adaptive policy fails to match the best static "
             "accuracy at no more than its energy")
    control_p.add_argument("--smoke", action="store_true",
                           help="CI variant (sweep corners only, "
                                "shorter episodes)")
    control_p.add_argument("--out", default="",
                           help="write the full results JSON here")
    control_p.add_argument("--json", action="store_true",
                           help="emit the full results JSON on stdout")
    fed = sub.add_parser(
        "fed-bench",
        help="run the fleet-scale async federated benchmark (lockstep "
             "vs staleness-weighted async over an identical 10^3-client "
             "fleet + worker-count determinism sweep); exits 1 if an "
             "accuracy/speedup/determinism claim fails")
    fed.add_argument("--smoke", action="store_true",
                     help="seconds-scale CI variant (128 clients, "
                          "shorter sweeps)")
    fed.add_argument("--clients", type=int, default=None,
                     help="override the fleet size (default: 128 smoke, "
                          "1000 full)")
    fed.add_argument("--out", default="",
                     help="write the full results JSON here")
    fed.add_argument("--json", action="store_true",
                     help="emit the full results JSON on stdout")
    scenario_p = sub.add_parser(
        "scenario-bench",
        help="run the high-throughput scenario sweep benchmark "
             "(worker-identity curve, cold/warm replay store, "
             "incremental extension, fused corruption kernel); exits 1 "
             "if a determinism/cache/equivalence claim fails")
    scenario_p.add_argument("--smoke", action="store_true",
                            help="seconds-scale CI variant (reduced "
                                 "corruption grid, single platform)")
    scenario_p.add_argument("--scenarios", type=int, default=None,
                            help="cap the expanded grid at N scenarios "
                                 "(waives the 10^4 scale claim)")
    scenario_p.add_argument("--workers", type=int, nargs="+",
                            default=None,
                            help="worker counts for the identity curve "
                                 "(default: 1 2 for smoke, 1 2 4 full)")
    scenario_p.add_argument("--out", default="",
                            help="write the full results JSON here")
    scenario_p.add_argument("--json", action="store_true",
                            help="emit the full results JSON on stdout")
    cache = sub.add_parser(
        "cache",
        help="inspect or clear the on-disk artifact cache "
             "($REPRO_CACHE_DIR, default ~/.cache/repro)")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument("--json", action="store_true",
                       help="emit machine-readable info")
    verify = sub.add_parser(
        "verify",
        help="golden-trace differential verification (serial / pooled / "
             "cached / quantized / kernels) against tests/goldens/")
    verify.add_argument("scenarios", nargs="*",
                        help="scenario names (default: all seven scenarios)")
    verify.add_argument("--update-goldens", action="store_true",
                        help="re-record goldens from fresh serial runs "
                             "before verifying")
    verify.add_argument("--workers", type=int, default=None,
                        help="pool size for the pooled differential "
                             "(default: max(2, $REPRO_WORKERS))")
    verify.add_argument("--goldens-dir", default="",
                        help="golden directory (default: tests/goldens "
                             "or $REPRO_GOLDENS_DIR)")
    verify.add_argument("--diff-out", default="",
                        help="write the full JSON verification report "
                             "(with per-field mismatches) here")
    verify.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    verify.add_argument("--skip", default="",
                        help="comma-separated checks to skip "
                             "(serial,pooled,cache,quantized,kernels,"
                             "compiled)")

    args = parser.parse_args(argv)
    if args.command == "list":
        from repro.runtime import BENCHES
        print("demos:       ", ", ".join(DEMOS))
        print("experiments: ", ", ".join(sorted(EXPERIMENTS)))
        print("benches:     ", ", ".join(sorted(BENCHES)))
        print("profile:      demo (built-in loop), any demo name, or any "
              "experiment id")
        print("(the full table/figure suite lives in benchmarks/: "
              "pytest benchmarks/ --benchmark-only -s; 'repro bench "
              "--workers N' runs the fast subset in parallel)")
        return 0
    if args.command == "demo":
        return _run_demo(args.name)
    if args.command == "experiment":
        if args.id not in EXPERIMENTS:
            print(f"unknown experiment {args.id!r}; choose from "
                  f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
            return 2
        result = EXPERIMENTS[args.id]()
        json.dump(result, sys.stdout, indent=2, default=str)
        print()
        return 0
    if args.command == "profile":
        return _run_profile(args.target, args.out, args.jsonl, args.cycles)
    if args.command == "bench":
        if args.help_names:
            from repro.runtime import (BENCHES, COMPILE_BENCHES,
                                       CONTROL_BENCHES, DEFAULT_BENCHES,
                                       FEDERATED_BENCHES, FLEET_BENCHES,
                                       MICRO_BENCHES, SCENARIO_BENCHES,
                                       SERVING_BENCHES)
            for name in sorted(BENCHES):
                tag = "  [default]" if name in DEFAULT_BENCHES else ""
                if name in MICRO_BENCHES:
                    tag = "  [micro]"
                if name in SERVING_BENCHES:
                    tag = "  [serving]"
                if name in FLEET_BENCHES:
                    tag = "  [fleet]"
                if name in COMPILE_BENCHES:
                    tag = "  [compile]"
                if name in CONTROL_BENCHES:
                    tag = "  [control]"
                if name in FEDERATED_BENCHES:
                    tag = "  [federated]"
                if name in SCENARIO_BENCHES:
                    tag = "  [scenario]"
                print(f"{name}{tag}")
            return 0
        names = list(args.names)
        if args.micro:
            from repro.runtime import MICRO_BENCHES
            names.extend(n for n in MICRO_BENCHES if n not in names)
        if args.serving:
            from repro.runtime import SERVING_BENCHES
            names.extend(n for n in SERVING_BENCHES if n not in names)
        if args.fleet:
            from repro.runtime import FLEET_BENCHES
            names.extend(n for n in FLEET_BENCHES if n not in names)
        if args.compile_suite:
            from repro.runtime import COMPILE_BENCHES
            names.extend(n for n in COMPILE_BENCHES if n not in names)
        if args.control_suite:
            from repro.runtime import CONTROL_BENCHES
            names.extend(n for n in CONTROL_BENCHES if n not in names)
        if args.federated_suite:
            from repro.runtime import FEDERATED_BENCHES
            names.extend(n for n in FEDERATED_BENCHES if n not in names)
        if args.scenario_suite:
            from repro.runtime import SCENARIO_BENCHES
            names.extend(n for n in SCENARIO_BENCHES if n not in names)
        return _run_bench(names, args.workers, args.out)
    if args.command == "serve-bench":
        return _run_serve_bench(args.smoke, args.out, args.json)
    if args.command == "fleet-bench":
        return _run_fleet_bench(args.smoke, args.replicas, args.out,
                                args.json)
    if args.command == "compile-bench":
        return _run_compile_bench(args.smoke, args.out, args.json)
    if args.command == "control-bench":
        return _run_control_bench(args.smoke, args.out, args.json)
    if args.command == "fed-bench":
        return _run_fed_bench(args.smoke, args.clients, args.out, args.json)
    if args.command == "scenario-bench":
        return _run_scenario_bench(args.smoke, args.scenarios,
                                   args.workers, args.out, args.json)
    if args.command == "cache":
        return _run_cache(args.action, args.json)
    if args.command == "verify":
        from repro.testkit import main_verify
        return main_verify(args.scenarios, args.update_goldens,
                           args.workers, args.goldens_dir, args.diff_out,
                           args.json, args.skip)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
