"""DC-NAS: divide-and-conquer architecture adaptation per client (Sec. VII).

"DC-NAS tailors neural network architectures to client-specific
constraints through topology and channel pruning, enabling efficient
collaboration without overburdening resource-limited agents."

Realization here (HeteroFL-style nested subnetworks): the global model's
hidden layer is ordered by importance; each client trains the widest
prefix of hidden units its device affords (channel pruning), and the
server aggregates each coordinate over exactly the clients that trained
it.  Nested prefixes make aggregation well-defined without architecture
translation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..hardware.latency import HardwareProfile
from .client import model_macs_per_sample

__all__ = ["select_hidden_width", "slice_weights", "merge_subnetwork"]


def select_hidden_width(profile: HardwareProfile, input_dim: int,
                        n_classes: int, full_hidden: int,
                        target_latency_ms: float = 50.0,
                        min_hidden: int = 4) -> int:
    """Widest hidden prefix satisfying the client's memory and latency.

    Memory: weights at fp32 must fit ``profile.memory_mb`` (with a 50%
    headroom for activations/optimizer state).  Latency: one local epoch
    (~3x forward MACs x shard) must land under ``target_latency_ms`` per
    sample batch of 16.
    """
    best = min_hidden
    for hidden in range(min_hidden, full_hidden + 1):
        params = input_dim * hidden + hidden + hidden * n_classes + n_classes
        if not profile.fits_model(int(params * 1.5), weight_bits=32):
            break
        macs = 3 * model_macs_per_sample(input_dim, hidden, n_classes) * 16
        if profile.inference_latency_ms(macs, 32) > target_latency_ms:
            break
        best = hidden
    return best


def slice_weights(global_weights: List[np.ndarray],
                  hidden_used: int) -> List[np.ndarray]:
    """Extract the prefix sub-network [w1, b1, w2, b2] of width h."""
    w1, b1, w2, b2 = global_weights
    if hidden_used > w1.shape[1]:
        raise ValueError("cannot slice wider than the global model")
    return [w1[:, :hidden_used].copy(), b1[:hidden_used].copy(),
            w2[:hidden_used, :].copy(), b2.copy()]


def merge_subnetwork(global_weights: List[np.ndarray],
                     client_weights: List[List[np.ndarray]],
                     client_hidden: List[int],
                     client_samples: List[int]) -> List[np.ndarray]:
    """Coordinate-wise FedAvg over the clients that trained each unit.

    Hidden unit ``j`` is averaged over exactly the clients whose prefix
    covers it, weighted by shard size; units no client trained keep the
    previous global values.  Output-layer biases are averaged over all
    clients.
    """
    if not client_weights:
        return [w.copy() for w in global_weights]
    w1g, b1g, w2g, b2g = [w.copy() for w in global_weights]
    full_hidden = w1g.shape[1]

    w1_acc = np.zeros_like(w1g)
    b1_acc = np.zeros_like(b1g)
    w2_acc = np.zeros_like(w2g)
    unit_weight = np.zeros(full_hidden)
    b2_acc = np.zeros_like(b2g)
    b2_weight = 0.0

    for weights, hidden, n in zip(client_weights, client_hidden,
                                  client_samples):
        w1, b1, w2, b2 = weights
        w1_acc[:, :hidden] += n * w1
        b1_acc[:hidden] += n * b1
        w2_acc[:hidden, :] += n * w2
        unit_weight[:hidden] += n
        b2_acc += n * b2
        b2_weight += n

    covered = unit_weight > 0
    w1g[:, covered] = w1_acc[:, covered] / unit_weight[covered]
    b1g[covered] = b1_acc[covered] / unit_weight[covered]
    w2g[covered, :] = w2_acc[covered, :] / unit_weight[covered, None]
    if b2_weight > 0:
        b2g = b2_acc / b2_weight
    return [w1g, b1g, w2g, b2g]
