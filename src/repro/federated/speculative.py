"""Edge-cloud speculative decoding on a toy character LM (Sec. VII).

"Speculative decoding exemplifies how edge-cloud collaboration can
enhance multi-agent systems ... the edge handles low-latency predictions,
while the cloud refines and updates models."

A small n-gram *draft* model (edge) proposes ``k`` tokens; the larger
n-gram *target* model (cloud) verifies them in one batched call with the
standard speculative-sampling acceptance rule (Leviathan et al.):
accept token x with probability min(1, p(x)/q(x)); on the first
rejection, resample from the residual distribution max(0, p - q).  The
output distribution provably equals the target model's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["NGramLM", "speculative_decode", "autoregressive_decode",
           "SpeculativeStats"]


class NGramLM:
    """Add-alpha-smoothed n-gram character model over integer tokens."""

    def __init__(self, vocab_size: int, order: int = 2, alpha: float = 0.1):
        if order < 1:
            raise ValueError("order must be >= 1")
        self.vocab_size = vocab_size
        self.order = order
        self.alpha = alpha
        self.counts: Dict[Tuple[int, ...], np.ndarray] = {}

    def fit(self, tokens: Sequence[int]) -> "NGramLM":
        tokens = list(tokens)
        for i in range(len(tokens) - self.order):
            ctx = tuple(tokens[i:i + self.order])
            nxt = tokens[i + self.order]
            if ctx not in self.counts:
                self.counts[ctx] = np.zeros(self.vocab_size)
            self.counts[ctx][nxt] += 1
        return self

    def distribution(self, context: Sequence[int]) -> np.ndarray:
        """P(next | last ``order`` tokens), add-alpha smoothed."""
        ctx = tuple(context[-self.order:])
        counts = self.counts.get(ctx, np.zeros(self.vocab_size))
        probs = counts + self.alpha
        return probs / probs.sum()

    def sample(self, context: Sequence[int],
               rng: np.random.Generator) -> int:
        return int(rng.choice(self.vocab_size,
                              p=self.distribution(context)))


@dataclass
class SpeculativeStats:
    """Outcome of one decode: tokens, calls, acceptance bookkeeping."""

    tokens: List[int]
    target_calls: int
    draft_calls: int
    accepted: int
    proposed: int

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    @property
    def tokens_per_target_call(self) -> float:
        return len(self.tokens) / self.target_calls if self.target_calls else 0.0

    def speedup_vs_autoregressive(self) -> float:
        """Latency speedup assuming the target model dominates cost."""
        return self.tokens_per_target_call


def autoregressive_decode(target: NGramLM, prompt: Sequence[int],
                          n_tokens: int,
                          rng: Optional[np.random.Generator] = None
                          ) -> SpeculativeStats:
    """Baseline: one target call per generated token."""
    rng = rng if rng is not None else np.random.default_rng(0)
    context = list(prompt)
    out: List[int] = []
    for _ in range(n_tokens):
        tok = target.sample(context, rng)
        out.append(tok)
        context.append(tok)
    return SpeculativeStats(tokens=out, target_calls=n_tokens,
                            draft_calls=0, accepted=0, proposed=0)


def speculative_decode(target: NGramLM, draft: NGramLM,
                       prompt: Sequence[int], n_tokens: int, k: int = 4,
                       rng: Optional[np.random.Generator] = None
                       ) -> SpeculativeStats:
    """Speculative sampling: draft proposes k, target verifies in one call."""
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    context = list(prompt)
    out: List[int] = []
    target_calls = draft_calls = accepted = proposed = 0
    while len(out) < n_tokens:
        # Draft proposes k tokens autoregressively (cheap, on-edge).
        draft_ctx = list(context)
        proposals: List[int] = []
        draft_probs: List[float] = []
        for _ in range(k):
            q = draft.distribution(draft_ctx)
            tok = int(rng.choice(target.vocab_size, p=q))
            proposals.append(tok)
            draft_probs.append(float(q[tok]))
            draft_ctx.append(tok)
            draft_calls += 1
        # One (batched) target call verifies the whole block.
        target_calls += 1
        verify_ctx = list(context)
        n_accepted = 0
        for tok, q_tok in zip(proposals, draft_probs):
            p = target.distribution(verify_ctx)
            proposed += 1
            if rng.random() < min(1.0, float(p[tok]) / max(q_tok, 1e-12)):
                out.append(tok)
                verify_ctx.append(tok)
                accepted += 1
                n_accepted += 1
                if len(out) >= n_tokens:
                    break
            else:
                # Residual resampling keeps the output distribution = p.
                q = draft.distribution(verify_ctx)
                residual = np.clip(p - q, 0.0, None)
                total = residual.sum()
                if total <= 0:
                    tok_new = int(rng.choice(target.vocab_size, p=p))
                else:
                    tok_new = int(rng.choice(target.vocab_size,
                                             p=residual / total))
                out.append(tok_new)
                verify_ctx.append(tok_new)
                break
        else:
            # All k accepted: target grants one bonus token for free.
            if len(out) < n_tokens:
                p = target.distribution(verify_ctx)
                bonus = int(rng.choice(target.vocab_size, p=p))
                out.append(bonus)
                verify_ctx.append(bonus)
        context = verify_ctx
    return SpeculativeStats(tokens=out[:n_tokens], target_calls=target_calls,
                            draft_calls=draft_calls, accepted=accepted,
                            proposed=proposed)
