"""HaLo-FL: hardware-aware low-precision federated learning (Sec. VII).

"HaLo-FL incorporates a hardware-aware precision selector that optimizes
weights, activations, and gradients based on client capabilities,
reducing energy consumption and latency while preserving accuracy.  This
adaptability is enabled by a precision-reconfigurable simulator."

The selector searches the precision lattice for the cheapest
:class:`PrecisionConfig` whose *predicted* accuracy penalty stays under a
tolerance, where the penalty is estimated from quantization noise on the
current global weights (the precision-reconfigurable simulation — no
training run needed to evaluate a candidate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.energy import mac_energy_pj
from ..hardware.latency import HardwareProfile, mac_area_um2
from ..nn.quantize import SUPPORTED_BITS, PrecisionConfig, quantization_noise_power

__all__ = ["PrecisionSelector", "candidate_configs"]


def candidate_configs(min_bits: int = 4) -> List[PrecisionConfig]:
    """The searchable precision lattice (weights/activations/gradients).

    Gradients are kept at >= 8 bits (training stability); weights and
    activations may go lower.
    """
    levels = [b for b in SUPPORTED_BITS if b >= min_bits]
    grad_levels = [b for b in SUPPORTED_BITS if b >= 8]
    configs = []
    for w in levels:
        for a in levels:
            for g in grad_levels:
                configs.append(PrecisionConfig(w, a, g))
    return configs


@dataclass
class PrecisionSelector:
    """Pick the cheapest precision meeting an accuracy-noise tolerance.

    ``noise_tolerance`` bounds the relative quantization-noise power on
    the weights (noise power / signal power); ``energy_weight`` etc.
    weight the cost terms when ranking the feasible candidates.
    """

    # Calibrated so that for Glorot-scale weights 8-bit quantization
    # (noise ratio ~1e-5) is admitted while 4-bit (~5e-3) is rejected —
    # matching the empirical finding that 4-bit weight training collapses
    # on this model family.
    noise_tolerance: float = 1e-3
    energy_weight: float = 1.0
    latency_weight: float = 0.3
    area_weight: float = 0.1

    def weight_noise_ratio(self, weights: Sequence[np.ndarray],
                           bits: int) -> float:
        """Relative quantization noise over all weight tensors."""
        signal = sum(float(np.mean(np.asarray(w) ** 2)) for w in weights)
        noise = sum(quantization_noise_power(w, bits) for w in weights)
        return noise / max(signal, 1e-12)

    def cost(self, config: PrecisionConfig, profile: HardwareProfile,
             macs_per_round: int) -> float:
        energy = macs_per_round * mac_energy_pj(config.mac_bits) * 1e-9
        latency = profile.inference_latency_ms(macs_per_round,
                                               config.mac_bits)
        area = mac_area_um2(config.mac_bits) * profile.parallel_lanes
        return (self.energy_weight * energy
                + self.latency_weight * latency
                + self.area_weight * area / 1e4)

    def select(self, weights: Sequence[np.ndarray],
               profile: HardwareProfile, macs_per_round: int,
               candidates: Optional[List[PrecisionConfig]] = None
               ) -> PrecisionConfig:
        """Cheapest feasible configuration for this client.

        Feasible = weight-quantization noise under tolerance AND round
        energy within the client's budget.  Falls back to full precision
        if nothing is feasible (never blocks training).
        """
        candidates = candidates if candidates is not None else candidate_configs()
        feasible: List[Tuple[float, PrecisionConfig]] = []
        for config in candidates:
            noise = self.weight_noise_ratio(weights, config.weight_bits)
            if noise > self.noise_tolerance:
                continue
            energy = (macs_per_round * mac_energy_pj(config.mac_bits) * 1e-9)
            if energy > profile.energy_budget_mj:
                continue
            feasible.append((self.cost(config, profile, macs_per_round),
                             config))
        if not feasible:
            return PrecisionConfig.full_precision()
        # Equal-cost ties break toward *higher* precision: extra bits are
        # free when the MAC width is unchanged, and safer for training.
        feasible.sort(key=lambda pair: (pair[0], -pair[1].mean_bits()))
        return feasible[0][1]
